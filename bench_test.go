package streamcover

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"streamcover/internal/experiments"
	"streamcover/internal/stream"
)

// One benchmark per reproduced experiment (DESIGN.md §5): each regenerates
// its table at quick scale, so `go test -bench=.` both times the harness
// and re-checks that every experiment still runs end to end. Full-scale
// tables come from `go run ./cmd/tradeoff`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(id, experiments.Config{Seed: 20170601, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1SpaceApproxTradeoff regenerates Theorem 2's space/α table.
func BenchmarkE1SpaceApproxTradeoff(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2LowerBoundTransition regenerates the Theorem 1/3 budget sweep.
func BenchmarkE2LowerBoundTransition(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3HardInstanceGap regenerates the Lemma 3.2 optimum-gap table.
func BenchmarkE3HardInstanceGap(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4RandomOrder regenerates the Lemma 3.7 robustness table.
func BenchmarkE4RandomOrder(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5MaxCoverageTransition regenerates the Theorem 4/5 sweep.
func BenchmarkE5MaxCoverageTransition(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6MaxCoverGap regenerates the Lemma 4.3 separation table.
func BenchmarkE6MaxCoverGap(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7BaselineComparison regenerates the algorithm comparison.
func BenchmarkE7BaselineComparison(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8CoverageConcentration regenerates the Lemma 2.2 table.
func BenchmarkE8CoverageConcentration(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9InfoCost regenerates the Proposition 2.5 information table.
func BenchmarkE9InfoCost(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10ElementSampling regenerates the Lemma 3.12 threshold table.
func BenchmarkE10ElementSampling(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Ablations regenerates the design-choice ablations.
func BenchmarkE11Ablations(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Reductions regenerates the Lemma 3.4/4.5 soundness table.
func BenchmarkE12Reductions(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13IterationShrinkage regenerates the Lemma 3.11 decay table.
func BenchmarkE13IterationShrinkage(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14GuessGridOverhead regenerates the wrapper-cost table.
func BenchmarkE14GuessGridOverhead(b *testing.B) { benchExperiment(b, "E14") }

// --- Public API benchmarks -------------------------------------------------

// BenchmarkSolveSetCoverAlpha2 measures the end-to-end solver at α=2.
func BenchmarkSolveSetCoverAlpha2(b *testing.B) {
	inst, _ := GeneratePlanted(1, 4096, 512, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSetCover(inst, WithAlpha(2), WithSeed(uint64(i)+1), WithSampleConstant(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSetCoverAlpha4 measures the end-to-end solver at α=4.
func BenchmarkSolveSetCoverAlpha4(b *testing.B) {
	inst, _ := GeneratePlanted(1, 4096, 512, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSetCover(inst, WithAlpha(4), WithSeed(uint64(i)+1), WithSampleConstant(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveMaxCoverage measures the streaming k-cover (greedy
// sub-solve mode, the practical choice beyond tiny k).
func BenchmarkSolveMaxCoverage(b *testing.B) {
	inst := GenerateUniform(2, 8192, 512, 256, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveMaxCoverage(inst, 4, WithSeed(uint64(i)+1), WithGreedySubsolver()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedySetCover measures the offline reference on a mid-size
// instance.
func BenchmarkGreedySetCover(b *testing.B) {
	inst := GenerateUniform(3, 8192, 1024, 128, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedySetCover(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateHardSetCover measures D_SC sampling throughput.
func BenchmarkGenerateHardSetCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateHardSetCover(uint64(i), 4096, 32, 2, i%2)
	}
}

// --- Data-plane benchmarks ---------------------------------------------------
//
// The CSR/binary data plane exists to starve the solvers less: these
// benchmarks track the codec and per-pass stream costs (run with -benchmem;
// make bench-json records them in BENCH_csr.json).

func benchCodecInstance() *Instance {
	return GenerateZipf(9, 1<<14, 2048, 1.3, 1<<11)
}

// BenchmarkCodecWriteText measures text encoding throughput.
func BenchmarkCodecWriteText(b *testing.B) {
	inst := benchCodecInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteInstance(&buf, inst); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkCodecWriteBinary measures binary encoding throughput.
func BenchmarkCodecWriteBinary(b *testing.B) {
	inst := benchCodecInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteInstanceBinary(&buf, inst); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkCodecReadText measures text decoding (the old FileStream parse
// path: strconv on every element).
func BenchmarkCodecReadText(b *testing.B) {
	inst := benchCodecInstance()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, inst); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadInstance(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecReadBinary measures binary decoding (varint deltas straight
// into the arena).
func BenchmarkCodecReadBinary(b *testing.B) {
	inst := benchCodecInstance()
	var buf bytes.Buffer
	if err := WriteInstanceBinary(&buf, inst); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadInstance(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamPass drives full passes over a file-backed stream, measuring
// the per-pass re-read cost the multi-pass solvers pay.
func benchStreamPass(b *testing.B, path string) {
	s, err := stream.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		items := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			items++
		}
		if err := s.Err(); err != nil {
			b.Fatal(err)
		}
		if items != s.Len() {
			b.Fatalf("pass read %d of %d sets", items, s.Len())
		}
	}
}

// BenchmarkStreamTextFilePass measures one full pass of the text stream.
func BenchmarkStreamTextFilePass(b *testing.B) {
	inst := benchCodecInstance()
	path := filepath.Join(b.TempDir(), "inst.sc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteInstance(f, inst); err != nil {
		b.Fatal(err)
	}
	f.Close()
	benchStreamPass(b, path)
}

// BenchmarkStreamBinaryFilePass measures one full pass of the binary
// stream (reusable buffer, no strconv — the allocation-free path).
func BenchmarkStreamBinaryFilePass(b *testing.B) {
	inst := benchCodecInstance()
	path := filepath.Join(b.TempDir(), "inst.scb")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteInstanceBinary(f, inst); err != nil {
		b.Fatal(err)
	}
	f.Close()
	benchStreamPass(b, path)
}

// BenchmarkGenerateZipf tracks the generator that used to allocate one
// map per set (now a shared stamp-array scratch).
func BenchmarkGenerateZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateZipf(uint64(i)+1, 1<<13, 1024, 1.4, 1<<10)
	}
}

// --- Sequential vs parallel benchmarks --------------------------------------

// benchWorkerCounts is the worker-count axis of the parallel benchmarks:
// 1 (the sequential reference), 2, 4, and GOMAXPROCS, deduplicated. On a
// machine with GOMAXPROCS >= 4 the guess-grid benchmark below should show
// >= 2x speedup of workers=4 over workers=1 (the grid runs ~20 independent
// guesses per pass).
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkSolveSetCoverGuessGrid measures the end-to-end solver on the full
// (1+ε)-geometric õpt guess grid — the paper's agnostic wrapper, the hot
// path WithParallelism accelerates — across worker counts.
func BenchmarkSolveSetCoverGuessGrid(b *testing.B) {
	inst, _ := GeneratePlanted(1, 8192, 1024, 6)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SolveSetCover(inst, WithAlpha(3), WithSeed(7),
					WithSampleConstant(2), WithParallelism(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveMaxCoverageParallel measures the streaming k-cover's greedy
// sub-solve, whose per-round candidate gain scan fans out across workers.
func BenchmarkSolveMaxCoverageParallel(b *testing.B) {
	inst := GenerateUniform(2, 8192, 512, 256, 1024)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SolveMaxCoverage(inst, 8, WithSeed(7),
					WithGreedySubsolver(), WithParallelism(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
