// Package streamcover is a Go implementation of multi-pass streaming set
// cover and maximum coverage, reproducing "Tight Space-Approximation
// Tradeoff for the Multi-Pass Streaming Set Cover Problem" (Sepehr Assadi,
// PODS 2017).
//
// The headline algorithm is Assadi's refinement of Har-Peled et al.'s
// streaming set cover (Algorithm 1 of the paper): for a chosen α ≥ 1 it
// computes an (α+ε)-approximate set cover in 2α+1 passes over the set
// stream while storing Õ(m·n^{1/α}/ε² + n/ε) words — provably the best
// possible space for any α-approximation, by the paper's matching
// Ω̃(m·n^{1/α}) lower bound.
//
// # Quick start
//
//	inst := streamcover.GenerateUniform(1, 10_000, 500, 50, 400)
//	res, err := streamcover.SolveSetCover(inst, streamcover.WithAlpha(3))
//	if err != nil { ... }
//	fmt.Println(res.Cover, res.Passes, res.SpaceWords)
//
// # Parallelism and determinism
//
// The õpt-guessing wrapper runs a (1+ε)-geometric grid of Algorithm 1
// instances over the same stream passes; the guesses are logically
// independent, so the solver fans them out to a worker pool (one stream
// read per pass, items broadcast read-only to the per-guess runs, offline
// sub-solves concurrent across guesses). WithParallelism(p) selects the
// worker count — the default is GOMAXPROCS, and p = 1 forces the sequential
// reference driver.
//
// Determinism contract: for a fixed seed, results are bit-identical at
// every parallelism level — the same cover, winning guess, pass count and
// space accounting. Every per-guess run owns an RNG split deterministically
// from the root seed, observes the full stream in arrival order, and shares
// no mutable state with its siblings, so the worker count changes wall-clock
// time and nothing else.
//
// The package also exposes streaming maximum k-coverage (SolveMaxCoverage),
// offline reference solvers (GreedySetCover, ExactSetCover), workload
// generators, instance (de)serialization, and generators for the paper's
// hard distributions D_SC and D_MC with ground truth (GenerateHardSetCover,
// GenerateHardMaxCoverage) — useful for benchmarking any streaming set
// cover implementation against the information-theoretic limits.
//
// Internals follow the paper closely; see DESIGN.md for the construction-
// by-construction mapping and EXPERIMENTS.md for the reproduced results.
package streamcover

import (
	"context"
	"fmt"
	"io"

	"streamcover/internal/core"
	"streamcover/internal/maxcover"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// Instance is a set cover / maximum coverage instance: m subsets of the
// universe [0, N), stored in a flat CSR arena (one []int32 element array
// plus offsets — see internal/setsystem's package docs for the layout).
// Construct with NewInstance or an InstanceBuilder; read sets through
// inst.Set(i), which returns a zero-copy view. Sets must be sorted and
// duplicate-free (call Normalize after assembling from unnormalized data).
type Instance = setsystem.Instance

// InstanceBuilder assembles an Instance set by set into a single arena.
type InstanceBuilder = setsystem.Builder

// NewInstance builds an instance over [0, n) from explicit sets, copying
// the elements into a fresh arena.
func NewInstance(n int, sets [][]int) *Instance { return setsystem.FromSets(n, sets) }

// NewInstanceBuilder returns a builder for incremental instance assembly
// over the universe [0, n).
func NewInstanceBuilder(n int) *InstanceBuilder { return setsystem.NewBuilder(n) }

// Order selects the stream arrival order.
type Order = stream.Order

// Arrival orders.
const (
	// Adversarial streams sets in instance order.
	Adversarial = stream.Adversarial
	// RandomOnce applies one random permutation, fixed across passes (the
	// paper's random arrival model).
	RandomOnce = stream.RandomOnce
	// RandomEachPass reshuffles before every pass.
	RandomEachPass = stream.RandomEachPass
)

// options collects solver settings; modified via Option values.
type options struct {
	alpha     int
	eps       float64
	order     Order
	seed      uint64
	greedySub bool
	sampleC   float64
	optHint   int
	workers   int
	ctx       context.Context
	plan      *ReplayPlan
	trace     TraceSink
}

func defaultOptions() options {
	return options{alpha: 2, eps: 0.5, order: Adversarial, seed: 1}
}

// Option configures SolveSetCover and SolveMaxCoverage.
type Option func(*options)

// WithAlpha sets the approximation parameter α ≥ 1: the solver runs 2α+1
// passes and stores Õ(m·n^{1/α}) words for an (α+ε)-approximation.
func WithAlpha(alpha int) Option { return func(o *options) { o.alpha = alpha } }

// WithEpsilon sets ε ∈ (0,1] (default 0.5): approximation slack and
// õpt-guess grid resolution.
func WithEpsilon(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithOrder sets the arrival order (default Adversarial).
func WithOrder(order Order) Option { return func(o *options) { o.order = order } }

// WithSeed makes the run deterministic for a given seed (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithGreedySubsolver switches the per-iteration offline sub-solve from
// exact (the paper's choice, needed for the (α+ε) guarantee) to greedy
// (faster, O(α·log n)-approximate).
func WithGreedySubsolver() Option { return func(o *options) { o.greedySub = true } }

// WithSampleConstant overrides the element-sampling constant (the paper's
// worst-case value is 16; smaller values use less space and remain safe on
// typical inputs — see experiment E10).
func WithSampleConstant(c float64) Option { return func(o *options) { o.sampleC = c } }

// WithOptimumHint fixes the õpt guess to k instead of running the full
// (1+ε)-geometric guess grid in parallel. Theorem 2's space bound is stated
// for a given õpt; the grid costs an extra Õ(1/ε) factor, which dominates
// at small n. If the hint is below the true optimum the solve fails with
// ErrInfeasible — retry with a larger hint (or without one).
func WithOptimumHint(k int) Option { return func(o *options) { o.optHint = k } }

// WithContext attaches a cancellation context to the solve: the drivers
// poll it at pass boundaries and within passes, and the solve returns
// ctx.Err() once it is cancelled or its deadline passes. Cancellation does
// not perturb determinism — a run either completes with the usual
// bit-identical result or aborts with the context's error. The default
// (nil) never cancels. This is what lets a serving layer (coverd) abort an
// in-flight job when the requesting client goes away.
func WithContext(ctx context.Context) Option { return func(o *options) { o.ctx = ctx } }

// WithParallelism sets the worker-pool size used to fan the per-guess runs
// out across cores (and, in SolveMaxCoverage's greedy sub-solve, the
// per-round candidate gain scan): p <= 0 selects GOMAXPROCS (the default),
// p == 1 forces the sequential reference driver.
// For a fixed seed the result — cover, guess, passes, space accounting — is
// bit-identical at every p; parallelism changes only wall-clock time. See
// the package documentation for the determinism contract.
func WithParallelism(p int) Option { return func(o *options) { o.workers = p } }

// ReplayPlan is a pass-replay recording of an instance: every set's
// elements (aliased into the instance's arena) plus its prebuilt word-mask
// run list, built once by BuildReplayPlan and served to every pass of a
// solve via WithReplayPlan. Replay is bit-identical to an honest solve
// under every arrival order and seed — the instance stream still draws the
// arrival permutation; only the per-item payload comes from the plan — and
// is a serving optimization only: plan bytes are never charged to the
// solve's reported space (coverd's registry accounts them against its
// memory budget instead). A plan is immutable and safe to share across
// concurrent solves of the same instance.
type ReplayPlan struct {
	plan *stream.Plan
}

// BuildReplayPlan records inst once and returns a plan usable by any
// number of subsequent solves over the same instance.
func BuildReplayPlan(inst *Instance) (*ReplayPlan, error) {
	p, err := stream.BuildPlan(stream.FromInstance(inst, Adversarial, nil), 0)
	if err != nil {
		return nil, err
	}
	return &ReplayPlan{plan: p}, nil
}

// Bytes returns the accounted size of the plan in bytes (run lists plus
// per-set table overhead; the elements alias the instance's own arena and
// are charged to the instance).
func (p *ReplayPlan) Bytes() int64 { return p.plan.Bytes() }

// WithReplayPlan serves every pass's item payloads from a prebuilt plan
// instead of re-deriving them (see ReplayPlan). The plan must have been
// built from the same instance passed to SolveSetCover; a mismatched plan
// fails the solve. nil is allowed and means no replay.
func WithReplayPlan(p *ReplayPlan) Option { return func(o *options) { o.plan = p } }

// PassSample is one pass of a traced solve: index, wall time, items
// observed, space at end of pass and peak so far, live guesses (-1 when the
// algorithm does not expose a guess grid), and whether the pass was served
// from a replay plan.
type PassSample = stream.PassSample

// TraceSink receives one PassSample per completed pass of a traced solve.
type TraceSink = stream.TraceSink

// PassTrace is the basic TraceSink: it collects every sample in order and
// is safe to read concurrently with the solve.
type PassTrace = stream.Trace

// WithPassTrace streams one PassSample per completed pass into sink —
// the paper's cost model (passes × space) made observable. Sampling
// happens only at pass boundaries, so tracing is O(passes) and never
// perturbs results: the cover, accounting, and RNG discipline are
// bit-identical with and without a sink. nil disables tracing (the
// default), which also skips the per-pass wall-clock reads.
func WithPassTrace(sink TraceSink) Option { return func(o *options) { o.trace = sink } }

// SetCoverResult reports a streaming set cover run.
type SetCoverResult struct {
	// Cover is the chosen set indices, sorted, covering the universe.
	Cover []int
	// Guess is the õpt guess that produced the winning cover.
	Guess int
	// Passes is the number of stream passes used.
	Passes int
	// SpaceWords is the peak working-set size in words (one stored set or
	// element ID = one word; the uncovered-element bitmaps count n words).
	SpaceWords int
}

// SolveSetCover runs the paper's Algorithm 1 (with the õpt guessing
// wrapper) over the instance as a multi-pass stream. It returns
// ErrInfeasible if the sets cannot cover the universe.
func SolveSetCover(inst *Instance, opts ...Option) (SetCoverResult, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg := core.Config{Alpha: o.alpha, Epsilon: o.eps, SampleC: o.sampleC, Workers: o.workers, Context: o.ctx, Trace: o.trace}
	if o.plan != nil {
		cfg.Plan = o.plan.plan
	}
	if o.greedySub {
		cfg.Subsolver = core.SubsolverGreedy
	}
	if o.optHint > 0 {
		cfg.OptGuesses = []int{o.optHint}
	}
	res, acc, err := core.Solve(inst, o.order, cfg, rng.New(o.seed))
	if err != nil {
		return SetCoverResult{}, err
	}
	return SetCoverResult{
		Cover:      res.Cover,
		Guess:      res.Guess,
		Passes:     acc.Passes,
		SpaceWords: acc.PeakSpace,
	}, nil
}

// MaxCoverageResult reports a streaming maximum coverage run.
type MaxCoverageResult struct {
	// Chosen is the selected set indices (at most k), sorted.
	Chosen []int
	// Covered is the number of universe elements the chosen sets cover.
	Covered int
	// Passes and SpaceWords account the run as in SetCoverResult.
	Passes     int
	SpaceWords int
}

// SolveMaxCoverage runs the element-sampling (1−ε)-approximate streaming
// maximum k-coverage algorithm (single pass). The sampled sub-instance is
// solved exactly by default, which is exponential in k in the worst case;
// pass WithGreedySubsolver for k beyond ~3 (costing the usual (1−1/e)
// greedy factor on the sample).
func SolveMaxCoverage(inst *Instance, k int, opts ...Option) (MaxCoverageResult, error) {
	o := defaultOptions()
	o.eps = 0.1
	for _, opt := range opts {
		opt(&o)
	}
	r := rng.New(o.seed)
	alg := maxcover.NewSampledKCover(inst.N, inst.M(), maxcover.SampledConfig{
		K: k, Eps: o.eps, Exact: !o.greedySub, SampleC: o.sampleC, Workers: o.workers,
		Context: o.ctx,
	}, r.Split("sample"))
	var orderRNG *rng.RNG
	if o.order != Adversarial {
		orderRNG = r.Split("order")
	}
	s := stream.FromInstance(inst, o.order, orderRNG)
	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	acc, err := stream.RunTraced(ctx, s, alg, 2, o.trace)
	if err != nil {
		return MaxCoverageResult{}, err
	}
	chosen, aerr := alg.Result()
	if aerr != nil {
		return MaxCoverageResult{}, aerr
	}
	return MaxCoverageResult{
		Chosen:     chosen,
		Covered:    inst.CoverageOf(chosen),
		Passes:     acc.Passes,
		SpaceWords: acc.PeakSpace,
	}, nil
}

// ErrInfeasible is returned when no set cover exists.
var ErrInfeasible = offline.ErrInfeasible

// GreedySetCover is the offline greedy (ln n)-approximation, for reference
// and verification.
func GreedySetCover(inst *Instance) ([]int, error) {
	return offline.Greedy(inst)
}

// GreedySetCoverContext is GreedySetCover with cooperative cancellation:
// the selection loop polls ctx periodically and returns ctx.Err() once it
// is done. A nil ctx never cancels.
func GreedySetCoverContext(ctx context.Context, inst *Instance) ([]int, error) {
	return offline.GreedyContext(ctx, inst)
}

// ExactSetCover computes an optimal cover by branch-and-bound. Exponential
// in the worst case; intended for small instances and verification.
func ExactSetCover(inst *Instance) ([]int, error) {
	return offline.Exact(inst, offline.ExactConfig{})
}

// ExactSetCoverContext is ExactSetCover with cooperative cancellation: the
// branch-and-bound polls ctx every few thousand search nodes and returns
// ctx.Err() once it is done — what lets a serving layer abort a
// worst-case-exponential exact job instead of blocking on it. A nil ctx
// never cancels.
func ExactSetCoverContext(ctx context.Context, inst *Instance) ([]int, error) {
	return offline.Exact(inst, offline.ExactConfig{Context: ctx})
}

// GreedyMaxCoverage is the offline greedy (1−1/e)-approximate maximum
// k-coverage: the chosen indices and their coverage.
func GreedyMaxCoverage(inst *Instance, k int) ([]int, int) {
	return offline.MaxCoverGreedy(inst, k)
}

// GenerateUniform returns m uniformly random sets over [0, n) with sizes in
// [minSize, maxSize].
func GenerateUniform(seed uint64, n, m, minSize, maxSize int) *Instance {
	return setsystem.Uniform(rng.New(seed), n, m, minSize, maxSize)
}

// GeneratePlanted returns an instance with a planted optimal cover of
// optSize sets (returned as the second value) among decoys.
func GeneratePlanted(seed uint64, n, m, optSize int) (*Instance, []int) {
	return setsystem.PlantedCover(rng.New(seed), n, m, optSize, 0.6)
}

// GenerateZipf returns an instance with Zipf-distributed set sizes and
// skewed element popularity (document/topic-style workloads).
func GenerateZipf(seed uint64, n, m int, exponent float64, maxSize int) *Instance {
	return setsystem.Zipf(rng.New(seed), n, m, exponent, maxSize)
}

// GenerateClustered returns an instance whose sets concentrate in topical
// clusters of the universe.
func GenerateClustered(seed uint64, n, m, clusters, setSize int) *Instance {
	return setsystem.Clustered(rng.New(seed), n, m, clusters, setSize, 0.1)
}

// ReadInstance decodes an instance from any on-disk codec, sniffing the
// leading magic bytes: the text format ("setcover n m" header, then one
// "id e1 e2 ..." line per set), the SCB1 binary format (magic + header +
// per-set lengths + varint-delta element payload), or the SCB2 mmap-native
// format (decoded onto the heap here; use MapInstanceFile for the
// zero-copy open).
func ReadInstance(r io.Reader) (*Instance, error) { return setsystem.ReadAuto(r) }

// WriteInstance encodes an instance in the text format.
func WriteInstance(w io.Writer, inst *Instance) error { return setsystem.Write(w, inst) }

// WriteInstanceBinary encodes an instance in the compact binary format
// (delta-varint element payload, typically several times smaller than the
// text format and decodable with no per-set allocations). The instance
// must be normalized. Multi-pass streaming consumers should prefer this
// format: cmd/covercli streams either format straight from disk.
func WriteInstanceBinary(w io.Writer, inst *Instance) error { return setsystem.WriteBinary(w, inst) }

// WriteInstanceSCB2 encodes an instance in the SCB2 mmap-native format:
// fixed-width little-endian CSR sections, 64-byte aligned, so the file can
// back an Instance directly through an mmap view with no decode pass. The
// instance must be normalized. Larger on disk than the SCB1 varint codec,
// but opening is O(pages touched) instead of O(decode).
func WriteInstanceSCB2(w io.Writer, inst *Instance) error { return setsystem.WriteSCB2(w, inst) }

// MapInstanceFile opens an SCB2 file as an instance backed directly by the
// mapped file pages (zero-copy; falls back to a heap decode on hosts
// without mmap support — check inst.Backing()). The caller must Unmap the
// instance when done with it.
func MapInstanceFile(path string) (*Instance, error) { return setsystem.Map(path) }

// Stats summarizes an instance.
type Stats = setsystem.Stats

// ComputeStats scans the instance once and returns summary statistics.
func ComputeStats(inst *Instance) Stats { return setsystem.ComputeStats(inst) }

// Validate checks instance invariants and reports the first violation.
func Validate(inst *Instance) error { return inst.Validate() }

// Normalize sorts every set and removes duplicate elements in place.
func Normalize(inst *Instance) { inst.SortSets() }

// String renders a one-line summary of a result.
func (r SetCoverResult) String() string {
	return fmt.Sprintf("cover=%d sets (guess %d), %d passes, %d words",
		len(r.Cover), r.Guess, r.Passes, r.SpaceWords)
}

// String renders a one-line summary of a result.
func (r MaxCoverageResult) String() string {
	return fmt.Sprintf("chose %d sets covering %d elements, %d passes, %d words",
		len(r.Chosen), r.Covered, r.Passes, r.SpaceWords)
}

// ProjectInstance returns the instance induced on a sub-universe: elements
// (sorted, unique) become [0, len(elements)) and every set is intersected
// with them. This is the element-sampling view used throughout the paper.
func ProjectInstance(inst *Instance, elements []int) *Instance {
	return setsystem.Project(inst, elements)
}

// MergeInstances concatenates set collections over a common universe n.
func MergeInstances(n int, ins ...*Instance) *Instance {
	return setsystem.Merge(n, ins...)
}
