package streamcover

import (
	"bytes"
	"testing"
)

func TestSolveSetCoverQuickstart(t *testing.T) {
	inst, planted := GeneratePlanted(1, 2048, 300, 4)
	res, err := SolveSetCover(inst, WithAlpha(2), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("public API returned a non-cover")
	}
	if res.Passes > 5 {
		t.Fatalf("passes = %d, want ≤ 2α+1 = 5", res.Passes)
	}
	if len(res.Cover) > 4*len(planted) {
		t.Fatalf("cover %d vs opt %d", len(res.Cover), len(planted))
	}
	if res.SpaceWords <= 0 || res.Guess < 1 {
		t.Fatalf("bad accounting: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSolveSetCoverInfeasible(t *testing.T) {
	inst := NewInstance(6, [][]int{{0, 1}, {2}})
	if _, err := SolveSetCover(inst); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveSetCoverOptions(t *testing.T) {
	inst, _ := GeneratePlanted(2, 1024, 150, 3)
	res, err := SolveSetCover(inst,
		WithAlpha(3), WithEpsilon(0.25), WithOrder(RandomOnce),
		WithSeed(9), WithGreedySubsolver(), WithSampleConstant(8))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("optioned solve returned a non-cover")
	}
}

func TestSolveMaxCoverage(t *testing.T) {
	inst := GenerateUniform(3, 2000, 100, 100, 400)
	res, err := SolveMaxCoverage(inst, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) == 0 || len(res.Chosen) > 3 {
		t.Fatalf("chose %d sets", len(res.Chosen))
	}
	if res.Covered != inst.CoverageOf(res.Chosen) {
		t.Fatal("Covered miscounted")
	}
	_, greedyCov := GreedyMaxCoverage(inst, 3)
	if float64(res.Covered) < 0.8*float64(greedyCov) {
		t.Fatalf("streaming coverage %d far below offline greedy %d", res.Covered, greedyCov)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestOfflineWrappers(t *testing.T) {
	inst, planted := GeneratePlanted(4, 256, 40, 3)
	g, err := GreedySetCover(inst)
	if err != nil || !inst.IsCover(g) {
		t.Fatalf("greedy: %v", err)
	}
	e, err := ExactSetCover(inst)
	if err != nil || !inst.IsCover(e) {
		t.Fatalf("exact: %v", err)
	}
	if len(e) > len(planted) {
		t.Fatalf("exact %d worse than planted %d", len(e), len(planted))
	}
}

func TestGenerators(t *testing.T) {
	for name, inst := range map[string]*Instance{
		"uniform":   GenerateUniform(1, 100, 20, 5, 30),
		"zipf":      GenerateZipf(2, 200, 30, 1.5, 40),
		"clustered": GenerateClustered(3, 300, 30, 6, 25),
	} {
		if err := Validate(inst); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRoundTripAndStats(t *testing.T) {
	inst := GenerateUniform(5, 64, 10, 1, 20)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(got)
	if st.N != inst.N || st.M != inst.M() {
		t.Fatalf("stats mismatch: %+v", st)
	}
}

func TestNormalize(t *testing.T) {
	inst := NewInstance(10, [][]int{{5, 2, 2}})
	Normalize(inst)
	if err := Validate(inst); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateHardSetCover(t *testing.T) {
	inst, info := GenerateHardSetCover(11, 1024, 8, 2, 1)
	if err := Validate(inst); err != nil {
		t.Fatal(err)
	}
	if info.Theta != 1 || info.IStar < 0 || info.T < 2 {
		t.Fatalf("info = %+v", info)
	}
	if !inst.IsCover([]int{info.IStar, info.M + info.IStar}) {
		t.Fatal("planted pair does not cover")
	}
	_, info0 := GenerateHardSetCover(12, 1024, 8, 2, 0)
	if info0.Theta != 0 || info0.IStar != -1 {
		t.Fatalf("θ=0 info = %+v", info0)
	}
}

func TestGenerateHardMaxCoverage(t *testing.T) {
	inst, info := GenerateHardMaxCoverage(13, 6, 0.125, 1)
	if err := Validate(inst); err != nil {
		t.Fatal(err)
	}
	cov := inst.CoverageOf([]int{info.IStar, info.M + info.IStar})
	if float64(cov) < info.Tau {
		t.Fatalf("starred pair covers %d < τ = %v", cov, info.Tau)
	}
}

func TestWithOptimumHint(t *testing.T) {
	inst, planted := GeneratePlanted(21, 2048, 300, 4)
	// Correct hint: feasible, and the single guess removes the grid's
	// space overhead.
	withHint, err := SolveSetCover(inst, WithAlpha(2), WithSeed(5),
		WithOptimumHint(len(planted)), WithSampleConstant(2))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(withHint.Cover) {
		t.Fatal("hinted solve returned a non-cover")
	}
	full, err := SolveSetCover(inst, WithAlpha(2), WithSeed(5), WithSampleConstant(2))
	if err != nil {
		t.Fatal(err)
	}
	if withHint.SpaceWords >= full.SpaceWords {
		t.Fatalf("hint did not reduce space: %d vs %d", withHint.SpaceWords, full.SpaceWords)
	}
	// Hopeless hint: the solver reports infeasible rather than lying.
	if _, err := SolveSetCover(inst, WithAlpha(2), WithSeed(5), WithOptimumHint(1)); err != ErrInfeasible {
		t.Fatalf("hint=1 err = %v, want ErrInfeasible", err)
	}
}

func TestProjectAndMergeWrappers(t *testing.T) {
	inst := GenerateUniform(31, 50, 10, 5, 20)
	sub := ProjectInstance(inst, []int{0, 10, 20, 30, 40})
	if sub.N != 5 || sub.M() != 10 {
		t.Fatalf("projection shape %d/%d", sub.N, sub.M())
	}
	merged := MergeInstances(50, inst, inst)
	if merged.M() != 20 {
		t.Fatalf("merge M = %d", merged.M())
	}
	if err := Validate(merged); err != nil {
		t.Fatal(err)
	}
}
