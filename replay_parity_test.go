package streamcover

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamcover/internal/core"
	"streamcover/internal/stream"
)

// Replay-parity suite: serving a solve from a pass-replay plan (prebuilt
// elements and run lists, no re-decode) must be bit-identical to honest
// re-streaming — cover, winning guess, pass count and space accounting —
// under every arrival order and worker count. The adversarial legs are
// additionally pinned against the recorded scalar goldens, so replay
// cannot drift even in lockstep with a drifting honest path.

// TestReplayPlanMatchesHonest crosses {adversarial, random-once,
// random-each-pass} with workers {1, 4, GOMAXPROCS} on both parity
// instances. RandomEachPass is the adversarial case for replay: the
// instance stream must keep drawing fresh permutations while payloads come
// from the plan.
func TestReplayPlanMatchesHonest(t *testing.T) {
	inst1, _ := GeneratePlanted(1, 2048, 256, 5)
	inst2, _ := GeneratePlanted(2, 4096, 512, 6)
	plan1, err := BuildReplayPlan(inst1)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := BuildReplayPlan(inst2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		inst *Instance
		plan *ReplayPlan
		opts []Option
	}{
		{"planted1", inst1, plan1, []Option{WithAlpha(2), WithSeed(7), WithSampleConstant(2)}},
		{"planted2", inst2, plan2, []Option{WithAlpha(3), WithSeed(11), WithSampleConstant(2)}},
	}
	orders := []struct {
		name  string
		order Order
	}{
		{"adversarial", Adversarial},
		{"random-once", RandomOnce},
		{"random-each-pass", RandomEachPass},
	}
	for _, ord := range orders {
		for _, w := range parityWorkerCounts() {
			t.Run(fmt.Sprintf("%s/workers=%d", ord.name, w), func(t *testing.T) {
				for _, tc := range cases {
					base := append([]Option{WithOrder(ord.order), WithParallelism(w)}, tc.opts...)
					honest, err := SolveSetCover(tc.inst, base...)
					if err != nil {
						t.Fatalf("%s honest: %v", tc.name, err)
					}
					replayed, err := SolveSetCover(tc.inst, append(base, WithReplayPlan(tc.plan))...)
					if err != nil {
						t.Fatalf("%s replayed: %v", tc.name, err)
					}
					if !reflect.DeepEqual(honest, replayed) {
						t.Errorf("%s: replay diverged from honest streaming:\nhonest  %+v\nreplayed %+v",
							tc.name, honest, replayed)
					}
				}
			})
		}
	}
}

// TestReplayPlanMatchesScalarGolden pins the replayed adversarial solves
// directly against the recorded scalar goldens (the same pins the honest
// path carries in masks_parity_test.go).
func TestReplayPlanMatchesScalarGolden(t *testing.T) {
	inst1, _ := GeneratePlanted(1, 2048, 256, 5)
	inst2, _ := GeneratePlanted(2, 4096, 512, 6)
	plan1, err := BuildReplayPlan(inst1)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := BuildReplayPlan(inst2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			r1, err := SolveSetCover(inst1, WithAlpha(2), WithSeed(7), WithSampleConstant(2),
				WithParallelism(w), WithReplayPlan(plan1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Cover, goldenScalar.sc1Cover) ||
				r1.Guess != goldenScalar.sc1Guess ||
				r1.Passes != goldenScalar.sc1Passes ||
				r1.SpaceWords != goldenScalar.sc1Space {
				t.Errorf("instance 1 replay diverged from scalar golden: got %+v, want cover=%v guess=%d passes=%d space=%d",
					r1, goldenScalar.sc1Cover, goldenScalar.sc1Guess, goldenScalar.sc1Passes, goldenScalar.sc1Space)
			}
			r2, err := SolveSetCover(inst2, WithAlpha(3), WithSeed(11), WithSampleConstant(2),
				WithParallelism(w), WithReplayPlan(plan2))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r2.Cover, goldenScalar.sc2Cover) ||
				r2.Guess != goldenScalar.sc2Guess ||
				r2.Passes != goldenScalar.sc2Passes ||
				r2.SpaceWords != goldenScalar.sc2Space {
				t.Errorf("instance 2 replay diverged from scalar golden: got %+v, want cover=%v guess=%d passes=%d space=%d",
					r2, goldenScalar.sc2Cover, goldenScalar.sc2Guess, goldenScalar.sc2Passes, goldenScalar.sc2Space)
			}
		})
	}
}

// TestPlanCacheFileSolveParity is covercli's -replay path end to end: a
// PlanCache over a binary file stream must solve bit-identically to honest
// re-decoding of the same file, including driver accounting, at every
// worker count.
func TestPlanCacheFileSolveParity(t *testing.T) {
	inst, _ := GeneratePlanted(1, 2048, 256, 5)
	path := filepath.Join(t.TempDir(), "parity.scb1")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceBinary(f, inst); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			cfg := core.Config{Alpha: 2, SampleC: 2, Workers: w}
			fs, err := stream.OpenBinaryFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close()
			honest, hacc, err := core.SolveStream(fs, cfg, core.SolveFileRNG(7))
			if err != nil {
				t.Fatal(err)
			}
			fs2, err := stream.OpenBinaryFile(path)
			if err != nil {
				t.Fatal(err)
			}
			pc := stream.NewPlanCache(fs2, 0)
			defer pc.Close()
			replayed, racc, err := core.SolveStream(pc, cfg, core.SolveFileRNG(7))
			if err != nil {
				t.Fatal(err)
			}
			if !pc.Ready() {
				t.Fatal("plan cache never became ready over the file stream")
			}
			if !reflect.DeepEqual(honest, replayed) || hacc != racc {
				t.Errorf("plan-cache file solve diverged from honest:\nhonest  %+v %+v\nreplayed %+v %+v",
					honest, hacc, replayed, racc)
			}
			// The adversarial file solve is the same computation the public
			// in-memory path pins against the scalar golden; keep the file
			// leg pinned too so both sides can't drift together.
			if !reflect.DeepEqual(replayed.Cover, goldenScalar.sc1Cover) ||
				replayed.Guess != goldenScalar.sc1Guess {
				t.Errorf("file replay diverged from scalar golden: got cover=%v guess=%d, want %v/%d",
					replayed.Cover, replayed.Guess, goldenScalar.sc1Cover, goldenScalar.sc1Guess)
			}
		})
	}
}
