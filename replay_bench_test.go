package streamcover

import (
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/core"
	"streamcover/internal/stream"
)

// Replay-plane benchmarks (make bench-json records them in
// BENCH_replay.json): a multi-pass solve over a binary file pays the
// varint decode once per pass; the plan cache pays it once per solve and
// serves later passes from an in-memory arena with prebuilt run lists.

// benchReplayInstance is sized so per-pass decode dominates the solve: a
// planted instance with a known optimum lets the benchmark pin the guess
// grid to a single õpt (Algorithm 1 proper, Theorem 2's statement), and
// the wide universe keeps the sampling rate p = C·õpt·ln(m)/n^{1-1/α}
// small so the per-iteration sub-solves stay cheap relative to re-reading
// ~10M elements per pass. α=3 below means 7 passes per solve.
func benchReplayInstance() (*Instance, int) {
	inst, planted := GeneratePlanted(1, 1<<16, 2048, 8)
	return inst, len(planted)
}

func writeBenchSCB1(b *testing.B, inst *Instance) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "replay.scb1")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteInstanceBinary(f, inst); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchSolveFile measures steady-state serving cost: the stream (and, on
// the replay leg, the plan cache) lives across solves, as in coverd, where
// the plan is built lazily on the first job and attached to the registry
// entry for every job after. The first iteration's recording pass is
// amortized over b.N like any warm-up.
func benchSolveFile(b *testing.B, replay bool) {
	inst, opt := benchReplayInstance()
	path := writeBenchSCB1(b, inst)
	cfg := core.Config{Alpha: 3, SampleC: 2, OptGuesses: []int{opt}}
	fs, err := stream.OpenBinaryFile(path)
	if err != nil {
		b.Fatal(err)
	}
	var src stream.Stream = fs
	if replay {
		pc := stream.NewPlanCache(fs, 0)
		defer pc.Close()
		src = pc
	} else {
		defer fs.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := core.SolveStream(src, cfg, core.SolveFileRNG(7))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("solve infeasible; benchmark workload drifted")
		}
	}
}

// BenchmarkSolveFileReplay compares multi-pass SCB1 file solves served
// from a plan cache (decode once, every later pass from memory) against
// honest re-decoding of every pass of every solve.
func BenchmarkSolveFileReplay(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchSolveFile(b, true) })
	b.Run("off", func(b *testing.B) { benchSolveFile(b, false) })
}

// BenchmarkPassOverhead isolates the per-pass stream cost the solver pays:
// one full drain of every item, honest (re-decode) vs replay (plan-backed
// views, runs prebuilt).
func BenchmarkPassOverhead(b *testing.B) {
	inst, _ := benchReplayInstance()
	path := writeBenchSCB1(b, inst)
	drain := func(b *testing.B, s stream.Stream) {
		s.Reset()
		items := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			items++
		}
		if err := stream.PassErr(s); err != nil {
			b.Fatal(err)
		}
		if items != s.Len() {
			b.Fatalf("pass read %d of %d sets", items, s.Len())
		}
	}
	b.Run("honest", func(b *testing.B) {
		fs, err := stream.OpenBinaryFile(path)
		if err != nil {
			b.Fatal(err)
		}
		defer fs.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			drain(b, fs)
		}
	})
	b.Run("replay", func(b *testing.B) {
		fs, err := stream.OpenBinaryFile(path)
		if err != nil {
			b.Fatal(err)
		}
		pc := stream.NewPlanCache(fs, 0)
		defer pc.Close()
		drain(b, pc) // recording pass: decode once, build the plan
		if !pc.Ready() {
			b.Fatal("plan cache not ready after the recording pass")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			drain(b, pc)
		}
	})
}
