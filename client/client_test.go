package client_test

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"streamcover"
	"streamcover/client"
	"streamcover/internal/registry"
	"streamcover/internal/service"
)

func newServer(t *testing.T) *client.Client {
	t.Helper()
	reg := registry.New(registry.Config{})
	sched := service.NewScheduler(reg, service.Config{Slots: 2})
	srv := httptest.NewServer(service.NewServer(reg, sched, 0))
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return client.New(srv.URL + "/") // trailing slash is tolerated
}

func TestClientEndToEnd(t *testing.T) {
	c := newServer(t)
	ctx := t.Context()

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %v / %+v", err, h)
	}

	inst, _ := streamcover.GeneratePlanted(9, 1024, 128, 4)
	up, err := c.UploadInstance(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Added || up.N != inst.N || up.M != inst.M() {
		t.Fatalf("upload: %+v", up)
	}
	again, err := c.UploadInstance(ctx, inst)
	if err != nil || again.Added || again.Hash != up.Hash {
		t.Fatalf("re-upload: %+v err=%v", again, err)
	}

	// Blocking solve matches the in-process result bit for bit.
	job, err := c.Solve(ctx, client.SolveRequest{Instance: up.Hash, Alpha: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != client.StatusDone {
		t.Fatalf("job %s (%s)", job.Status, job.Error)
	}
	want, err := streamcover.SolveSetCover(inst,
		streamcover.WithAlpha(2), streamcover.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job.Result.Cover, want.Cover) ||
		job.Result.Passes != want.Passes || job.Result.SpaceWords != want.SpaceWords {
		t.Fatalf("wire result %+v != local %+v", job.Result, want)
	}

	// Async submit + watch reaches the same terminal result (cache hit is
	// fine — that is the service contract).
	sub, err := c.Submit(ctx, client.SolveRequest{Instance: up.Hash, Alpha: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var updates int
	final, err := c.Watch(ctx, sub.ID, func(client.Job) { updates++ })
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.StatusDone || updates == 0 {
		t.Fatalf("watch: status=%s updates=%d", final.Status, updates)
	}

	// Job polling agrees with watch.
	polled, err := c.Job(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(polled.Result, final.Result) {
		t.Fatalf("poll/watch disagree: %+v vs %+v", polled.Result, final.Result)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheduler.Submitted < 2 || st.Registry.Instances != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientAPIErrors(t *testing.T) {
	c := newServer(t)
	ctx := t.Context()

	var apiErr *client.APIError
	if _, err := c.Solve(ctx, client.SolveRequest{Instance: "ffff"}); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown instance: %v", err)
	}
	if _, err := c.Job(ctx, "j404"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := c.Watch(ctx, "j404", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown watch: %v", err)
	}
	inst, _ := streamcover.GeneratePlanted(9, 64, 16, 2)
	up, err := c.UploadInstance(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, client.SolveRequest{Instance: up.Hash, Algo: "quantum"}); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("bad algo: %v", err)
	}
}
