// Package client is the Go client for coverd, streamcover's solve service,
// and the home of the service's wire types (shared with the server so the
// two cannot drift).
//
// A Client talks to a coverd instance over its JSON HTTP API: upload
// instances (deduplicated server-side by content hash), submit solve jobs,
// poll or stream job status, cancel jobs, and read service stats. The
// determinism contract carries over the wire: for a fixed seed, a solve
// through coverd returns bit-identical cover, passes and space to the
// corresponding in-process streamcover.Solve* call.
//
//	c := client.New("http://localhost:8650")
//	up, _ := c.UploadInstance(ctx, inst)
//	job, _ := c.Solve(ctx, client.SolveRequest{Instance: up.Hash, Alpha: 3, Seed: 42})
//	fmt.Println(job.Result.Cover)
package client

import "time"

// Algos lists the solver names accepted by SolveRequest.Algo ("alg1" is
// accepted as an alias for "setcover").
var Algos = []string{"setcover", "maxcover", "greedy", "exact", "progressive", "storeall"}

// Orders lists the arrival orders accepted by SolveRequest.Order ("random"
// is accepted as an alias for "random-once").
var Orders = []string{"adversarial", "random-once", "random-each-pass"}

// SolveRequest is the body of POST /v1/solve: an instance named by content
// hash plus the full option surface of the public Solve* API. Zero-valued
// fields take the same defaults as the corresponding With* options —
// except Seed, which passes through verbatim (0 is a legal seed; an
// in-process call that omits WithSeed uses 1, so name the seed explicitly
// when cross-checking against a local solve).
type SolveRequest struct {
	// Instance is the content hash returned by POST /v1/instances.
	Instance string `json:"instance"`
	// Algo selects the solver: setcover (Algorithm 1 with the õpt-guess
	// grid; the default), maxcover (sampled streaming max k-coverage),
	// greedy/exact (offline references), progressive/storeall (streaming
	// baselines).
	Algo string `json:"algo,omitempty"`
	// Alpha, Epsilon, Seed, Order, GreedySubsolver, SampleConstant and
	// OptimumHint mirror WithAlpha, WithEpsilon, WithSeed, WithOrder,
	// WithGreedySubsolver, WithSampleConstant and WithOptimumHint.
	Alpha           int     `json:"alpha,omitempty"`
	Epsilon         float64 `json:"epsilon,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	Order           string  `json:"order,omitempty"`
	GreedySubsolver bool    `json:"greedy_subsolver,omitempty"`
	SampleConstant  float64 `json:"sample_constant,omitempty"`
	OptimumHint     int     `json:"opt_hint,omitempty"`
	// K is the coverage budget (maxcover only; required there).
	K int `json:"k,omitempty"`
	// Lambda is the threshold decay (progressive only; default 2).
	Lambda float64 `json:"lambda,omitempty"`
	// Workers caps this job's guess-grid parallelism below the server's
	// per-job budget. It cannot change the result (the library's
	// determinism contract) and is excluded from the result-cache key.
	Workers int `json:"workers,omitempty"`
	// NoCache forces a fresh solve even when a cached result exists; the
	// fresh result still populates the cache.
	NoCache bool `json:"no_cache,omitempty"`
	// Wait makes POST /v1/solve block until the job finishes; if the
	// waiting client disconnects, the server cancels the job.
	Wait bool `json:"wait,omitempty"`
}

// SolveResult is the wire form of a finished solve, covering every Algo
// shape (setcover-style cover + accounting, maxcover's covered count).
type SolveResult struct {
	// Cover is the chosen set IDs, sorted.
	Cover []int `json:"cover"`
	// Covered is the number of covered universe elements (maxcover only;
	// a full cover covers n by definition).
	Covered int `json:"covered,omitempty"`
	// Guess is the winning õpt guess (setcover only).
	Guess int `json:"guess,omitempty"`
	// Passes and SpaceWords are the streaming accounting; 0 passes means an
	// offline reference solve.
	Passes     int `json:"passes"`
	SpaceWords int `json:"space_words"`
}

// JobStatus is the lifecycle state of a job: queued → running → one of
// done / failed / canceled.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// PassTrace is one pass of a job's solve timeline: the paper's cost model
// (passes × space) as observed by the driver. The trace grows while the job
// runs — a ?watch=1 stream re-emits the job snapshot as passes complete.
type PassTrace struct {
	// Pass is the 0-based pass index.
	Pass int `json:"pass"`
	// DurationSeconds is the wall time of the pass.
	DurationSeconds float64 `json:"duration_seconds"`
	// Items is the number of sets observed during the pass.
	Items int `json:"items"`
	// SpaceWords is the algorithm footprint at end of pass; PeakSpaceWords
	// the peak over the run so far.
	SpaceWords     int `json:"space_words"`
	PeakSpaceWords int `json:"peak_space_words"`
	// Live is the number of õpt guesses still running after the pass, or -1
	// when the algorithm has no guess grid.
	Live int `json:"live"`
	// Replayed reports that the pass was served from a recorded replay plan
	// rather than an honest re-stream.
	Replayed bool `json:"replayed,omitempty"`
}

// SolveTrace is the observability record of one solve: the per-pass
// timeline plus the grid-kernel body the solve dispatched to.
type SolveTrace struct {
	// Kernel is the bitset grid kernel body ("avx2", "scalar") the server
	// dispatched for this job's solve.
	Kernel string `json:"kernel,omitempty"`
	// Passes is the per-pass timeline, in pass order.
	Passes []PassTrace `json:"passes"`
}

// Job is a point-in-time snapshot of a solve job, as served by
// GET /v1/jobs/{id}.
type Job struct {
	ID       string       `json:"id"`
	Status   JobStatus    `json:"status"`
	Request  SolveRequest `json:"request"`
	Result   *SolveResult `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
	CacheHit bool         `json:"cache_hit,omitempty"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	// Trace is the per-pass solve timeline, present once the job has begun
	// streaming passes (never for cache hits or offline reference solves).
	Trace *SolveTrace `json:"trace,omitempty"`
	// TraceID is the W3C trace identity of the request that submitted the
	// job (32 lowercase hex digits) — the key that ties this job record to
	// the server's access log, lifecycle logs and the recorded span tree
	// (GET /v1/traces/{id}). Empty when the server runs without tracing.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceEvent is a point-in-time annotation within a recorded span. coverd
// emits one per completed solve pass, carrying the paper's per-pass cost
// model (pass index, items, space words, replayed).
type TraceEvent struct {
	Name  string         `json:"name"`
	Time  time.Time      `json:"time"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSpan is one node of a recorded span tree: a timed operation with
// attributes, events, and nested child spans.
type TraceSpan struct {
	SpanID string `json:"span_id"`
	// Parent is the parent span's ID; for the server's root span of a
	// client-propagated trace it names the client's span (which has no
	// record server-side).
	Parent          string         `json:"parent_span_id,omitempty"`
	Name            string         `json:"name"`
	Start           time.Time      `json:"start"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Events          []TraceEvent   `json:"events,omitempty"`
	Children        []TraceSpan    `json:"children,omitempty"`
}

// RecordedTrace is one completed request trace as retained by the server's
// flight recorder, served by GET /v1/traces/{id} and GET /debug/traces.
type RecordedTrace struct {
	TraceID string `json:"trace_id"`
	// Spans holds the trace's root spans with children nested (normally
	// one root: the server's per-request span).
	Spans []TraceSpan `json:"spans"`
	// DroppedSpans counts spans elided by the recorder's per-trace bound.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// TracesResponse is the body of GET /debug/traces.
type TracesResponse struct {
	Traces []RecordedTrace `json:"traces"`
}

// DebugBundle is the body of GET /debug/bundle: everything needed for a
// postmortem in one JSON blob.
type DebugBundle struct {
	Stats StatsResponse `json:"stats"`
	// Metrics is the Prometheus text exposition at bundle time (empty when
	// the server runs without metrics).
	Metrics string `json:"metrics,omitempty"`
	// Traces is the flight recorder's retained traces, newest first.
	Traces []RecordedTrace `json:"traces"`
}

// UploadResponse is the body of a successful POST /v1/instances.
type UploadResponse struct {
	// Hash is the instance's content identity; solve requests name it.
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Added is false when the upload deduplicated against a resident twin.
	Added bool  `json:"added"`
	Bytes int64 `json:"bytes"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the body of GET /v1/healthz. Status is "ok" when the
// service is ready, "degraded" when it is alive but likely to shed load
// (HTTP 503) — Reasons then names the saturated resources so a balancer
// can route around the instance before requests start failing with 429/507.
type HealthResponse struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Reasons       []string `json:"reasons,omitempty"`
}

// SchedulerStats is the scheduler's cumulative accounting.
type SchedulerStats struct {
	Submitted   uint64 `json:"submitted"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheSize   int    `json:"cache_size"`
	Running     int    `json:"running"`
	Queued      int    `json:"queued"`
	PeakRunning int    `json:"peak_running"`
	// PeakSpaceWords is the largest SpaceWords any completed job reported —
	// the serving-layer view of the paper's space accounting.
	PeakSpaceWords int `json:"peak_space_words"`
	Slots          int `json:"slots"`
	JobWorkers     int `json:"job_workers"`
	QueueDepth     int `json:"queue_depth"`
}

// RegistryStats summarizes the resident-instance store. ResidentBytes is
// what the budget bounds; it splits into HeapBytes (decoded instances
// owned by the Go heap), MappedBytes (SCB2 files mmap'd zero-copy,
// resident in page cache rather than heap), and PlanBytes (pass-replay
// plans built lazily on first solve — prebuilt per-set run lists served to
// every later pass — charged to the budget like instance bytes and dropped
// with their instance on eviction).
type RegistryStats struct {
	Instances     int    `json:"instances"`
	ResidentBytes int64  `json:"resident_bytes"`
	HeapBytes     int64  `json:"heap_bytes"`
	MappedBytes   int64  `json:"mapped_bytes"`
	PlanBytes     int64  `json:"plan_bytes"`
	BudgetBytes   int64  `json:"budget_bytes"`
	Evictions     uint64 `json:"evictions"`
	// DedupHits counts uploads that deduplicated against a resident twin.
	DedupHits uint64 `json:"dedup_hits,omitempty"`
	// Pinned is the number of instances currently pinned by running solves.
	Pinned int `json:"pinned,omitempty"`
}

// InstanceInfo describes one resident instance.
type InstanceInfo struct {
	Hash  string `json:"hash"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Bytes int64  `json:"bytes"`
	// PlanBytes is the size of the attached pass-replay plan, 0 when none
	// has been built yet (plans are built lazily on first solve).
	PlanBytes int64 `json:"plan_bytes,omitempty"`
	// Backing is "heap" or "mapped" (an mmap'd SCB2 file).
	Backing string `json:"backing"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Scheduler SchedulerStats `json:"scheduler"`
	Registry  RegistryStats  `json:"registry"`
	Instances []InstanceInfo `json:"instances"`
}
