package client

import "testing"

// TestAPIErrorDecode pins the shared non-2xx decode helper both do and
// Watch route through: service-shaped JSON bodies yield the error field,
// anything else (proxy text, truncated JSON, empty bodies) yields the
// trimmed raw body.
func TestAPIErrorDecode(t *testing.T) {
	cases := []struct {
		name    string
		status  int
		body    string
		wantMsg string
	}{
		{"service json", 404, `{"error":"service: unknown job id"}`, "service: unknown job id"},
		{"json empty error field", 500, `{"error":""}`, `{"error":""}`},
		{"json other shape", 400, `{"message":"nope"}`, `{"message":"nope"}`},
		{"plain text", 502, "bad gateway\n", "bad gateway"},
		{"truncated json", 500, `{"error":"cut`, `{"error":"cut`},
		{"empty body", 429, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := apiError(tc.status, []byte(tc.body))
			if err.StatusCode != tc.status {
				t.Fatalf("StatusCode = %d, want %d", err.StatusCode, tc.status)
			}
			if err.Message != tc.wantMsg {
				t.Fatalf("Message = %q, want %q", err.Message, tc.wantMsg)
			}
		})
	}
}
