package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"streamcover"
)

// APIError is a non-2xx response from the service, carrying the HTTP
// status code and the server's error message.
type APIError struct {
	StatusCode int
	Message    string
}

// Error formats the status code and server message.
func (e *APIError) Error() string {
	return fmt.Sprintf("coverd: HTTP %d: %s", e.StatusCode, e.Message)
}

// Client talks to one coverd server. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8650"); a trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// traceKey is the context key WithTraceContext stores the traceparent
// header value under.
type traceKey struct{}

// WithTraceContext returns a context that makes every request issued with
// it carry the given W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex span-id>-01"). The server adopts the
// trace ID as the request's identity: it appears in the access log, the
// job record (Job.TraceID) and the recorded span tree, so one ID follows
// the call from client code to server postmortem. An empty value clears
// propagation.
func WithTraceContext(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, traceKey{}, traceparent)
}

// TraceContext returns the traceparent value installed by WithTraceContext,
// or "" when the context carries none.
func TraceContext(ctx context.Context) string {
	tp, _ := ctx.Value(traceKey{}).(string)
	return tp
}

// inject adds the propagation header when the context carries a trace.
func inject(ctx context.Context, req *http.Request) {
	if tp := TraceContext(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil). Non-2xx responses decode into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	inject(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("coverd: undecodable response %q: %w", raw, err)
	}
	return nil
}

// apiError turns a non-2xx response body into an *APIError: the message is
// the body's {"error": ...} field when it parses as the service's error
// shape, and the trimmed raw body otherwise (proxies and middleware answer
// with plain text).
func apiError(statusCode int, body []byte) *APIError {
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{StatusCode: statusCode, Message: e.Error}
	}
	return &APIError{StatusCode: statusCode, Message: strings.TrimSpace(string(body))}
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	buf, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(buf), "application/json", out)
}

// Health checks GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, "", &h)
	return h, err
}

// Stats reads GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var s StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, "", &s)
	return s, err
}

// UploadInstance uploads an in-memory instance (binary codec on the wire)
// and returns its content hash, deduplicated server-side.
func (c *Client) UploadInstance(ctx context.Context, inst *streamcover.Instance) (UploadResponse, error) {
	var buf bytes.Buffer
	if err := streamcover.WriteInstanceBinary(&buf, inst); err != nil {
		return UploadResponse{}, err
	}
	return c.UploadReader(ctx, &buf)
}

// UploadReader uploads an instance already encoded in either on-disk codec
// (the server sniffs the format) — e.g. an opened instance file.
func (c *Client) UploadReader(ctx context.Context, r io.Reader) (UploadResponse, error) {
	var up UploadResponse
	err := c.do(ctx, http.MethodPost, "/v1/instances", r, "application/octet-stream", &up)
	return up, err
}

// Submit enqueues a solve job without waiting and returns its first
// snapshot (queued, or already done on a server-side cache hit).
func (c *Client) Submit(ctx context.Context, req SolveRequest) (Job, error) {
	req.Wait = false
	var j Job
	err := c.postJSON(ctx, "/v1/solve", req, &j)
	return j, err
}

// Solve submits a job and blocks until it finishes, returning the terminal
// snapshot. Cancelling ctx hangs up the request, which makes the server
// cancel the job.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (Job, error) {
	req.Wait = true
	var j Job
	err := c.postJSON(ctx, "/v1/solve", req, &j)
	return j, err
}

// Job fetches one snapshot of a job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, "", &j)
	return j, err
}

// Trace fetches the recorded span tree for a trace ID (32 lowercase hex
// digits, as found in Job.TraceID or an X-Request-Id header) from
// GET /v1/traces/{id}. It fails with an *APIError (404) when the server
// runs without tracing, the trace is still in flight, or the flight
// recorder has already evicted it.
func (c *Client) Trace(ctx context.Context, traceID string) (RecordedTrace, error) {
	var rt RecordedTrace
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+traceID, nil, "", &rt)
	return rt, err
}

// Cancel requests cancellation of a queued or running job and returns the
// job's snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "", &j)
	return j, err
}

// Watch tails the job's NDJSON status stream (GET /v1/jobs/{id}?watch=1),
// invoking onUpdate for every snapshot the server emits, and returns the
// terminal snapshot. onUpdate may be nil.
func (c *Client) Watch(ctx context.Context, id string, onUpdate func(Job)) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"?watch=1", nil)
	if err != nil {
		return Job{}, err
	}
	inject(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return Job{}, apiError(resp.StatusCode, raw)
	}
	var last Job
	seen := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		var j Job
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			return last, fmt.Errorf("coverd: bad watch line %q: %w", sc.Text(), err)
		}
		last, seen = j, true
		if onUpdate != nil {
			onUpdate(j)
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	if !seen {
		return last, fmt.Errorf("coverd: watch stream for job %s ended without a snapshot", id)
	}
	if !last.Status.Terminal() {
		return last, fmt.Errorf("coverd: watch stream for job %s ended at non-terminal status %s", id, last.Status)
	}
	return last, nil
}
