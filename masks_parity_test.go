package streamcover

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"streamcover/internal/baselines"
	"streamcover/internal/maxcover"
	"streamcover/internal/stream"
)

// Golden results recorded from the scalar (pre-run-kernel) observe plane at
// commit "CSR data plane", workers=1. The word-parallel run kernels must
// reproduce them bit-for-bit — covers, winning guess, pass counts and space
// accounting — at every worker count: the kernels change how bits are
// probed, never which bits, and the drivers' run-list sharing must not
// perturb RNG consumption or accounting.
var goldenScalar = struct {
	sc1Cover                      []int
	sc1Guess, sc1Passes, sc1Space int
	sc2Cover                      []int
	sc2Guess, sc2Passes, sc2Space int
	sieveChosen                   []int
	sieveCovered, sievePasses     int
	sieveSpace                    int
	pgCover                       []int
	pgFeasible                    bool
	pgPasses, pgSpace             int
	exactCover                    []int
}{
	sc1Cover: []int{54, 64, 85, 210, 229},
	sc1Guess: 6, sc1Passes: 3, sc1Space: 339972,
	sc2Cover: []int{85, 162, 226, 306, 386, 387},
	sc2Guess: 6, sc2Passes: 3, sc2Space: 402258,
	sieveChosen:  []int{5, 7, 8, 37},
	sieveCovered: 270, sievePasses: 1, sieveSpace: 12374,
	pgCover:    []int{4, 5, 6, 7, 8, 9, 11, 13, 14, 18, 19, 23, 25, 30, 37, 40, 41, 44, 51, 54, 65, 109},
	pgFeasible: true, pgPasses: 8, pgSpace: 534,
	exactCover: []int{17, 4, 47, 2, 9, 14, 24, 35, 10, 13},
}

// parityWorkerCounts is the worker axis of the scalar-parity tests:
// sequential reference, a fixed small pool, and GOMAXPROCS.
func parityWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestGuessGridMatchesScalarGolden solves the full (1+ε)-geometric guess
// grid at workers 1/4/GOMAXPROCS and checks each run against the recorded
// pre-change scalar results: identical covers and identical accounting.
func TestGuessGridMatchesScalarGolden(t *testing.T) {
	inst1, _ := GeneratePlanted(1, 2048, 256, 5)
	inst2, _ := GeneratePlanted(2, 4096, 512, 6)
	for _, w := range parityWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			r1, err := SolveSetCover(inst1, WithAlpha(2), WithSeed(7), WithSampleConstant(2), WithParallelism(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Cover, goldenScalar.sc1Cover) ||
				r1.Guess != goldenScalar.sc1Guess ||
				r1.Passes != goldenScalar.sc1Passes ||
				r1.SpaceWords != goldenScalar.sc1Space {
				t.Errorf("instance 1 diverged from scalar golden: got %+v, want cover=%v guess=%d passes=%d space=%d",
					r1, goldenScalar.sc1Cover, goldenScalar.sc1Guess, goldenScalar.sc1Passes, goldenScalar.sc1Space)
			}
			r2, err := SolveSetCover(inst2, WithAlpha(3), WithSeed(11), WithSampleConstant(2), WithParallelism(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r2.Cover, goldenScalar.sc2Cover) ||
				r2.Guess != goldenScalar.sc2Guess ||
				r2.Passes != goldenScalar.sc2Passes ||
				r2.SpaceWords != goldenScalar.sc2Space {
				t.Errorf("instance 2 diverged from scalar golden: got %+v, want cover=%v guess=%d passes=%d space=%d",
					r2, goldenScalar.sc2Cover, goldenScalar.sc2Guess, goldenScalar.sc2Passes, goldenScalar.sc2Space)
			}
		})
	}
}

// TestSieveMatchesScalarGolden drives the sieve grid (every guess probing
// the same item, the run-sharing workload) and checks the scalar golden.
func TestSieveMatchesScalarGolden(t *testing.T) {
	inst := GenerateUniform(5, 512, 128, 32, 96)
	sv := maxcover.NewSieve(inst.N, 4, 0.1)
	st := stream.FromInstance(inst, stream.Adversarial, nil)
	acc, err := stream.Run(st, sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	chosen, covered := sv.Result()
	if !reflect.DeepEqual(chosen, goldenScalar.sieveChosen) || covered != goldenScalar.sieveCovered ||
		acc.Passes != goldenScalar.sievePasses || acc.PeakSpace != goldenScalar.sieveSpace {
		t.Errorf("sieve diverged from scalar golden: chosen=%v covered=%d passes=%d space=%d, want %v/%d/%d/%d",
			chosen, covered, acc.Passes, acc.PeakSpace,
			goldenScalar.sieveChosen, goldenScalar.sieveCovered, goldenScalar.sievePasses, goldenScalar.sieveSpace)
	}
}

// TestProgressiveGreedyMatchesScalarGolden checks the multi-pass threshold
// baseline against the scalar golden.
func TestProgressiveGreedyMatchesScalarGolden(t *testing.T) {
	inst := GenerateUniform(5, 512, 128, 32, 96)
	pg := baselines.NewProgressiveGreedy(inst.N, 2)
	st := stream.FromInstance(inst, stream.Adversarial, nil)
	acc, err := stream.Run(st, pg, pg.MaxPasses())
	if err != nil {
		t.Fatal(err)
	}
	cover, feasible := pg.Result()
	if !reflect.DeepEqual(cover, goldenScalar.pgCover) || feasible != goldenScalar.pgFeasible ||
		acc.Passes != goldenScalar.pgPasses || acc.PeakSpace != goldenScalar.pgSpace {
		t.Errorf("progressive greedy diverged from scalar golden: cover=%v feasible=%v passes=%d space=%d",
			cover, feasible, acc.Passes, acc.PeakSpace)
	}
}

// TestExactSearchMatchesScalarGolden checks that the scratch-pool dfs
// explores the same tree as the clone-per-node scalar search: same optimum
// cover, in the same discovery order (greedy here needs 11 sets, so the
// branch-and-bound actually searches).
func TestExactSearchMatchesScalarGolden(t *testing.T) {
	inst := GenerateUniform(9, 64, 48, 6, 14)
	g, err := GreedySetCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 11 {
		t.Fatalf("workload drifted: greedy found %d sets, want 11 (dfs must be exercised)", len(g))
	}
	ex, err := ExactSetCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex, goldenScalar.exactCover) {
		t.Errorf("exact search diverged from scalar golden: got %v want %v", ex, goldenScalar.exactCover)
	}
}
