// Command tradeoff runs the reproduction experiments (E1–E12 in DESIGN.md)
// and prints their tables; EXPERIMENTS.md is generated from its output.
//
// Usage:
//
//	tradeoff -exp all            # run everything (slow, full scale)
//	tradeoff -exp E1,E3 -quick   # selected experiments at test scale
//	tradeoff -exp E2 -format csv # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamcover/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
		seed    = flag.Uint64("seed", 20170601, "random seed (tables are deterministic per seed)")
		quick   = flag.Bool("quick", false, "reduced sizes and trial counts")
		format  = flag.String("format", "md", "output format: md or csv")
		workers = flag.Int("workers", 0, "guess-grid worker goroutines (0 = GOMAXPROCS, 1 = sequential); tables are identical at every value")
	)
	flag.Parse()

	ids := experiments.IDs()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tradeoff: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		default:
			fmt.Println(table.Markdown())
		}
		fmt.Fprintf(os.Stderr, "tradeoff: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
}
