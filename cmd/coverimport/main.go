// Command coverimport converts public real-world dataset formats into
// streamcover instance files, so the solvers (and coverd) can run the
// empirical workloads of the streaming set cover literature instead of
// only synthetic generators.
//
// Supported source formats (see internal/dataset for the reductions):
//
//	snap    SNAP edge list — vertex cover as set cover
//	fimi    FIMI transaction itemsets — cover all items with few transactions
//	dimacs  DIMACS graph — vertex cover as set cover
//
// Usage:
//
//	coverimport -format snap   -in web-graph.txt  -out web.scb2
//	coverimport -format fimi   -in retail.dat     -out retail.scb2
//	coverimport -format dimacs -in graph.col      -out graph.scb  -to scb1
//	coverimport -format snap   -in edges.txt                      # scb2 to stdout
//
// The default output format is scb2, the mmap-native codec, so an imported
// dataset opens zero-copy everywhere (covercli -in, coverd -load). The
// import summary goes to stderr, keeping stdout clean for piped output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamcover/internal/dataset"
	"streamcover/internal/setsystem"
)

func main() {
	var (
		format = flag.String("format", "", "source format: snap, fimi, dimacs (required)")
		in     = flag.String("in", "", "input file (empty or - reads stdin)")
		out    = flag.String("out", "", "output file (empty writes stdout)")
		to     = flag.String("to", "scb2", "output codec: scb2 (mmap-native), scb1 (compact varint), text")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "coverimport: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *format == "" {
		fmt.Fprintln(os.Stderr, "coverimport: -format is required (snap, fimi, dimacs)")
		os.Exit(2)
	}
	f, err := dataset.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverimport: %v\n", err)
		os.Exit(2)
	}
	encode := encoderFor(*to)
	if encode == nil {
		fmt.Fprintf(os.Stderr, "coverimport: unknown -to %q (valid: scb2, scb1, text)\n", *to)
		os.Exit(2)
	}

	var src io.Reader = os.Stdin
	if *in != "" && *in != "-" {
		file, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		src = file
	}
	inst, meta, err := dataset.Import(src, f)
	if err != nil {
		fatal(err)
	}

	dst := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		dst = file
	}
	if err := encode(dst, inst); err != nil {
		fatal(err)
	}
	if dst != os.Stdout {
		if err := dst.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "coverimport: %s (%s)\n", meta.Summary(), *to)
}

func encoderFor(to string) func(io.Writer, *setsystem.Instance) error {
	switch to {
	case "scb2":
		return setsystem.WriteSCB2
	case "scb1":
		return setsystem.WriteBinary
	case "text":
		return setsystem.Write
	default:
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "coverimport: %v\n", err)
	os.Exit(1)
}
