// Command commsim runs the two-party communication simulations behind the
// paper's lower bounds: the streaming→communication compiler of Theorem 1,
// and the Lemma 3.4 / Lemma 4.5 reduction protocols.
//
// Usage:
//
//	commsim -mode streaming -n 4096 -m 2048       # bits vs α, vs full exchange
//	commsim -mode disj -trials 20                 # π_Disj from a set cover oracle
//	commsim -mode ghd -trials 20                  # π_GHD from a max coverage oracle
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"streamcover/internal/comm"
	"streamcover/internal/core"
	"streamcover/internal/hardinst"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func main() {
	var (
		mode   = flag.String("mode", "streaming", "streaming, disj, or ghd")
		n      = flag.Int("n", 4096, "universe size (streaming mode)")
		m      = flag.Int("m", 2048, "number of sets / pairs")
		trials = flag.Int("trials", 20, "trials (disj/ghd modes)")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch *mode {
	case "streaming":
		streamingMode(*n, *m, *seed)
	case "setcover":
		setCoverMode(*trials, *seed)
	case "disj":
		disjMode(*trials, *seed)
	case "ghd":
		ghdMode(*trials, *seed)
	default:
		fmt.Fprintf(os.Stderr, "commsim: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
}

// setCoverMode sweeps the per-pair sample size of the two-party D_SC
// protocol and reports bits vs success — the communication-layer view of
// Theorem 3's Ω̃(m·n^{1/α}) bound.
func setCoverMode(trials int, seed uint64) {
	p := hardinst.SCParams{N: 4096, M: 32, Alpha: 2}
	t := p.BlockParam()
	r := rng.New(seed)
	fmt.Printf("two-party D_SC: n=%d m=%d pairs, t=%d (bound scale m·t = %d)\n",
		p.EffectiveN(), p.M, t, p.M*t)
	fmt.Println("perPair | mean bits | success")
	for _, perPair := range []int{1, t, 4 * t, 16 * t} {
		correct, bits := 0, 0
		for i := 0; i < trials; i++ {
			theta := i % 2
			sc := hardinst.SampleSetCover(p, theta, r.Split(fmt.Sprintf("i%d-%d", perPair, i)))
			var tr comm.Transcript
			got := (comm.SampledSetCover{PerPair: perPair}).Run(
				sc, sc.CanonicalPartition(), r.Split(fmt.Sprintf("a%d-%d", perPair, i)), &tr)
			if got == theta {
				correct++
			}
			bits += tr.Bits
		}
		fmt.Printf("%7d | %9d | %d/%d\n", perPair, bits/trials, correct, trials)
	}
}

func streamingMode(n, m int, seed uint64) {
	r := rng.New(seed)
	inst, planted := setsystem.PlantedCover(r.Split("inst"), n, m, 2, 0.6)
	owner := make([]bool, inst.M())
	for i := range owner {
		owner[i] = r.Split(fmt.Sprint(i)).Bernoulli(0.5)
	}
	wordBits := int(math.Ceil(math.Log2(float64(n))))
	full := comm.InstanceBits(inst)
	fmt.Printf("two-party set cover: n=%d m=%d, full exchange = %d bits\n", n, m, full)
	fmt.Println("alpha | passes | bits | bits/full")
	for alpha := 1; alpha <= 5; alpha++ {
		run := core.NewRun(inst.N, inst.M(), len(planted),
			core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 1}, r.Split(fmt.Sprintf("a%d", alpha)))
		res, err := comm.SimulateStreaming(run, inst, owner, core.Passes(alpha), wordBits)
		if err != nil {
			fmt.Fprintf(os.Stderr, "commsim: %v\n", err)
			os.Exit(1)
		}
		status := ""
		if !run.Result().Feasible {
			status = " (infeasible)"
		}
		fmt.Printf("%5d | %6d | %11d | %.3f%s\n",
			alpha, res.Passes, res.Bits, float64(res.Bits)/float64(full), status)
	}
}

func disjMode(trials int, seed uint64) {
	p := hardinst.SCParams{N: 2048, M: 8, Alpha: 2}
	t := p.BlockParam()
	r := rng.New(seed)
	oracle := func(inst *setsystem.Instance, bound int) (bool, error) {
		opt, err := offline.OptAtMost(inst, bound, offline.ExactConfig{})
		if err != nil {
			return false, err
		}
		return opt <= bound, nil
	}
	correct := 0
	for i := 0; i < trials; i++ {
		var d hardinst.Disj
		want := i%2 == 0
		if want {
			d = hardinst.SampleDisjYes(t, r)
		} else {
			d = hardinst.SampleDisjNo(t, r)
		}
		got, err := comm.SolveDisjViaSetCover(d, p, oracle, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "commsim: %v\n", err)
			os.Exit(1)
		}
		if got == want {
			correct++
		}
	}
	fmt.Printf("π_Disj via SetCover oracle (Lemma 3.4): %d/%d correct on Disj_%d\n", correct, trials, t)
}

func ghdMode(trials int, seed uint64) {
	p := hardinst.MCParams{Eps: 1.0 / 8, M: 5}
	t1 := p.T1()
	r := rng.New(seed)
	oracle := func(inst *setsystem.Instance, threshold float64) (bool, error) {
		_, _, cov := offline.MaxCoverPair(inst)
		return float64(cov) > threshold, nil
	}
	correct := 0
	for i := 0; i < trials; i++ {
		var g hardinst.GHD
		want := i%2 == 0
		if want {
			g = hardinst.SampleGHDYes(t1, r)
		} else {
			g = hardinst.SampleGHDNo(t1, r)
		}
		got, err := comm.SolveGHDViaMaxCover(g, p, oracle, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "commsim: %v\n", err)
			os.Exit(1)
		}
		if got == want {
			correct++
		}
	}
	fmt.Printf("π_GHD via MaxCover oracle (Lemma 4.5): %d/%d correct on GHD_%d\n", correct, trials, t1)
}
