// Command hardgen emits instances of the paper's hard distributions D_SC
// (set cover, §3.1) and D_MC (maximum coverage, §4.2) in the text format,
// with the ground truth recorded as header comments. Use these to stress
// any streaming set cover implementation: deciding the planted bit θ
// requires Ω̃(m·n^{1/α}) (resp. Ω̃(m/ε²)) words of memory.
//
// Usage:
//
//	hardgen -kind sc -n 4096 -m 32 -alpha 2 -theta 1 -seed 7 > hard.sc
//	hardgen -kind mc -m 32 -eps 0.125 -theta 0 > hard.mc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"streamcover"
)

func main() {
	var (
		kind  = flag.String("kind", "sc", "distribution: sc (set cover) or mc (max coverage)")
		n     = flag.Int("n", 4096, "universe size (sc only; mc derives n from eps)")
		m     = flag.Int("m", 32, "number of pairs (the instance has 2m sets)")
		alpha = flag.Int("alpha", 2, "hardness parameter α (sc only)")
		eps   = flag.Float64("eps", 0.125, "hardness parameter ε (mc only)")
		theta = flag.Int("theta", 1, "planted bit θ ∈ {0,1}")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *theta != 0 && *theta != 1 {
		fmt.Fprintln(os.Stderr, "hardgen: -theta must be 0 or 1")
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "sc":
		inst, info := streamcover.GenerateHardSetCover(*seed, *n, *m, *alpha, *theta)
		fmt.Fprintf(w, "# D_SC hard set cover instance (Assadi PODS 2017, §3.1)\n")
		fmt.Fprintf(w, "# theta=%d istar=%d pairs=%d t=%d alpha=%d seed=%d\n",
			info.Theta, info.IStar, info.M, info.T, info.Alpha, *seed)
		fmt.Fprintf(w, "# sets [0,%d) are S_i, [%d,%d) are T_i; pair i covers [n] iff i=istar\n",
			info.M, info.M, 2*info.M)
		fmt.Fprintf(w, "# lower bound: any %d-approximation needs Ω̃(m·t) = Ω̃(%d) words\n",
			info.Alpha, info.M*info.T)
		if err := streamcover.WriteInstance(w, inst); err != nil {
			fmt.Fprintf(os.Stderr, "hardgen: %v\n", err)
			os.Exit(1)
		}
	case "mc":
		inst, info := streamcover.GenerateHardMaxCoverage(*seed, *m, *eps, *theta)
		fmt.Fprintf(w, "# D_MC hard maximum coverage instance (Assadi PODS 2017, §4.2), k=2\n")
		fmt.Fprintf(w, "# theta=%d istar=%d pairs=%d tau=%.2f eps=%v seed=%d\n",
			info.Theta, info.IStar, info.M, info.Tau, info.Eps, *seed)
		fmt.Fprintf(w, "# lower bound: any (1-ε)-approximation needs Ω̃(m/ε²) words\n")
		if err := streamcover.WriteInstance(w, inst); err != nil {
			fmt.Fprintf(os.Stderr, "hardgen: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "hardgen: unknown -kind %q (want sc or mc)\n", *kind)
		os.Exit(2)
	}
}
