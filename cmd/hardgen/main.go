// Command hardgen emits instances of the paper's hard distributions D_SC
// (set cover, §3.1) and D_MC (maximum coverage, §4.2) in the text or
// binary instance format, with the ground truth recorded as header comments
// (text) or printed to stderr (binary, which has no comment channel). Use
// these to stress any streaming set cover implementation: deciding the
// planted bit θ requires Ω̃(m·n^{1/α}) (resp. Ω̃(m/ε²)) words of memory.
//
// Usage:
//
//	hardgen -kind sc -n 4096 -m 32 -alpha 2 -theta 1 -seed 7 > hard.sc
//	hardgen -kind mc -m 32 -eps 0.125 -theta 0 > hard.mc
//	hardgen -kind sc -n 65536 -m 256 -format binary > hard.scb
//	hardgen -kind sc -n 65536 -m 256 -format scb2 > hard.scb2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"streamcover"
)

func main() {
	var (
		kind   = flag.String("kind", "sc", "distribution: sc (set cover) or mc (max coverage)")
		n      = flag.Int("n", 4096, "universe size (sc only; mc derives n from eps)")
		m      = flag.Int("m", 32, "number of pairs (the instance has 2m sets)")
		alpha  = flag.Int("alpha", 2, "hardness parameter α (sc only)")
		eps    = flag.Float64("eps", 0.125, "hardness parameter ε (mc only)")
		theta  = flag.Int("theta", 1, "planted bit θ ∈ {0,1}")
		seed   = flag.Uint64("seed", 1, "random seed")
		format = flag.String("format", "text", "output format: text, binary (SCB1), or scb2 (mmap-native)")
	)
	flag.Parse()
	if *theta != 0 && *theta != 1 {
		fmt.Fprintln(os.Stderr, "hardgen: -theta must be 0 or 1")
		os.Exit(2)
	}
	if *format != "text" && *format != "binary" && *format != "scb2" {
		fmt.Fprintf(os.Stderr, "hardgen: unknown -format %q (want text, binary, or scb2)\n", *format)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	// Ground-truth annotations ride in the text stream as comments; the
	// binary formats have no comment channel, so they go to stderr instead.
	emit := func(inst *streamcover.Instance, header func(io.Writer)) {
		var encode func(io.Writer, *streamcover.Instance) error
		switch *format {
		case "binary":
			encode = streamcover.WriteInstanceBinary
		case "scb2":
			encode = streamcover.WriteInstanceSCB2
		default:
			header(w)
			if err := streamcover.WriteInstance(w, inst); err != nil {
				fmt.Fprintf(os.Stderr, "hardgen: %v\n", err)
				os.Exit(1)
			}
			return
		}
		header(os.Stderr)
		if err := encode(w, inst); err != nil {
			fmt.Fprintf(os.Stderr, "hardgen: %v\n", err)
			os.Exit(1)
		}
	}

	switch *kind {
	case "sc":
		inst, info := streamcover.GenerateHardSetCover(*seed, *n, *m, *alpha, *theta)
		emit(inst, func(out io.Writer) {
			fmt.Fprintf(out, "# D_SC hard set cover instance (Assadi PODS 2017, §3.1)\n")
			fmt.Fprintf(out, "# theta=%d istar=%d pairs=%d t=%d alpha=%d seed=%d\n",
				info.Theta, info.IStar, info.M, info.T, info.Alpha, *seed)
			fmt.Fprintf(out, "# sets [0,%d) are S_i, [%d,%d) are T_i; pair i covers [n] iff i=istar\n",
				info.M, info.M, 2*info.M)
			fmt.Fprintf(out, "# lower bound: any %d-approximation needs Ω̃(m·t) = Ω̃(%d) words\n",
				info.Alpha, info.M*info.T)
		})
	case "mc":
		inst, info := streamcover.GenerateHardMaxCoverage(*seed, *m, *eps, *theta)
		emit(inst, func(out io.Writer) {
			fmt.Fprintf(out, "# D_MC hard maximum coverage instance (Assadi PODS 2017, §4.2), k=2\n")
			fmt.Fprintf(out, "# theta=%d istar=%d pairs=%d tau=%.2f eps=%v seed=%d\n",
				info.Theta, info.IStar, info.M, info.Tau, info.Eps, *seed)
			fmt.Fprintf(out, "# lower bound: any (1-ε)-approximation needs Ω̃(m/ε²) words\n")
		})
	default:
		fmt.Fprintf(os.Stderr, "hardgen: unknown -kind %q (want sc or mc)\n", *kind)
		os.Exit(2)
	}
}
