// Command covercli solves set cover instances with the streaming and
// offline algorithms in this repository, reporting cover size, passes and
// peak space.
//
// Usage:
//
//	covercli -in instance.sc -algo alg1 -alpha 3
//	covercli -gen planted -n 8192 -m 1024 -opt 6 -algo progressive
//	covercli -gen zipf -n 4096 -m 512 -algo greedy
//	covercli -server http://localhost:8650 -gen planted -alpha 3
//	covercli -in instance.sc -convert instance.scb2            # codec convert
//	covercli -gen zipf -n 4096 -m 512 -convert z.scb -to scb1
//
// Algorithms: alg1 (the paper's Algorithm 1), progressive (threshold-decay
// multi-pass greedy), storeall (buffer stream + offline greedy), greedy
// (offline), exact (offline branch-and-bound).
//
// With -server the solve runs remotely on a coverd daemon: the instance is
// uploaded (deduplicated by content hash) and solved by the service, and
// the result is verified locally. The output is identical to a local run
// with the same flags — that is coverd's determinism-over-the-wire
// contract, and `make serve-smoke` diffs the two outputs to enforce it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"streamcover"
	"streamcover/client"
	"streamcover/internal/baselines"
	"streamcover/internal/bitset"
	"streamcover/internal/buildinfo"
	"streamcover/internal/core"
	obstrace "streamcover/internal/obs/trace"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func main() {
	var (
		in      = flag.String("in", "", "instance file (text or binary, auto-detected); empty means -gen")
		gen     = flag.String("gen", "planted", "generator: planted, uniform, zipf, clustered")
		n       = flag.Int("n", 4096, "universe size (generators)")
		m       = flag.Int("m", 512, "number of sets (generators)")
		opt     = flag.Int("opt", 4, "planted optimum size (gen=planted)")
		algo    = flag.String("algo", "alg1", "alg1, progressive, storeall, greedy, exact")
		alpha   = flag.Int("alpha", 2, "approximation parameter α (alg1)")
		eps     = flag.Float64("eps", 0.5, "ε (alg1)")
		order   = flag.String("order", "adversarial", "arrival order: adversarial, random")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "guess-grid worker goroutines (0 = GOMAXPROCS, 1 = sequential); results are identical at every value")
		server  = flag.String("server", "", "coverd base URL; non-empty runs the solve remotely")
		convert = flag.String("convert", "", "write the instance (-in or -gen) to this path instead of solving")
		to      = flag.String("to", "scb2", "codec for -convert: scb2 (mmap-native), scb1 (compact varint), text")
		replay  = flag.Bool("replay", false, "cache the first pass of a file-backed solve (elements + prebuilt run lists) and serve later passes from memory; results are identical, later passes skip decode entirely")
		trace   = flag.Bool("trace", false, "print a per-pass solve timeline (duration, items, space, live lanes) on stderr; with -server also propagate a traceparent and render the server's span tree; stdout is unchanged")
		version = flag.Bool("version", false, "print version and build information, then exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "covercli")
		return
	}
	if err := validateFlags(*algo, *gen, *order, *in, *convert, *to); err != nil {
		fmt.Fprintf(os.Stderr, "covercli: %v\n", err)
		os.Exit(2)
	}

	if *convert != "" {
		runConvert(*convert, *to, *in, *gen, *n, *m, *opt, *seed)
		return
	}

	if *server != "" {
		runRemote(*server, *in, *gen, *n, *m, *opt, *algo, *alpha, *eps, *order, *seed, *workers, *trace)
		return
	}

	// -trace collects one sample per stream pass; the timeline goes to
	// stderr after the solve so stdout stays diffable (serve-smoke).
	var tr *streamcover.PassTrace
	if *trace {
		tr = &streamcover.PassTrace{}
	}

	// For files, the streaming algorithms consume the file pass by pass
	// without materializing it (stream.FileStream); the in-memory instance
	// is still loaded for stats and verification.
	if *in != "" && *algo == "alg1" && *order == "adversarial" {
		runFileStreaming(*in, *alpha, *eps, *seed, *workers, *replay, tr)
		return
	}
	inst, err := loadInstance(*in, *gen, *n, *m, *opt, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercli: %v\n", err)
		os.Exit(1)
	}
	st := streamcover.ComputeStats(inst)
	fmt.Printf("instance: n=%d m=%d total=%d words, set sizes %d..%d (mean %.1f)\n",
		st.N, st.M, st.TotalSize, st.MinSize, st.MaxSize, st.MeanSize)

	ord := streamcover.Adversarial
	if *order == "random" {
		ord = streamcover.RandomOnce
	}

	switch *algo {
	case "alg1":
		res, err := streamcover.SolveSetCover(inst,
			streamcover.WithAlpha(*alpha), streamcover.WithEpsilon(*eps),
			streamcover.WithOrder(ord), streamcover.WithSeed(*seed),
			streamcover.WithParallelism(*workers), streamcover.WithPassTrace(sinkOf(tr)))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("alg1(α=%d): %s\n", *alpha, res)
		verify(inst, res.Cover)
		printLocalTrace(bitset.GridKernel(), tr)
	case "progressive":
		pg := baselines.NewProgressiveGreedy(inst.N, 2)
		acc := drive(inst, pg, pg.MaxPasses(), ord, *seed, sinkOf(tr))
		cover, ok := pg.Result()
		report("progressive(λ=2)", cover, ok, acc)
		verify(inst, cover)
		printLocalTrace("", tr)
	case "storeall":
		sa := baselines.NewStoreAllGreedy(inst.N)
		acc := drive(inst, sa, 2, ord, *seed, sinkOf(tr))
		cover, ok := sa.Result()
		report("storeall", cover, ok, acc)
		verify(inst, cover)
		printLocalTrace("", tr)
	case "greedy":
		cover, err := streamcover.GreedySetCover(inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline greedy: cover=%d sets\n", len(cover))
		verify(inst, cover)
		traceOfflineNote(*trace)
	case "exact":
		cover, err := streamcover.ExactSetCover(inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline exact: cover=%d sets (optimal)\n", len(cover))
		verify(inst, cover)
		traceOfflineNote(*trace)
	default:
		fmt.Fprintf(os.Stderr, "covercli: unknown -algo %q\n", *algo)
		os.Exit(2)
	}
}

// sinkOf converts the optional trace collector to a sink, keeping the
// interface untyped-nil when tracing is off (a typed-nil sink would be
// "non-nil" to the drivers and panic on the first pass).
func sinkOf(tr *streamcover.PassTrace) streamcover.TraceSink {
	if tr == nil {
		return nil
	}
	return tr
}

// printLocalTrace prints the collected timeline on stderr. kernel names the
// dispatched grid-kernel body for solves that sweep the guess grid.
func printLocalTrace(kernel string, tr *streamcover.PassTrace) {
	if tr == nil {
		return
	}
	samples := tr.Samples()
	wire := make([]client.PassTrace, len(samples))
	for i, s := range samples {
		wire[i] = client.PassTrace{
			Pass: s.Pass, DurationSeconds: s.Duration.Seconds(), Items: s.Items,
			SpaceWords: s.SpaceWords, PeakSpaceWords: s.PeakSpace,
			Live: s.Live, Replayed: s.Replayed,
		}
	}
	printTrace(kernel, wire)
}

// printTrace is the shared timeline formatter for local samples and remote
// job traces: one stderr line per pass, stdout untouched.
func printTrace(kernel string, passes []client.PassTrace) {
	if kernel != "" {
		fmt.Fprintf(os.Stderr, "trace: grid kernel %s\n", kernel)
	}
	for _, p := range passes {
		note := ""
		if p.Replayed {
			note = " (replayed)"
		}
		line := fmt.Sprintf("trace: pass %d%s: %s, %d items, space %d words (peak %d)",
			p.Pass, note,
			time.Duration(p.DurationSeconds*float64(time.Second)).Round(time.Microsecond),
			p.Items, p.SpaceWords, p.PeakSpaceWords)
		if p.Live >= 0 {
			line += fmt.Sprintf(", live %d", p.Live)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func traceOfflineNote(trace bool) {
	if trace {
		fmt.Fprintln(os.Stderr, "trace: offline algorithm, no stream passes")
	}
}

// runRemote solves on a coverd daemon: upload (deduplicated by content
// hash), solve with the same options, verify the returned cover locally.
// The printed lines deliberately match the local driver byte for byte so
// the serve-smoke target can diff a remote run against a local one.
func runRemote(base, in, gen string, n, m, opt int, algo string, alpha int, eps float64,
	order string, seed uint64, workers int, trace bool) {
	inst, err := loadInstance(in, gen, n, m, opt, seed)
	if err != nil {
		fatal(err)
	}
	// A local `-in file -algo alg1` run with the default adversarial order
	// takes the file-streaming path, whose output has its own shape (no
	// stats or verification lines); mirror it so remote == local holds on
	// every flag combination, not just the in-memory paths.
	fileStreamed := in != "" && algo == "alg1" && order == "adversarial"
	if fileStreamed {
		fmt.Printf("instance (file-streamed): n=%d m=%d\n", inst.N, inst.M())
	} else {
		st := streamcover.ComputeStats(inst)
		fmt.Printf("instance: n=%d m=%d total=%d words, set sizes %d..%d (mean %.1f)\n",
			st.N, st.M, st.TotalSize, st.MinSize, st.MaxSize, st.MeanSize)
	}

	ctx := context.Background()
	c := client.New(base)
	// With -trace the upload and solve requests propagate one freshly
	// minted traceparent: the server adopts its trace ID, and both request
	// trees merge into one recorded trace fetched and rendered below.
	var sc obstrace.SpanContext
	if trace {
		sc = obstrace.SpanContext{
			TraceID: obstrace.NewTraceID(), SpanID: obstrace.NewSpanID(), Sampled: true,
		}
		ctx = client.WithTraceContext(ctx, sc.Traceparent())
	}
	up, err := c.UploadInstance(ctx, inst)
	if err != nil {
		fatal(err)
	}
	job, err := c.Solve(ctx, client.SolveRequest{
		Instance: up.Hash, Algo: algo, Alpha: alpha, Epsilon: eps,
		Order: order, Seed: seed, Workers: workers,
	})
	if err != nil {
		fatal(err)
	}
	if job.Status != client.StatusDone {
		fatal(fmt.Errorf("remote job %s %s: %s", job.ID, job.Status, job.Error))
	}
	res := job.Result
	switch algo {
	case "alg1":
		fmt.Printf("alg1(α=%d): %s\n", alpha, streamcover.SetCoverResult{
			Cover: res.Cover, Guess: res.Guess, Passes: res.Passes, SpaceWords: res.SpaceWords,
		})
		if fileStreamed {
			// The file-streaming path prints no verification line; verify
			// quietly to keep the output diffable while still checking.
			if !inst.IsCover(res.Cover) {
				fatal(fmt.Errorf("INTERNAL ERROR: remote cover does not cover the universe"))
			}
		} else {
			verify(inst, res.Cover)
		}
	case "progressive":
		fmt.Printf("progressive(λ=2): cover=%d sets, %d passes, %d words\n",
			len(res.Cover), res.Passes, res.SpaceWords)
		verify(inst, res.Cover)
	case "storeall":
		fmt.Printf("storeall: cover=%d sets, %d passes, %d words\n",
			len(res.Cover), res.Passes, res.SpaceWords)
		verify(inst, res.Cover)
	case "greedy":
		fmt.Printf("offline greedy: cover=%d sets\n", len(res.Cover))
		verify(inst, res.Cover)
	case "exact":
		fmt.Printf("offline exact: cover=%d sets (optimal)\n", len(res.Cover))
		verify(inst, res.Cover)
	}
	if trace {
		switch {
		case job.Trace != nil:
			printTrace(job.Trace.Kernel, job.Trace.Passes)
		case algo == "greedy" || algo == "exact":
			traceOfflineNote(true)
		default:
			// A cached result carries no trace: the server never re-ran the
			// passes, so there is no timeline to report.
			fmt.Fprintln(os.Stderr, "trace: server returned no per-pass trace (result-cache hit?)")
		}
		printRemoteSpanTree(c, sc.TraceID.String())
	}
}

// printRemoteSpanTree fetches the server's recorded trace and renders the
// span tree on stderr. The solve's root span ends only after the response
// bytes are already on their way back, so the first fetches can race the
// flight-recorder commit — retry briefly before giving up.
func printRemoteSpanTree(c *client.Client, traceID string) {
	var rec client.RecordedTrace
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		rec, err = c.Trace(context.Background(), traceID)
		if err == nil {
			break
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: no server span tree for %s: %v (server running with -trace-buffer 0?)\n", traceID, err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: server trace %s\n", rec.TraceID)
	printSpans(rec.Spans, 1)
	if rec.DroppedSpans > 0 {
		fmt.Fprintf(os.Stderr, "trace: (%d spans dropped by the recorder's per-trace bound)\n", rec.DroppedSpans)
	}
}

// printSpans renders one level of the span tree, children indented under
// parents: name, duration, sorted attributes, and an event tally.
func printSpans(spans []client.TraceSpan, depth int) {
	for _, s := range spans {
		line := fmt.Sprintf("trace: %s%s %s", strings.Repeat("  ", depth), s.Name,
			time.Duration(s.DurationSeconds*float64(time.Second)).Round(time.Microsecond))
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%v", k, s.Attrs[k])
			}
			line += " (" + strings.Join(parts, " ") + ")"
		}
		if len(s.Events) > 0 {
			line += fmt.Sprintf(" [%d events]", len(s.Events))
		}
		fmt.Fprintln(os.Stderr, line)
		printSpans(s.Children, depth+1)
	}
}

// runFileStreaming drives Algorithm 1 directly over a file-backed stream:
// each pass re-reads the file, so instances larger than memory work as
// long as the algorithm's own footprint fits. The codec is auto-detected
// (binary files stream with a reusable buffer and no re-parsing; text files
// fall back to line scanning), and a mid-pass file error aborts the solve
// through the driver rather than truncating a pass. The RNG discipline
// (core.SolveFileRNG) matches core.Solve, so the result is bit-identical
// to SolveSetCover on the decoded instance — which is also what a remote
// (-server) run computes.
func runFileStreaming(path string, alpha int, eps float64, seed uint64, workers int, replay bool,
	tr *streamcover.PassTrace) {
	fs, err := stream.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fs.Close()
	fmt.Printf("instance (file-streamed): n=%d m=%d\n", fs.Universe(), fs.Len())
	// -replay wraps the file stream in a pass-replay cache: the first pass
	// decodes honestly while recording, later passes are served from memory.
	// The result is bit-identical either way (replay-parity tests pin this),
	// so the replay note goes to stderr and stdout stays diffable against a
	// plain run.
	var src stream.FileBacked = fs
	var cache *stream.PlanCache
	if replay {
		cache = stream.NewPlanCache(fs, 0)
		src = cache
	}
	cfg := core.Config{Alpha: alpha, Epsilon: eps, Workers: workers, Trace: sinkOf(tr)}
	best, acc, err := core.SolveStream(src, cfg, core.SolveFileRNG(seed))
	if err != nil {
		if errors.Is(err, streamcover.ErrInfeasible) {
			fmt.Println("alg1: infeasible (universe not coverable)")
			os.Exit(1)
		}
		fatal(err)
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "replay: plan %d bytes (%d passes served from memory)\n",
			cache.PlanBytes(), acc.Passes-1)
	}
	fmt.Printf("alg1(α=%d): cover=%d sets (guess %d), %d passes, %d words\n",
		alpha, len(best.Cover), best.Guess, acc.Passes, acc.PeakSpace)
	printLocalTrace(bitset.GridKernel(), tr)
}

// runConvert loads the instance (-in file in any codec, or a generator)
// and rewrites it at the given path in the requested codec. The common
// uses: re-encode a text or SCB1 instance as SCB2 so every later open is
// a zero-copy mmap (covercli -in, coverd -load), or dump an SCB2 file
// back to text for inspection.
func runConvert(outPath, to, in, gen string, n, m, opt int, seed uint64) {
	inst, err := loadInstance(in, gen, n, m, opt, seed)
	if err != nil {
		fatal(err)
	}
	var encode func(io.Writer, *streamcover.Instance) error
	switch to {
	case "scb2":
		encode = streamcover.WriteInstanceSCB2
	case "scb1":
		encode = streamcover.WriteInstanceBinary
	case "text":
		encode = streamcover.WriteInstance
	}
	f, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	if err := encode(f, inst); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(outPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("converted: %s (%s) n=%d m=%d total=%d, %d bytes\n",
		outPath, to, inst.N, inst.M(), inst.TotalElems(), fi.Size())
}

func loadInstance(path, gen string, n, m, opt int, seed uint64) (*streamcover.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return streamcover.ReadInstance(f)
	}
	switch gen {
	case "planted":
		inst, planted := streamcover.GeneratePlanted(seed, n, m, opt)
		fmt.Printf("planted optimum: %d sets %v\n", len(planted), planted)
		return inst, nil
	case "uniform":
		return streamcover.GenerateUniform(seed, n, m, n/16+1, n/4+1), nil
	case "zipf":
		return streamcover.GenerateZipf(seed, n, m, 1.5, n/4+1), nil
	case "clustered":
		return streamcover.GenerateClustered(seed, n, m, 8, n/8+1), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func drive(inst *setsystem.Instance, alg stream.PassAlgorithm, maxPasses int,
	ord streamcover.Order, seed uint64, sink stream.TraceSink) stream.Accounting {
	var r *rng.RNG
	if ord != streamcover.Adversarial {
		r = rng.New(seed)
	}
	s := stream.FromInstance(inst, ord, r)
	acc, err := stream.RunTraced(context.Background(), s, alg, maxPasses, sink)
	if err != nil {
		fatal(err)
	}
	return acc
}

func report(name string, cover []int, ok bool, acc stream.Accounting) {
	if !ok {
		fmt.Printf("%s: infeasible (universe not coverable)\n", name)
		os.Exit(1)
	}
	fmt.Printf("%s: cover=%d sets, %d passes, %d words\n", name, len(cover), acc.Passes, acc.PeakSpace)
}

func verify(inst *streamcover.Instance, cover []int) {
	if !inst.IsCover(cover) {
		fmt.Fprintln(os.Stderr, "covercli: INTERNAL ERROR: reported cover does not cover the universe")
		os.Exit(1)
	}
	fmt.Println("verified: cover is feasible")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "covercli: %v\n", err)
	os.Exit(1)
}
