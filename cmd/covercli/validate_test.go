package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                              string
		algo, gen, order, in, convert, to string
		wantErr                           string // substring; "" means valid
	}{
		{name: "defaults", algo: "alg1", gen: "planted", order: "adversarial"},
		{name: "all algos", algo: "exact", gen: "zipf", order: "random"},
		{name: "progressive", algo: "progressive", gen: "uniform", order: "adversarial"},
		{name: "storeall", algo: "storeall", gen: "clustered", order: "random"},
		{name: "greedy with file", algo: "greedy", gen: "ignored-when-in-set", order: "adversarial", in: "x.sc"},

		{name: "bad algo", algo: "alg2", gen: "planted", order: "adversarial",
			wantErr: `unknown -algo "alg2"`},
		{name: "bad algo lists choices", algo: "quantum", gen: "planted", order: "adversarial",
			wantErr: "alg1, progressive, storeall, greedy, exact"},
		{name: "bad gen", algo: "alg1", gen: "gaussian", order: "adversarial",
			wantErr: `unknown -gen "gaussian"`},
		{name: "bad gen lists choices", algo: "alg1", gen: "gaussian", order: "adversarial",
			wantErr: "planted, uniform, zipf, clustered"},
		{name: "bad gen ignored with -in", algo: "alg1", gen: "gaussian", order: "adversarial", in: "x.sc"},
		{name: "bad order", algo: "alg1", gen: "planted", order: "adverserial",
			wantErr: `unknown -order "adverserial"`},
		{name: "bad order lists choices", algo: "alg1", gen: "planted", order: "shuffled",
			wantErr: "adversarial, random"},
		{name: "empty algo", algo: "", gen: "planted", order: "adversarial",
			wantErr: "unknown -algo"},

		{name: "convert scb2", algo: "alg1", gen: "planted", order: "adversarial",
			convert: "out.scb2", to: "scb2"},
		{name: "convert text", algo: "alg1", gen: "planted", order: "adversarial",
			convert: "out.sc", to: "text"},
		{name: "bad convert codec", algo: "alg1", gen: "planted", order: "adversarial",
			convert: "out.bin", to: "msgpack", wantErr: `unknown -to "msgpack"`},
		{name: "bad codec lists choices", algo: "alg1", gen: "planted", order: "adversarial",
			convert: "out.bin", to: "msgpack", wantErr: "scb2, scb1, text"},
		{name: "to ignored without convert", algo: "alg1", gen: "planted", order: "adversarial",
			to: "msgpack"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.algo, tc.gen, tc.order, tc.in, tc.convert, tc.to)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
