package main

import (
	"fmt"
	"strings"
)

// Valid flag vocabularies. Unknown values are rejected up front with a
// usage line instead of falling through to a default mid-run (an
// unnoticed typo like -order=adverserial used to silently solve in
// adversarial order; -algo and -gen used to fail only after generating or
// loading the instance).
var (
	validAlgos  = []string{"alg1", "progressive", "storeall", "greedy", "exact"}
	validGens   = []string{"planted", "uniform", "zipf", "clustered"}
	validOrders = []string{"adversarial", "random"}
	validCodecs = []string{"scb2", "scb1", "text"}
)

// validateChoice checks one enum-valued flag, returning a usage-style
// error listing the valid choices.
func validateChoice(flagName, val string, valid []string) error {
	for _, v := range valid {
		if val == v {
			return nil
		}
	}
	return fmt.Errorf("unknown -%s %q (valid: %s)", flagName, val, strings.Join(valid, ", "))
}

// validateFlags rejects unknown -algo/-gen/-order/-to values. gen is only
// validated when it will be used (no -in file), and -to only when
// -convert is in play.
func validateFlags(algo, gen, order, in, convert, to string) error {
	if err := validateChoice("algo", algo, validAlgos); err != nil {
		return err
	}
	if in == "" {
		if err := validateChoice("gen", gen, validGens); err != nil {
			return err
		}
	}
	if convert != "" {
		if err := validateChoice("to", to, validCodecs); err != nil {
			return err
		}
	}
	return validateChoice("order", order, validOrders)
}
