// Command coverd is streamcover's solve daemon: it keeps set-cover
// instances resident in a content-addressed, memory-budgeted registry and
// multiplexes concurrent solve jobs over a bounded scheduler, exposed as a
// JSON HTTP API (see internal/service for the endpoint reference and
// DESIGN.md §3 for the architecture).
//
// Usage:
//
//	coverd -addr :8650 -slots 4 -mem-budget-mb 512
//	coverd -addr 127.0.0.1:0 -addr-file /tmp/coverd.addr   # random port
//	coverd -load instances/hard.scb -load instances/web.sc # preload files
//
// The bound address is printed on stdout (and written to -addr-file when
// given), so scripts can start coverd on port 0 and discover the port.
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight HTTP requests
// drain, queued and running jobs are canceled, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamcover/internal/registry"
	"streamcover/internal/service"
)

// stringList collects repeated -load flags.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint(*l) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads stringList
	var (
		addr        = flag.String("addr", ":8650", "listen address (host:port; port 0 picks a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		memBudget   = flag.Int64("mem-budget-mb", 256, "registry memory budget in MiB (LRU eviction above it)")
		slots       = flag.Int("slots", 0, "concurrent solve jobs (0 = default; clamped to GOMAXPROCS)")
		jobWorkers  = flag.Int("job-workers", 0, "guess-grid workers per job (0 = GOMAXPROCS/slots)")
		queueDepth  = flag.Int("queue", 0, "queued-job bound before 429 backpressure (0 = default 64)")
		cacheSize   = flag.Int("cache", 0, "result cache entries (0 = default 1024, -1 disables)")
		maxUploadMB = flag.Int64("max-upload-mb", 1024, "largest accepted instance upload in MiB")
		replay      = flag.Bool("replay", true, "build a pass-replay plan per instance lazily on first solve (plan bytes count against -mem-budget-mb, visible as plan_bytes in /v1/stats); false streams honestly every pass")
	)
	flag.Var(&loads, "load", "instance file to preload (repeatable; text or binary)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "coverd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Config{BudgetBytes: *memBudget << 20})
	for _, path := range loads {
		hash, added, err := reg.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverd: preload %s: %v\n", path, err)
			os.Exit(1)
		}
		state := "loaded"
		if !added {
			state = "deduplicated"
		}
		fmt.Printf("coverd: %s %s as %s\n", state, path, hash)
	}
	sched := service.NewScheduler(reg, service.Config{
		Slots: *slots, JobWorkers: *jobWorkers, QueueDepth: *queueDepth, CacheEntries: *cacheSize,
		DisableReplay: !*replay,
	})
	handler := service.NewServer(reg, sched, *maxUploadMB<<20)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverd: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "coverd: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := sched.Config()
	fmt.Printf("coverd: listening on %s (slots=%d job-workers=%d queue=%d budget=%dMiB)\n",
		bound, cfg.Slots, cfg.JobWorkers, cfg.QueueDepth, *memBudget)

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("coverd: %s, shutting down\n", s)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "coverd: serve: %v\n", err)
		sched.Stop()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "coverd: shutdown: %v\n", err)
	}
	sched.Stop()
	fmt.Println("coverd: bye")
}
