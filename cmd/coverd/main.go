// Command coverd is streamcover's solve daemon: it keeps set-cover
// instances resident in a content-addressed, memory-budgeted registry and
// multiplexes concurrent solve jobs over a bounded scheduler, exposed as a
// JSON HTTP API (see internal/service for the endpoint reference and
// DESIGN.md §3 for the architecture).
//
// Usage:
//
//	coverd -addr :8650 -slots 4 -mem-budget-mb 512
//	coverd -addr 127.0.0.1:0 -addr-file /tmp/coverd.addr   # random port
//	coverd -load instances/hard.scb -load instances/web.sc # preload files
//	coverd -log-requests -debug-addr 127.0.0.1:8651        # observability
//
// The bound address is printed on stdout (and written to -addr-file when
// given), so scripts can start coverd on port 0 and discover the port.
// Operational output is split: stdout carries the same short startup and
// shutdown lines as always (scripts grep them), while structured logs —
// job lifecycle, the optional -log-requests access log — go to stderr as
// log/slog lines. GET /metrics serves the Prometheus exposition.
//
// Every request is traced (disable with -trace-buffer 0): a client-sent W3C
// traceparent header is adopted as the request's identity, the trace ID is
// echoed in X-Request-Id and Job.TraceID, and completed traces are retained
// in an in-process flight recorder served at GET /v1/traces/{id}.
// -debug-addr opts into a second, typically private, listener carrying
// net/http/pprof plus GET /debug/traces (recent span trees) and
// GET /debug/bundle (stats + metrics + traces in one document).
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight HTTP requests
// drain, queued and running jobs are canceled, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamcover/internal/buildinfo"
	"streamcover/internal/obs"
	"streamcover/internal/obs/trace"
	"streamcover/internal/registry"
	"streamcover/internal/service"
)

// stringList collects repeated -load flags.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint(*l) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads stringList
	var (
		addr        = flag.String("addr", ":8650", "listen address (host:port; port 0 picks a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		memBudget   = flag.Int64("mem-budget-mb", 256, "registry memory budget in MiB (LRU eviction above it)")
		slots       = flag.Int("slots", 0, "concurrent solve jobs (0 = default; clamped to GOMAXPROCS)")
		jobWorkers  = flag.Int("job-workers", 0, "guess-grid workers per job (0 = GOMAXPROCS/slots)")
		queueDepth  = flag.Int("queue", 0, "queued-job bound before 429 backpressure (0 = default 64)")
		cacheSize   = flag.Int("cache", 0, "result cache entries (0 = default 1024, -1 disables)")
		maxUploadMB = flag.Int64("max-upload-mb", 1024, "largest accepted instance upload in MiB")
		replay      = flag.Bool("replay", true, "build a pass-replay plan per instance lazily on first solve (plan bytes count against -mem-budget-mb, visible as plan_bytes in /v1/stats); false streams honestly every pass")
		logRequests = flag.Bool("log-requests", false, "emit one structured access-log line per HTTP request on stderr")
		logLevel    = flag.String("log-level", "info", "structured log threshold on stderr: debug, info, warn or error")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and the trace debug endpoints on this extra address (empty disables; keep it private)")
		debugFile   = flag.String("debug-addr-file", "", "write the bound -debug-addr address to this file once listening")
		traceBuf    = flag.Int("trace-buffer", trace.DefaultCapacity, "completed request traces retained by the flight recorder (0 disables tracing)")
		version     = flag.Bool("version", false, "print version and build information, then exit")
	)
	flag.Var(&loads, "load", "instance file to preload (repeatable; text or binary)")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "coverd")
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "coverd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "coverd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	metrics := obs.NewRegistry()
	buildinfo.Register(metrics)
	reg := registry.New(registry.Config{BudgetBytes: *memBudget << 20})
	reg.RegisterMetrics(metrics)
	for _, path := range loads {
		hash, added, err := reg.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverd: preload %s: %v\n", path, err)
			os.Exit(1)
		}
		state := "loaded"
		if !added {
			state = "deduplicated"
		}
		fmt.Printf("coverd: %s %s as %s\n", state, path, hash)
	}
	sched := service.NewScheduler(reg, service.Config{
		Slots: *slots, JobWorkers: *jobWorkers, QueueDepth: *queueDepth, CacheEntries: *cacheSize,
		DisableReplay: !*replay,
		Metrics:       metrics, Logger: logger,
	})
	serverOpts := []service.ServerOption{service.WithMetrics(metrics), service.WithLogger(logger)}
	if *logRequests {
		serverOpts = append(serverOpts, service.WithAccessLog())
	}
	if *traceBuf > 0 {
		serverOpts = append(serverOpts, service.WithTracing(trace.NewTracer(*traceBuf, 0)))
	}
	handler := service.NewServer(reg, sched, *maxUploadMB<<20, serverOpts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverd: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "coverd: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := sched.Config()
	fmt.Printf("coverd: listening on %s (slots=%d job-workers=%d queue=%d budget=%dMiB)\n",
		bound, cfg.Slots, cfg.JobWorkers, cfg.QueueDepth, *memBudget)
	logger.Info("coverd started", "addr", bound, "slots", cfg.Slots,
		"job_workers", cfg.JobWorkers, "queue_depth", cfg.QueueDepth,
		"budget_mb", *memBudget, "replay", *replay, "preloaded", len(loads))

	var debugSrv *http.Server
	if *debugAddr != "" {
		// An explicit debug mux, not http.DefaultServeMux: only the profile
		// and trace endpoints exist here, and only on this opt-in listener.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler.RegisterDebug(dmux)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coverd: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		if *debugFile != "" {
			if err := os.WriteFile(*debugFile, []byte(dln.Addr().String()+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "coverd: write -debug-addr-file: %v\n", err)
				os.Exit(1)
			}
		}
		debugSrv = &http.Server{Handler: dmux}
		logger.Info("debug listening", "addr", dln.Addr().String())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("coverd: %s, shutting down\n", s)
		logger.Info("shutdown requested", "signal", s.String())
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "coverd: serve: %v\n", err)
		sched.Stop()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "coverd: shutdown: %v\n", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	sched.Stop()
	logger.Info("coverd stopped", "uptime", time.Since(startTime).Round(time.Millisecond))
	fmt.Println("coverd: bye")
}

var startTime = time.Now()
