// Command benchcmp compares two benchmark recordings produced by
// `make bench-json` (go test -json event streams) and prints the per-
// benchmark ns/op delta — the dependency-free stand-in for benchstat that
// the CI bench-compare step and local workflows use to track the
// performance trajectory against a committed baseline:
//
//	go run ./cmd/benchcmp BENCH_csr.json BENCH_masks.json
//
// Output is one row per benchmark present in either file, with the
// old/new ratio (>1 means the new recording is faster); a benchmark
// present in only one recording is reported as `removed` (old only) or
// `new` (new only) rather than silently dropped, so a renamed or deleted
// benchmark is visible in the delta. The comparison is informational: the
// exit status is non-zero only for unreadable input, never for
// regressions, so it can run as a non-blocking CI step.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the go test -json event schema benchcmp needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a gotest benchmark result line. The benchmark name and
// its numbers can arrive in separate output events, so matching happens on
// the reassembled text, line by line. The -<P> GOMAXPROCS suffix is folded
// away so recordings from machines with different core counts compare.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// load reassembles the output text of a go test -json stream and extracts
// benchmark name → ns/op. A later duplicate overwrites an earlier one (go
// test repeats a benchmark only when rerun; the last run is the one that
// counts).
func load(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = ns
	}
	return out, nil
}

// row is one line of the comparison: a benchmark present in either
// recording. Status is "" for a benchmark present in both, "removed" for
// old-only and "new" for new-only.
type row struct {
	Name     string
	Old, New float64 // ns/op; meaningful per Status
	Status   string
}

// diff joins two recordings into sorted rows, keeping one-sided benchmarks
// as removed/new rows instead of dropping them.
func diff(old, now map[string]float64) []row {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range now {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	rows := make([]row, 0, len(sorted))
	for _, n := range sorted {
		o, hasOld := old[n]
		v, hasNew := now[n]
		switch {
		case hasOld && hasNew:
			rows = append(rows, row{Name: n, Old: o, New: v})
		case hasOld:
			rows = append(rows, row{Name: n, Old: o, Status: "removed"})
		default:
			rows = append(rows, row{Name: n, New: v, Status: "new"})
		}
	}
	return rows
}

// render writes the comparison table.
func render(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "old/new")
	for _, r := range rows {
		switch r.Status {
		case "removed":
			fmt.Fprintf(w, "%-52s %14.0f %14s %9s\n", r.Name, r.Old, "-", "removed")
		case "new":
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s\n", r.Name, "-", r.New, "new")
		default:
			fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.2fx\n", r.Name, r.Old, r.New, r.Old/r.New)
		}
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp <old.json> <new.json>\n")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	now, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	render(os.Stdout, diff(old, now))
}
