package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture writes a minimal go test -json event stream containing the
// given benchmark result lines, one output event per fragment (benchmark
// names and numbers can arrive in separate events — load must reassemble).
func writeFixture(t *testing.T, name string, fragments []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, frag := range fragments {
		if err := enc.Encode(event{Action: "output", Output: frag}); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave a non-output event, which load must ignore.
	if err := enc.Encode(event{Action: "pass"}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffOnFixturePair(t *testing.T) {
	oldPath := writeFixture(t, "old.json", []string{
		"BenchmarkSolve-8   \t     100\t  2000.0 ns/op\n",
		"BenchmarkCodec",                   // name split across events...
		"-8   \t     100\t  500.0 ns/op\n", // ...from its numbers
		"BenchmarkRemovedOnly-8   \t      10\t  9999.0 ns/op\n",
	})
	newPath := writeFixture(t, "new.json", []string{
		"BenchmarkSolve-16   \t     100\t  1000.0 ns/op\n", // different GOMAXPROCS suffix folds away
		"BenchmarkCodec-8   \t     100\t  250.0 ns/op\n",
		"BenchmarkBrandNew-8   \t     100\t  42.0 ns/op\n",
	})

	old, err := load(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	now, err := load(newPath)
	if err != nil {
		t.Fatal(err)
	}
	rows := diff(old, now)
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows %v, want 4", len(rows), rows)
	}
	// Rows are sorted by name.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name >= rows[i].Name {
			t.Fatalf("rows unsorted: %v", rows)
		}
	}
	if r := byName["BenchmarkSolve"]; r.Status != "" || r.Old != 2000 || r.New != 1000 {
		t.Fatalf("BenchmarkSolve row %+v", r)
	}
	if r := byName["BenchmarkCodec"]; r.Status != "" || r.Old != 500 || r.New != 250 {
		t.Fatalf("BenchmarkCodec row %+v", r)
	}
	// A benchmark only in the old recording is reported as removed, not
	// silently dropped.
	if r := byName["BenchmarkRemovedOnly"]; r.Status != "removed" || r.Old != 9999 {
		t.Fatalf("BenchmarkRemovedOnly row %+v", r)
	}
	// A benchmark only in the new recording is reported as new.
	if r := byName["BenchmarkBrandNew"]; r.Status != "new" || r.New != 42 {
		t.Fatalf("BenchmarkBrandNew row %+v", r)
	}
}

func TestRenderMarksOneSidedRows(t *testing.T) {
	var sb strings.Builder
	render(&sb, []row{
		{Name: "BenchmarkBoth", Old: 100, New: 50},
		{Name: "BenchmarkRemoved", Old: 10, Status: "removed"},
		{Name: "BenchmarkNew", New: 7, Status: "new"},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "2.00x") {
		t.Fatalf("ratio row %q lacks 2.00x", lines[1])
	}
	if !strings.Contains(lines[2], "removed") || strings.Contains(lines[2], "gone") {
		t.Fatalf("removed row %q", lines[2])
	}
	if !strings.HasSuffix(strings.TrimRight(lines[3], " "), "new") {
		t.Fatalf("new row %q", lines[3])
	}
}

func TestLoadRejectsNonJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("benchmark text, not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("load accepted a non-JSON file")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load accepted a missing file")
	}
}
