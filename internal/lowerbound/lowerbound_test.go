package lowerbound

import (
	"fmt"
	"math"
	"testing"

	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

func TestSampleComplement(t *testing.T) {
	r := rng.New(1)
	elems := []int32{1, 3, 5, 7}
	for trial := 0; trial < 100; trial++ {
		s := sampleComplement(elems, 10, 4, r)
		if len(s) != 4 {
			t.Fatalf("sample size %d", len(s))
		}
		seen := map[int]bool{}
		for _, e := range s {
			if e < 0 || e >= 10 || e == 1 || e == 3 || e == 5 || e == 7 {
				t.Fatalf("sampled %d not in complement", e)
			}
			if seen[e] {
				t.Fatalf("duplicate sample %d", e)
			}
			seen[e] = true
		}
	}
	// want > complement size: capped.
	if s := sampleComplement([]int32{0, 1, 2}, 5, 10, r); len(s) != 2 {
		t.Fatalf("capped sample = %v", s)
	}
	// full set: empty sample.
	if s := sampleComplement([]int32{0, 1, 2}, 3, 5, r); len(s) != 0 {
		t.Fatalf("full-set sample = %v", s)
	}
}

func TestSampleComplementUniform(t *testing.T) {
	r := rng.New(2)
	elems := []int32{2, 4}
	counts := map[int]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, e := range sampleComplement(elems, 6, 1, r) {
			counts[e]++
		}
	}
	// Complement {0,1,3,5}: each ≈ trials/4.
	for _, e := range []int{0, 1, 3, 5} {
		got := float64(counts[e])
		want := trials / 4.0
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %v times, want ≈%v", e, got, want)
		}
	}
}

// runSC streams a D_SC instance through a distinguisher and returns θ̂.
func runSC(t *testing.T, sc *hardinst.SetCoverInstance, cfg SCConfig, order stream.Order, seed uint64) int {
	t.Helper()
	d := NewSCDistinguisher(sc.N, sc.Params.M, cfg, rng.New(seed))
	var r *rng.RNG
	if order != stream.Adversarial {
		r = rng.New(seed ^ 0x5ca1ab1e)
	}
	s := stream.FromInstance(sc.Inst, order, r)
	acc, err := stream.Run(s, d, cfg.Passes+1)
	if err != nil {
		t.Fatal(err)
	}
	if acc.PeakSpace > cfg.Budget+2*sc.Params.M+4 {
		t.Fatalf("distinguisher exceeded budget: peak %d vs budget %d", acc.PeakSpace, cfg.Budget)
	}
	return d.Decide()
}

func TestSCDistinguisherHighBudget(t *testing.T) {
	p := hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	r := rng.New(3)
	// Generous budget: many samples per pair ⇒ near-perfect accuracy.
	budget := p.M * p.BlockParam() * 8
	correct := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		theta := i % 2
		sc := hardinst.SampleSetCover(p, theta, r)
		got := runSC(t, sc, SCConfig{Budget: budget, Passes: 1}, stream.Adversarial, uint64(100+i))
		if got == theta {
			correct++
		}
	}
	if correct < trials-1 {
		t.Fatalf("high budget: %d/%d correct", correct, trials)
	}
}

func TestSCDistinguisherZeroBudget(t *testing.T) {
	p := hardinst.SCParams{N: 1024, M: 8, Alpha: 2}
	r := rng.New(4)
	sc := hardinst.SampleSetCover(p, 1, r)
	got := runSC(t, sc, SCConfig{Budget: 0, Passes: 1}, stream.Adversarial, 7)
	if got != 0 {
		t.Fatalf("zero budget guessed θ=1 without evidence")
	}
}

func TestSCDistinguisherMultiPass(t *testing.T) {
	// With p passes, a p-times-smaller budget retains accuracy (Theorem 1's
	// s·p tradeoff): compare 1-pass-small-budget vs 4-pass-same-budget.
	p := hardinst.SCParams{N: 2048, M: 32, Alpha: 2}
	tBlocks := p.BlockParam()
	budget := p.M * tBlocks / 2 // half a "full" budget: weak in one pass
	score := func(passes int, base uint64) int {
		r := rng.New(base)
		correct := 0
		for i := 0; i < 30; i++ {
			theta := i % 2
			sc := hardinst.SampleSetCover(p, theta, r)
			if runSC(t, sc, SCConfig{Budget: budget, Passes: passes}, stream.Adversarial, base+uint64(i)) == theta {
				correct++
			}
		}
		return correct
	}
	one := score(1, 1000)
	four := score(4, 2000)
	if four < one {
		t.Fatalf("more passes did not help: 1-pass %d/30, 4-pass %d/30", one, four)
	}
	if four < 24 {
		t.Fatalf("4-pass accuracy too low: %d/30", four)
	}
}

func TestSCDistinguisherRandomOrderAndPartition(t *testing.T) {
	// Robustness (Lemma 3.7): random arrival changes nothing structurally.
	p := hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	r := rng.New(5)
	budget := p.M * p.BlockParam() * 8
	correct := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		theta := i % 2
		sc := hardinst.SampleSetCover(p, theta, r)
		if runSC(t, sc, SCConfig{Budget: budget, Passes: 1}, stream.RandomOnce, uint64(500+i)) == theta {
			correct++
		}
	}
	if correct < trials-2 {
		t.Fatalf("random order: %d/%d correct", correct, trials)
	}
}

func TestSCBudgetMonotonicity(t *testing.T) {
	// Success rate should increase with budget through the m·t transition.
	p := hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	full := p.M * p.BlockParam() * 8
	rate := func(budget int, base uint64) float64 {
		r := rng.New(base)
		correct := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			theta := i % 2
			sc := hardinst.SampleSetCover(p, theta, r)
			if runSC(t, sc, SCConfig{Budget: budget, Passes: 1}, stream.Adversarial, base+uint64(i)) == theta {
				correct++
			}
		}
		return float64(correct) / trials
	}
	low := rate(full/64, 10_000)
	high := rate(full, 20_000)
	if high < low {
		t.Fatalf("success not monotone in budget: low=%v high=%v", low, high)
	}
	if high < 0.85 {
		t.Fatalf("full budget success too low: %v", high)
	}
}

func runMC(t *testing.T, mc *hardinst.MaxCoverInstance, cfg MCConfig, seed uint64) int {
	t.Helper()
	d := NewMCDistinguisher(mc.Params.M, cfg, rng.New(seed))
	s := stream.FromInstance(mc.Inst, stream.Adversarial, nil)
	if _, err := stream.Run(s, d, cfg.Passes+1); err != nil {
		t.Fatal(err)
	}
	return d.Decide()
}

func TestMCDistinguisherHighBudget(t *testing.T) {
	p := hardinst.MCParams{Eps: 1.0 / 8, M: 12}
	r := rng.New(6)
	t1 := p.T1()
	budget := p.M * t1 * 4 // ≫ m/ε²… relative to sampling needs
	correct := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		theta := i % 2
		mc := hardinst.SampleMaxCover(p, theta, r)
		if runMC(t, mc, MCConfig{Budget: budget, Passes: 1, T1: t1}, uint64(300+i)) == theta {
			correct++
		}
	}
	if correct < trials-2 {
		t.Fatalf("MC high budget: %d/%d correct", correct, trials)
	}
}

func TestMCDistinguisherZeroBudget(t *testing.T) {
	p := hardinst.MCParams{Eps: 0.25, M: 4}
	mc := hardinst.SampleMaxCover(p, 1, rng.New(7))
	if got := runMC(t, mc, MCConfig{Budget: 0, Passes: 1, T1: p.T1()}, 8); got != 0 {
		t.Fatal("zero budget guessed θ=1")
	}
}

func TestMCBudgetMonotonicity(t *testing.T) {
	p := hardinst.MCParams{Eps: 1.0 / 8, M: 12}
	t1 := p.T1()
	rate := func(budget int, base uint64) float64 {
		r := rng.New(base)
		correct := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			theta := i % 2
			mc := hardinst.SampleMaxCover(p, theta, r)
			if runMC(t, mc, MCConfig{Budget: budget, Passes: 1, T1: t1}, base+uint64(i)) == theta {
				correct++
			}
		}
		return float64(correct) / trials
	}
	low := rate(p.M, 40_000) // one word per pair: hopeless
	high := rate(p.M*t1*4, 50_000)
	if high <= low && high < 0.85 {
		t.Fatalf("MC success not improving with budget: low=%v high=%v", low, high)
	}
	if high < 0.8 {
		t.Fatalf("MC full budget success too low: %v", high)
	}
}

func TestHandlesPartition(t *testing.T) {
	// Every pair must be handled by exactly one pass.
	d := NewSCDistinguisher(100, 17, SCConfig{Budget: 1000, Passes: 4}, rng.New(9))
	owned := map[int]int{}
	for pass := 0; pass < 4; pass++ {
		d.BeginPass(pass)
		for pair := 0; pair < 17; pair++ {
			if d.handles(pair) {
				owned[pair]++
			}
		}
	}
	for pair := 0; pair < 17; pair++ {
		if owned[pair] != 1 {
			t.Fatalf("pair %d handled %d times", pair, owned[pair])
		}
	}
}

func TestSpaceStaysWithinBudget(t *testing.T) {
	p := hardinst.SCParams{N: 1024, M: 16, Alpha: 2}
	sc := hardinst.SampleSetCover(p, 0, rng.New(10))
	for _, budget := range []int{16, 64, 256} {
		d := NewSCDistinguisher(sc.N, p.M, SCConfig{Budget: budget, Passes: 1}, rng.New(11))
		s := stream.FromInstance(sc.Inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, d, 2)
		if err != nil {
			t.Fatal(err)
		}
		if acc.PeakSpace > budget+p.M+2 {
			t.Fatalf("budget %d: peak space %d", budget, acc.PeakSpace)
		}
	}
}

func ExampleSCDistinguisher() {
	p := hardinst.SCParams{N: 1024, M: 8, Alpha: 2}
	sc := hardinst.SampleSetCover(p, 1, rng.New(42))
	d := NewSCDistinguisher(sc.N, p.M, SCConfig{Budget: p.M * p.BlockParam() * 8, Passes: 1}, rng.New(1))
	s := stream.FromInstance(sc.Inst, stream.Adversarial, nil)
	if _, err := stream.Run(s, d, 2); err != nil {
		panic(err)
	}
	fmt.Println("guess:", d.Decide(), "truth:", sc.Theta)
	// Output: guess: 1 truth: 1
}
