// Package lowerbound operationalizes the paper's lower bounds (Theorems 1,
// 3, 4 and 5) as measurable experiments.
//
// A lower bound quantifies over all algorithms and cannot be "run"; what it
// predicts, however, is that the *natural optimal strategy* — the one the
// proof shows is unavoidable — succeeds iff its space budget reaches the
// bound. For D_SC that strategy is per-pair complement sampling: deciding
// θ means finding whether some pair (S_i, T_i) covers the universe, i.e.
// whether the complements f_i(A_i) and f_i(B_i) are disjoint; detecting the
// single shared block of n/t elements inside a complement of ≈ n/3 elements
// requires ≈ t/3·ln m retained samples per pair, Θ̃(m·t) = Θ̃(m·n^{1/α})
// words in total, and p passes divide the requirement by p (each pass
// handles m/p pairs with the full per-pair sample). For D_MC the strategy
// estimates the intersection fraction |A_i∩B_i|/|A_i|, whose gap is Θ(ε),
// requiring ≈ ln m/ε² samples per pair and Θ̃(m/ε²) words in total.
//
// Experiments sweep the budget through the predicted threshold and observe
// the success transition (E2, E4, E5).
package lowerbound

import (
	"sort"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

// contains reports whether the sorted arena view s contains v (binary
// search over the stream item's int32 elements, no conversion copy).
func contains(s []int32, v int) bool {
	i := sort.Search(len(s), func(i int) bool { return int(s[i]) >= v })
	return i < len(s) && int(s[i]) == v
}

// itemHas reports whether the item contains element e. When a driver
// prefilled the item's word-mask run list (the parallel and lockstep
// drivers both do), membership is a binary search over the much shorter
// run list; otherwise it falls back to binary search over the elements —
// building runs just for a handful of membership probes would cost more
// than it saves.
func itemHas(item stream.Item, e int) bool {
	if item.Runs != nil {
		return bitset.RunsHave(item.Runs, e)
	}
	return contains(item.Elems, e)
}

// SCConfig configures the set cover θ-distinguisher.
type SCConfig struct {
	// Budget is the retained-words budget per pass.
	Budget int
	// Passes splits the pair indices into this many groups, one per pass;
	// each group gets the full budget (the Theorem 1 space/passes tradeoff).
	Passes int
}

// SCDistinguisher decides θ for a streamed D_SC instance within a space
// budget. It implements stream.PassAlgorithm; after the driver finishes,
// Decide returns the guess.
//
// Streaming convention: set IDs [0,m) are the S_i, IDs [m,2m) are the T_i
// (the D_SC construction); arrival order and ownership are irrelevant, so
// the same algorithm serves the adversarial and random-arrival experiments.
type SCDistinguisher struct {
	n, m int
	cfg  SCConfig
	r    *rng.RNG

	pass      int
	assigned  []int         // pair indices handled this pass
	perPair   int           // sample words per handled pair
	samples   map[int][]int // pair -> retained complement sample (first side seen)
	sampWords int
	checked   map[int]bool // pair -> fully evaluated
	zeroHit   bool         // some evaluated pair had zero complement collisions
	done      bool
}

// NewSCDistinguisher builds a distinguisher for a D_SC stream with universe
// n and m pairs (2m sets).
func NewSCDistinguisher(n, mPairs int, cfg SCConfig, r *rng.RNG) *SCDistinguisher {
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	if cfg.Budget < 0 {
		cfg.Budget = 0
	}
	return &SCDistinguisher{
		n: n, m: mPairs, cfg: cfg, r: r,
		samples: map[int][]int{},
		checked: map[int]bool{},
	}
}

// BeginPass implements stream.PassAlgorithm.
func (d *SCDistinguisher) BeginPass(pass int) {
	d.pass = pass
	d.samples = map[int][]int{}
	d.sampWords = 0
	d.assigned = d.assigned[:0]
	for i := pass; i < d.m; i += d.cfg.Passes {
		d.assigned = append(d.assigned, i)
	}
	if len(d.assigned) == 0 {
		d.perPair = 0
		return
	}
	d.perPair = d.cfg.Budget / len(d.assigned)
	if d.perPair == 0 && d.cfg.Budget > 0 {
		// Not even one word per assigned pair: handle only the first Budget
		// pairs of the group with one word each.
		d.assigned = d.assigned[:min(d.cfg.Budget, len(d.assigned))]
		d.perPair = 1
	}
}

func (d *SCDistinguisher) handles(pair int) bool {
	if d.perPair == 0 {
		return false
	}
	// assigned is the arithmetic progression pass, pass+P, ... possibly
	// truncated; membership is a range-and-stride check.
	if pair%d.cfg.Passes != d.pass%d.cfg.Passes {
		return false
	}
	idx := (pair - d.pass%d.cfg.Passes) / d.cfg.Passes
	return idx < len(d.assigned)
}

// Observe implements stream.PassAlgorithm.
func (d *SCDistinguisher) Observe(item stream.Item) {
	pair := item.ID
	if pair >= d.m {
		pair -= d.m
	}
	if d.checked[pair] || !d.handles(pair) {
		return
	}
	if samp, seen := d.samples[pair]; seen {
		// Second side of the pair: count retained complement elements that
		// are also missing from this side — collisions witness f(A∩B) ≠ ∅.
		hits := 0
		for _, e := range samp {
			if !itemHas(item, e) {
				hits++
			}
		}
		if hits == 0 {
			d.zeroHit = true
		}
		d.sampWords -= len(samp)
		delete(d.samples, pair)
		d.checked[pair] = true
		return
	}
	// First side: retain up to perPair uniform elements of the complement.
	want := d.perPair
	comp := d.n - len(item.Elems)
	if comp <= 0 {
		// The set is the whole universe: its pair trivially covers; treat as
		// a zero-hit witness (opt = 2 via this set alone plus anything).
		d.zeroHit = true
		d.checked[pair] = true
		return
	}
	if want > comp {
		want = comp
	}
	samp := sampleComplement(item.Elems, d.n, want, d.r)
	d.samples[pair] = samp
	d.sampWords += len(samp)
}

// EndPass implements stream.PassAlgorithm.
func (d *SCDistinguisher) EndPass() bool {
	d.done = d.pass+1 >= d.cfg.Passes
	return d.done
}

// Space implements stream.PassAlgorithm: retained sample words plus one
// word per evaluated pair verdict.
func (d *SCDistinguisher) Space() int {
	return d.sampWords + len(d.checked)
}

// Decide returns the θ guess: 1 iff some fully-observed pair showed zero
// complement collisions (its complements look disjoint, so the pair covers
// the universe).
func (d *SCDistinguisher) Decide() int {
	if d.zeroHit {
		return 1
	}
	return 0
}

// MCConfig configures the maximum coverage θ-distinguisher.
type MCConfig struct {
	// Budget is the retained-words budget per pass.
	Budget int
	// Passes splits pair indices into groups as in SCConfig.
	Passes int
	// T1 is the GHD universe size t1 (elements [0,t1) of the stream's
	// universe); public knowledge of the D_MC construction.
	T1 int
}

// MCDistinguisher decides θ for a streamed D_MC instance within a space
// budget, by estimating the intersection fraction |A_i ∩ B_i| / |A_i| of
// every pair: under θ=1 the starred pair's fraction is below 1/2 − Θ(ε),
// all other pairs sit above 1/2 + Θ(ε).
type MCDistinguisher struct {
	m   int
	cfg MCConfig
	r   *rng.RNG

	pass      int
	assigned  int // number of pairs assigned this pass (stride layout)
	perPair   int
	samples   map[int][]int
	sampWords int
	checked   map[int]bool
	sawLow    bool
	done      bool
}

// NewMCDistinguisher builds a distinguisher for a D_MC stream with m pairs.
func NewMCDistinguisher(mPairs int, cfg MCConfig, r *rng.RNG) *MCDistinguisher {
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	return &MCDistinguisher{
		m: mPairs, cfg: cfg, r: r,
		samples: map[int][]int{},
		checked: map[int]bool{},
	}
}

// BeginPass implements stream.PassAlgorithm.
func (d *MCDistinguisher) BeginPass(pass int) {
	d.pass = pass
	d.samples = map[int][]int{}
	d.sampWords = 0
	count := 0
	for i := pass; i < d.m; i += d.cfg.Passes {
		count++
	}
	d.assigned = count
	if count == 0 {
		d.perPair = 0
		return
	}
	d.perPair = d.cfg.Budget / count
	if d.perPair == 0 && d.cfg.Budget > 0 {
		d.assigned = min(d.cfg.Budget, count)
		d.perPair = 1
	}
}

func (d *MCDistinguisher) handles(pair int) bool {
	if d.perPair == 0 {
		return false
	}
	if pair%d.cfg.Passes != d.pass%d.cfg.Passes {
		return false
	}
	idx := (pair - d.pass%d.cfg.Passes) / d.cfg.Passes
	return idx < d.assigned
}

// u1Prefix returns the portion of a sorted set view within U1 = [0, t1).
func (d *MCDistinguisher) u1Prefix(elems []int32) []int32 {
	hi := sort.Search(len(elems), func(i int) bool { return int(elems[i]) >= d.cfg.T1 })
	return elems[:hi]
}

// Observe implements stream.PassAlgorithm.
func (d *MCDistinguisher) Observe(item stream.Item) {
	pair := item.ID
	if pair >= d.m {
		pair -= d.m
	}
	if d.checked[pair] || !d.handles(pair) {
		return
	}
	if samp, seen := d.samples[pair]; seen {
		// Retained samples are all inside U1, and sets are sorted, so
		// membership in the full set equals membership in its U1 prefix.
		hits := 0
		for _, e := range samp {
			if itemHas(item, e) {
				hits++
			}
		}
		if 2*hits < len(samp) {
			// Estimated intersection fraction below 1/2: the GHD pair looks
			// far apart ⇒ big union ⇒ candidate starred pair.
			d.sawLow = true
		}
		d.sampWords -= len(samp)
		delete(d.samples, pair)
		d.checked[pair] = true
		return
	}
	u1 := d.u1Prefix(item.Elems)
	want := d.perPair
	if want > len(u1) {
		want = len(u1)
	}
	if want == 0 {
		d.checked[pair] = true
		return
	}
	samp := make([]int, want)
	for i, idx := range d.r.KSubset(len(u1), want) {
		samp[i] = int(u1[idx])
	}
	d.samples[pair] = samp
	d.sampWords += want
}

// EndPass implements stream.PassAlgorithm.
func (d *MCDistinguisher) EndPass() bool {
	d.done = d.pass+1 >= d.cfg.Passes
	return d.done
}

// Space implements stream.PassAlgorithm.
func (d *MCDistinguisher) Space() int {
	return d.sampWords + len(d.checked)
}

// Decide returns the θ guess: 1 iff some pair's estimated intersection
// fraction fell below 1/2.
func (d *MCDistinguisher) Decide() int {
	if d.sawLow {
		return 1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sampleComplement returns `want` uniform distinct elements of
// [0,n) \ elems, where elems is a sorted arena view. It draws the
// complement positions with KSubset and resolves them by walking the gaps
// of elems, so no complement materialization or rejection loop is needed.
func sampleComplement(elems []int32, n, want int, r *rng.RNG) []int {
	comp := n - len(elems)
	if want > comp {
		want = comp
	}
	if want <= 0 {
		return nil
	}
	positions := r.KSubset(comp, want) // sorted positions within the complement
	out := make([]int, 0, want)
	pi := 0  // next wanted position
	pos := 0 // complement positions consumed so far
	ei := 0  // pointer into elems
	for e := 0; e < n && pi < len(positions); e++ {
		if ei < len(elems) && int(elems[ei]) == e {
			ei++
			continue
		}
		if pos == positions[pi] {
			out = append(out, e)
			pi++
		}
		pos++
	}
	return out
}
