package bitset

import (
	"testing"

	"streamcover/internal/rng"
)

// forceKernel pins the Grid kernel body for the duration of a test and
// restores the ambient choice afterwards.
func forceKernel(t testing.TB, name string) {
	t.Helper()
	prev := GridKernel()
	if err := SetGridKernel(name); err != nil {
		t.Fatalf("SetGridKernel(%q): %v", name, err)
	}
	t.Cleanup(func() {
		if err := SetGridKernel(prev); err != nil {
			t.Fatalf("restoring kernel %q: %v", prev, err)
		}
	})
}

// gridShapes is the lane/capacity matrix the grid tests sweep: lane counts
// below, at, and above the 4-lane SIMD column width (padded and unpadded
// strides), and capacities exercising empty, single-word, word-aligned and
// unaligned-tail layouts.
var gridShapes = []struct{ n, lanes int }{
	{1, 1}, {63, 1}, {64, 2}, {65, 3},
	{100, 4}, {129, 5}, {257, 7}, {320, 8},
	{1000, 11}, {4113, 16}, {777, 31},
}

// TestGridLaneOpsMatchBitset mirrors a random op sequence on every grid
// lane and on per-lane reference Bitsets, then checks the grid and the
// references agree element for element.
func TestGridLaneOpsMatchBitset(t *testing.T) {
	r := rng.New(7)
	for _, shape := range gridShapes {
		g := NewGrid(shape.n, shape.lanes)
		refs := make([]*Bitset, shape.lanes)
		for l := range refs {
			refs[l] = New(shape.n)
			if r.Bernoulli(0.3) {
				g.Fill(l)
				refs[l].Fill()
			}
			for op := 0; op < 200; op++ {
				e := r.Intn(shape.n)
				if r.Bernoulli(0.5) {
					g.Set(l, e)
					refs[l].Set(e)
				} else {
					g.Clear(l, e)
					refs[l].Clear(e)
				}
			}
			if r.Bernoulli(0.1) {
				g.Reset(l)
				refs[l].Reset()
			}
		}
		for l, ref := range refs {
			if !g.LaneBitset(l).Equal(ref) {
				t.Fatalf("n=%d lanes=%d: lane %d diverged from reference", shape.n, shape.lanes, l)
			}
			if g.Count(l) != ref.Count() {
				t.Fatalf("n=%d lanes=%d: lane %d Count=%d want %d", shape.n, shape.lanes, l, g.Count(l), ref.Count())
			}
			for e := 0; e < shape.n; e++ {
				if g.Has(l, e) != ref.Has(e) {
					t.Fatalf("n=%d lanes=%d: lane %d Has(%d) diverged", shape.n, shape.lanes, l, e)
				}
			}
			var got []int
			g.Range(l, func(e int) bool { got = append(got, e); return true })
			want := ref.Elems(nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d lanes=%d: lane %d Range yielded %d elems, want %d", shape.n, shape.lanes, l, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d lanes=%d: lane %d Range elem %d = %d, want %d", shape.n, shape.lanes, l, i, got[i], want[i])
				}
			}
		}
	}
}

// randomGrid fills a grid (and per-lane reference bitsets) with random
// content, including occasional full and empty lanes so the kernels see
// saturated and zero words.
func randomGrid(r *rng.RNG, n, lanes int) (*Grid, []*Bitset) {
	g := NewGrid(n, lanes)
	refs := make([]*Bitset, lanes)
	for l := range refs {
		refs[l] = New(n)
		switch {
		case r.Bernoulli(0.1):
			g.Fill(l)
			refs[l].Fill()
		case r.Bernoulli(0.1):
			// leave empty
		default:
			p := 0.1 + 0.8*r.Float64()
			for e := 0; e < n; e++ {
				if r.Bernoulli(p) {
					g.Set(l, e)
					refs[l].Set(e)
				}
			}
		}
	}
	return g, refs
}

// TestGridAndCountRunsParity is the dispatch parity property test: for
// every kernel body available on this machine, Grid.AndCountRuns must agree
// exactly with the per-lane scalar Bitset reference — across padded and
// unpadded strides, unaligned tail words, saturated/empty lanes, and run
// lists from empty to full-universe.
func TestGridAndCountRunsParity(t *testing.T) {
	for _, kernel := range GridKernels() {
		t.Run("kernel="+kernel, func(t *testing.T) {
			forceKernel(t, kernel)
			if got := GridKernel(); got != kernel {
				t.Fatalf("GridKernel()=%q after forcing %q", got, kernel)
			}
			r := rng.New(23)
			for _, shape := range gridShapes {
				g, refs := randomGrid(r, shape.n, shape.lanes)
				for trial := 0; trial < 20; trial++ {
					k := r.Intn(shape.n + 1)
					if trial == 0 {
						k = shape.n // full universe: every word occupied
					}
					runs := AppendRuns(nil, randomSorted(r, shape.n, k))
					counts := g.MakeCounts()
					// Pre-seed to verify accumulate (not overwrite) semantics.
					for i := range counts {
						counts[i] = int64(100 * i)
					}
					g.AndCountRuns(runs, counts)
					for l, ref := range refs {
						want := int64(100*l) + int64(ref.AndCountRuns(runs))
						if counts[l] != want {
							t.Fatalf("n=%d lanes=%d lane=%d: AndCountRuns=%d want %d",
								shape.n, shape.lanes, l, counts[l], want)
						}
					}
					for i := shape.lanes; i < len(counts); i++ {
						if counts[i] != int64(100*i) {
							t.Fatalf("n=%d lanes=%d: padding count %d mutated", shape.n, shape.lanes, i)
						}
					}
				}
			}
		})
	}
}

// TestGridKernelBodiesAgree runs every available kernel body on identical
// inputs and requires bit-identical counts — the direct scalar-vs-SIMD
// comparison (on machines without AVX2 it degenerates to scalar-vs-scalar).
func TestGridKernelBodiesAgree(t *testing.T) {
	kernels := GridKernels()
	r := rng.New(99)
	for _, shape := range gridShapes {
		g, _ := randomGrid(r, shape.n, shape.lanes)
		for trial := 0; trial < 10; trial++ {
			runs := AppendRuns(nil, randomSorted(r, shape.n, 1+r.Intn(shape.n)))
			results := make([][]int64, len(kernels))
			for ki, kernel := range kernels {
				forceKernel(t, kernel)
				counts := g.MakeCounts()
				g.AndCountRuns(runs, counts)
				results[ki] = counts
			}
			for ki := 1; ki < len(results); ki++ {
				for i := range results[0] {
					if results[ki][i] != results[0][i] {
						t.Fatalf("n=%d lanes=%d: kernel %q count[%d]=%d, %q says %d",
							shape.n, shape.lanes, kernels[ki], i, results[ki][i], kernels[0], results[0][i])
					}
				}
			}
		}
	}
}

// TestGridLaneRunKernelsMatchBitset checks the strided single-lane kernels
// (the one-live-guess fallbacks) against their Bitset counterparts.
func TestGridLaneRunKernelsMatchBitset(t *testing.T) {
	r := rng.New(55)
	for _, shape := range gridShapes {
		g, refs := randomGrid(r, shape.n, shape.lanes)
		for trial := 0; trial < 10; trial++ {
			runs := AppendRuns(nil, randomSorted(r, shape.n, r.Intn(shape.n+1)))
			for l, ref := range refs {
				if got, want := g.LaneAndCountRuns(l, runs), ref.AndCountRuns(runs); got != want {
					t.Fatalf("lane %d: LaneAndCountRuns=%d want %d", l, got, want)
				}
				if got, want := g.LaneAndRunsAppend(l, nil, runs), ref.AndRunsAppend(nil, runs); !equalInt32(got, want) {
					t.Fatalf("lane %d: LaneAndRunsAppend=%v want %v", l, got, want)
				}
			}
			// Mutating kernels: apply to clones of the grid state.
			mg := NewGrid(shape.n, shape.lanes)
			for l := range refs {
				mg.CopyLane(l, g, l)
			}
			for l, ref := range refs {
				rb := ref.Clone()
				if got, want := mg.LaneAndNotRuns(l, runs), rb.AndNotRuns(runs); got != want {
					t.Fatalf("lane %d: LaneAndNotRuns removed %d, want %d", l, got, want)
				}
				if !mg.LaneBitset(l).Equal(rb) {
					t.Fatalf("lane %d: LaneAndNotRuns state diverged", l)
				}
				if got, want := mg.LaneOrRuns(l, runs), rb.SetRuns(runs); got != want {
					t.Fatalf("lane %d: LaneOrRuns added %d, want %d", l, got, want)
				}
				if !mg.LaneBitset(l).Equal(rb) {
					t.Fatalf("lane %d: LaneOrRuns state diverged", l)
				}
			}
		}
	}
}

// TestGridLaneElemKernelsMatchBitset checks the element-at-a-time lane
// kernels (the no-run-list fallbacks) against per-element Bitset
// references, including out-of-universe elements, which count as absent.
func TestGridLaneElemKernelsMatchBitset(t *testing.T) {
	r := rng.New(56)
	for _, shape := range gridShapes {
		g, refs := randomGrid(r, shape.n, shape.lanes)
		for trial := 0; trial < 10; trial++ {
			elems := randomSorted(r, shape.n, r.Intn(shape.n+1))
			elems = append(elems, int32(shape.n), -1) // absent by contract
			for l, ref := range refs {
				wantCnt := 0
				var wantKeep []int32
				for _, e := range elems {
					if ref.Has(int(e)) {
						wantCnt++
						wantKeep = append(wantKeep, e)
					}
				}
				if got := g.LaneCountElems(l, elems); got != wantCnt {
					t.Fatalf("lane %d: LaneCountElems=%d want %d", l, got, wantCnt)
				}
				if got := g.LaneFilterElemsAppend(l, nil, elems); !equalInt32(got, wantKeep) {
					t.Fatalf("lane %d: LaneFilterElemsAppend=%v want %v", l, got, wantKeep)
				}
			}
			mg := NewGrid(shape.n, shape.lanes)
			for l := range refs {
				mg.CopyLane(l, g, l)
			}
			for l, ref := range refs {
				rb := ref.Clone()
				want := 0
				for _, e := range elems {
					if rb.Has(int(e)) {
						rb.Clear(int(e))
						want++
					}
				}
				if got := mg.LaneClearElems(l, elems); got != want {
					t.Fatalf("lane %d: LaneClearElems removed %d, want %d", l, got, want)
				}
				if !mg.LaneBitset(l).Equal(rb) {
					t.Fatalf("lane %d: LaneClearElems state diverged", l)
				}
			}
		}
	}
}

// TestGridCopyLaneAcrossShapes checks lane migration between grids of
// different lane counts (the sieve's refresh path).
func TestGridCopyLaneAcrossShapes(t *testing.T) {
	r := rng.New(3)
	src, refs := randomGrid(r, 321, 5)
	dst := NewGrid(321, 9)
	for l := 0; l < 5; l++ {
		dst.CopyLane(8-l, src, l)
	}
	for l := 0; l < 5; l++ {
		if !dst.LaneBitset(8 - l).Equal(refs[l]) {
			t.Fatalf("lane %d did not survive migration", l)
		}
	}
	for l := 0; l < 4; l++ {
		if dst.Count(l) != 0 {
			t.Fatalf("untouched destination lane %d is non-empty", l)
		}
	}
}

// TestSetGridKernel checks the knob's error cases and that the reported
// kernel tracks the forced one.
func TestSetGridKernel(t *testing.T) {
	forceKernel(t, KernelScalar) // also registers restore of the ambient body
	if err := SetGridKernel("no-such-kernel"); err == nil {
		t.Fatal("SetGridKernel accepted an unknown kernel name")
	}
	if got := GridKernel(); got != KernelScalar {
		t.Fatalf("GridKernel()=%q after failed SetGridKernel, want scalar", got)
	}
	for _, k := range GridKernels() {
		if err := SetGridKernel(k); err != nil {
			t.Fatalf("SetGridKernel(%q): %v", k, err)
		}
		if got := GridKernel(); got != k {
			t.Fatalf("GridKernel()=%q want %q", got, k)
		}
	}
}

// BenchmarkGridAndCountRuns measures the grid sweep against the per-guess
// Bitset loop it replaces, for each kernel body: 16 lanes of a 16384-element
// universe probed by 512-element sets.
func BenchmarkGridAndCountRuns(b *testing.B) {
	const n, lanes, setSize, nSets = 16384, 16, 512, 64
	r := rng.New(1)
	g, refs := randomGrid(r, n, lanes)
	runLists := make([][]Run, nSets)
	for i := range runLists {
		runLists[i] = AppendRuns(nil, randomSorted(r, n, setSize))
	}
	counts := g.MakeCounts()
	for _, kernel := range GridKernels() {
		b.Run("grid16/kernel="+kernel, func(b *testing.B) {
			forceKernel(b, kernel)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for ci := range counts {
					counts[ci] = 0
				}
				g.AndCountRuns(runLists[i%nSets], counts)
			}
		})
	}
	b.Run("perguess16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runs := runLists[i%nSets]
			for l, ref := range refs {
				counts[l] = int64(ref.AndCountRuns(runs))
			}
		}
	})
}
