package bitset

import "unsafe"

// archHasAVX2 reports whether this CPU and OS support AVX2: CPUID leaf 7
// AVX2, CPUID leaf 1 OSXSAVE+AVX, and XCR0 confirming the OS preserves
// XMM+YMM state across context switches.
var archHasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// runWordOffset and runMaskOffset pin the Run field layout the assembly
// body hard-codes (Word at 0, Mask at 8, 16-byte entries); the compile-time
// assertions below fail the build if the struct ever moves.
const (
	runSize       = unsafe.Sizeof(Run{})
	runMaskOffset = unsafe.Offsetof(Run{}.Mask)
)

var (
	_ [1]struct{} = [runSize - 15]struct{}{}      // require Sizeof(Run) == 16
	_ [1]struct{} = [runMaskOffset - 7]struct{}{} // require Offsetof(Mask) == 8
)

// cpuidex executes CPUID with the given leaf and subleaf.
//
//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// gridAndCountRunsAVX2 is the AVX2 body of Grid.AndCountRuns: for each
// 4-lane column of the grid it accumulates one 256-bit popcount vector over
// all runs (the Muła nibble-LUT VPSHUFB + VPSADBW reduction), then folds it
// into counts. Requires stride % 4 == 0 and nruns ≥ 1; bit-exact with
// gridAndCountRunsScalar.
//
//go:noescape
func gridAndCountRunsAVX2(words *uint64, stride int, runs *Run, nruns int, counts *int64)
