package bitset

import "math/bits"

// Run is one word of a set's word-mask representation: the elements
// e ∈ [64·Word, 64·Word+64) whose bits are set in Mask. A run list — sorted
// by Word, one entry per occupied word — represents a sparse set in a form
// every bitset kernel below consumes word-parallel: probing a 500-element
// set against a bitset costs one AND+popcount per occupied word instead of
// one load+shift+branch per element.
//
// Run lists are built once per streamed item per pass (by the stream
// producer or by the first consumer) from the item's sorted element view and
// shared read-only by every consumer; see stream.Item.Runs.
type Run struct {
	Word int32
	Mask uint64
}

// AppendRuns appends the run list of the sorted, duplicate-free element
// slice to dst and returns it. One Run is emitted per occupied 64-element
// word, in increasing Word order. The build costs one branch per element —
// about the price of one scalar probe loop — so it pays for itself from the
// second consumer onward; build once, probe many.
func AppendRuns(dst []Run, elems []int32) []Run {
	if len(elems) == 0 {
		return dst
	}
	w := elems[0] >> 6
	mask := uint64(1) << (uint32(elems[0]) & 63)
	for _, e := range elems[1:] {
		if ew := e >> 6; ew != w {
			dst = append(dst, Run{Word: w, Mask: mask})
			w, mask = ew, 0
		}
		mask |= 1 << (uint32(e) & 63)
	}
	return append(dst, Run{Word: w, Mask: mask})
}

// RunsLen returns the number of elements a run list represents.
func RunsLen(runs []Run) int {
	c := 0
	for _, r := range runs {
		c += bits.OnesCount64(r.Mask)
	}
	return c
}

// RunsHave reports whether element e is in the run list (binary search on
// the Word column, then a mask test).
func RunsHave(runs []Run, e int) bool {
	w := int32(e >> 6)
	lo, hi := 0, len(runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if runs[mid].Word < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(runs) && runs[lo].Word == w && runs[lo].Mask&(1<<(uint(e)&63)) != 0
}

// AndCountRuns returns |b ∩ runs| without modifying b: one AND+popcount per
// occupied word. The runs must fit within b's capacity (they do whenever
// they were built from elements of the same universe); out-of-range words
// panic with an index error.
func (b *Bitset) AndCountRuns(runs []Run) int {
	c := 0
	for _, r := range runs {
		c += bits.OnesCount64(b.words[r.Word] & r.Mask)
	}
	return c
}

// AndNotRuns sets b to b \ runs and returns the number of elements removed
// (the popcount delta), so callers tracking |b| update it for free.
func (b *Bitset) AndNotRuns(runs []Run) (removed int) {
	for _, r := range runs {
		w := b.words[r.Word]
		if inter := w & r.Mask; inter != 0 {
			b.words[r.Word] = w &^ r.Mask
			removed += bits.OnesCount64(inter)
		}
	}
	return removed
}

// SetRuns sets b to b ∪ runs and returns the number of elements added (the
// popcount delta), so callers tracking |b| update it for free.
func (b *Bitset) SetRuns(runs []Run) (added int) {
	for _, r := range runs {
		w := b.words[r.Word]
		if nw := w | r.Mask; nw != w {
			b.words[r.Word] = nw
			added += bits.OnesCount64(nw &^ w)
		}
	}
	return added
}

// AndRunsAppend appends the elements of b ∩ runs to dst in increasing order
// and returns it: the word-parallel form of "filter these sorted elements
// by membership in b" (non-intersecting words cost one AND each).
func (b *Bitset) AndRunsAppend(dst []int32, runs []Run) []int32 {
	for _, r := range runs {
		inter := b.words[r.Word] & r.Mask
		base := r.Word << 6
		for inter != 0 {
			t := bits.TrailingZeros64(inter)
			dst = append(dst, base+int32(t))
			inter &= inter - 1
		}
	}
	return dst
}
