// AVX2 body of Grid.AndCountRuns plus the CPUID/XGETBV probes behind its
// dispatch. See grid_kernel_amd64.go for the Go declarations and DESIGN.md
// §2.7 for the kernel contract.

#include "textflag.h"

// 16-entry nibble popcount table, repeated across both 128-bit halves so
// VPSHUFB looks it up in every byte lane.
DATA popctab<>+0x00(SB)/8, $0x0302020102010100
DATA popctab<>+0x08(SB)/8, $0x0403030203020201
DATA popctab<>+0x10(SB)/8, $0x0302020102010100
DATA popctab<>+0x18(SB)/8, $0x0403030203020201
GLOBL popctab<>(SB), RODATA|NOPTR, $32

DATA nibmask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibmask<>(SB), RODATA|NOPTR, $32

// func gridAndCountRunsAVX2(words *uint64, stride int, runs *Run, nruns int, counts *int64)
//
// Outer loop: 4-lane columns of the grid (stride must be a multiple of 4).
// Inner loop: the run list; each iteration broadcasts the run mask, ANDs it
// with the 4 lane words of the run's row, popcounts the 4 qwords via the
// Muła nibble LUT, and accumulates into a YMM register of 4 int64 counts.
// Keeping the accumulator live across the whole run list means one
// load+store of counts per column, not per run.
TEXT ·gridAndCountRunsAVX2(SB), NOSPLIT, $0-40
	MOVQ  words+0(FP), SI
	MOVQ  stride+8(FP), DX
	MOVQ  runs+16(FP), BX
	MOVQ  nruns+24(FP), CX
	MOVQ  counts+32(FP), DI
	TESTQ CX, CX
	JZ    done
	VMOVDQU popctab<>(SB), Y15
	VMOVDQU nibmask<>(SB), Y14
	VPXOR   Y13, Y13, Y13       // zero, for the VPSADBW reduction
	SHLQ  $3, DX                // DX = row size in bytes (stride words)
	XORQ  R10, R10              // byte offset of the current 4-lane column

laneloop:
	VPXOR Y0, Y0, Y0            // per-column count accumulator (4×int64)
	MOVQ  BX, R11               // run cursor
	MOVQ  CX, R12               // runs remaining
	LEAQ  (SI)(R10*1), R13      // column base: words + column offset

runloop:
	MOVLQSX (R11), R8           // r.Word (int32)
	IMULQ   DX, R8              // byte offset of the run's row
	VPBROADCASTQ 8(R11), Y3     // r.Mask in all 4 qwords
	VPAND   (R13)(R8*1), Y3, Y1 // 4 lane words ∩ mask
	VPAND   Y1, Y14, Y2         // low nibbles
	VPSRLQ  $4, Y1, Y1
	VPAND   Y1, Y14, Y1         // high nibbles
	VPSHUFB Y2, Y15, Y2         // per-byte popcount of low nibbles
	VPSHUFB Y1, Y15, Y1         // per-byte popcount of high nibbles
	VPADDB  Y2, Y1, Y1          // per-byte popcount
	VPSADBW Y13, Y1, Y1         // horizontal sum per qword
	VPADDQ  Y1, Y0, Y0
	ADDQ    $16, R11            // next Run (16 bytes)
	DECQ    R12
	JNZ     runloop

	VPADDQ  (DI)(R10*1), Y0, Y0 // counts[col..col+4] += accumulator
	VMOVDQU Y0, (DI)(R10*1)
	ADDQ    $32, R10            // next 4-lane column (4 qwords)
	CMPQ    R10, DX
	JB      laneloop
	VZEROUPPER

done:
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
