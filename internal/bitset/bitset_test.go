package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(100)
	if b.Cap() != 100 {
		t.Fatalf("Cap() = %d, want 100", b.Cap())
	}
	if !b.Empty() || b.Count() != 0 {
		t.Fatalf("new bitset not empty: count=%d", b.Count())
	}
}

func TestSetHasClear(t *testing.T) {
	b := New(130)
	for _, e := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Has(e) {
			t.Fatalf("Has(%d) before Set", e)
		}
		b.Set(e)
		if !b.Has(e) {
			t.Fatalf("!Has(%d) after Set", e)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Has(64) after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, e := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", e)
				}
			}()
			b.Set(e)
		}()
	}
	if b.Has(-1) || b.Has(10) {
		t.Fatal("Has out of range should be false, not panic")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("Or with mismatched capacity did not panic")
		}
	}()
	a.Or(b)
}

func TestFillNotTrim(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Fill Count = %d", n, got)
		}
		b.Not()
		if !b.Empty() {
			t.Fatalf("n=%d: Not(Fill) not empty", n)
		}
		b.Not()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Not(Not(Fill)) Count = %d", n, got)
		}
	}
}

func TestElemsRoundTrip(t *testing.T) {
	elems := []int{3, 17, 64, 65, 199}
	b := FromSlice(200, elems)
	got := b.Elems(nil)
	if len(got) != len(elems) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range elems {
		if got[i] != elems[i] {
			t.Fatalf("Elems = %v, want %v", got, elems)
		}
	}
}

func TestNext(t *testing.T) {
	b := FromSlice(200, []int{5, 64, 130})
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {130, 130}, {131, -1}, {-3, 5}, {500, -1},
	}
	for _, c := range cases {
		if got := b.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	b := FromSlice(100, []int{1, 2, 3, 4, 5})
	var seen []int
	b.Range(func(e int) bool {
		seen = append(seen, e)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("Range visited %v, want 3 elements", seen)
	}
}

// randomPair builds two random bitsets over the same universe along with
// reference element maps.
func randomPair(r *rand.Rand, n int) (a, b *Bitset, ma, mb map[int]bool) {
	a, b = New(n), New(n)
	ma, mb = map[int]bool{}, map[int]bool{}
	for e := 0; e < n; e++ {
		if r.Intn(2) == 0 {
			a.Set(e)
			ma[e] = true
		}
		if r.Intn(2) == 0 {
			b.Set(e)
			mb[e] = true
		}
	}
	return
}

func TestSetAlgebraAgainstMaps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		a, b, ma, mb := randomPair(r, n)

		union, inter, diff := 0, 0, 0
		for e := 0; e < n; e++ {
			if ma[e] || mb[e] {
				union++
			}
			if ma[e] && mb[e] {
				inter++
			}
			if ma[e] && !mb[e] {
				diff++
			}
		}
		if got := a.OrCount(b); got != union {
			t.Fatalf("n=%d OrCount=%d want %d", n, got, union)
		}
		if got := a.AndCount(b); got != inter {
			t.Fatalf("n=%d AndCount=%d want %d", n, got, inter)
		}
		if got := a.AndNotCount(b); got != diff {
			t.Fatalf("n=%d AndNotCount=%d want %d", n, got, diff)
		}
		if got := a.Intersects(b); got != (inter > 0) {
			t.Fatalf("n=%d Intersects=%v want %v", n, got, inter > 0)
		}

		// Mutating ops must agree with the counting ops.
		u := a.Clone()
		u.Or(b)
		if u.Count() != union {
			t.Fatalf("Or count=%d want %d", u.Count(), union)
		}
		i := a.Clone()
		i.And(b)
		if i.Count() != inter {
			t.Fatalf("And count=%d want %d", i.Count(), inter)
		}
		d := a.Clone()
		d.AndNot(b)
		if d.Count() != diff {
			t.Fatalf("AndNot count=%d want %d", d.Count(), diff)
		}
		if !i.SubsetOf(a) || !i.SubsetOf(b) || !d.SubsetOf(a) {
			t.Fatal("subset relations violated")
		}
	}
}

// Property: De Morgan's law ¬(A ∪ B) = ¬A ∩ ¬B over a fixed universe.
func TestQuickDeMorgan(t *testing.T) {
	const n = 137
	f := func(xs, ys []uint16) bool {
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		lhs := a.Clone()
		lhs.Or(b)
		lhs.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.And(nb)
		return lhs.Equal(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: |A| + |B| = |A ∪ B| + |A ∩ B|.
func TestQuickInclusionExclusion(t *testing.T) {
	const n = 200
	f := func(xs, ys []uint16) bool {
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		return a.Count()+b.Count() == a.OrCount(b)+a.AndCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Elems returns sorted unique values that round-trip.
func TestQuickElemsRoundTrip(t *testing.T) {
	const n = 500
	f := func(xs []uint16) bool {
		a := New(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		elems := a.Elems(nil)
		for i := 1; i < len(elems); i++ {
			if elems[i-1] >= elems[i] {
				return false
			}
		}
		return FromSlice(n, elems).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, y, _, _ := randomPair(r, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}

func BenchmarkElems(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, _, _, _ := randomPair(r, 1<<16)
	buf := make([]int, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.Elems(buf[:0])
	}
}
