package bitset

import (
	"testing"

	"streamcover/internal/rng"
)

// randomSorted returns a random sorted duplicate-free subset of [0, n).
func randomSorted(r *rng.RNG, n, k int) []int32 {
	elems := r.KSubset(n, k)
	out := make([]int32, len(elems))
	for i, e := range elems {
		out[i] = int32(e)
	}
	return out
}

// TestRunKernelsMatchScalar is the scalar-vs-run-kernel equivalence
// property test: on random bitsets and random sorted element lists, every
// run kernel must agree exactly with its element-at-a-time counterpart.
func TestRunKernelsMatchScalar(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(300)
		k := r.Intn(n + 1)
		elems := randomSorted(r, n, k)
		runs := AppendRuns(nil, elems)

		// Run-list structure: sorted by word, one entry per occupied word,
		// round-trips to the input elements.
		for i := 1; i < len(runs); i++ {
			if runs[i-1].Word >= runs[i].Word {
				t.Fatalf("trial %d: runs not strictly word-sorted: %v", trial, runs)
			}
		}
		if got := RunsLen(runs); got != len(elems) {
			t.Fatalf("trial %d: RunsLen=%d want %d", trial, got, len(elems))
		}
		full := New(n)
		full.Fill()
		if got := full.AndRunsAppend(nil, runs); !equalInt32(got, elems) {
			t.Fatalf("trial %d: run list does not round-trip: got %v want %v", trial, got, elems)
		}

		// RunsHave == scalar membership for every universe element.
		set := New(n)
		set.SetAll(elems)
		for e := 0; e < n; e++ {
			if RunsHave(runs, e) != set.Has(e) {
				t.Fatalf("trial %d: RunsHave(%d)=%v, scalar says %v", trial, e, RunsHave(runs, e), set.Has(e))
			}
		}

		// A random bitset to probe against.
		b := New(n)
		for e := 0; e < n; e++ {
			if r.Bernoulli(0.4) {
				b.Set(e)
			}
		}

		if got, want := b.AndCountRuns(runs), b.AndCount(set); got != want {
			t.Fatalf("trial %d: AndCountRuns=%d, scalar AndCount=%d", trial, got, want)
		}

		// AndRunsAppend == scalar filter of elems by membership in b.
		var wantFiltered []int32
		for _, e := range elems {
			if b.Has(int(e)) {
				wantFiltered = append(wantFiltered, e)
			}
		}
		if got := b.AndRunsAppend(nil, runs); !equalInt32(got, wantFiltered) {
			t.Fatalf("trial %d: AndRunsAppend=%v want %v", trial, got, wantFiltered)
		}

		// AndNotRuns: same final set as scalar AndNot, removed == |b| delta.
		bRuns, bScalar := b.Clone(), b.Clone()
		before := bRuns.Count()
		removed := bRuns.AndNotRuns(runs)
		bScalar.AndNot(set)
		if !bRuns.Equal(bScalar) {
			t.Fatalf("trial %d: AndNotRuns result differs from scalar AndNot", trial)
		}
		if removed != before-bRuns.Count() {
			t.Fatalf("trial %d: AndNotRuns removed=%d, true delta=%d", trial, removed, before-bRuns.Count())
		}

		// SetRuns: same final set as scalar Or, added == |b| delta.
		bRuns, bScalar = b.Clone(), b.Clone()
		before = bRuns.Count()
		added := bRuns.SetRuns(runs)
		bScalar.Or(set)
		if !bRuns.Equal(bScalar) {
			t.Fatalf("trial %d: SetRuns result differs from scalar Or", trial)
		}
		if added != bRuns.Count()-before {
			t.Fatalf("trial %d: SetRuns added=%d, true delta=%d", trial, added, bRuns.Count()-before)
		}
	}
}

func TestRunKernelsEmpty(t *testing.T) {
	if runs := AppendRuns(nil, nil); len(runs) != 0 {
		t.Fatalf("AppendRuns(nil) = %v, want empty", runs)
	}
	b := New(100)
	b.Fill()
	if b.AndCountRuns(nil) != 0 || b.AndNotRuns(nil) != 0 || b.SetRuns(nil) != 0 {
		t.Fatal("empty run list must be a no-op on every kernel")
	}
	if got := b.AndRunsAppend(nil, nil); len(got) != 0 {
		t.Fatalf("AndRunsAppend with empty runs = %v", got)
	}
	if RunsHave(nil, 5) {
		t.Fatal("RunsHave on empty run list must be false")
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
