package bitset

import (
	"fmt"
	"math/bits"
)

// Grid is a bank of equal-capacity bitsets ("lanes") stored bit-sliced:
// word-interleaved, lane-major within each word row. Word w of lane g lives
// at words[w*stride + g], so the w-th word of every lane is one contiguous
// row of the arena. One sweep over a streamed set's word-mask run list then
// updates every lane with stride-1 loads — the memory layout the guess-grid
// Observe loops want, and the layout the SIMD kernel bodies require.
//
// The row width (stride) is the lane count rounded up to a multiple of 4
// when there are at least 4 lanes, so a row is always a whole number of
// 256-bit vectors; the padding lanes exist only in memory and are never
// observable. A 1-lane grid keeps stride 1, which makes it byte-identical
// to a dense Bitset — standalone single-guess runs pay no interleaving tax.
//
// Lane-mutating methods take the lane index first; like Bitset, capacity
// mismatches and out-of-range lanes panic rather than failing silently.
type Grid struct {
	words  []uint64
	n      int // per-lane capacity in bits
	lanes  int
	stride int // row width in words: lanes, padded up for the SIMD kernels
	rows   int // words per lane: ceil(n/64)
}

// NewGrid returns a grid of `lanes` empty bitsets, each with capacity for
// integers in [0, n).
func NewGrid(n, lanes int) *Grid {
	if n < 0 {
		panic("bitset: negative grid capacity")
	}
	if lanes < 1 {
		panic("bitset: grid needs at least one lane")
	}
	stride := lanes
	if lanes >= 4 {
		stride = (lanes + 3) &^ 3
	}
	rows := (n + wordBits - 1) / wordBits
	return &Grid{
		words:  make([]uint64, rows*stride),
		n:      n,
		lanes:  lanes,
		stride: stride,
		rows:   rows,
	}
}

// Cap reports the per-lane capacity (the universe size each lane was built
// for).
func (g *Grid) Cap() int { return g.n }

// Lanes reports the number of lanes in the grid.
func (g *Grid) Lanes() int { return g.lanes }

// Width reports the padded row width in words — the length AndCountRuns
// requires of its counts slice. Width() == Lanes() rounded up to a multiple
// of 4 (for grids of at least 4 lanes).
func (g *Grid) Width() int { return g.stride }

// MakeCounts returns a zeroed count accumulator of the padded width, sized
// for AndCountRuns. Entries [0, Lanes()) are the per-lane counts; the
// padding tail is always zero.
func (g *Grid) MakeCounts() []int64 { return make([]int64, g.stride) }

func (g *Grid) checkLane(lane int) {
	if lane < 0 || lane >= g.lanes {
		panic(fmt.Sprintf("bitset: lane %d out of range [0,%d)", lane, g.lanes))
	}
}

func (g *Grid) checkElem(e int) {
	if e < 0 || e >= g.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, g.n))
	}
}

// Set adds e to the given lane.
func (g *Grid) Set(lane, e int) {
	g.checkLane(lane)
	g.checkElem(e)
	g.words[(e/wordBits)*g.stride+lane] |= 1 << (uint(e) % wordBits)
}

// Clear removes e from the given lane.
func (g *Grid) Clear(lane, e int) {
	g.checkLane(lane)
	g.checkElem(e)
	g.words[(e/wordBits)*g.stride+lane] &^= 1 << (uint(e) % wordBits)
}

// Has reports whether e is in the given lane.
func (g *Grid) Has(lane, e int) bool {
	g.checkLane(lane)
	if e < 0 || e >= g.n {
		return false
	}
	return g.words[(e/wordBits)*g.stride+lane]&(1<<(uint(e)%wordBits)) != 0
}

// Reset removes all elements from the given lane.
func (g *Grid) Reset(lane int) {
	g.checkLane(lane)
	for w := 0; w < g.rows; w++ {
		g.words[w*g.stride+lane] = 0
	}
}

// Fill adds every element of the universe to the given lane.
func (g *Grid) Fill(lane int) {
	g.checkLane(lane)
	for w := 0; w < g.rows; w++ {
		g.words[w*g.stride+lane] = ^uint64(0)
	}
	if r := uint(g.n) % wordBits; r != 0 && g.rows > 0 {
		g.words[(g.rows-1)*g.stride+lane] &= (1 << r) - 1
	}
}

// Count returns the number of elements in the given lane.
func (g *Grid) Count(lane int) int {
	g.checkLane(lane)
	c := 0
	for w := 0; w < g.rows; w++ {
		c += bits.OnesCount64(g.words[w*g.stride+lane])
	}
	return c
}

// Range calls fn for each element of the given lane in increasing order; it
// stops early if fn returns false.
func (g *Grid) Range(lane int, fn func(e int) bool) {
	g.checkLane(lane)
	for w := 0; w < g.rows; w++ {
		word := g.words[w*g.stride+lane]
		base := w * wordBits
		for word != 0 {
			t := bits.TrailingZeros64(word)
			if !fn(base + t) {
				return
			}
			word &= word - 1
		}
	}
}

// CopyLane overwrites the given lane with lane srcLane of src. The grids
// must have equal capacity; they may differ in lane count (this is how the
// sieve migrates surviving guesses into a re-shaped grid).
func (g *Grid) CopyLane(lane int, src *Grid, srcLane int) {
	g.checkLane(lane)
	src.checkLane(srcLane)
	if g.n != src.n {
		panic(fmt.Sprintf("bitset: grid capacity mismatch %d vs %d", g.n, src.n))
	}
	for w := 0; w < g.rows; w++ {
		g.words[w*g.stride+lane] = src.words[w*src.stride+srcLane]
	}
}

// LaneBitset returns the given lane as a freshly allocated Bitset — the
// de-sliced view, used by parity tests and one-off inspection, not on hot
// paths.
func (g *Grid) LaneBitset(lane int) *Bitset {
	g.checkLane(lane)
	b := New(g.n)
	for w := 0; w < g.rows; w++ {
		b.words[w] = g.words[w*g.stride+lane]
	}
	return b
}

// AndCountRuns accumulates |lane ∩ runs| into counts[lane] for every lane
// at once: for each run it sweeps one contiguous row of the arena, so all
// lanes are probed with stride-1 loads. counts must have length at least
// Width() (use MakeCounts); entries are added to, not overwritten, and the
// padding entries [Lanes(), Width()) stay untouched-by-meaning (padding
// lanes hold no bits, so their counts never change).
//
// This is the dispatched kernel: the body is the scalar loop below or the
// AVX2 assembly body, selected at init by CPU capability and the
// STREAMCOVER_KERNEL knob (see SetGridKernel). Both bodies are bit-exact.
func (g *Grid) AndCountRuns(runs []Run, counts []int64) {
	if len(counts) < g.stride {
		panic(fmt.Sprintf("bitset: counts length %d shorter than grid width %d", len(counts), g.stride))
	}
	if len(runs) == 0 || g.rows == 0 {
		return
	}
	if useAVX2Kernel() && g.stride%4 == 0 {
		gridAndCountRunsAVX2(&g.words[0], g.stride, &runs[0], len(runs), &counts[0])
		return
	}
	gridAndCountRunsScalar(g.words, g.stride, runs, counts)
}

// gridAndCountRunsScalar is the pure-Go reference body of AndCountRuns: the
// SIMD bodies must match it bit for bit on every input (see the dispatch
// parity tests).
func gridAndCountRunsScalar(words []uint64, stride int, runs []Run, counts []int64) {
	counts = counts[:stride]
	for _, r := range runs {
		base := int(r.Word) * stride
		row := words[base : base+stride : base+stride]
		m := r.Mask
		for i, w := range row {
			counts[i] += int64(bits.OnesCount64(w & m))
		}
	}
}

// LaneAndCountRuns returns |lane ∩ runs| for a single lane: the strided
// fallback used when only one guess of a group is still live, where a
// full-row sweep would pay for the dead lanes.
func (g *Grid) LaneAndCountRuns(lane int, runs []Run) int {
	g.checkLane(lane)
	words, stride := g.words, g.stride
	c := 0
	if stride == 1 {
		// Degenerate 1-lane grid: dense layout (a lone Run probes here).
		for _, r := range runs {
			c += bits.OnesCount64(words[r.Word] & r.Mask)
		}
		return c
	}
	for _, r := range runs {
		c += bits.OnesCount64(words[int(r.Word)*stride+lane] & r.Mask)
	}
	return c
}

// LaneAndNotRuns sets the lane to lane \ runs and returns the number of
// elements removed, mirroring Bitset.AndNotRuns.
func (g *Grid) LaneAndNotRuns(lane int, runs []Run) (removed int) {
	g.checkLane(lane)
	words, stride := g.words, g.stride
	for _, r := range runs {
		i := int(r.Word)*stride + lane
		w := words[i]
		if inter := w & r.Mask; inter != 0 {
			words[i] = w &^ r.Mask
			removed += bits.OnesCount64(inter)
		}
	}
	return removed
}

// LaneOrRuns sets the lane to lane ∪ runs and returns the number of
// elements added, mirroring Bitset.SetRuns.
func (g *Grid) LaneOrRuns(lane int, runs []Run) (added int) {
	g.checkLane(lane)
	for _, r := range runs {
		i := int(r.Word)*g.stride + lane
		w := g.words[i]
		if nw := w | r.Mask; nw != w {
			g.words[i] = nw
			added += bits.OnesCount64(nw &^ w)
		}
	}
	return added
}

// LaneAndRunsAppend appends the elements of lane ∩ runs to dst in
// increasing order and returns it, mirroring Bitset.AndRunsAppend.
func (g *Grid) LaneAndRunsAppend(lane int, dst []int32, runs []Run) []int32 {
	g.checkLane(lane)
	for _, r := range runs {
		inter := g.words[int(r.Word)*g.stride+lane] & r.Mask
		base := r.Word << 6
		for inter != 0 {
			t := bits.TrailingZeros64(inter)
			dst = append(dst, base+int32(t))
			inter &= inter - 1
		}
	}
	return dst
}

// LaneCountElems returns how many of elems are present in the lane: the
// element-at-a-time companion of LaneAndCountRuns for items that carry no
// run list. Out-of-universe elements count as absent, matching Has.
func (g *Grid) LaneCountElems(lane int, elems []int32) int {
	g.checkLane(lane)
	words, stride, n := g.words, g.stride, g.n
	c := 0
	if stride == 1 {
		// Degenerate 1-lane grid: dense layout, no stride multiply on the
		// address path (a lone Run probes here per element).
		for _, e := range elems {
			if uint(e) < uint(n) && words[uint(e)/wordBits]&(1<<(uint(e)%wordBits)) != 0 {
				c++
			}
		}
		return c
	}
	for _, e := range elems {
		if uint(e) >= uint(n) {
			continue
		}
		if words[(int(e)/wordBits)*stride+lane]&(1<<(uint(e)%wordBits)) != 0 {
			c++
		}
	}
	return c
}

// LaneFilterElemsAppend appends to dst the elements of elems present in the
// lane, preserving order: the element-at-a-time companion of
// LaneAndRunsAppend.
func (g *Grid) LaneFilterElemsAppend(lane int, dst, elems []int32) []int32 {
	g.checkLane(lane)
	words, stride, n := g.words, g.stride, g.n
	for _, e := range elems {
		if uint(e) >= uint(n) {
			continue
		}
		if words[(int(e)/wordBits)*stride+lane]&(1<<(uint(e)%wordBits)) != 0 {
			dst = append(dst, e)
		}
	}
	return dst
}

// LaneClearElems removes each element of elems from the lane and returns
// how many were present: the element-at-a-time companion of
// LaneAndNotRuns.
func (g *Grid) LaneClearElems(lane int, elems []int32) (removed int) {
	g.checkLane(lane)
	words, stride, n := g.words, g.stride, g.n
	for _, e := range elems {
		if uint(e) >= uint(n) {
			continue
		}
		i := (int(e)/wordBits)*stride + lane
		m := uint64(1) << (uint(e) % wordBits)
		if words[i]&m != 0 {
			words[i] &^= m
			removed++
		}
	}
	return removed
}
