package bitset

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Kernel dispatch for the Grid run kernels.
//
// Exactly one body of Grid.AndCountRuns executes per process state: the
// pure-Go scalar body (always present, the bit-exact reference) or the AVX2
// assembly body (amd64 with AVX2, detected via CPUID+XGETBV at init). The
// choice is a process-wide switch read per call, so tests can force either
// body and compare them on identical inputs.

// KernelEnv is the environment variable consulted at init to pin the kernel
// body: "scalar" forces the pure-Go body, "avx2" requests the AVX2 body
// (silently falling back to scalar where unsupported). Unset or any other
// value selects automatically by CPU capability. The CI scalar leg sets
// STREAMCOVER_KERNEL=scalar so the fallback body stays exercised on AVX2
// machines.
const KernelEnv = "STREAMCOVER_KERNEL"

// KernelScalar and KernelAVX2 name the two kernel bodies for
// SetGridKernel/GridKernel.
const (
	KernelScalar = "scalar"
	KernelAVX2   = "avx2"
)

// avx2Active is the dispatch switch: true means Grid.AndCountRuns uses the
// AVX2 body. It is atomic only so parity tests may flip it without racing
// concurrent solves; production code sets it once at init.
var avx2Active atomic.Bool

func useAVX2Kernel() bool { return avx2Active.Load() }

func init() {
	switch os.Getenv(KernelEnv) {
	case KernelScalar:
		avx2Active.Store(false)
	default:
		avx2Active.Store(archHasAVX2)
	}
}

// GridKernel reports the name of the active Grid kernel body: "avx2" or
// "scalar".
func GridKernel() string {
	if useAVX2Kernel() {
		return KernelAVX2
	}
	return KernelScalar
}

// GridKernels returns the kernel bodies available on this machine, scalar
// first. Parity tests iterate it to run every body on the same inputs.
func GridKernels() []string {
	ks := []string{KernelScalar}
	if archHasAVX2 {
		ks = append(ks, KernelAVX2)
	}
	return ks
}

// SetGridKernel selects the Grid kernel body by name, overriding the init
// choice. It returns an error for unknown names and for bodies the machine
// cannot run ("avx2" without AVX2). Intended for tests and benchmarks; the
// switch is process-wide.
func SetGridKernel(name string) error {
	switch name {
	case KernelScalar:
		avx2Active.Store(false)
		return nil
	case KernelAVX2:
		if !archHasAVX2 {
			return fmt.Errorf("bitset: kernel %q not supported on this CPU", name)
		}
		avx2Active.Store(true)
		return nil
	default:
		return fmt.Errorf("bitset: unknown kernel %q", name)
	}
}
