//go:build !amd64

package bitset

// archHasAVX2 is false off amd64: only the pure-Go scalar kernel body
// exists, and the dispatch switch can never select AVX2.
const archHasAVX2 = false

// gridAndCountRunsAVX2 is unreachable off amd64 (the dispatch guard checks
// archHasAVX2 first); the stub exists so grid.go compiles everywhere.
func gridAndCountRunsAVX2(words *uint64, stride int, runs *Run, nruns int, counts *int64) {
	panic("bitset: AVX2 kernel body called on a non-amd64 build")
}
