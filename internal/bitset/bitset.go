// Package bitset provides a dense, fixed-capacity bitset used throughout
// streamcover for set algebra over integer universes [0, n).
//
// The zero value of Bitset is an empty set of capacity zero; use New to
// allocate capacity. All binary operations require operands of equal
// capacity and panic otherwise: mixing universes is a programming error,
// not a runtime condition.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity set of integers in [0, Cap()).
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty bitset with capacity for integers in [0, n).
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a bitset of capacity n containing the given elements.
func FromSlice(n int, elems []int) *Bitset {
	b := New(n)
	for _, e := range elems {
		b.Set(e)
	}
	return b
}

// Cap reports the capacity of the bitset (the universe size it was built for).
func (b *Bitset) Cap() int { return b.n }

// Set adds e to the set.
func (b *Bitset) Set(e int) {
	if e < 0 || e >= b.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, b.n))
	}
	b.words[e/wordBits] |= 1 << (uint(e) % wordBits)
}

// SetAll adds every element of the view (a CSR set view, as returned by
// setsystem.Instance.Set) to the set. It is the bulk form of Set for the
// arena-backed instance layout: one bounds check per element, no interface
// or callback overhead.
func (b *Bitset) SetAll(view []int32) {
	for _, e := range view {
		if e < 0 || int(e) >= b.n {
			panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, b.n))
		}
		b.words[e/wordBits] |= 1 << (uint32(e) % wordBits)
	}
}

// Clear removes e from the set.
func (b *Bitset) Clear(e int) {
	if e < 0 || e >= b.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, b.n))
	}
	b.words[e/wordBits] &^= 1 << (uint(e) % wordBits)
}

// Has reports whether e is in the set.
func (b *Bitset) Has(e int) bool {
	if e < 0 || e >= b.n {
		return false
	}
	return b.words[e/wordBits]&(1<<(uint(e)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of other.
func (b *Bitset) CopyFrom(other *Bitset) {
	b.check(other)
	copy(b.words, other.words)
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill adds every element of the universe to the set.
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the bits beyond capacity in the final word.
func (b *Bitset) trim() {
	if r := uint(b.n) % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

func (b *Bitset) check(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", b.n, other.n))
	}
}

// Or sets b to b ∪ other.
func (b *Bitset) Or(other *Bitset) {
	b.check(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b ∩ other.
func (b *Bitset) And(other *Bitset) {
	b.check(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b \ other.
func (b *Bitset) AndNot(other *Bitset) {
	b.check(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Not complements b within its universe.
func (b *Bitset) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// AndCount returns |b ∩ other| without modifying either set.
func (b *Bitset) AndCount(other *Bitset) int {
	b.check(other)
	c := 0
	for i, w := range other.words {
		c += bits.OnesCount64(b.words[i] & w)
	}
	return c
}

// AndNotCount returns |b \ other| without modifying either set.
func (b *Bitset) AndNotCount(other *Bitset) int {
	b.check(other)
	c := 0
	for i, w := range other.words {
		c += bits.OnesCount64(b.words[i] &^ w)
	}
	return c
}

// OrCount returns |b ∪ other| without modifying either set.
func (b *Bitset) OrCount(other *Bitset) int {
	b.check(other)
	c := 0
	for i, w := range other.words {
		c += bits.OnesCount64(b.words[i] | w)
	}
	return c
}

// Intersects reports whether b ∩ other is non-empty.
func (b *Bitset) Intersects(other *Bitset) bool {
	b.check(other)
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and other contain the same elements.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range other.words {
		if b.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of b is in other.
func (b *Bitset) SubsetOf(other *Bitset) bool {
	b.check(other)
	for i, w := range b.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Elems appends the elements of b in increasing order to dst and returns it.
func (b *Bitset) Elems(dst []int) []int {
	for i, w := range b.words {
		base := i * wordBits
		for w != 0 {
			t := bits.TrailingZeros64(w)
			dst = append(dst, base+t)
			w &= w - 1
		}
	}
	return dst
}

// Range calls fn for each element in increasing order; it stops early if fn
// returns false.
func (b *Bitset) Range(fn func(e int) bool) {
	for i, w := range b.words {
		base := i * wordBits
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(base + t) {
				return
			}
			w &= w - 1
		}
	}
}

// Next returns the smallest element ≥ from, or -1 if none exists.
func (b *Bitset) Next(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	i := from / wordBits
	w := b.words[i] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(b.words); i++ {
		if b.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(b.words[i])
		}
	}
	return -1
}

// String renders the set as "{e1, e2, ...}"; intended for debugging and
// small sets only.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.Range(func(e int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", e)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
