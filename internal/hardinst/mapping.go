package hardinst

import (
	"fmt"
	"sort"

	"streamcover/internal/rng"
)

// Mapping is a mapping-extension of [t] to [n] (Definition 3): a function
// assigning each i ∈ [t] a block of n/t unique elements of [n], the blocks
// forming a partition. n must be divisible by t.
type Mapping struct {
	T, N int
	perm []int // perm chopped into t consecutive blocks of size n/t
}

// NewMapping draws a uniformly random mapping-extension of [t] to [n].
func NewMapping(t, n int, r *rng.RNG) *Mapping {
	if t <= 0 || n <= 0 || n%t != 0 {
		panic(fmt.Sprintf("hardinst: mapping requires t | n, got t=%d n=%d", t, n))
	}
	return &Mapping{T: t, N: n, perm: r.Perm(n)}
}

// BlockSize returns n/t.
func (m *Mapping) BlockSize() int { return m.N / m.T }

// Block returns f(i), the sorted block of element IDs assigned to i.
func (m *Mapping) Block(i int) []int {
	bs := m.BlockSize()
	out := append([]int(nil), m.perm[i*bs:(i+1)*bs]...)
	sort.Ints(out)
	return out
}

// Apply returns f(A) = ∪_{i∈A} f(i), sorted.
func (m *Mapping) Apply(a []int) []int {
	bs := m.BlockSize()
	out := make([]int, 0, len(a)*bs)
	for _, i := range a {
		out = append(out, m.perm[i*bs:(i+1)*bs]...)
	}
	sort.Ints(out)
	return out
}

// Complement returns [n] \ f(A), sorted: the set S_i = [n] \ f_i(A_i) of the
// D_SC construction.
func (m *Mapping) Complement(a []int) []int {
	bs := m.BlockSize()
	drop := make(map[int]struct{}, len(a)*bs)
	for _, i := range a {
		for _, e := range m.perm[i*bs : (i+1)*bs] {
			drop[e] = struct{}{}
		}
	}
	out := make([]int, 0, m.N-len(drop))
	for e := 0; e < m.N; e++ {
		if _, gone := drop[e]; !gone {
			out = append(out, e)
		}
	}
	return out
}
