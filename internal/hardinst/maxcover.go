package hardinst

import (
	"fmt"
	"math"
	"sort"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// MCParams configures the hard maximum coverage distribution D_MC (§4.2).
type MCParams struct {
	// Eps is the approximation parameter ε; the distribution separates
	// opt by a (1±Θ(ε)) factor. t1 = ceil(1/ε²), t2 = 10·t1.
	Eps float64
	// M is the number of (S_i, T_i) pairs; the instance has 2M sets.
	M int
}

// T1 returns the GHD universe size t1 = ceil(1/ε²).
func (p MCParams) T1() int { return int(math.Ceil(1 / (p.Eps * p.Eps))) }

// T2 returns the gadget universe size t2 = 10·t1.
func (p MCParams) T2() int { return 10 * p.T1() }

// N returns the total universe size t1 + t2.
func (p MCParams) N() int { return p.T1() + p.T2() }

// MaxCoverInstance is one draw from D_MC with its ground truth. The
// universe is U1 ∪ U2 with U1 = [0, t1) and U2 = [t1, t1+t2); set i is
// S_i = A_i ∪ C_i, set M+i is T_i = B_i ∪ D_i, where (A_i, B_i) ~ GHD over
// U1 and (C_i, D_i) is a random partition of U2. The problem is maximum
// coverage with k = 2: when Theta=1, the pair (S_{I*}, T_{I*}) covers
// ≥ (1+Θ(ε))·τ elements; when Theta=0, every pair covers ≤ (1−Θ(ε))·τ
// w.h.p. (Lemma 4.3).
type MaxCoverInstance struct {
	Params MCParams
	Inst   *setsystem.Instance
	Theta  int
	IStar  int // -1 when Theta = 0
	GHD    []GHD
	// Tau is the Lemma 4.3 separation threshold τ = t2 + (a+b)/2 + t1/4.
	Tau float64
}

// K is the max-coverage budget of the hard distribution (the paper fixes
// k = 2).
const K = 2

// AliceSet returns the index of S_i within the instance.
func (mc *MaxCoverInstance) AliceSet(i int) int { return i }

// BobSet returns the index of T_i within the instance.
func (mc *MaxCoverInstance) BobSet(i int) int { return mc.Params.M + i }

// PairOf maps a set index back to its pair index and Alice/Bob side.
func (mc *MaxCoverInstance) PairOf(setIdx int) (i int, alice bool) {
	if setIdx < mc.Params.M {
		return setIdx, true
	}
	return setIdx - mc.Params.M, false
}

// SampleMaxCover draws from D_MC with the given θ ∈ {0,1}.
func SampleMaxCover(p MCParams, theta int, r *rng.RNG) *MaxCoverInstance {
	if p.M < 1 || p.Eps <= 0 || p.Eps > 0.5 {
		panic(fmt.Sprintf("hardinst: bad MCParams %+v", p))
	}
	t1, t2 := p.T1(), p.T2()
	a, b := GHDSizes(t1)
	mc := &MaxCoverInstance{
		Params: p, Theta: theta, IStar: -1,
		GHD: make([]GHD, p.M),
		Tau: float64(t2) + float64(a+b)/2 + float64(t1)/4,
	}
	for i := 0; i < p.M; i++ {
		mc.GHD[i] = SampleGHDNo(t1, r)
	}
	if theta == 1 {
		mc.IStar = r.Intn(p.M)
		mc.GHD[mc.IStar] = SampleGHDYes(t1, r)
	}
	sets := make([][]int, 2*p.M)
	for i := 0; i < p.M; i++ {
		// Random partition of U2 into (C_i, D_i).
		var ci, di []int
		for e := t1; e < t1+t2; e++ {
			if r.Bernoulli(0.5) {
				ci = append(ci, e)
			} else {
				di = append(di, e)
			}
		}
		sets[mc.AliceSet(i)] = mergeSorted(mc.GHD[i].A, ci)
		sets[mc.BobSet(i)] = mergeSorted(mc.GHD[i].B, di)
	}
	mc.Inst = setsystem.FromSets(t1+t2, sets)
	return mc
}

// SampleMaxCoverRandomTheta draws θ uniformly then samples D_MC.
func SampleMaxCoverRandomTheta(p MCParams, r *rng.RNG) *MaxCoverInstance {
	theta := 0
	if r.Bernoulli(0.5) {
		theta = 1
	}
	return SampleMaxCover(p, theta, r)
}

// RandomPartition assigns each of the 2M sets to Alice independently with
// probability 1/2 (the D'_MC distribution in the proof of Theorem 4).
func (mc *MaxCoverInstance) RandomPartition(r *rng.RNG) Partition {
	p := make(Partition, 2*mc.Params.M)
	for i := range p {
		p[i] = r.Bernoulli(0.5)
	}
	return p
}

// mergeSorted merges a sorted slice with a sorted slice over a disjoint,
// higher range (A ⊆ U1, C ⊆ U2), producing a sorted result.
func mergeSorted(a, c []int) []int {
	out := make([]int, 0, len(a)+len(c))
	out = append(out, a...)
	out = append(out, c...)
	if !sort.IntsAreSorted(out) {
		sort.Ints(out)
	}
	return out
}
