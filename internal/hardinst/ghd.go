package hardinst

import (
	"fmt"
	"math"
	"sort"

	"streamcover/internal/rng"
)

// GHD is one gap-hamming-distance instance over [0, T): the promise is that
// the hamming distance Δ(A,B) = |A Δ B| is either ≥ T/2+√T (Yes) or
// ≤ T/2−√T (No). Under D_GHD the set sizes |A| = a and |B| = b are fixed.
type GHD struct {
	T    int
	A, B []int // sorted subsets of [0, T)
	Yes  bool  // Δ ≥ T/2+√T
}

// Delta returns the hamming distance |A Δ B| = |A| + |B| − 2|A∩B|.
func (g GHD) Delta() int {
	return len(g.A) + len(g.B) - 2*len(Intersection(g.A, g.B))
}

// GHDSizes returns the fixed set sizes (a, b) used by D_GHD: the paper
// leaves them unspecified (they come out of an averaging argument in
// Claim B.1); we use a = b = t/2, where the gap events have constant
// probability.
func GHDSizes(t int) (a, b int) { return t / 2, t / 2 }

// SampleGHDYes draws from D^Y_GHD: uniform over (A,B) with |A|=a, |B|=b,
// conditioned on Δ(A,B) ≥ t/2+√t.
func SampleGHDYes(t int, r *rng.RNG) GHD {
	a, b := GHDSizes(t)
	// Δ ≥ t/2+√t  ⇔  q = |A∩B| ≤ (a+b−t/2−√t)/2.
	qMax := int(math.Floor((float64(a+b) - float64(t)/2 - math.Sqrt(float64(t))) / 2))
	q := sampleHypergeomTruncated(t, a, b, 0, qMax, r)
	A, B := buildWithIntersection(t, a, b, q, r)
	return GHD{T: t, A: A, B: B, Yes: true}
}

// SampleGHDNo draws from D^N_GHD: uniform over (A,B) with |A|=a, |B|=b,
// conditioned on Δ(A,B) ≤ t/2−√t.
func SampleGHDNo(t int, r *rng.RNG) GHD {
	a, b := GHDSizes(t)
	// Δ ≤ t/2−√t  ⇔  q ≥ (a+b−t/2+√t)/2.
	qMin := int(math.Ceil((float64(a+b) - float64(t)/2 + math.Sqrt(float64(t))) / 2))
	hi := a
	if b < hi {
		hi = b
	}
	q := sampleHypergeomTruncated(t, a, b, qMin, hi, r)
	A, B := buildWithIntersection(t, a, b, q, r)
	return GHD{T: t, A: A, B: B, Yes: false}
}

// SampleGHD draws from D_GHD = ½·D^Y + ½·D^N.
func SampleGHD(t int, r *rng.RNG) GHD {
	if r.Bernoulli(0.5) {
		return SampleGHDYes(t, r)
	}
	return SampleGHDNo(t, r)
}

// buildWithIntersection returns uniform (A,B), |A|=a, |B|=b, |A∩B|=q.
func buildWithIntersection(t, a, b, q int, r *rng.RNG) (A, B []int) {
	A = r.KSubset(t, a)
	commonIdx := r.KSubset(a, q)
	common := make(map[int]struct{}, q)
	B = make([]int, 0, b)
	for _, idx := range commonIdx {
		B = append(B, A[idx])
		common[A[idx]] = struct{}{}
	}
	inA := make(map[int]struct{}, a)
	for _, e := range A {
		inA[e] = struct{}{}
	}
	// The rest of B comes uniformly from [t] \ A.
	rest := make([]int, 0, t-a)
	for e := 0; e < t; e++ {
		if _, ok := inA[e]; !ok {
			rest = append(rest, e)
		}
	}
	for _, idx := range r.KSubset(len(rest), b-q) {
		B = append(B, rest[idx])
	}
	sort.Ints(B)
	return A, B
}

// sampleHypergeomTruncated samples q ~ Hypergeometric(t, a, b) conditioned
// on lo ≤ q ≤ hi: P(q) ∝ C(a,q)·C(t−a, b−q). It computes the truncated pmf
// in log space. It panics if the conditioning event is empty (the caller's
// parameters guarantee a non-degenerate gap event for t ≥ 16).
func sampleHypergeomTruncated(t, a, b, lo, hi int, r *rng.RNG) int {
	if lo < 0 {
		lo = 0
	}
	if m := b - (t - a); lo < m {
		lo = m // need b−q ≤ t−a
	}
	if hi > a {
		hi = a
	}
	if hi > b {
		hi = b
	}
	if lo > hi {
		panic(fmt.Sprintf("hardinst: empty hypergeometric window t=%d a=%d b=%d [%d,%d]", t, a, b, lo, hi))
	}
	logs := make([]float64, hi-lo+1)
	maxLog := math.Inf(-1)
	for q := lo; q <= hi; q++ {
		l := logChoose(a, q) + logChoose(t-a, b-q)
		logs[q-lo] = l
		if l > maxLog {
			maxLog = l
		}
	}
	total := 0.0
	for i := range logs {
		logs[i] = math.Exp(logs[i] - maxLog)
		total += logs[i]
	}
	u := r.Float64() * total
	for q := lo; q <= hi; q++ {
		u -= logs[q-lo]
		if u <= 0 {
			return q
		}
	}
	return hi
}

// logChoose returns log C(n, k), or −Inf when the binomial is zero.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}
