package hardinst

import (
	"fmt"
	"math"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// SCParams configures the hard set cover distribution D_SC (§3.1).
type SCParams struct {
	// N is the requested universe size; the sampler rounds it down to a
	// multiple of the block parameter t (see EffectiveN).
	N int
	// M is the number of (S_i, T_i) pairs; the instance has 2M sets.
	M int
	// Alpha is the approximation parameter α the instance is hard for.
	Alpha int
	// TConst scales t = TConst·(n/ln m)^{1/α}. 0 means 0.25. The paper uses
	// 2^{-15} purely so its union bounds (Lemma 3.2) go through at asymptotic
	// scale. The same tension exists at laptop scale: with TConst=1 two
	// pair-unions miss only ~ln m common elements and accidental 2α-covers
	// appear, destroying the gap; TConst=0.25 makes the expected common miss
	// ≈ 16·ln m and the gap holds with high probability (verified by E3).
	TConst float64
	// TOverride, when positive, fixes t directly (used by tests).
	TOverride int
}

// BlockParam returns the block-count parameter t for these parameters:
// t = TConst·(n/ln m)^{1/α}, clamped to [2, n].
func (p SCParams) BlockParam() int {
	if p.TOverride > 0 {
		return p.TOverride
	}
	c := p.TConst
	if c <= 0 {
		c = 0.25
	}
	lm := math.Log(float64(p.M))
	if lm < 1 {
		lm = 1
	}
	t := int(c * math.Pow(float64(p.N)/lm, 1/float64(p.Alpha)))
	if t < 2 {
		t = 2
	}
	if t > p.N {
		t = p.N
	}
	return t
}

// EffectiveN returns the actual universe size used: N rounded down to a
// multiple of the block parameter.
func (p SCParams) EffectiveN() int {
	t := p.BlockParam()
	n := p.N / t * t
	if n < t {
		n = t
	}
	return n
}

// SetCoverInstance is one draw from D_SC with its ground truth.
//
// The instance has 2M sets over [0, N): set i ∈ [0,M) is S_i = [n]\f_i(A_i)
// (Alice's), set M+i is T_i = [n]\f_i(B_i) (Bob's). When Theta=1, the pair
// (S_{I*}, T_{I*}) covers the universe (opt = 2); when Theta=0, w.h.p. no
// 2α sets cover it (Lemma 3.2).
type SetCoverInstance struct {
	Params SCParams
	Inst   *setsystem.Instance
	N, T   int
	Theta  int
	IStar  int // -1 when Theta = 0
	Disj   []Disj
}

// AliceSet returns the index of S_i within the instance.
func (sc *SetCoverInstance) AliceSet(i int) int { return i }

// BobSet returns the index of T_i within the instance.
func (sc *SetCoverInstance) BobSet(i int) int { return sc.Params.M + i }

// PairOf maps a set index back to its pair index i and whether it is an
// Alice set (S_i) or a Bob set (T_i).
func (sc *SetCoverInstance) PairOf(setIdx int) (i int, alice bool) {
	if setIdx < sc.Params.M {
		return setIdx, true
	}
	return setIdx - sc.Params.M, false
}

// SampleSetCover draws from D_SC with the given θ ∈ {0,1}.
func SampleSetCover(p SCParams, theta int, r *rng.RNG) *SetCoverInstance {
	if p.M < 1 || p.N < 2 || p.Alpha < 1 {
		panic(fmt.Sprintf("hardinst: bad SCParams %+v", p))
	}
	t := p.BlockParam()
	n := p.EffectiveN()

	sc := &SetCoverInstance{
		Params: p, N: n, T: t, Theta: theta, IStar: -1,
		Disj: make([]Disj, p.M),
	}
	for i := 0; i < p.M; i++ {
		sc.Disj[i] = SampleDisjNo(t, r)
	}
	if theta == 1 {
		sc.IStar = r.Intn(p.M)
		sc.Disj[sc.IStar] = SampleDisjYes(t, r)
	}
	sets := make([][]int, 2*p.M)
	for i := 0; i < p.M; i++ {
		f := NewMapping(t, n, r)
		sets[sc.AliceSet(i)] = f.Complement(sc.Disj[i].A)
		sets[sc.BobSet(i)] = f.Complement(sc.Disj[i].B)
	}
	sc.Inst = setsystem.FromSets(n, sets)
	return sc
}

// SampleSetCoverRandomTheta draws θ uniformly then samples D_SC.
func SampleSetCoverRandomTheta(p SCParams, r *rng.RNG) *SetCoverInstance {
	theta := 0
	if r.Bernoulli(0.5) {
		theta = 1
	}
	return SampleSetCover(p, theta, r)
}

// Partition assigns the 2M sets to Alice/Bob. owner[idx] is true when set
// idx belongs to Alice.
type Partition []bool

// CanonicalPartition is the adversarial split of D_SC: Alice gets all S_i,
// Bob gets all T_i.
func (sc *SetCoverInstance) CanonicalPartition() Partition {
	p := make(Partition, 2*sc.Params.M)
	for i := 0; i < sc.Params.M; i++ {
		p[sc.AliceSet(i)] = true
	}
	return p
}

// RandomPartition assigns each of the 2M sets to Alice independently with
// probability 1/2 (the D_SC^rnd distribution of §3.3).
func (sc *SetCoverInstance) RandomPartition(r *rng.RNG) Partition {
	p := make(Partition, 2*sc.Params.M)
	for i := range p {
		p[i] = r.Bernoulli(0.5)
	}
	return p
}

// GoodIndices returns the pair indices i whose S_i and T_i ended up with
// different owners under the partition (the "good" set G of Lemma 3.7).
func (sc *SetCoverInstance) GoodIndices(p Partition) []int {
	var good []int
	for i := 0; i < sc.Params.M; i++ {
		if p[sc.AliceSet(i)] != p[sc.BobSet(i)] {
			good = append(good, i)
		}
	}
	return good
}
