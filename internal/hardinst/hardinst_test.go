package hardinst

import (
	"math"
	"testing"
	"testing/quick"

	"streamcover/internal/offline"
	"streamcover/internal/rng"
)

func TestSampleDisjYesDisjoint(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		d := SampleDisjYes(32, r)
		if len(Intersection(d.A, d.B)) != 0 {
			t.Fatalf("Yes instance intersects: A=%v B=%v", d.A, d.B)
		}
		if d.Intersecting || d.Common != -1 {
			t.Fatal("Yes instance mislabeled")
		}
	}
}

func TestSampleDisjNoSingleIntersection(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		d := SampleDisjNo(32, r)
		inter := Intersection(d.A, d.B)
		if len(inter) != 1 {
			t.Fatalf("No instance |A∩B| = %d, want 1", len(inter))
		}
		if inter[0] != d.Common {
			t.Fatalf("Common = %d, actual intersection %v", d.Common, inter)
		}
	}
}

func TestDisjMarginals(t *testing.T) {
	// Under the base distribution each element is in A w.p. 1/3.
	r := rng.New(3)
	const tSize, trials = 30, 3000
	inA := 0
	for i := 0; i < trials; i++ {
		d := SampleDisjBase(tSize, r)
		inA += len(d.A)
	}
	mean := float64(inA) / trials
	want := float64(tSize) / 3
	if math.Abs(mean-want) > 0.5 {
		t.Fatalf("E|A| = %v, want %v", mean, want)
	}
}

func TestInsertSorted(t *testing.T) {
	s := []int{2, 5, 9}
	s = insertSorted(s, 5) // present: unchanged
	if len(s) != 3 {
		t.Fatalf("duplicate inserted: %v", s)
	}
	s = insertSorted(s, 1)
	s = insertSorted(s, 11)
	s = insertSorted(s, 6)
	want := []int{1, 2, 5, 6, 9, 11}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", s, want)
		}
	}
}

func TestQuickIntersection(t *testing.T) {
	f := func(x, y []uint8) bool {
		ma := map[int]bool{}
		var a, b []int
		for _, v := range x {
			if !ma[int(v)] {
				a = insertSorted(a, int(v))
				ma[int(v)] = true
			}
		}
		mb := map[int]bool{}
		for _, v := range y {
			if !mb[int(v)] {
				b = insertSorted(b, int(v))
				mb[int(v)] = true
			}
		}
		got := Intersection(a, b)
		want := 0
		for v := range ma {
			if mb[v] {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingPartition(t *testing.T) {
	r := rng.New(4)
	m := NewMapping(8, 64, r)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		blk := m.Block(i)
		if len(blk) != 8 {
			t.Fatalf("block %d size %d", i, len(blk))
		}
		for _, e := range blk {
			if seen[e] {
				t.Fatalf("element %d in two blocks", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("blocks cover %d of 64 elements", len(seen))
	}
}

func TestMappingApplyComplement(t *testing.T) {
	r := rng.New(5)
	m := NewMapping(10, 100, r)
	a := []int{0, 3, 7}
	img := m.Apply(a)
	if len(img) != 30 {
		t.Fatalf("Apply size %d, want 30", len(img))
	}
	comp := m.Complement(a)
	if len(comp) != 70 {
		t.Fatalf("Complement size %d, want 70", len(comp))
	}
	inImg := map[int]bool{}
	for _, e := range img {
		inImg[e] = true
	}
	for _, e := range comp {
		if inImg[e] {
			t.Fatalf("element %d in both image and complement", e)
		}
	}
}

func TestMappingRequiresDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMapping(7, 100) did not panic")
		}
	}()
	NewMapping(7, 100, rng.New(1))
}

func TestSCParamsBlockParam(t *testing.T) {
	p := SCParams{N: 4096, M: 64, Alpha: 2}
	tv := p.BlockParam()
	want := int(0.25 * math.Pow(4096/math.Log(64), 0.5))
	if tv != want {
		t.Fatalf("BlockParam = %d, want %d", tv, want)
	}
	n := p.EffectiveN()
	if n%tv != 0 || n > p.N || n < p.N-tv {
		t.Fatalf("EffectiveN = %d for t=%d", n, tv)
	}
	if fixed := (SCParams{N: 100, M: 4, Alpha: 2, TOverride: 5}).BlockParam(); fixed != 5 {
		t.Fatalf("TOverride ignored: %d", fixed)
	}
}

func TestSetCoverThetaOneHasPairCover(t *testing.T) {
	r := rng.New(6)
	p := SCParams{N: 1024, M: 16, Alpha: 2}
	sc := SampleSetCover(p, 1, r)
	if sc.IStar < 0 {
		t.Fatal("IStar unset for θ=1")
	}
	pair := []int{sc.AliceSet(sc.IStar), sc.BobSet(sc.IStar)}
	if !sc.Inst.IsCover(pair) {
		t.Fatal("(S_i*, T_i*) does not cover the universe under θ=1")
	}
	if err := sc.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetCoverThetaZeroNoPairCovers(t *testing.T) {
	r := rng.New(7)
	p := SCParams{N: 1024, M: 12, Alpha: 2}
	sc := SampleSetCover(p, 0, r)
	if sc.IStar != -1 {
		t.Fatal("IStar set for θ=0")
	}
	// Remark 3.1(iii): each own-pair union misses exactly n/t elements.
	bs := sc.N / sc.T
	for i := 0; i < p.M; i++ {
		union := sc.Inst.CoverageOf([]int{sc.AliceSet(i), sc.BobSet(i)})
		if miss := sc.N - union; miss != bs {
			t.Fatalf("pair %d misses %d elements, want block size %d", i, miss, bs)
		}
	}
	// No pair of any two sets covers the universe (w.h.p.; deterministic for
	// this seed).
	for x := 0; x < 2*p.M; x++ {
		for y := x + 1; y < 2*p.M; y++ {
			if sc.Inst.CoverageOf([]int{x, y}) == sc.N {
				t.Fatalf("sets (%d,%d) cover the universe under θ=0", x, y)
			}
		}
	}
}

func TestSetCoverSetSizes(t *testing.T) {
	// Remark 3.1(i): |S_i| = 2n/3 ± o(n). With t blocks of n/t elements and
	// |A_i| ≈ t/3 (+1 for the common element), sizes concentrate near 2n/3.
	r := rng.New(8)
	p := SCParams{N: 2048, M: 20, Alpha: 2, TOverride: 32}
	sc := SampleSetCover(p, 0, r)
	for i := 0; i < sc.Inst.M(); i++ {
		frac := float64(sc.Inst.SetLen(i)) / float64(sc.N)
		if frac < 0.4 || frac > 0.9 {
			t.Fatalf("set %d size fraction %v too far from 2/3", i, frac)
		}
	}
}

func TestSetCoverOptGapSmallScale(t *testing.T) {
	// Lemma 3.2 shape at small scale: θ=1 ⇒ opt = 2; θ=0 ⇒ opt > 2α for
	// most draws. Uses the exact bounded solver.
	p := SCParams{N: 2048, M: 8, Alpha: 2}
	r := rng.New(9)
	sc1 := SampleSetCover(p, 1, r)
	opt1, err := offline.OptAtMost(sc1.Inst, 2, offline.ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if opt1 != 2 {
		t.Fatalf("θ=1 opt = %d, want 2", opt1)
	}
	gapHolds := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		sc0 := SampleSetCover(p, 0, r)
		opt0, err := offline.OptAtMost(sc0.Inst, 2*p.Alpha, offline.ExactConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if opt0 > 2*p.Alpha {
			gapHolds++
		}
	}
	if gapHolds < trials-1 {
		t.Fatalf("θ=0 gap held in only %d/%d trials", gapHolds, trials)
	}
}

func TestPartitions(t *testing.T) {
	r := rng.New(10)
	sc := SampleSetCover(SCParams{N: 256, M: 10, Alpha: 2}, 0, r)
	canon := sc.CanonicalPartition()
	good := sc.GoodIndices(canon)
	if len(good) != 10 {
		t.Fatalf("canonical partition good = %d, want all 10", len(good))
	}
	rnd := sc.RandomPartition(r)
	g := len(sc.GoodIndices(rnd))
	if g < 1 || g > 10 {
		t.Fatalf("random partition good indices = %d", g)
	}
}

func TestGHDSampleRespectsPromise(t *testing.T) {
	r := rng.New(11)
	const tSize = 64
	sq := math.Sqrt(tSize)
	for trial := 0; trial < 100; trial++ {
		y := SampleGHDYes(tSize, r)
		if d := float64(y.Delta()); d < tSize/2+sq {
			t.Fatalf("Yes Δ = %v < t/2+√t", d)
		}
		a, b := GHDSizes(tSize)
		if len(y.A) != a || len(y.B) != b {
			t.Fatalf("Yes sizes |A|=%d |B|=%d, want %d,%d", len(y.A), len(y.B), a, b)
		}
		n := SampleGHDNo(tSize, r)
		if d := float64(n.Delta()); d > tSize/2-sq {
			t.Fatalf("No Δ = %v > t/2−√t", d)
		}
		if len(n.A) != a || len(n.B) != b {
			t.Fatalf("No sizes wrong")
		}
	}
}

func TestGHDElementsSortedInRange(t *testing.T) {
	r := rng.New(12)
	g := SampleGHD(100, r)
	for _, s := range [][]int{g.A, g.B} {
		for i, e := range s {
			if e < 0 || e >= 100 {
				t.Fatalf("element %d out of range", e)
			}
			if i > 0 && s[i-1] >= e {
				t.Fatalf("not sorted: %v", s)
			}
		}
	}
}

func TestHypergeomWindowBounds(t *testing.T) {
	r := rng.New(13)
	// q must respect both lo and feasibility constraints.
	for trial := 0; trial < 200; trial++ {
		q := sampleHypergeomTruncated(20, 10, 10, 3, 7, r)
		if q < 3 || q > 7 {
			t.Fatalf("q = %d outside [3,7]", q)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty window did not panic")
		}
	}()
	sampleHypergeomTruncated(10, 5, 5, 6, 7, r)
}

func TestMaxCoverGap(t *testing.T) {
	// Lemma 4.3: under θ=1, the starred pair covers ≥ τ + √t1/2-ish; under
	// θ=0, every own-pair covers < τ.
	p := MCParams{Eps: 1.0 / 8, M: 8}
	r := rng.New(14)

	mc1 := SampleMaxCover(p, 1, r)
	if err := mc1.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	star := mc1.Inst.CoverageOf([]int{mc1.AliceSet(mc1.IStar), mc1.BobSet(mc1.IStar)})
	if float64(star) < mc1.Tau {
		t.Fatalf("θ=1 starred pair covers %d < τ = %v", star, mc1.Tau)
	}

	mc0 := SampleMaxCover(p, 0, r)
	for i := 0; i < p.M; i++ {
		cov := mc0.Inst.CoverageOf([]int{mc0.AliceSet(i), mc0.BobSet(i)})
		if float64(cov) > mc0.Tau {
			t.Fatalf("θ=0 pair %d covers %d > τ = %v", i, cov, mc0.Tau)
		}
	}
}

func TestMaxCoverClaim44(t *testing.T) {
	// Claim 4.4: own-pairs cover all of U2 (≥ t2); mixed pairs cover at most
	// (3/4 + 0.2)·t2 of U2.
	p := MCParams{Eps: 1.0 / 8, M: 6}
	r := rng.New(15)
	mc := SampleMaxCover(p, 0, r)
	t1, t2 := p.T1(), p.T2()
	inU2 := func(cov []int) int {
		c := 0
		for _, e := range cov {
			if e >= t1 {
				c++
			}
		}
		return c
	}
	for i := 0; i < p.M; i++ {
		si := mc.Inst.Set(mc.AliceSet(i))
		ti := mc.Inst.Set(mc.BobSet(i))
		union := map[int]bool{}
		for _, e := range si {
			union[int(e)] = true
		}
		for _, e := range ti {
			union[int(e)] = true
		}
		var u []int
		for e := range union {
			u = append(u, e)
		}
		if got := inU2(u); got != t2 {
			t.Fatalf("own pair %d covers %d of U2, want %d", i, got, t2)
		}
	}
	// Mixed pairs: sample a few.
	for i := 0; i < p.M-1; i++ {
		cov := mc.Inst.CoverageOf([]int{mc.AliceSet(i), mc.AliceSet(i + 1)})
		if float64(cov) > (0.75+0.2)*float64(t2)+float64(t1) {
			t.Fatalf("mixed pair covers %d, above Claim 4.4(b) bound", cov)
		}
	}
}

func TestSampleRandomTheta(t *testing.T) {
	r := rng.New(16)
	sawSC := map[int]bool{}
	for i := 0; i < 20; i++ {
		sc := SampleSetCoverRandomTheta(SCParams{N: 128, M: 4, Alpha: 2}, r)
		sawSC[sc.Theta] = true
	}
	if !sawSC[0] || !sawSC[1] {
		t.Fatal("random θ never produced both values for D_SC")
	}
	sawMC := map[int]bool{}
	for i := 0; i < 20; i++ {
		mc := SampleMaxCoverRandomTheta(MCParams{Eps: 0.25, M: 3}, r)
		sawMC[mc.Theta] = true
	}
	if !sawMC[0] || !sawMC[1] {
		t.Fatal("random θ never produced both values for D_MC")
	}
}

func TestPairOfRoundTrip(t *testing.T) {
	sc := SampleSetCover(SCParams{N: 128, M: 5, Alpha: 2}, 0, rng.New(17))
	for i := 0; i < 5; i++ {
		if pi, alice := sc.PairOf(sc.AliceSet(i)); pi != i || !alice {
			t.Fatal("PairOf(AliceSet) wrong")
		}
		if pi, alice := sc.PairOf(sc.BobSet(i)); pi != i || alice {
			t.Fatal("PairOf(BobSet) wrong")
		}
	}
	mc := SampleMaxCover(MCParams{Eps: 0.25, M: 4}, 0, rng.New(18))
	if pi, alice := mc.PairOf(mc.BobSet(2)); pi != 2 || alice {
		t.Fatal("MaxCover PairOf wrong")
	}
}

func BenchmarkSampleSetCover(b *testing.B) {
	r := rng.New(1)
	p := SCParams{N: 4096, M: 64, Alpha: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SampleSetCover(p, 0, r)
	}
}

func BenchmarkSampleGHD(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SampleGHD(256, r)
	}
}
