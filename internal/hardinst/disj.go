// Package hardinst generates the paper's hard input distributions:
//
//   - D_Disj, the standard hard distribution for set disjointness (§2.2);
//   - mapping extensions of [t] to [n] (Definition 3);
//   - D_SC, the hard set cover distribution built from m Disj instances and
//     independent mapping extensions (§3.1), with the random-partition
//     variant D_SC^rnd of §3.3;
//   - D_GHD, gap-hamming-distance with fixed set sizes (§4.1);
//   - D_MC, the hard maximum coverage distribution built from m GHD
//     instances plus the U2 partition gadget (§4.2).
//
// Every sampler also returns the ground truth (θ, i*, the embedded
// instances) so experiments can score distinguishers and verify the
// structural lemmas (Lemma 3.2, Remark 3.1, Claim 4.4, Lemma 4.3).
package hardinst

import (
	"streamcover/internal/rng"
)

// Disj is one set-disjointness instance over [0, T): Alice holds A, Bob
// holds B. Under D_Disj, A and B are disjoint (the Yes case, Z=0) or share
// exactly one element e* (the No case, Z=1).
type Disj struct {
	T    int
	A, B []int // sorted subsets of [0, T)
	// Intersecting records Z=1 (a No instance: A ∩ B = {Common}).
	Intersecting bool
	// Common is e* when Intersecting, else -1.
	Common int
}

// Disjoint reports the Disj answer: true means A ∩ B = ∅ (a Yes instance).
func (d Disj) Disjoint() bool { return !d.Intersecting }

// SampleDisjBase draws the base of D_Disj (before the Z coin): for each
// element independently, with probability 1/3 each it lands in neither set,
// only in B, or only in A. The result is always disjoint.
func SampleDisjBase(t int, r *rng.RNG) Disj {
	d := Disj{T: t, Common: -1}
	for e := 0; e < t; e++ {
		switch r.Intn(3) {
		case 0: // drop from both
		case 1: // drop from A only
			d.B = append(d.B, e)
		default: // drop from B only
			d.A = append(d.A, e)
		}
	}
	return d
}

// SampleDisjYes draws from D^Y_Disj = (D_Disj | Z=0): a disjoint instance.
func SampleDisjYes(t int, r *rng.RNG) Disj {
	return SampleDisjBase(t, r)
}

// SampleDisjNo draws from D^N_Disj = (D_Disj | Z=1): the base distribution
// with a uniformly random e* added to both sets.
func SampleDisjNo(t int, r *rng.RNG) Disj {
	d := SampleDisjBase(t, r)
	e := r.Intn(t)
	d.A = insertSorted(d.A, e)
	d.B = insertSorted(d.B, e)
	d.Intersecting = true
	d.Common = e
	return d
}

// SampleDisj draws from D_Disj with a fair Z coin.
func SampleDisj(t int, r *rng.RNG) Disj {
	if r.Bernoulli(0.5) {
		return SampleDisjNo(t, r)
	}
	return SampleDisjYes(t, r)
}

// insertSorted inserts v into sorted s if absent, preserving order.
func insertSorted(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// Intersection returns the sorted intersection of two sorted slices.
func Intersection(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
