// Package registry is coverd's resident-instance store: a thread-safe,
// content-addressed cache of set-cover instances with a hard memory budget.
//
// Instances enter by upload (Put) or from disk (LoadFile) and are
// deduplicated by content hash (setsystem.Hash), so re-uploading the same
// instance — the common case for a fleet of clients solving one workload —
// costs nothing beyond hashing the bytes. Every entry is charged its
// resident footprint against the budget: heap-backed instances their
// estimated heap size (setsystem.SizeBytes), mmap-backed SCB2 instances
// their mapped file size (the pages the mapping can keep resident) —
// the split is visible as HeapBytes/MappedBytes in Stats, and mapped
// entries never count toward heap accounting. Admitting a new instance
// evicts least-recently-used unpinned entries until it fits — evicting a
// mapped entry unmaps its file — and fails with ErrBudget when pinned
// entries (instances with in-flight solve jobs) leave no room. The
// invariant is strict: resident bytes never exceed the budget, so a
// coverd process sized to its container cannot be OOM-killed by uploads.
//
// Pinning is how the scheduler keeps an instance alive across a job's
// queue-to-completion lifetime: Acquire returns the instance plus a release
// closure; entries with outstanding pins are skipped by eviction. Releasing
// the last pin makes the entry evictable again (it is not dropped eagerly —
// the next admission decides).
package registry

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"streamcover/client"
	"streamcover/internal/obs"
	"streamcover/internal/setsystem"
)

// DefaultBudgetBytes is the memory budget when Config.BudgetBytes is 0:
// generous for benchmarks, small enough for a default container.
const DefaultBudgetBytes = 256 << 20

// ErrBudget is returned by Put/LoadFile when the instance cannot be
// admitted without exceeding the memory budget (everything evictable has
// been evicted; what remains is pinned or the instance alone is larger than
// the whole budget).
var ErrBudget = errors.New("registry: memory budget exhausted")

// ErrNotFound is returned by Acquire for an unknown (or evicted) hash.
var ErrNotFound = errors.New("registry: instance not found (never uploaded, or evicted)")

// Config parameterizes New.
type Config struct {
	// BudgetBytes caps the summed estimated footprint of resident
	// instances. 0 means DefaultBudgetBytes.
	BudgetBytes int64
}

// Registry is the store. The zero value is not usable; call New.
type Registry struct {
	mu        sync.Mutex
	budget    int64
	resident  int64 // heap + mapped, the quantity the budget bounds
	heap      int64
	mapped    int64
	plans     int64 // attached replay-plan bytes, included in resident
	entries   map[string]*entry
	lru       *list.List // front = most recently used
	evictions uint64
	dedupHits uint64
	pinned    int // outstanding pins across all entries
}

type entry struct {
	hash   string
	inst   *setsystem.Instance
	bytes  int64 // instance footprint, excluding any attached plan
	mapped bool  // charged to the mapped ledger; eviction unmaps
	pins   int
	elem   *list.Element
	// plan is an optional pass-replay recording riding the entry (the
	// registry stores it opaquely so it does not depend on the solver
	// layer). Its bytes are charged to the budget like instance bytes and
	// it is dropped with the entry on eviction — a plan never outlives the
	// instance it replays.
	plan      any
	planBytes int64
}

// New returns an empty registry with the configured budget.
func New(cfg Config) *Registry {
	b := cfg.BudgetBytes
	if b <= 0 {
		b = DefaultBudgetBytes
	}
	return &Registry{budget: b, entries: map[string]*entry{}, lru: list.New()}
}

// Put admits the instance, deduplicating by content hash. It returns the
// hash, whether the instance was newly added (false = dedup hit, which
// refreshes the entry's recency), and ErrBudget when it cannot fit. The
// registry retains the instance; callers must not mutate it afterwards.
// A mapped instance (setsystem.Map) is charged its mapped file size and
// unmapped when evicted; on a dedup hit the registry does NOT adopt the
// caller's mapping — the caller still owns it.
func (r *Registry) Put(inst *setsystem.Instance) (hash string, added bool, err error) {
	return r.admit(inst)
}

// instSize is the footprint an instance is charged: mapped file size for
// mmap-backed instances, estimated heap size otherwise.
func instSize(inst *setsystem.Instance) (size int64, mapped bool) {
	if mb := inst.MappedBytes(); mb > 0 {
		return mb, true
	}
	return setsystem.SizeBytes(inst), false
}

func (r *Registry) admit(inst *setsystem.Instance) (hash string, added bool, err error) {
	hash = setsystem.Hash(inst)
	size, mapped := instSize(inst)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[hash]; ok {
		r.lru.MoveToFront(e.elem)
		r.dedupHits++
		return hash, false, nil
	}
	if !r.evictFor(size) {
		return hash, false, fmt.Errorf("%w: need %d bytes, budget %d, %d resident (pinned entries are not evictable)",
			ErrBudget, size, r.budget, r.resident)
	}
	e := &entry{hash: hash, inst: inst, bytes: size, mapped: mapped}
	e.elem = r.lru.PushFront(e)
	r.entries[hash] = e
	r.resident += size
	if mapped {
		r.mapped += size
	} else {
		r.heap += size
	}
	return hash, true, nil
}

// LoadFile admits an instance file. SCB2 files are opened through
// setsystem.Map — zero-copy on supporting hosts, so the entry costs
// mapped (page cache) bytes, not heap, and loading is O(pages touched)
// rather than O(decode) — while SCB1 and text files decode onto the heap
// as before. On a dedup hit the fresh mapping is released immediately.
func (r *Registry) LoadFile(path string) (hash string, added bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", false, err
	}
	head := make([]byte, len(setsystem.SCB2Magic()))
	_, rerr := io.ReadFull(f, head)
	if rerr == nil && bytes.Equal(head, setsystem.SCB2Magic()) {
		f.Close()
		inst, err := setsystem.Map(path)
		if err != nil {
			return "", false, fmt.Errorf("registry: %w", err)
		}
		hash, added, err = r.admit(inst)
		if err != nil || !added {
			inst.Unmap()
		}
		return hash, added, err
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", false, err
	}
	inst, err := setsystem.ReadAuto(f)
	if err != nil {
		return "", false, fmt.Errorf("registry: %s: %w", path, err)
	}
	return r.admit(inst)
}

// evictFor drops unpinned LRU entries until size more bytes fit under the
// budget, reporting whether it succeeded. Caller holds r.mu.
func (r *Registry) evictFor(size int64) bool {
	if size > r.budget {
		return false
	}
	for r.resident+size > r.budget {
		victim := r.oldestUnpinned()
		if victim == nil {
			return false
		}
		r.remove(victim)
		r.evictions++
	}
	return true
}

func (r *Registry) oldestUnpinned() *entry {
	for el := r.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.pins == 0 {
			return e
		}
	}
	return nil
}

// remove drops an entry; evicting a mapped entry releases its mapping
// (safe: eviction only ever selects unpinned entries, and the instance
// contract is that callers hold instances only while pinned). Caller
// holds r.mu.
func (r *Registry) remove(e *entry) {
	r.lru.Remove(e.elem)
	delete(r.entries, e.hash)
	r.resident -= e.bytes + e.planBytes
	r.plans -= e.planBytes
	if e.mapped {
		r.mapped -= e.bytes
		e.inst.Unmap()
	} else {
		r.heap -= e.bytes
	}
}

// Acquire looks up an instance by hash, refreshes its recency, and pins it
// against eviction. The returned release closure drops the pin; it is
// idempotent and must be called exactly once per successful Acquire (the
// scheduler defers it to job completion). The instance is shared and
// read-only.
func (r *Registry) Acquire(hash string) (*setsystem.Instance, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok {
		return nil, nil, ErrNotFound
	}
	r.lru.MoveToFront(e.elem)
	e.pins++
	r.pinned++
	// A pin means a solve is imminent: hint the kernel to start paging the
	// mapped arena in now so the first pass overlaps page-in with compute.
	// Best-effort and a no-op for heap-backed entries.
	_ = e.inst.Advise(setsystem.AdviseWillNeed)
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			r.pinned--
			r.mu.Unlock()
		})
	}
	return e.inst, release, nil
}

// Plan returns the replay plan attached to the hash, if any, refreshing
// nothing: plan lookups ride on the instance's own recency.
func (r *Registry) Plan(hash string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok || e.plan == nil {
		return nil, false
	}
	return e.plan, true
}

// AttachPlan charges bytes against the budget (evicting other unpinned
// entries if needed) and attaches the plan to the entry. It reports false —
// and attaches nothing — when the hash is not resident, a plan is already
// attached (first build wins; callers re-read with Plan), or the bytes do
// not fit with everything evictable evicted: replay is an optimization, so
// over-budget plans are simply not kept, never ErrBudget. The entry itself
// is protected from self-eviction while the charge is made.
func (r *Registry) AttachPlan(hash string, plan any, bytes int64) bool {
	if plan == nil || bytes < 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok || e.plan != nil {
		return false
	}
	e.pins++ // shield the entry from evictFor selecting it
	ok = r.evictFor(bytes)
	e.pins--
	if !ok {
		return false
	}
	e.plan, e.planBytes = plan, bytes
	r.resident += bytes
	r.plans += bytes
	return true
}

// Contains reports whether the hash is resident (without touching recency).
func (r *Registry) Contains(hash string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[hash]
	return ok
}

// Stats is a point-in-time summary of the store (the wire type lives in
// the public client package).
type Stats = client.RegistryStats

// Stats returns the current store summary.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Instances:     len(r.entries),
		ResidentBytes: r.resident,
		HeapBytes:     r.heap,
		MappedBytes:   r.mapped,
		PlanBytes:     r.plans,
		BudgetBytes:   r.budget,
		Evictions:     r.evictions,
		DedupHits:     r.dedupHits,
		Pinned:        r.pinned,
	}
}

// RegisterMetrics exposes the store on an obs registry as pull-style
// gauges and counters: every value is read from the registry's own ledgers
// at scrape time, so instrumentation adds no bookkeeping to the store's
// operational paths.
func (r *Registry) RegisterMetrics(m *obs.Registry) {
	read := func(f func(*Registry) float64) func() float64 {
		return func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return f(r)
		}
	}
	m.GaugeFunc("coverd_registry_instances",
		"Resident instances in the content-addressed store.",
		read(func(r *Registry) float64 { return float64(len(r.entries)) }))
	m.GaugeFunc("coverd_registry_resident_bytes",
		"Resident bytes charged against the memory budget (heap + mapped + plans).",
		read(func(r *Registry) float64 { return float64(r.resident) }))
	m.GaugeFunc("coverd_registry_heap_bytes",
		"Resident bytes of heap-decoded instances.",
		read(func(r *Registry) float64 { return float64(r.heap) }))
	m.GaugeFunc("coverd_registry_mapped_bytes",
		"Resident bytes of mmap-backed SCB2 instances.",
		read(func(r *Registry) float64 { return float64(r.mapped) }))
	m.GaugeFunc("coverd_registry_plan_bytes",
		"Resident bytes of attached pass-replay plans.",
		read(func(r *Registry) float64 { return float64(r.plans) }))
	m.GaugeFunc("coverd_registry_budget_bytes",
		"Configured memory budget in bytes.",
		read(func(r *Registry) float64 { return float64(r.budget) }))
	m.GaugeFunc("coverd_registry_pinned_instances",
		"Instances currently pinned by in-flight solve jobs.",
		read(func(r *Registry) float64 { return float64(r.pinned) }))
	m.CounterFunc("coverd_registry_evictions_total",
		"Instances evicted to make room under the memory budget.",
		read(func(r *Registry) float64 { return float64(r.evictions) }))
	m.CounterFunc("coverd_registry_dedup_hits_total",
		"Uploads deduplicated against an already-resident instance.",
		read(func(r *Registry) float64 { return float64(r.dedupHits) }))
}

// InstanceInfo describes one resident instance, for the stats endpoint
// (the wire type lives in the public client package).
type InstanceInfo = client.InstanceInfo

// Snapshot lists the resident instances, most recently used first.
func (r *Registry) Snapshot() []InstanceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]InstanceInfo, 0, len(r.entries))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, InstanceInfo{
			Hash: e.hash, N: e.inst.N, M: e.inst.M(), Bytes: e.bytes,
			PlanBytes: e.planBytes,
			Backing:   e.inst.Backing().String(),
		})
	}
	return out
}
