// Package registry is coverd's resident-instance store: a thread-safe,
// content-addressed cache of set-cover instances with a hard memory budget.
//
// Instances enter by upload (Put) or from disk (LoadFile) and are
// deduplicated by content hash (setsystem.Hash), so re-uploading the same
// instance — the common case for a fleet of clients solving one workload —
// costs nothing beyond hashing the bytes. Every entry is charged its
// estimated heap footprint (setsystem.SizeBytes) against the budget;
// admitting a new instance evicts least-recently-used unpinned entries
// until it fits, and fails with ErrBudget when pinned entries (instances
// with in-flight solve jobs) leave no room. The invariant is strict:
// resident bytes never exceed the budget, so a coverd process sized to its
// container cannot be OOM-killed by uploads.
//
// Pinning is how the scheduler keeps an instance alive across a job's
// queue-to-completion lifetime: Acquire returns the instance plus a release
// closure; entries with outstanding pins are skipped by eviction. Releasing
// the last pin makes the entry evictable again (it is not dropped eagerly —
// the next admission decides).
package registry

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sync"

	"streamcover/client"
	"streamcover/internal/setsystem"
)

// DefaultBudgetBytes is the memory budget when Config.BudgetBytes is 0:
// generous for benchmarks, small enough for a default container.
const DefaultBudgetBytes = 256 << 20

// ErrBudget is returned by Put/LoadFile when the instance cannot be
// admitted without exceeding the memory budget (everything evictable has
// been evicted; what remains is pinned or the instance alone is larger than
// the whole budget).
var ErrBudget = errors.New("registry: memory budget exhausted")

// ErrNotFound is returned by Acquire for an unknown (or evicted) hash.
var ErrNotFound = errors.New("registry: instance not found (never uploaded, or evicted)")

// Config parameterizes New.
type Config struct {
	// BudgetBytes caps the summed estimated footprint of resident
	// instances. 0 means DefaultBudgetBytes.
	BudgetBytes int64
}

// Registry is the store. The zero value is not usable; call New.
type Registry struct {
	mu        sync.Mutex
	budget    int64
	resident  int64
	entries   map[string]*entry
	lru       *list.List // front = most recently used
	evictions uint64
}

type entry struct {
	hash  string
	inst  *setsystem.Instance
	bytes int64
	pins  int
	elem  *list.Element
}

// New returns an empty registry with the configured budget.
func New(cfg Config) *Registry {
	b := cfg.BudgetBytes
	if b <= 0 {
		b = DefaultBudgetBytes
	}
	return &Registry{budget: b, entries: map[string]*entry{}, lru: list.New()}
}

// Put admits the instance, deduplicating by content hash. It returns the
// hash, whether the instance was newly added (false = dedup hit, which
// refreshes the entry's recency), and ErrBudget when it cannot fit. The
// registry retains the instance; callers must not mutate it afterwards.
func (r *Registry) Put(inst *setsystem.Instance) (hash string, added bool, err error) {
	hash = setsystem.Hash(inst)
	size := setsystem.SizeBytes(inst)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[hash]; ok {
		r.lru.MoveToFront(e.elem)
		return hash, false, nil
	}
	if !r.evictFor(size) {
		return hash, false, fmt.Errorf("%w: need %d bytes, budget %d, %d resident (pinned entries are not evictable)",
			ErrBudget, size, r.budget, r.resident)
	}
	e := &entry{hash: hash, inst: inst, bytes: size}
	e.elem = r.lru.PushFront(e)
	r.entries[hash] = e
	r.resident += size
	return hash, true, nil
}

// LoadFile reads an instance file (either codec, auto-detected) and admits
// it as Put does.
func (r *Registry) LoadFile(path string) (hash string, added bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", false, err
	}
	defer f.Close()
	inst, err := setsystem.ReadAuto(f)
	if err != nil {
		return "", false, fmt.Errorf("registry: %s: %w", path, err)
	}
	return r.Put(inst)
}

// evictFor drops unpinned LRU entries until size more bytes fit under the
// budget, reporting whether it succeeded. Caller holds r.mu.
func (r *Registry) evictFor(size int64) bool {
	if size > r.budget {
		return false
	}
	for r.resident+size > r.budget {
		victim := r.oldestUnpinned()
		if victim == nil {
			return false
		}
		r.remove(victim)
		r.evictions++
	}
	return true
}

func (r *Registry) oldestUnpinned() *entry {
	for el := r.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.pins == 0 {
			return e
		}
	}
	return nil
}

func (r *Registry) remove(e *entry) {
	r.lru.Remove(e.elem)
	delete(r.entries, e.hash)
	r.resident -= e.bytes
}

// Acquire looks up an instance by hash, refreshes its recency, and pins it
// against eviction. The returned release closure drops the pin; it is
// idempotent and must be called exactly once per successful Acquire (the
// scheduler defers it to job completion). The instance is shared and
// read-only.
func (r *Registry) Acquire(hash string) (*setsystem.Instance, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok {
		return nil, nil, ErrNotFound
	}
	r.lru.MoveToFront(e.elem)
	e.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			r.mu.Unlock()
		})
	}
	return e.inst, release, nil
}

// Contains reports whether the hash is resident (without touching recency).
func (r *Registry) Contains(hash string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[hash]
	return ok
}

// Stats is a point-in-time summary of the store (the wire type lives in
// the public client package).
type Stats = client.RegistryStats

// Stats returns the current store summary.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Instances:     len(r.entries),
		ResidentBytes: r.resident,
		BudgetBytes:   r.budget,
		Evictions:     r.evictions,
	}
}

// InstanceInfo describes one resident instance, for the stats endpoint
// (the wire type lives in the public client package).
type InstanceInfo = client.InstanceInfo

// Snapshot lists the resident instances, most recently used first.
func (r *Registry) Snapshot() []InstanceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]InstanceInfo, 0, len(r.entries))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, InstanceInfo{Hash: e.hash, N: e.inst.N, M: e.inst.M(), Bytes: e.bytes})
	}
	return out
}
