package registry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// mkInst returns a small instance whose content depends on tag, so distinct
// tags produce distinct hashes.
func mkInst(tag int) *setsystem.Instance {
	return setsystem.FromSets(64, [][]int{{tag % 64}, {0, 1, 2, (tag + 7) % 64}})
}

func TestPutDedup(t *testing.T) {
	r := New(Config{})
	h1, added, err := r.Put(mkInst(1))
	if err != nil || !added {
		t.Fatalf("first Put: added=%v err=%v", added, err)
	}
	h2, added, err := r.Put(mkInst(1))
	if err != nil || added {
		t.Fatalf("dedup Put: added=%v err=%v", added, err)
	}
	if h1 != h2 {
		t.Fatalf("dedup changed hash: %s vs %s", h1, h2)
	}
	if st := r.Stats(); st.Instances != 1 {
		t.Fatalf("want 1 resident instance, got %d", st.Instances)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	one := setsystem.SizeBytes(mkInst(0))
	r := New(Config{BudgetBytes: 3 * one})
	var hashes []string
	for i := 0; i < 5; i++ {
		h, _, err := r.Put(mkInst(i))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		hashes = append(hashes, h)
		if st := r.Stats(); st.ResidentBytes > st.BudgetBytes {
			t.Fatalf("after Put %d: resident %d exceeds budget %d", i, st.ResidentBytes, st.BudgetBytes)
		}
	}
	st := r.Stats()
	if st.Instances != 3 || st.Evictions != 2 {
		t.Fatalf("want 3 resident / 2 evictions, got %d / %d", st.Instances, st.Evictions)
	}
	// The two oldest are gone, the three newest remain.
	for i, h := range hashes {
		want := i >= 2
		if got := r.Contains(h); got != want {
			t.Fatalf("instance %d resident=%v, want %v", i, got, want)
		}
	}
	// Touching the LRU survivor protects it from the next eviction.
	if _, release, err := r.Acquire(hashes[2]); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	if _, _, err := r.Put(mkInst(5)); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(hashes[2]) || r.Contains(hashes[3]) {
		t.Fatalf("recency not honored: touched entry evicted before untouched one")
	}
}

func TestPinnedEntriesAreNotEvicted(t *testing.T) {
	one := setsystem.SizeBytes(mkInst(0))
	r := New(Config{BudgetBytes: 2 * one})
	h0, _, err := r.Put(mkInst(0))
	if err != nil {
		t.Fatal(err)
	}
	h1, _, err := r.Put(mkInst(1))
	if err != nil {
		t.Fatal(err)
	}
	_, rel0, err := r.Acquire(h0)
	if err != nil {
		t.Fatal(err)
	}
	_, rel1, err := r.Acquire(h1)
	if err != nil {
		t.Fatal(err)
	}
	// Both entries pinned and the budget full: admission must fail, not
	// evict in-use instances or blow the budget.
	if _, _, err := r.Put(mkInst(2)); !errors.Is(err, ErrBudget) {
		t.Fatalf("Put with all entries pinned: err=%v, want ErrBudget", err)
	}
	rel0()
	rel0() // release is idempotent
	if _, _, err := r.Put(mkInst(2)); err != nil {
		t.Fatalf("Put after release: %v", err)
	}
	if r.Contains(h0) || !r.Contains(h1) {
		t.Fatalf("eviction took the pinned entry instead of the released one")
	}
	rel1()
}

func TestInstanceLargerThanBudget(t *testing.T) {
	r := New(Config{BudgetBytes: 16})
	if _, _, err := r.Put(mkInst(0)); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized Put: err=%v, want ErrBudget", err)
	}
}

func TestAcquireUnknown(t *testing.T) {
	r := New(Config{})
	if _, _, err := r.Acquire("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
}

func TestLoadFileBothCodecs(t *testing.T) {
	inst := setsystem.Uniform(rng.New(7), 128, 16, 4, 12)
	dir := t.TempDir()
	text := filepath.Join(dir, "inst.sc")
	bin := filepath.Join(dir, "inst.scb")
	tf, err := os.Create(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.Write(tf, inst); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	bf, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.WriteBinary(bf, inst); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	r := New(Config{})
	h1, added, err := r.LoadFile(text)
	if err != nil || !added {
		t.Fatalf("text load: added=%v err=%v", added, err)
	}
	h2, added, err := r.LoadFile(bin)
	if err != nil || added {
		t.Fatalf("binary load should dedup against text load: added=%v err=%v", added, err)
	}
	if h1 != h2 {
		t.Fatalf("codecs hash differently: %s vs %s", h1, h2)
	}
	if h1 != setsystem.Hash(inst) {
		t.Fatalf("file hash differs from in-memory hash")
	}
}

// writeSCB2File stages an SCB2 file for the mmap LoadFile path.
func writeSCB2File(t *testing.T, inst *setsystem.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.scb2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.WriteSCB2(f, inst); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadFileSCB2MappedAccounting pins the heap/mapped ledger split: an
// SCB2 LoadFile charges mapped bytes (the file size the mapping can keep
// resident), never heap bytes — mmap entries do not burn heap budget.
func TestLoadFileSCB2MappedAccounting(t *testing.T) {
	if !setsystem.MapSupported() {
		t.Skip("no zero-copy mapping on this host")
	}
	inst := setsystem.Uniform(rng.New(8), 256, 24, 4, 16)
	path := writeSCB2File(t, inst)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	r := New(Config{})
	hash, added, err := r.LoadFile(path)
	if err != nil || !added {
		t.Fatalf("scb2 load: added=%v err=%v", added, err)
	}
	st := r.Stats()
	if st.HeapBytes != 0 {
		t.Fatalf("mapped entry charged %d heap bytes; mmap entries must not burn heap budget", st.HeapBytes)
	}
	if st.MappedBytes != fi.Size() {
		t.Fatalf("mapped_bytes = %d, file is %d", st.MappedBytes, fi.Size())
	}
	if st.ResidentBytes != st.HeapBytes+st.MappedBytes {
		t.Fatalf("resident %d != heap %d + mapped %d", st.ResidentBytes, st.HeapBytes, st.MappedBytes)
	}

	// The snapshot reports the backing, and the entry is solvable: Acquire
	// hands out the mapped instance like any other.
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Backing != "mapped" || snap[0].Bytes != fi.Size() {
		t.Fatalf("snapshot = %+v", snap)
	}
	got, release, err := r.Acquire(hash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backing() != setsystem.BackingMapped || setsystem.Hash(got) != setsystem.Hash(inst) {
		t.Fatalf("acquired instance backing=%v", got.Backing())
	}
	release()

	// An upload of the same content dedups against the mapped entry.
	if _, added, err := r.Put(inst.Clone()); err != nil || added {
		t.Fatalf("heap twin should dedup against mapped entry: added=%v err=%v", added, err)
	}
	if st := r.Stats(); st.HeapBytes != 0 || st.Instances != 1 {
		t.Fatalf("dedup changed the ledgers: %+v", st)
	}
}

// TestMappedEvictionUnmaps pins the eviction lifecycle: budget pressure
// evicts the LRU mapped entry and releases its mapping (the mapped ledger
// returns to zero), while the heap ledger picks up the new entry.
func TestMappedEvictionUnmaps(t *testing.T) {
	if !setsystem.MapSupported() {
		t.Skip("no zero-copy mapping on this host")
	}
	inst := setsystem.Uniform(rng.New(9), 256, 24, 4, 16)
	path := writeSCB2File(t, inst)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	big := setsystem.Uniform(rng.New(10), 512, 64, 8, 32)
	bigSize := setsystem.SizeBytes(big)
	// Budget fits either entry alone, never both.
	budget := fi.Size() + bigSize - 1
	if budget < fi.Size() || budget < bigSize {
		t.Fatalf("fixture sizes too small for the squeeze: file=%d big=%d", fi.Size(), bigSize)
	}
	r := New(Config{BudgetBytes: budget})
	mappedHash, added, err := r.LoadFile(path)
	if err != nil || !added {
		t.Fatalf("scb2 load: added=%v err=%v", added, err)
	}
	if _, added, err := r.Put(big); err != nil || !added {
		t.Fatalf("heap put: added=%v err=%v", added, err)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Instances != 1 {
		t.Fatalf("want the mapped entry evicted, got %+v", st)
	}
	if st.MappedBytes != 0 {
		t.Fatalf("eviction left %d mapped bytes — the mapping was not released", st.MappedBytes)
	}
	if st.HeapBytes != bigSize || st.ResidentBytes != bigSize {
		t.Fatalf("heap ledger off: %+v (want %d)", st, bigSize)
	}
	if _, _, err := r.Acquire(mappedHash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted mapped entry still acquirable: %v", err)
	}
}

// TestLoadFileSCB2Dedup pins that a second LoadFile of the same SCB2 file
// releases its fresh mapping instead of leaking it (the ledger must not
// double-charge).
func TestLoadFileSCB2Dedup(t *testing.T) {
	inst := setsystem.Uniform(rng.New(11), 128, 12, 2, 8)
	path := writeSCB2File(t, inst)
	r := New(Config{})
	if _, added, err := r.LoadFile(path); err != nil || !added {
		t.Fatalf("first load: added=%v err=%v", added, err)
	}
	before := r.Stats()
	if _, added, err := r.LoadFile(path); err != nil || added {
		t.Fatalf("second load: added=%v err=%v", added, err)
	}
	after := r.Stats()
	if after.DedupHits != before.DedupHits+1 {
		t.Fatalf("dedup load not counted: %d -> %d", before.DedupHits, after.DedupHits)
	}
	after.DedupHits = before.DedupHits
	if after != before {
		t.Fatalf("dedup load changed ledger: %+v -> %+v", before, after)
	}
}
