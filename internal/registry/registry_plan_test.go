package registry

import (
	"testing"

	"streamcover/internal/setsystem"
)

func TestAttachPlanChargesBudgetAndStats(t *testing.T) {
	r := New(Config{})
	hash, _, err := r.Put(mkInst(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Plan(hash); ok {
		t.Fatal("fresh entry should have no plan")
	}
	plan := &struct{ tag int }{tag: 1}
	if !r.AttachPlan(hash, plan, 1024) {
		t.Fatal("AttachPlan failed on a resident entry with room")
	}
	got, ok := r.Plan(hash)
	if !ok || got != any(plan) {
		t.Fatalf("Plan returned %v/%v, want the attached plan", got, ok)
	}
	st := r.Stats()
	if st.PlanBytes != 1024 {
		t.Fatalf("PlanBytes = %d, want 1024", st.PlanBytes)
	}
	if st.ResidentBytes != st.HeapBytes+st.PlanBytes {
		t.Fatalf("resident split off: %+v", st)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].PlanBytes != 1024 {
		t.Fatalf("snapshot plan bytes: %+v", snap)
	}
	// First build wins: a second attach is refused, the original stays.
	if r.AttachPlan(hash, &struct{ tag int }{tag: 2}, 64) {
		t.Fatal("second AttachPlan should be refused")
	}
	if got, _ := r.Plan(hash); got != any(plan) {
		t.Fatal("losing attach replaced the plan")
	}
}

func TestAttachPlanUnknownOrOversized(t *testing.T) {
	r := New(Config{BudgetBytes: 4 * setsystem.SizeBytes(mkInst(0))})
	if r.AttachPlan("nope", &struct{}{}, 8) {
		t.Fatal("AttachPlan on unknown hash should fail")
	}
	hash, _, err := r.Put(mkInst(1))
	if err != nil {
		t.Fatal(err)
	}
	// A plan bigger than the whole budget never fits; the entry must not be
	// sacrificed to make room for its own plan.
	if r.AttachPlan(hash, &struct{}{}, r.Stats().BudgetBytes+1) {
		t.Fatal("oversized plan should be refused")
	}
	if !r.Contains(hash) {
		t.Fatal("entry evicted while attaching its own plan")
	}
	if st := r.Stats(); st.PlanBytes != 0 {
		t.Fatalf("failed attach leaked %d plan bytes", st.PlanBytes)
	}
}

func TestPlanDroppedOnEviction(t *testing.T) {
	one := setsystem.SizeBytes(mkInst(0))
	r := New(Config{BudgetBytes: 3 * one})
	h1, _, err := r.Put(mkInst(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r.AttachPlan(h1, &struct{}{}, one/2) {
		t.Fatal("attach failed with room to spare")
	}
	// Admit instances until h1 (the LRU victim, plan and all) is evicted.
	for tag := 2; r.Contains(h1); tag++ {
		if _, _, err := r.Put(mkInst(tag)); err != nil {
			t.Fatal(err)
		}
		if tag > 16 {
			t.Fatal("h1 never evicted")
		}
	}
	if _, ok := r.Plan(h1); ok {
		t.Fatal("plan survived its instance's eviction")
	}
	st := r.Stats()
	if st.PlanBytes != 0 {
		t.Fatalf("evicted plan still charged: %+v", st)
	}
	if st.ResidentBytes != st.HeapBytes {
		t.Fatalf("resident accounting off after plan eviction: %+v", st)
	}
}

func TestAttachPlanEvictsOthersForRoom(t *testing.T) {
	one := setsystem.SizeBytes(mkInst(0))
	r := New(Config{BudgetBytes: 2 * one})
	h1, _, err := r.Put(mkInst(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := r.Put(mkInst(2))
	if err != nil {
		t.Fatal(err)
	}
	// No headroom: attaching a plan to h2 must evict h1 (LRU, unpinned),
	// not fail and not evict h2 itself.
	if !r.AttachPlan(h2, &struct{}{}, one/2) {
		t.Fatal("attach should have made room by evicting the LRU entry")
	}
	if r.Contains(h1) {
		t.Fatal("LRU entry not evicted for plan room")
	}
	if !r.Contains(h2) {
		t.Fatal("plan's own entry was evicted")
	}
	if st := r.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("budget invariant broken: %+v", st)
	}
}
