package maxcover

import (
	"testing"

	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func runOnce(t *testing.T, inst *setsystem.Instance, alg stream.PassAlgorithm) stream.Accounting {
	t.Helper()
	s := stream.FromInstance(inst, stream.Adversarial, nil)
	acc, err := stream.Run(s, alg, 3)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestSampledKCoverNearOptimal(t *testing.T) {
	r := rng.New(1)
	inst := setsystem.Uniform(r, 2000, 120, 100, 400)
	k := 3
	_, _, optCov, err := exactTriple(inst, k)
	if err != nil {
		t.Fatal(err)
	}
	a := NewSampledKCover(inst.N, inst.M(), SampledConfig{K: k, Eps: 0.1, Exact: true}, rng.New(2))
	acc := runOnce(t, inst, a)
	chosen, aerr := a.Result()
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(chosen) == 0 || len(chosen) > k {
		t.Fatalf("chose %d sets, want ≤ %d", len(chosen), k)
	}
	got := inst.CoverageOf(chosen)
	if float64(got) < 0.85*float64(optCov) {
		t.Fatalf("sampled coverage %d < 0.85·opt (%d)", got, optCov)
	}
	if acc.Passes != 1 {
		t.Fatalf("passes = %d, want 1", acc.Passes)
	}
}

func exactTriple(inst *setsystem.Instance, k int) (i, j, cov int, err error) {
	chosen, cv, e := offline.MaxCoverExact(inst, k, offline.ExactConfig{})
	if e != nil {
		return 0, 0, 0, e
	}
	_ = chosen
	return 0, 0, cv, nil
}

func TestSampledKCoverSpaceScalesWithEps(t *testing.T) {
	inst := setsystem.Uniform(rng.New(3), 4000, 100, 200, 800)
	peak := func(eps float64) int {
		a := NewSampledKCover(inst.N, inst.M(), SampledConfig{K: 2, Eps: eps}, rng.New(4))
		acc := runOnce(t, inst, a)
		return acc.PeakSpace
	}
	loose, tight := peak(0.5), peak(0.05)
	if tight <= loose {
		t.Fatalf("smaller ε must cost more space: ε=0.5→%d, ε=0.05→%d", loose, tight)
	}
}

func TestSampleSizeClamp(t *testing.T) {
	a := NewSampledKCover(50, 10, SampledConfig{K: 5, Eps: 0.01}, rng.New(5))
	if s := a.SampleSize(); s != 50 {
		t.Fatalf("sample size %d, want clamp to n=50", s)
	}
}

func TestSampledDefaults(t *testing.T) {
	a := NewSampledKCover(100, 10, SampledConfig{}, rng.New(6))
	if a.cfg.K != 1 || a.cfg.Eps != 0.1 || a.cfg.SampleC != 4 {
		t.Fatalf("defaults not applied: %+v", a.cfg)
	}
}

func TestSieveHalfApprox(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		inst := setsystem.Uniform(r, 500, 40, 20, 120)
		k := 3
		_, optCov, err := offline.MaxCoverExact(inst, k, offline.ExactConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sv := NewSieve(inst.N, k, 0.1)
		runOnce(t, inst, sv)
		chosen, _ := sv.Result()
		if len(chosen) > k {
			t.Fatalf("sieve chose %d > k", len(chosen))
		}
		got := inst.CoverageOf(chosen)
		if float64(got) < (0.5-0.1-0.02)*float64(optCov) {
			t.Fatalf("trial %d: sieve coverage %d < (1/2−ε)·opt (%d)", trial, got, optCov)
		}
	}
}

func TestSieveSinglePass(t *testing.T) {
	inst := setsystem.Uniform(rng.New(8), 300, 30, 10, 60)
	sv := NewSieve(inst.N, 2, 0.2)
	acc := runOnce(t, inst, sv)
	if acc.Passes != 1 {
		t.Fatalf("sieve passes = %d", acc.Passes)
	}
}

func TestSieveEmptyStream(t *testing.T) {
	inst := &setsystem.Instance{N: 10}
	sv := NewSieve(10, 2, 0.1)
	runOnce(t, inst, sv)
	chosen, cov := sv.Result()
	if len(chosen) != 0 || cov != 0 {
		t.Fatalf("empty stream: %v %d", chosen, cov)
	}
}

func TestSieveDefaults(t *testing.T) {
	sv := NewSieve(10, 0, 2)
	if sv.k != 1 || sv.eps != 0.1 {
		t.Fatalf("defaults not applied: k=%d eps=%v", sv.k, sv.eps)
	}
}

func TestSampledGreedyMode(t *testing.T) {
	inst := setsystem.Uniform(rng.New(9), 1000, 60, 50, 200)
	a := NewSampledKCover(inst.N, inst.M(), SampledConfig{K: 4, Eps: 0.1, Exact: false}, rng.New(10))
	runOnce(t, inst, a)
	chosen, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	_, greedyCov := offline.MaxCoverGreedy(inst, 4)
	got := inst.CoverageOf(chosen)
	if float64(got) < 0.8*float64(greedyCov) {
		t.Fatalf("greedy-mode sampled coverage %d too far below offline greedy %d", got, greedyCov)
	}
}

func BenchmarkSampledKCover(b *testing.B) {
	inst := setsystem.Uniform(rng.New(11), 4000, 200, 100, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewSampledKCover(inst.N, inst.M(), SampledConfig{K: 3, Eps: 0.1}, rng.New(uint64(i)))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		if _, err := stream.Run(s, a, 2); err != nil {
			b.Fatal(err)
		}
	}
}
