// Package maxcover implements streaming maximum k-coverage algorithms.
//
// The paper's Section 3.4 uses (1−ε)-approximate maximum coverage with very
// small ε as the per-iteration subroutine of streaming set cover, and its
// Theorem 4 proves any such algorithm needs Ω̃(m/ε²) space. This package
// provides the two standard upper-bound strategies:
//
//   - SampledKCover: element sampling in the style of McGregor–Vu (ICDT
//     2017) and Bateni et al.: project every set onto a random sample of
//     Θ(k·ln m/ε²) universe elements (one pass, Õ(m·k/ε²) words total) and
//     solve maximum coverage on the sample offline. (1−ε)-approximation
//     w.h.p. — matching the Ω̃(m/ε²) lower bound up to the k factor.
//
//   - Sieve: the single-pass threshold ("sieve-streaming") algorithm of
//     Badanidiyuru et al. (KDD 2014) specialized to coverage: maintain a
//     geometric grid of OPT guesses and add a set to a guess's solution
//     when its marginal coverage crosses (v/2 − current)/(k − picked).
//     (1/2−ε)-approximation — the quality/space baseline below the (1−ε)
//     regime.
package maxcover

import (
	"context"
	"math"
	"slices"
	"sort"

	"streamcover/internal/bitset"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// SampledConfig configures SampledKCover.
type SampledConfig struct {
	// K is the coverage budget (number of sets to pick).
	K int
	// Eps is the target approximation slack: (1−ε)·opt coverage w.h.p.
	Eps float64
	// SampleC scales the sample size C·K·ln(m)/ε²; 0 means 4.
	SampleC float64
	// Exact solves the sampled instance optimally when true (feasible for
	// small K); otherwise greedy is used, costing an extra (1−1/e) factor.
	Exact bool
	// NodeBudget bounds the exact sub-solve (0 = offline default).
	NodeBudget int64
	// Workers is the parallelism of the greedy sub-solve's per-round
	// candidate gain scan (0 = GOMAXPROCS, 1 = sequential). The chosen sets
	// are identical at every worker count: ties break toward the lowest set
	// index exactly as in the sequential scan.
	Workers int
	// Context, when non-nil, cancels the exact offline sub-solve of EndPass
	// cooperatively (branch-and-bound polls it every few thousand nodes);
	// the stream driver handles cancellation between Observe chunks.
	Context context.Context
}

// SampledKCover is the element-sampling streaming maximum coverage
// algorithm (one pass over the stream).
type SampledKCover struct {
	cfg  SampledConfig
	n, m int
	r    *rng.RNG

	sample []int // sorted sampled universe elements
	remap  map[int32]int32
	// Stored projections in CSR form (flat arena + offsets), as in core.Run:
	// the one-pass Observe path appends to flat slices instead of allocating
	// a slice per projected set.
	projIDs   []int
	projOffs  []int
	projElems []int32
	chosen    []int
	err       error
	done      bool
}

// NewSampledKCover builds the algorithm for a stream with universe n and m
// sets.
func NewSampledKCover(n, m int, cfg SampledConfig, r *rng.RNG) *SampledKCover {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		cfg.Eps = 0.1
	}
	if cfg.SampleC <= 0 {
		cfg.SampleC = 4
	}
	return &SampledKCover{cfg: cfg, n: n, m: m, r: r}
}

// SampleSize returns the number of universe elements sampled:
// min(n, C·K·ln(m)/ε²).
func (a *SampledKCover) SampleSize() int {
	lm := math.Log(float64(a.m))
	if lm < 1 {
		lm = 1
	}
	s := int(a.cfg.SampleC * float64(a.cfg.K) * lm / (a.cfg.Eps * a.cfg.Eps))
	if s > a.n {
		s = a.n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// BeginPass implements stream.PassAlgorithm.
func (a *SampledKCover) BeginPass(pass int) {
	if pass != 0 {
		return
	}
	a.sample = a.r.KSubset(a.n, a.SampleSize())
	a.remap = make(map[int32]int32, len(a.sample))
	for i, e := range a.sample {
		a.remap[int32(e)] = int32(i)
	}
	a.projOffs = append(a.projOffs[:0], 0)
}

// Observe implements stream.PassAlgorithm.
func (a *SampledKCover) Observe(item stream.Item) {
	if a.done {
		return
	}
	start := len(a.projElems)
	for _, e := range item.Elems {
		if idx, ok := a.remap[e]; ok {
			a.projElems = append(a.projElems, idx)
		}
	}
	if len(a.projElems) > start {
		slices.Sort(a.projElems[start:])
		a.projIDs = append(a.projIDs, item.ID)
		a.projOffs = append(a.projOffs, len(a.projElems))
	}
}

// EndPass implements stream.PassAlgorithm: solves the sampled instance,
// built straight from the flat projection arena.
func (a *SampledKCover) EndPass() bool {
	sb := setsystem.NewBuilder(len(a.sample))
	sb.Grow(len(a.projIDs), len(a.projElems))
	for i := range a.projIDs {
		sb.AddSet32(a.projElems[a.projOffs[i]:a.projOffs[i+1]])
	}
	sub := sb.Build()
	var picked []int
	if a.cfg.Exact {
		chosen, _, err := offline.MaxCoverExact(sub, a.cfg.K,
			offline.ExactConfig{NodeBudget: a.cfg.NodeBudget, Context: a.cfg.Context})
		if err != nil {
			a.err = err
			a.done = true
			return true
		}
		picked = chosen
	} else {
		picked, _ = offline.MaxCoverGreedyWorkers(sub, a.cfg.K, a.cfg.Workers)
	}
	for _, local := range picked {
		a.chosen = append(a.chosen, a.projIDs[local])
	}
	sort.Ints(a.chosen)
	a.done = true
	return true
}

// Space implements stream.PassAlgorithm: the sample plus stored projections
// (one word per retained set ID and element ID, as before the CSR layout).
func (a *SampledKCover) Space() int {
	return len(a.sample) + len(a.projIDs) + len(a.projElems) + len(a.chosen)
}

// Result returns the chosen set IDs and any sub-solver error.
func (a *SampledKCover) Result() ([]int, error) {
	return append([]int(nil), a.chosen...), a.err
}

// Sieve is the single-pass threshold maximum-coverage algorithm. Its
// geometric OPT-guess grid is its own fan-out — every guess probes every
// item — so the per-guess covered bitsets live as lanes of one bit-sliced
// bitset.Grid, and Observe computes all marginal gains with one interleaved
// Grid.AndCountRuns sweep (the dispatched scalar/AVX2 kernel) per item.
//
// Only *active* guesses — those still short of the k-set budget — occupy
// grid lanes: a guess that saturates never probes again (its count is
// final), so the grid is compacted to the surviving lanes on every
// saturation and the sweep's width tracks the live frontier instead of the
// full geometric grid.
type Sieve struct {
	n, k int
	eps  float64

	maxSingleton int
	guesses      []sieveGuess
	lanes        []int        // lanes[l] = index into guesses of lane l's owner
	grid         *bitset.Grid // covered elements, one lane per active guess
	counts       []int64      // AndCountRuns accumulator, grid width
	runScratch   []bitset.Run
	done         bool
}

type sieveGuess struct {
	v      float64
	chosen []int
	count  int
	lane   int // grid lane while active; -1 once saturated
}

// NewSieve builds a sieve for universe n with budget k and slack ε.
func NewSieve(n, k int, eps float64) *Sieve {
	if k < 1 {
		k = 1
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	return &Sieve{n: n, k: k, eps: eps}
}

// BeginPass implements stream.PassAlgorithm.
func (s *Sieve) BeginPass(pass int) {}

// Observe implements stream.PassAlgorithm. The item's run list is built (or
// taken from the producer) once, swept across the active lanes in one
// interleaved Grid.AndCountRuns — all per-guess already-covered counts from
// stride-1 loads — and each active guess then applies its threshold test to
// its lane's count. Picks update the picking guess's lane only; a pick that
// saturates its guess triggers a grid compaction to the surviving lanes.
func (s *Sieve) Observe(item stream.Item) {
	if s.done {
		return
	}
	if len(item.Elems) > s.maxSingleton {
		s.maxSingleton = len(item.Elems)
		s.refreshGuesses()
	}
	if len(s.lanes) == 0 {
		return
	}
	var runs []bitset.Run
	runs, s.runScratch = item.RunsInto(s.runScratch)
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	s.grid.AndCountRuns(runs, counts)
	saturated := false
	for l, gi := range s.lanes {
		g := &s.guesses[gi]
		gain := len(item.Elems) - int(counts[l])
		need := (g.v/2 - float64(g.count)) / float64(s.k-len(g.chosen))
		if float64(gain) >= need && gain > 0 {
			g.chosen = append(g.chosen, item.ID)
			g.count += s.grid.LaneOrRuns(l, runs)
			if len(g.chosen) >= s.k {
				saturated = true
			}
		}
	}
	if saturated {
		s.compactLanes()
	}
}

// compactLanes rebuilds the grid over the guesses still short of the budget,
// dropping saturated guesses' covered lanes (their counts are final). Each
// guess saturates at most once, so the total compaction cost over a pass is
// O(guesses · grid words).
func (s *Sieve) compactLanes() {
	keep := s.lanes[:0]
	for _, gi := range s.lanes {
		if len(s.guesses[gi].chosen) < s.k {
			keep = append(keep, gi)
		} else {
			s.guesses[gi].lane = -1
		}
	}
	if len(keep) == len(s.lanes) {
		return
	}
	if len(keep) == 0 {
		s.lanes, s.grid, s.counts = nil, nil, nil
		return
	}
	grid := bitset.NewGrid(s.n, len(keep))
	for l, gi := range keep {
		grid.CopyLane(l, s.grid, s.guesses[gi].lane)
		s.guesses[gi].lane = l
	}
	s.lanes = keep
	s.grid = grid
	s.counts = grid.MakeCounts()
}

// refreshGuesses lazily maintains the geometric OPT-guess grid
// {(1+ε)^j : maxSingleton ≤ (1+ε)^j ≤ 2·k·maxSingleton}, carrying over the
// state of guesses that remain in range. The covered grid is rebuilt over
// the active (unsaturated) guesses of the new grid — surviving active
// lanes are migrated with CopyLane, fresh guesses start empty, and
// saturated survivors keep their final counts without a lane.
func (s *Sieve) refreshGuesses() {
	lo := float64(s.maxSingleton)
	hi := 2 * float64(s.k) * float64(s.maxSingleton)
	existing := map[int]int{} // geometric index j → current guess index
	for gi, g := range s.guesses {
		existing[int(math.Round(math.Log(g.v)/math.Log(1+s.eps)))] = gi
	}
	jLo := int(math.Floor(math.Log(lo) / math.Log(1+s.eps)))
	jHi := int(math.Ceil(math.Log(hi) / math.Log(1+s.eps)))
	var next []sieveGuess
	var src []int // previous grid lane per new guess; -1 if none to migrate
	for j := jLo; j <= jHi; j++ {
		v := math.Pow(1+s.eps, float64(j))
		if v < lo/(1+s.eps) || v > hi*(1+s.eps) {
			continue
		}
		if gi, ok := existing[j]; ok {
			next = append(next, s.guesses[gi])
			src = append(src, s.guesses[gi].lane)
			continue
		}
		next = append(next, sieveGuess{v: v, lane: -1})
		src = append(src, -1)
	}
	lanes := make([]int, 0, len(next))
	for gi := range next {
		if len(next[gi].chosen) < s.k {
			lanes = append(lanes, gi)
		} else {
			next[gi].lane = -1
		}
	}
	if len(lanes) == 0 {
		s.guesses, s.lanes, s.grid, s.counts = next, nil, nil, nil
		return
	}
	grid := bitset.NewGrid(s.n, len(lanes))
	for l, gi := range lanes {
		if src[gi] >= 0 {
			grid.CopyLane(l, s.grid, src[gi])
		}
		next[gi].lane = l
	}
	s.guesses = next
	s.lanes = lanes
	s.grid = grid
	s.counts = grid.MakeCounts()
}

// EndPass implements stream.PassAlgorithm: single pass.
func (s *Sieve) EndPass() bool {
	s.done = true
	return true
}

// Space implements stream.PassAlgorithm: each live guess pays its covered
// bitset (n words, matching the package-wide flag accounting) plus its
// partial solution.
func (s *Sieve) Space() int {
	sp := 0
	for _, g := range s.guesses {
		sp += s.n + len(g.chosen)
	}
	return sp
}

// Result returns the best guess's chosen IDs and their sampled coverage
// count.
func (s *Sieve) Result() (chosen []int, covered int) {
	best := -1
	for gi := range s.guesses {
		if s.guesses[gi].count > covered || best < 0 {
			best = gi
			covered = s.guesses[gi].count
		}
	}
	if best < 0 {
		return nil, 0
	}
	out := append([]int(nil), s.guesses[best].chosen...)
	sort.Ints(out)
	return out, covered
}
