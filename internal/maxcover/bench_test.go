package maxcover

import (
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// BenchmarkSieveGrid measures one full sieve pass: every item is probed
// against the covered bitset of every guess in the geometric OPT grid
// (~30 guesses at ε=0.1) — the many-consumers-per-item workload the
// shared per-item mask runs exist for.
func BenchmarkSieveGrid(b *testing.B) {
	inst := setsystem.Uniform(rng.New(3), 1<<13, 1024, 128, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := NewSieve(inst.N, 8, 0.1)
		st := stream.FromInstance(inst, stream.Adversarial, nil)
		if _, err := stream.Run(st, sv, 2); err != nil {
			b.Fatal(err)
		}
	}
}
