package comm

import (
	"fmt"

	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
)

// DisjProtocol is a two-party protocol for Disj_t whose transcript the
// information-cost experiments analyze (E9). Run answers "disjoint?" and
// appends its messages to tr.
type DisjProtocol interface {
	Name() string
	Run(d hardinst.Disj, r *rng.RNG, tr *Transcript) (disjoint bool)
}

// FullRevealDisj sends Alice's whole set; Bob answers exactly. Its internal
// information cost is H(A | B) = Θ(t) — the ceiling every protocol's cost
// is compared against.
type FullRevealDisj struct{}

// Name implements DisjProtocol.
func (FullRevealDisj) Name() string { return "full-reveal" }

// Run implements DisjProtocol.
func (FullRevealDisj) Run(d hardinst.Disj, _ *rng.RNG, tr *Transcript) bool {
	tr.Append(EncodeIntSet(d.A), SetBits(d.T, len(d.A)))
	disjoint := len(hardinst.Intersection(d.A, d.B)) == 0
	if disjoint {
		tr.Append("yes", 1)
	} else {
		tr.Append("no", 1)
	}
	return disjoint
}

// SampledDisj sends S uniformly random elements of Alice's set; Bob reports
// whether any of them is in his set (a certificate of intersection). One-
// sided error: a reported hit is always correct; a miss is answered
// "disjoint" and errs with probability ≈ (1 − S/|A|) on intersecting
// inputs. Driving the error below a constant therefore needs S = Θ(t),
// which is exactly the Ω(t) information cost of Proposition 2.5 showing up
// operationally.
type SampledDisj struct {
	S int
}

// Name implements DisjProtocol.
func (p SampledDisj) Name() string { return fmt.Sprintf("sampled-%d", p.S) }

// Run implements DisjProtocol.
func (p SampledDisj) Run(d hardinst.Disj, r *rng.RNG, tr *Transcript) bool {
	s := p.S
	if s > len(d.A) {
		s = len(d.A)
	}
	sample := make([]int, 0, s)
	if s > 0 {
		for _, idx := range r.KSubset(len(d.A), s) {
			sample = append(sample, d.A[idx])
		}
	}
	tr.Append(EncodeIntSet(sample), SetBits(d.T, len(sample)))
	hit := false
	for _, e := range sample {
		if containsSorted(d.B, e) {
			hit = true
			break
		}
	}
	if hit {
		tr.Append("hit", 1)
		return false
	}
	tr.Append("miss", 1)
	return true
}

// SilentDisj communicates one constant bit and always answers
// "intersecting" (the majority answer under D_Disj is a fair coin, so its
// error is 1/2). Its internal information cost is 0: the floor for the
// Yes/No cost-relation checks of Lemma 3.5.
type SilentDisj struct{}

// Name implements DisjProtocol.
func (SilentDisj) Name() string { return "silent" }

// Run implements DisjProtocol.
func (SilentDisj) Run(_ hardinst.Disj, _ *rng.RNG, tr *Transcript) bool {
	tr.Append("0", 1)
	return false
}

func containsSorted(s []int, v int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
