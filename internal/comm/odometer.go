package comm

import (
	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
)

// Odometer wraps a Disj protocol with a transcript budget, the executable
// shape of the information-odometer construction (Braverman–Weinstein,
// used by the paper via Lemma 3.6 / Göös et al.): run the protocol while
// metering the cost; if the meter exceeds the budget, abort and output the
// fallback answer ("No"/intersecting, the answer whose instances are cheap
// for the underlying protocol).
//
// Lemma 3.6's point is that a protocol cheap on No-instances can be made
// cheap everywhere at a small error cost; the wrapped protocol's cost is
// capped at Budget (+ one message) by construction, and its extra error is
// confined to runs the budget truncates.
type Odometer struct {
	Inner DisjProtocol
	// Budget caps the transcript bits before the abort.
	Budget int
}

// Name implements DisjProtocol.
func (o Odometer) Name() string { return "odometer(" + o.Inner.Name() + ")" }

// Run implements DisjProtocol. The inner protocol runs against a private
// transcript; messages are re-played onto tr until the budget trips.
func (o Odometer) Run(d hardinst.Disj, r *rng.RNG, tr *Transcript) bool {
	var inner Transcript
	ans := o.Inner.Run(d, r, &inner)
	bits := 0
	for i, msg := range inner.Msgs {
		cost := inner.Costs[i]
		if bits+cost > o.Budget {
			tr.Append("abort", 1)
			return false // fallback: declare intersecting
		}
		bits += cost
		tr.Append(msg, cost)
	}
	return ans
}
