package comm

import (
	"fmt"
	"testing"

	"streamcover/internal/core"
	"streamcover/internal/hardinst"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func TestSetBits(t *testing.T) {
	if b := SetBits(16, 3); b != 12 {
		t.Fatalf("SetBits(16,3) = %d, want 12", b)
	}
	if b := SetBits(2, 0); b != 1 {
		t.Fatalf("SetBits minimum = %d, want 1", b)
	}
	if b := SetBits(0, 5); b < 5 {
		t.Fatalf("degenerate universe bits = %d", b)
	}
}

func TestTranscript(t *testing.T) {
	var tr Transcript
	tr.Append("a", 3)
	tr.Append("b", 4)
	if tr.Bits != 7 || tr.Key() != "a|b" {
		t.Fatalf("transcript = %+v key=%q", tr, tr.Key())
	}
}

func TestSimulateStreamingSolver(t *testing.T) {
	inst, planted := setsystem.PlantedCover(rng.New(1), 1024, 200, 4, 0.6)
	solver := core.NewSolver(inst.N, inst.M(), core.Config{Alpha: 2, Epsilon: 0.5}, rng.New(2))
	owner := make([]bool, inst.M())
	for i := range owner {
		owner[i] = i%2 == 0
	}
	res, err := SimulateStreaming(solver, inst, owner, core.Passes(2)+1, 32)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := solver.Best()
	if !ok || !inst.IsCover(best.Cover) {
		t.Fatal("solver failed under two-party simulation")
	}
	if len(best.Cover) > 4*len(planted) {
		t.Fatalf("cover %d vs opt %d", len(best.Cover), len(planted))
	}
	if res.Bits <= 0 || res.Handoffs < res.Passes {
		t.Fatalf("accounting wrong: %+v", res)
	}
	// O(p·s) bits: handoffs·space ≥ bits consistency.
	if res.Handoffs > 2*res.Passes {
		t.Fatalf("too many handoffs: %+v", res)
	}
}

func TestSimulateStreamingOwnerMismatch(t *testing.T) {
	inst := setsystem.Uniform(rng.New(3), 32, 8, 4, 10)
	solver := core.NewSolver(inst.N, inst.M(), core.Config{Alpha: 2}, rng.New(4))
	if _, err := SimulateStreaming(solver, inst, make([]bool, 3), 10, 32); err == nil {
		t.Fatal("owner mismatch accepted")
	}
}

func TestSimulateStreamingBeatsFullExchange(t *testing.T) {
	// The Theorem 2 regime needs m ≫ n^{1/α} and a sampling rate below 1:
	// many dense sets, small opt, log₂(n) bits per word (IDs are log n
	// bits; that is what both sides of the comparison pay). Then the
	// streaming protocol's bits drop monotonically with α and beat full
	// exchange from α=2 on, while α=1 (store everything, multiple
	// handoffs) costs more than shipping the input once.
	inst, _ := setsystem.PlantedCover(rng.New(5), 4096, 2048, 2, 0.6)
	owner := make([]bool, inst.M())
	for i := range owner {
		owner[i] = i < inst.M()/2
	}
	full := InstanceBits(inst)
	const wordBits = 12 // ⌈log₂ 4096⌉
	bitsAt := func(alpha int) int {
		run := core.NewRun(inst.N, inst.M(), 2, core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 1}, rng.New(6))
		res, err := SimulateStreaming(run, inst, owner, core.Passes(alpha), wordBits)
		if err != nil {
			t.Fatal(err)
		}
		if !run.Result().Feasible {
			t.Fatalf("α=%d infeasible at correct guess", alpha)
		}
		return res.Bits
	}
	b1, b2, b4 := bitsAt(1), bitsAt(2), bitsAt(4)
	if b1 <= full {
		t.Fatalf("α=1 should pay at least full exchange: %d vs %d", b1, full)
	}
	if b2 >= full {
		t.Fatalf("α=2 protocol (%d bits) no better than full exchange (%d bits)", b2, full)
	}
	if !(b4 < b2 && b2 < b1) {
		t.Fatalf("bits not decreasing in α: %d, %d, %d", b1, b2, b4)
	}
}

// exactOracle decides opt ≤ bound exactly.
func exactOracle(inst *setsystem.Instance, bound int) (bool, error) {
	opt, err := offline.OptAtMost(inst, bound, offline.ExactConfig{})
	if err != nil {
		return false, err
	}
	return opt <= bound, nil
}

func TestSolveDisjViaSetCover(t *testing.T) {
	p := hardinst.SCParams{N: 2048, M: 6, Alpha: 2}
	tBlocks := p.BlockParam()
	r := rng.New(7)
	correct := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		var d hardinst.Disj
		want := i%2 == 0
		if want {
			d = hardinst.SampleDisjYes(tBlocks, r)
		} else {
			d = hardinst.SampleDisjNo(tBlocks, r)
		}
		got, err := SolveDisjViaSetCover(d, p, exactOracle, r)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			correct++
		}
	}
	// Yes instances are answered correctly with certainty; No instances
	// w.h.p. (Lemma 3.2 event).
	if correct < trials-1 {
		t.Fatalf("reduction correct on %d/%d", correct, trials)
	}
}

func TestSolveDisjViaSetCoverWrongUniverse(t *testing.T) {
	p := hardinst.SCParams{N: 2048, M: 4, Alpha: 2}
	d := hardinst.SampleDisjYes(p.BlockParam()+1, rng.New(8))
	if _, err := SolveDisjViaSetCover(d, p, exactOracle, rng.New(9)); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

// pairOracle decides opt > threshold exactly for k=2.
func pairOracle(inst *setsystem.Instance, threshold float64) (bool, error) {
	_, _, cov := offline.MaxCoverPair(inst)
	return float64(cov) > threshold, nil
}

func TestSolveGHDViaMaxCover(t *testing.T) {
	p := hardinst.MCParams{Eps: 1.0 / 8, M: 5}
	t1 := p.T1()
	r := rng.New(10)
	correct := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		var g hardinst.GHD
		want := i%2 == 0
		if want {
			g = hardinst.SampleGHDYes(t1, r)
		} else {
			g = hardinst.SampleGHDNo(t1, r)
		}
		got, err := SolveGHDViaMaxCover(g, p, pairOracle, r)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			correct++
		}
	}
	if correct < trials-1 {
		t.Fatalf("GHD reduction correct on %d/%d", correct, trials)
	}
}

func TestDisjProtocols(t *testing.T) {
	r := rng.New(11)
	const tSize, trials = 48, 300
	protos := []DisjProtocol{FullRevealDisj{}, SampledDisj{S: tSize}, SilentDisj{}}
	errs := make([]int, len(protos))
	for i := 0; i < trials; i++ {
		d := hardinst.SampleDisj(tSize, r)
		for pi, p := range protos {
			var tr Transcript
			got := p.Run(d, r, &tr)
			if got != d.Disjoint() {
				errs[pi]++
			}
			if tr.Bits <= 0 {
				t.Fatalf("%s produced empty transcript", p.Name())
			}
		}
	}
	if errs[0] != 0 {
		t.Fatalf("full-reveal erred %d times", errs[0])
	}
	// Sampling the whole set is also exact.
	if errs[1] != 0 {
		t.Fatalf("sampled(S=t) erred %d times", errs[1])
	}
	// Silent errs on all disjoint instances ≈ half the draws.
	if errs[2] < trials/4 || errs[2] > 3*trials/4 {
		t.Fatalf("silent error count %d implausible", errs[2])
	}
}

func TestSampledDisjErrorDecreasesWithS(t *testing.T) {
	r := rng.New(12)
	const tSize, trials = 60, 400
	errAt := func(s int) int {
		errs := 0
		for i := 0; i < trials; i++ {
			d := hardinst.SampleDisjNo(tSize, r) // intersecting: the hard side
			var tr Transcript
			if (SampledDisj{S: s}).Run(d, r, &tr) {
				errs++
			}
		}
		return errs
	}
	small, large := errAt(2), errAt(18)
	if large >= small {
		t.Fatalf("error did not decrease with sample size: S=2→%d, S=18→%d", small, large)
	}
}

func TestProtocolNames(t *testing.T) {
	if (FullRevealDisj{}).Name() != "full-reveal" ||
		(SampledDisj{S: 7}).Name() != "sampled-7" ||
		(SilentDisj{}).Name() != "silent" {
		t.Fatal("protocol names wrong")
	}
}

func TestOdometerPassThrough(t *testing.T) {
	r := rng.New(20)
	const tSize = 32
	inner := FullRevealDisj{}
	o := Odometer{Inner: inner, Budget: 1 << 20}
	for i := 0; i < 100; i++ {
		d := hardinst.SampleDisj(tSize, r)
		var tr Transcript
		if got := o.Run(d, r, &tr); got != d.Disjoint() {
			t.Fatal("odometer with huge budget changed the answer")
		}
		if tr.Msgs[len(tr.Msgs)-1] == "abort" {
			t.Fatal("huge budget aborted")
		}
	}
}

func TestOdometerAbortsAndCaps(t *testing.T) {
	r := rng.New(21)
	const tSize = 64
	o := Odometer{Inner: FullRevealDisj{}, Budget: 8}
	aborted := 0
	for i := 0; i < 100; i++ {
		d := hardinst.SampleDisj(tSize, r)
		var tr Transcript
		got := o.Run(d, r, &tr)
		if tr.Bits > o.Budget+1 {
			t.Fatalf("transcript %d bits exceeds budget %d", tr.Bits, o.Budget)
		}
		if tr.Msgs[len(tr.Msgs)-1] == "abort" {
			aborted++
			if got {
				t.Fatal("abort must fall back to intersecting")
			}
		}
	}
	if aborted < 90 {
		t.Fatalf("tiny budget aborted only %d/100 runs", aborted)
	}
}

func TestOdometerName(t *testing.T) {
	o := Odometer{Inner: SilentDisj{}, Budget: 4}
	if o.Name() != "odometer(silent)" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestTranscriptCosts(t *testing.T) {
	var tr Transcript
	tr.Append("a", 3)
	tr.Append("b", 5)
	if len(tr.Costs) != 2 || tr.Costs[0] != 3 || tr.Costs[1] != 5 {
		t.Fatalf("Costs = %v", tr.Costs)
	}
}

func TestSampledSetCoverProtocol(t *testing.T) {
	p := hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	tBlocks := p.BlockParam()
	r := rng.New(30)
	run := func(perPair int, trials int) (correct int, meanBits float64) {
		totalBits := 0
		for i := 0; i < trials; i++ {
			theta := i % 2
			sc := hardinst.SampleSetCover(p, theta, r.Split(fmt.Sprintf("i-%d-%d", perPair, i)))
			part := sc.CanonicalPartition()
			var tr Transcript
			proto := SampledSetCover{PerPair: perPair}
			got := proto.Run(sc, part, r.Split(fmt.Sprintf("a-%d-%d", perPair, i)), &tr)
			if got == theta {
				correct++
			}
			totalBits += tr.Bits
		}
		return correct, float64(totalBits) / float64(trials)
	}
	const trials = 30
	// Generous per-pair sample (≫ t·ln m): near-perfect.
	hi, hiBits := run(tBlocks*16, trials)
	if hi < trials-2 {
		t.Fatalf("high-budget protocol correct on %d/%d", hi, trials)
	}
	// One sample per pair: near chance.
	lo, loBits := run(1, trials)
	if lo > trials*3/4 {
		t.Fatalf("1-sample protocol suspiciously good: %d/%d", lo, trials)
	}
	if hiBits <= loBits {
		t.Fatalf("bit accounting wrong: hi=%v lo=%v", hiBits, loBits)
	}
}

func TestSampledSetCoverRandomPartition(t *testing.T) {
	// Under a random partition only ~half the pairs are good, but the
	// protocol still works at matched per-pair budgets (Lemma 3.7's story:
	// half the embedded instances survive).
	p := hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	r := rng.New(31)
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		theta := i % 2
		sc := hardinst.SampleSetCover(p, theta, r.Split(fmt.Sprintf("i%d", i)))
		part := sc.RandomPartition(r.Split(fmt.Sprintf("p%d", i)))
		var tr Transcript
		got := (SampledSetCover{PerPair: p.BlockParam() * 16}).Run(sc, part, r.Split(fmt.Sprintf("a%d", i)), &tr)
		if got == theta {
			correct++
		}
	}
	// θ=1 is missed when i* is not a good pair (~half the time) — success
	// ≈ 1 on θ=0 and ≈ 3/4 overall, well above chance.
	if correct < trials*3/5 {
		t.Fatalf("random-partition protocol correct on %d/%d", correct, trials)
	}
}

func TestSampledSetCoverName(t *testing.T) {
	if (SampledSetCover{PerPair: 9}).Name() != "sc-sampled-9" {
		t.Fatal("name mismatch")
	}
}

func TestSolveGHDViaMaxCoverWrongUniverse(t *testing.T) {
	p := hardinst.MCParams{Eps: 0.25, M: 3}
	g := hardinst.SampleGHDYes(p.T1()+2, rng.New(40))
	if _, err := SolveGHDViaMaxCover(g, p, pairOracle, rng.New(41)); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}
