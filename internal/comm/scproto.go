package comm

import (
	"fmt"
	"sort"

	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
)

// SampledSetCover is a genuine two-party protocol for deciding θ on a D_SC
// instance — the communication-layer twin of the streaming distinguisher
// (Theorem 3 is a communication lower bound; the streaming bound follows).
//
// Alice holds the sets her partition assigns her; for each pair where she
// holds exactly one side she sends PerPair uniform elements of that set's
// complement. Bob checks each received sample against his side's
// complement: a pair whose samples never collide with his complement looks
// disjoint-complemented, i.e. covering — evidence for θ=1. The
// communication is ~(good pairs)·PerPair·log₂(n) bits; Theorem 3 says no
// protocol can do the job with o(m·t) bits, and the per-pair sample needed
// to see the t-block collision is Θ(t·log m).
type SampledSetCover struct {
	// PerPair is the number of complement samples sent per good pair.
	PerPair int
}

// Name identifies the protocol.
func (p SampledSetCover) Name() string { return fmt.Sprintf("sc-sampled-%d", p.PerPair) }

// Run executes the protocol on sc under the given partition and returns the
// θ guess along with the transcript (appended to tr).
func (p SampledSetCover) Run(sc *hardinst.SetCoverInstance, part hardinst.Partition,
	r *rng.RNG, tr *Transcript) int {
	n := sc.N
	zeroHit := false
	for _, i := range sc.GoodIndices(part) {
		a, b := sc.AliceSet(i), sc.BobSet(i)
		// Orient so that "Alice's side" is the one she owns.
		aliceSet, bobSet := a, b
		if !part[a] {
			aliceSet, bobSet = b, a
		}
		elemsA := sc.Inst.Set(aliceSet)
		want := p.PerPair
		if comp := n - len(elemsA); want > comp {
			want = comp
		}
		if want <= 0 {
			// Alice's set covers the universe alone: certain θ=1 evidence.
			tr.Append(fmt.Sprintf("p%d:full", i), 1)
			zeroHit = true
			continue
		}
		sample := sampleComplementSorted(elemsA, n, want, r)
		tr.Append(fmt.Sprintf("p%d:%s", i, EncodeIntSet(sample)), SetBits(n, len(sample)))
		// Bob: count samples missing from his set too (complement collisions).
		hits := 0
		bobElems := sc.Inst.Set(bobSet)
		for _, e := range sample {
			if !containsSortedView(bobElems, e) {
				hits++
			}
		}
		if hits == 0 {
			zeroHit = true
		}
		tr.Append(fmt.Sprintf("r%d:%d", i, hits), SetBits(n, 1))
	}
	if zeroHit {
		tr.Append("theta=1", 1)
		return 1
	}
	tr.Append("theta=0", 1)
	return 0
}

// sampleComplementSorted returns `want` uniform distinct elements of
// [0,n) \ elems (a sorted arena view), sorted, via complement-position
// sampling.
func sampleComplementSorted(elems []int32, n, want int, r *rng.RNG) []int {
	positions := r.KSubset(n-len(elems), want)
	out := make([]int, 0, want)
	pi, pos, ei := 0, 0, 0
	for e := 0; e < n && pi < len(positions); e++ {
		if ei < len(elems) && int(elems[ei]) == e {
			ei++
			continue
		}
		if pos == positions[pi] {
			out = append(out, e)
			pi++
		}
		pos++
	}
	return out
}

// containsSortedView reports whether the sorted arena view s contains v.
func containsSortedView(s []int32, v int) bool {
	i := sort.Search(len(s), func(i int) bool { return int(s[i]) >= v })
	return i < len(s) && int(s[i]) == v
}
