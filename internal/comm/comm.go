// Package comm provides the two-party communication substrate behind the
// paper's lower bounds (§2.1) in executable form:
//
//   - Transcript: a bit-counted message log, serializable for the plug-in
//     information-cost estimators of package info;
//   - SimulateStreaming: the reduction in the proof of Theorem 1 — a p-pass
//     s-space streaming algorithm yields an O(p·s)-bit protocol when the
//     input sets are partitioned between Alice and Bob (each pass, the
//     algorithm state crosses the cut twice);
//   - SolveDisjViaSetCover: protocol π_Disj of Lemma 3.4, embedding one
//     Disj_t instance at a random index of a D_SC instance and consulting a
//     set cover value estimator;
//   - SolveGHDViaMaxCover: protocol π_GHD of Lemma 4.5, the analogous
//     embedding into D_MC;
//   - concrete Disj_t protocols (full-reveal, element-sampling, silent)
//     whose internal information costs experiment E9 measures against
//     Proposition 2.5.
package comm

import (
	"fmt"
	"math"
	"strings"

	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// Transcript is a bit-counted log of the messages exchanged by a protocol.
type Transcript struct {
	Bits  int
	Msgs  []string
	Costs []int // per-message bit costs, parallel to Msgs
}

// Append records one message with its bit cost.
func (tr *Transcript) Append(msg string, bits int) {
	tr.Msgs = append(tr.Msgs, msg)
	tr.Costs = append(tr.Costs, bits)
	tr.Bits += bits
}

// Key serializes the transcript for information-cost estimation.
func (tr *Transcript) Key() string { return strings.Join(tr.Msgs, "|") }

// SetBits returns the bit cost charged for communicating a k-subset of
// [0, t): k·⌈log₂ t⌉ (element-list encoding), minimum 1.
func SetBits(t, k int) int {
	if t < 2 {
		t = 2
	}
	b := k * int(math.Ceil(math.Log2(float64(t))))
	if b < 1 {
		b = 1
	}
	return b
}

// EncodeIntSet renders a sorted int set compactly for transcripts.
func EncodeIntSet(s []int) string {
	var sb strings.Builder
	for i, v := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// StreamingSimResult reports the outcome of SimulateStreaming.
type StreamingSimResult struct {
	Bits     int // total communication in bits
	Passes   int
	Handoffs int // number of state transfers across the cut
}

// SimulateStreaming runs a PassAlgorithm as a two-party protocol: owner[id]
// = true means Alice holds set id. Each pass, Alice feeds her sets, hands
// the algorithm state to Bob (one transfer of Space()·wordBits bits), Bob
// feeds his, and — unless the run is over — hands the state back for the
// next pass. This realizes the "one can easily turn A into a protocol for
// SetCover on D_SC^rnd ... that uses O(p·s) bits" step of Theorem 1.
func SimulateStreaming(alg stream.PassAlgorithm, inst *setsystem.Instance, owner []bool, maxPasses, wordBits int) (StreamingSimResult, error) {
	if wordBits <= 0 {
		wordBits = 32
	}
	if len(owner) != inst.M() {
		return StreamingSimResult{}, fmt.Errorf("comm: owner vector length %d != m=%d", len(owner), inst.M())
	}
	var res StreamingSimResult
	for pass := 0; pass < maxPasses; pass++ {
		alg.BeginPass(pass)
		// Alice's half of the stream.
		for id, isAlice := range owner {
			if isAlice {
				alg.Observe(stream.Item{ID: id, Elems: inst.Set(id)})
			}
		}
		res.Bits += alg.Space() * wordBits // Alice → Bob
		res.Handoffs++
		for id, isAlice := range owner {
			if !isAlice {
				alg.Observe(stream.Item{ID: id, Elems: inst.Set(id)})
			}
		}
		done := alg.EndPass()
		res.Passes = pass + 1
		if done {
			return res, nil
		}
		res.Bits += alg.Space() * wordBits // Bob → Alice for the next pass
		res.Handoffs++
	}
	return res, stream.ErrPassLimit{Limit: maxPasses}
}

// InstanceBits returns the cost of communicating the entire instance
// (element-list encoding): the baseline every sublinear protocol must beat.
func InstanceBits(inst *setsystem.Instance) int {
	bits := 0
	for i := 0; i < inst.M(); i++ {
		bits += SetBits(inst.N, inst.SetLen(i))
	}
	return bits
}

// SetCoverOracle estimates whether a set cover instance has opt ≤ bound.
// It models the α-approximation protocol π_SC consulted by Lemma 3.4 (an
// α-approximate value v decides "opt ≤ 2α vs opt > 2α" exactly on D_SC
// because opt is either 2 or > 2α).
type SetCoverOracle func(inst *setsystem.Instance, bound int) (optAtMostBound bool, err error)

// SolveDisjViaSetCover is protocol π_Disj (Lemma 3.4): it embeds the given
// Disj instance at a uniformly random index i* of a freshly sampled D_SC
// instance — all other pairs drawn from D^N_Disj — and returns Yes
// (disjoint) iff the oracle reports opt ≤ 2α.
func SolveDisjViaSetCover(d hardinst.Disj, p hardinst.SCParams, oracle SetCoverOracle, r *rng.RNG) (disjoint bool, err error) {
	t := p.BlockParam()
	if d.T != t {
		return false, fmt.Errorf("comm: Disj instance over [%d], D_SC needs [%d]", d.T, t)
	}
	n := p.EffectiveN()
	iStar := r.Intn(p.M)
	sets := make([][]int, 2*p.M)
	for i := 0; i < p.M; i++ {
		var di hardinst.Disj
		if i == iStar {
			di = d
		} else {
			di = hardinst.SampleDisjNo(t, r)
		}
		f := hardinst.NewMapping(t, n, r)
		sets[i] = f.Complement(di.A)
		sets[p.M+i] = f.Complement(di.B)
	}
	ok, err := oracle(setsystem.FromSets(n, sets), 2*p.Alpha)
	if err != nil {
		return false, err
	}
	return ok, nil
}

// MaxCoverOracle estimates whether a maximum coverage instance (k=2) has
// optimal coverage strictly above the threshold. It models the
// (1−ε)-approximation protocol π_MC consulted by Lemma 4.5.
type MaxCoverOracle func(inst *setsystem.Instance, threshold float64) (above bool, err error)

// SolveGHDViaMaxCover is protocol π_GHD (Lemma 4.5): it embeds the given
// GHD instance at a random index of a freshly sampled D_MC instance and
// returns Yes (Δ large) iff the oracle reports opt > τ.
func SolveGHDViaMaxCover(g hardinst.GHD, p hardinst.MCParams, oracle MaxCoverOracle, r *rng.RNG) (yes bool, err error) {
	t1, t2 := p.T1(), p.T2()
	if g.T != t1 {
		return false, fmt.Errorf("comm: GHD instance over [%d], D_MC needs [%d]", g.T, t1)
	}
	a, b := hardinst.GHDSizes(t1)
	tau := float64(t2) + float64(a+b)/2 + float64(t1)/4
	iStar := r.Intn(p.M)
	sets := make([][]int, 2*p.M)
	for i := 0; i < p.M; i++ {
		var gi hardinst.GHD
		if i == iStar {
			gi = g
		} else {
			gi = hardinst.SampleGHDNo(t1, r)
		}
		var ci, di []int
		for e := t1; e < t1+t2; e++ {
			if r.Bernoulli(0.5) {
				ci = append(ci, e)
			} else {
				di = append(di, e)
			}
		}
		sets[i] = append(append([]int(nil), gi.A...), ci...)
		sets[p.M+i] = append(append([]int(nil), gi.B...), di...)
	}
	above, err := oracle(setsystem.FromSets(t1+t2, sets), tau)
	if err != nil {
		return false, err
	}
	return above, nil
}
