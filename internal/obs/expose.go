package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// then one line per series. Output is deterministic — families sort by
// name, series by their rendered labels — so identical state encodes to
// identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// write renders one family. Pull-style families call their fn; stored
// families snapshot each series under the family lock, then render.
func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.typ))
	w.WriteByte('\n')

	if f.fn != nil {
		writeSeries(w, f.name, "", formatValue(f.fn()))
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	samples := make([]sample, len(keys))
	for i, k := range keys {
		samples[i] = f.series[k].collect()
	}
	f.mu.Unlock()

	for i, k := range keys {
		s := samples[i]
		if f.typ != typeHistogram {
			writeSeries(w, f.name, k, formatValue(s.value))
			continue
		}
		// Histogram: cumulative buckets (le is the last label), _sum, _count.
		cum := uint64(0)
		for bi, c := range s.buckets {
			cum += c
			le := "+Inf"
			if bi < len(f.bounds) {
				le = formatValue(f.bounds[bi])
			}
			labels := k
			if labels != "" {
				labels += ","
			}
			labels += `le="` + le + `"`
			writeSeries(w, f.name+"_bucket", labels, strconv.FormatUint(cum, 10))
		}
		writeSeries(w, f.name+"_sum", k, formatValue(s.sum))
		writeSeries(w, f.name+"_count", k, strconv.FormatUint(s.count, 10))
	}
}

func writeSeries(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: shortest exact
// decimal, with the spelled-out infinities.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint
// (GET /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
