package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text-exposition contract: HELP/TYPE
// lines, label rendering and escaping, histogram bucket cumulativity, and
// deterministic family/series ordering regardless of registration or
// update order.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order: output must sort.
	g := r.Gauge("zz_gauge", "a gauge")
	g.Set(2.5)
	h := r.Histogram("mid_hist", "a histogram", []float64{0.1, 1})
	h.Observe(0.05) // le=0.1
	h.Observe(0.5)  // le=1
	h.Observe(0.5)  // le=1
	h.Observe(5)    // +Inf only
	cv := r.CounterVec("aa_requests_total", `weird "help" with \slash`, "route", "code")
	cv.With("GET /v1/jobs/{id}", "200").Add(3)
	cv.With(`esc"ape\me`+"\n", "500").Inc()
	r.GaugeFunc("fn_gauge", "pulled at scrape", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP aa_requests_total weird "help" with \\slash
# TYPE aa_requests_total counter
aa_requests_total{route="GET /v1/jobs/{id}",code="200"} 3
aa_requests_total{route="esc\"ape\\me\n",code="500"} 1
# HELP fn_gauge pulled at scrape
# TYPE fn_gauge gauge
fn_gauge 7
# HELP mid_hist a histogram
# TYPE mid_hist histogram
mid_hist_bucket{le="0.1"} 1
mid_hist_bucket{le="1"} 3
mid_hist_bucket{le="+Inf"} 4
mid_hist_sum 6.05
mid_hist_count 4
# HELP zz_gauge a gauge
# TYPE zz_gauge gauge
zz_gauge 2.5
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second scrape of unchanged state is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatalf("second scrape differs from first")
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "boundaries", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive (v <= bound)
	h.Observe(2)
	h.Observe(2.0001)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_count 3`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, b.String())
		}
	}
}

func TestGaugeAddAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "gauge")
	g.Add(3)
	g.Add(-1.5)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", v)
	}
	calls := 0
	r.CounterFunc("cf_total", "counter func", func() float64 { calls++; return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("CounterFunc called %d times during one scrape", calls)
	}
	if !strings.Contains(b.String(), "# TYPE cf_total counter\ncf_total 42\n") {
		t.Fatalf("counter func not exposed:\n%s", b.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Counter("dup_total", "second")
}

// TestConcurrentScrape hammers every instrument type from many goroutines
// while scraping concurrently; run under -race this pins the lock-free
// update paths and the collect snapshotting.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h", "hist", DefBuckets)
	cv := r.CounterVec("cv_total", "labeled", "k")
	hv := r.HistogramVec("hv", "labeled hist", PassBuckets, "k")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				cv.With(lbl).Inc()
				hv.With(lbl).Observe(float64(i) * 1e-5)
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
