// Package obs is coverd's observability plane: a dependency-free metrics
// registry — atomic counters, gauges and histograms, optionally labeled —
// with Prometheus text-exposition (version 0.0.4) encoding.
//
// # Design
//
// The package exists because the repository's hard rule is "no external
// dependencies", and because coverd's defining quantities (passes, peak
// space, queue depth, cache efficacy) are cheap scalars that do not need a
// client library: every instrument is one or a few machine words updated
// with atomic operations, so instrumented hot paths pay a handful of
// nanoseconds and zero allocations per event. Collection (WritePrometheus)
// is the only locking path and runs at scrape frequency, never on the
// serving path.
//
// # Naming scheme
//
// Metric names follow the Prometheus conventions: a `coverd_` namespace
// prefix, a subsystem (`http`, `jobs`, `registry`, `solve`), a unit suffix
// (`_seconds`, `_bytes`, `_words`), and `_total` on counters. Label
// cardinality is bounded by construction — routes come from the fixed mux
// pattern table, status codes and job states from small enums — so the
// registry never grows unboundedly with traffic.
//
// # Determinism
//
// Exposition output is deterministically ordered: families sort by name,
// series within a family by rendered label values. Two scrapes of the same
// state are byte-identical, which is what makes the format golden-testable
// and the metrics-smoke CI leg a simple text diff.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the TYPE line vocabulary of the text exposition format.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them as Prometheus text
// exposition. Create with NewRegistry; a nil *Registry is not usable.
// Registration is typically done once at wiring time; instrument updates
// (Counter.Add, Gauge.Set, Histogram.Observe) are lock-free afterwards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string // label names, in declaration order

	mu     sync.Mutex
	series map[string]instrument // key: rendered label pairs ("" when unlabeled)
	fn     func() float64        // pull-style value (CounterFunc/GaugeFunc)
	fnTyp  metricType

	bounds []float64 // histogram bucket upper bounds, sorted, no +Inf
}

// instrument is anything a family can hold per label combination.
type instrument interface{ collect() sample }

// sample is one collected series value: either a scalar or histogram state.
type sample struct {
	value   float64
	buckets []uint64 // per-bucket counts (non-cumulative), +Inf last
	sum     float64
	count   uint64
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register installs a family, panicking on a duplicate name (metric
// registration is wiring-time code; a duplicate is a programming error the
// first test run catches).
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	return f
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) collect() sample { return sample{value: float64(c.v.Load())} }

// Gauge is a value that can go up and down. It stores float64 bits
// atomically, so Set/Add are safe from any goroutine.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) collect() sample { return sample{value: g.Value()} }

// Histogram counts observations into cumulative buckets (at exposition; the
// in-memory counts are per-bucket and purely atomic). Observe is lock-free:
// one atomic add on the bucket plus one CAS loop on the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) collect() sample {
	s := sample{buckets: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.buckets[i] = h.counts[i].Load()
	}
	s.sum = math.Float64frombits(h.sum.Load())
	s.count = h.count.Load()
	return s
}

// DefBuckets is a general-purpose latency bucket layout in seconds, from
// 1ms to 10s (the Prometheus client default).
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// PassBuckets is the bucket layout for per-pass solve durations: replayed
// passes run in tens of microseconds, honest decode passes in tens of
// milliseconds, whole large solves in seconds.
var PassBuckets = []float64{1e-5, 1e-4, 1e-3, .01, .1, 1, 10}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: typeCounter,
		series: map[string]instrument{"": c}})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: typeGauge,
		series: map[string]instrument{"": g}})
	return g
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: typeHistogram,
		series: map[string]instrument{"": h}, bounds: h.bounds})
	return h
}

// CounterFunc registers a pull-style counter: fn is called at scrape time.
// Use it to expose an existing monotonic quantity (an eviction count a
// store already maintains) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeCounter, fn: fn, fnTyp: typeCounter})
}

// GaugeFunc registers a pull-style gauge: fn is called at scrape time. This
// is the zero-perturbation way to expose state another subsystem already
// tracks under its own lock (queue depth, resident bytes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, fn: fn, fnTyp: typeGauge})
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{name: name, help: help, typ: typeCounter,
		labels: labels, series: map[string]instrument{}})
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (created on first
// use), which must match the declared label names in count and order.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() instrument { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(&family{name: name, help: help, typ: typeGauge,
		labels: labels, series: map[string]instrument{}})
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() instrument { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with shared buckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	h := newHistogram(buckets) // normalize the bounds once
	f := r.register(&family{name: name, help: help, typ: typeHistogram,
		labels: labels, series: map[string]instrument{}, bounds: h.bounds})
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram {
	bounds := v.f.bounds
	return v.f.get(values, func() instrument {
		h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
		return h
	}).(*Histogram)
}

// get returns the series for a label combination, creating it on first use.
// The family lock is held only for the map access; the returned instrument
// is updated lock-free. Callers on hot paths should cache the result.
func (f *family) get(values []string, mk func() instrument) instrument {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if in, ok := f.series[key]; ok {
		return in
	}
	in := mk()
	f.series[key] = in
	return in
}

// renderLabels renders a label set as it appears inside the exposition
// braces: name="value" pairs in declaration order, values escaped.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline (quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
