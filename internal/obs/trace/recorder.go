package trace

import (
	"context"
	"sync"
	"time"
)

// Defaults for NewTracer.
const (
	// DefaultCapacity is the number of completed traces the flight
	// recorder retains.
	DefaultCapacity = 64
	// DefaultMaxSpans bounds the spans recorded per trace; spans beyond it
	// still time correctly and keep the trace open, but their records are
	// dropped (counted in Recorded.Dropped) so one pathological request
	// cannot balloon the recorder.
	DefaultMaxSpans = 512
)

// SpanData is the immutable record of one ended span.
type SpanData struct {
	SpanID SpanID
	Parent SpanID // zero for a local root with no remote parent
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	Events []Event
}

// Duration is the span's wall time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Recorded is one completed trace as retained by the flight recorder:
// every ended span, in end order (children before parents).
type Recorded struct {
	TraceID TraceID
	Spans   []SpanData
	// Dropped counts spans elided by the per-trace MaxSpans bound.
	Dropped int
}

// Tracer is the flight recorder: it mints spans and retains the last
// Capacity completed traces in a fixed ring buffer. A nil *Tracer is valid
// and records nothing. All methods are safe for concurrent use.
type Tracer struct {
	maxSpans int

	mu    sync.Mutex
	ring  []Recorded // fixed capacity, circular
	next  int        // ring index the next commit overwrites
	count uint64     // total traces committed
}

// NewTracer returns a flight recorder retaining the last capacity traces
// (DefaultCapacity when <= 0), each bounded to maxSpans recorded spans
// (DefaultMaxSpans when <= 0).
func NewTracer(capacity, maxSpans int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{ring: make([]Recorded, 0, capacity), maxSpans: maxSpans}
}

// active accumulates one in-flight trace: ended spans plus a refcount of
// still-open ones. When the count reaches zero the trace commits to the
// recorder ring — so a trace whose job outlives its HTTP request commits
// when the job's last span ends, not when the response goes out.
type active struct {
	tr      *Tracer
	traceID TraceID

	mu        sync.Mutex
	open      int
	spans     []SpanData
	dropped   int
	committed bool
}

// StartRoot starts the root span of a new trace. With a valid remote
// context (an extracted traceparent) the new trace adopts the remote trace
// ID, parents the root under the remote span and preserves the sampled
// flag; otherwise fresh IDs are minted with sampled set. The returned
// context carries the span for StartSpan. A nil *Tracer returns (ctx, nil).
func (tr *Tracer) StartRoot(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	if tr == nil {
		return ctx, nil
	}
	traceID, parent, sampled := NewTraceID(), SpanID{}, true
	if remote.Valid() {
		traceID, parent, sampled = remote.TraceID, remote.SpanID, remote.Sampled
	}
	a := &active{tr: tr, traceID: traceID}
	sp := a.start(name, parent, sampled)
	return ContextWithSpan(ctx, sp), sp
}

// start allocates a live span and bumps the open count. Spans started
// after the trace committed (a child outliving an already-committed trace
// is a caller bug, but must not corrupt the ring) are still returned live;
// their records are dropped at finish.
func (a *active) start(name string, parent SpanID, sampled bool) *Span {
	sp := &Span{
		t: a,
		sc: SpanContext{
			TraceID: a.traceID,
			SpanID:  NewSpanID(),
			Sampled: sampled,
		},
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	a.mu.Lock()
	a.open++
	a.mu.Unlock()
	return sp
}

// finish records an ended span and commits the trace when it was the last
// open one.
func (a *active) finish(sp *Span, end time.Time) {
	a.mu.Lock()
	if sp.ended {
		a.mu.Unlock()
		return
	}
	sp.ended = true
	if a.committed || len(a.spans) >= a.tr.maxSpans {
		a.dropped++
	} else {
		a.spans = append(a.spans, SpanData{
			SpanID: sp.sc.SpanID,
			Parent: sp.parent,
			Name:   sp.name,
			Start:  sp.start,
			End:    end,
			Attrs:  sp.attrs,
			Events: sp.events,
		})
	}
	a.open--
	commit := a.open == 0 && !a.committed
	if commit {
		a.committed = true
	}
	spans, dropped := a.spans, a.dropped
	a.mu.Unlock()
	if commit {
		a.tr.commit(Recorded{TraceID: a.traceID, Spans: spans, Dropped: dropped})
	}
}

// commit installs one completed trace in the ring, overwriting the oldest.
// Requests propagating the same trace ID are one distributed trace (a
// client that uploads, solves and polls under one traceparent), so a commit
// whose ID is already retained merges into the existing entry instead of
// occupying a second slot — Lookup then returns the whole tree.
func (tr *Tracer) commit(rec Recorded) {
	tr.mu.Lock()
	for i := range tr.ring {
		if tr.ring[i].TraceID == rec.TraceID {
			tr.ring[i].Spans = append(tr.ring[i].Spans, rec.Spans...)
			tr.ring[i].Dropped += rec.Dropped
			tr.mu.Unlock()
			return
		}
	}
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, rec)
	} else {
		tr.ring[tr.next] = rec
		tr.next = (tr.next + 1) % cap(tr.ring)
	}
	tr.count++
	tr.mu.Unlock()
}

// Recent returns up to n completed traces, newest first (all retained
// traces when n <= 0). Nil tracers return nil.
func (tr *Tracer) Recent(n int) []Recorded {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	total := len(tr.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Recorded, 0, n)
	for i := 0; i < n; i++ {
		// Newest is the slot just before next (once the ring has wrapped,
		// next points at the oldest).
		idx := (tr.next - 1 - i + 2*total) % total
		if len(tr.ring) < cap(tr.ring) {
			idx = total - 1 - i
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// Lookup returns the retained trace with the given ID.
func (tr *Tracer) Lookup(id TraceID) (Recorded, bool) {
	if tr == nil {
		return Recorded{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.ring {
		if tr.ring[i].TraceID == id {
			return tr.ring[i], true
		}
	}
	return Recorded{}, false
}

// Count returns the total number of traces committed since creation
// (including ones the ring has since evicted).
func (tr *Tracer) Count() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.count
}
