package trace

import (
	"errors"
	"strings"
	"testing"
)

// mkSC builds a deterministic valid SpanContext for table tests.
func mkSC(sampled bool) SpanContext {
	var sc SpanContext
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	sc.Sampled = sampled
	return sc
}

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		sc := mkSC(sampled)
		h := sc.Traceparent()
		if len(h) != tpLen {
			t.Fatalf("Traceparent() = %q: %d bytes, want %d", h, len(h), tpLen)
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if got != sc {
			t.Fatalf("round trip: got %+v, want %+v", got, sc)
		}
	}
	// A freshly minted context must round-trip too.
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	got, err := ParseTraceparent(sc.Traceparent())
	if err != nil || got != sc {
		t.Fatalf("fresh round trip: got %+v (%v), want %+v", got, err, sc)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	valid := mkSC(true).Traceparent()
	cases := []struct {
		name    string
		in      string
		sampled bool
	}{
		{"canonical sampled", valid, true},
		{"not sampled", strings.TrimSuffix(valid, "01") + "00", false},
		{"extra flag bits only sampled interpreted", strings.TrimSuffix(valid, "01") + "03", true},
		{"flag bit 2 not sampled", strings.TrimSuffix(valid, "01") + "02", false},
		{"future version same length", "42" + valid[2:], true},
		{"future version with suffix", "42" + valid[2:] + "-extrafield", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := ParseTraceparent(c.in)
			if err != nil {
				t.Fatalf("ParseTraceparent(%q): %v", c.in, err)
			}
			if !sc.Valid() {
				t.Fatalf("parsed context invalid: %+v", sc)
			}
			if sc.Sampled != c.sampled {
				t.Fatalf("sampled = %v, want %v", sc.Sampled, c.sampled)
			}
		})
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := mkSC(true).Traceparent()
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"short", "00-abc"},
		{"one byte short", valid[:tpLen-1]},
		{"version ff", "ff" + valid[2:]},
		{"uppercase version", "0A" + valid[2:]},
		{"non-hex version", "0g" + valid[2:]},
		{"version 00 with trailing data", valid + "-extra"},
		{"trailing data without dash", "42" + valid[2:] + "extra"},
		{"bad separator after version", valid[:2] + "_" + valid[3:]},
		{"bad separator after trace id", valid[:35] + "_" + valid[36:]},
		{"bad separator after span id", valid[:52] + "_" + valid[53:]},
		{"uppercase trace id", valid[:3] + strings.ToUpper(valid[3:35]) + valid[35:]},
		{"non-hex trace id", valid[:3] + strings.Repeat("z", 32) + valid[35:]},
		{"zero trace id", valid[:3] + strings.Repeat("0", 32) + valid[35:]},
		{"non-hex span id", valid[:36] + strings.Repeat("q", 16) + valid[52:]},
		{"zero span id", valid[:36] + strings.Repeat("0", 16) + valid[52:]},
		{"non-hex flags", valid[:53] + "zz"},
		{"uppercase flags", valid[:53] + "0A"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := ParseTraceparent(c.in)
			if err == nil {
				t.Fatalf("ParseTraceparent(%q) = %+v, want error", c.in, sc)
			}
			if !errors.Is(err, ErrTraceparent) {
				t.Fatalf("error %v does not wrap ErrTraceparent", err)
			}
			if sc.Valid() {
				t.Fatalf("failed parse returned a valid context: %+v", sc)
			}
		})
	}
}

func TestParseRequestID(t *testing.T) {
	sc := mkSC(true)
	id, err := ParseRequestID(sc.TraceID.String())
	if err != nil || id != sc.TraceID {
		t.Fatalf("bare hex: got %v (%v), want %v", id, err, sc.TraceID)
	}
	id, err = ParseRequestID(sc.Traceparent())
	if err != nil || id != sc.TraceID {
		t.Fatalf("traceparent form: got %v (%v), want %v", id, err, sc.TraceID)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("A", 32)} {
		if _, err := ParseRequestID(bad); err == nil {
			t.Fatalf("ParseRequestID(%q) succeeded, want error", bad)
		}
	}
}

// FuzzParseTraceparent pins two properties: the parser never panics on
// arbitrary bytes, and parse∘format is the identity — any header that
// parses must re-render (possibly normalized: version 00, sampled-bit-only
// flags) to a header that parses back to the same SpanContext.
func FuzzParseTraceparent(f *testing.F) {
	f.Add(mkSC(true).Traceparent())
	f.Add(mkSC(false).Traceparent())
	f.Add("42" + mkSC(true).Traceparent()[2:] + "-suffix")
	f.Add("")
	f.Add("ff-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("-", 60))
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseTraceparent(in)
		if err != nil {
			if sc.Valid() {
				t.Fatalf("error %v alongside a valid context %+v", err, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("nil error alongside invalid context %+v (input %q)", sc, in)
		}
		h := sc.Traceparent()
		sc2, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("re-parse of formatted %q failed: %v (input %q)", h, err, in)
		}
		if sc2 != sc {
			t.Fatalf("parse∘format not identity: %+v vs %+v (input %q)", sc2, sc, in)
		}
	})
}
