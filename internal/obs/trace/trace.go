// Package trace is coverd's request-tracing plane: spans with W3C
// traceparent propagation and a fixed-size in-process flight recorder.
//
// # Design
//
// The package is dependency-free for the same reason internal/obs is: the
// quantities that matter here — where one slow request spent its time
// across queue wait, registry pin, plan build and the solve passes — are a
// handful of timestamps and small attribute sets per request, and they do
// not need an exporter pipeline. Completed traces land in a bounded ring
// buffer (the flight recorder, see recorder.go) that retains the last N
// traces for postmortem inspection via coverd's debug endpoints; nothing is
// shipped anywhere.
//
// # Identity and propagation
//
// Identity follows the W3C Trace Context recommendation: a 16-byte trace
// ID names the whole request tree, an 8-byte span ID names one operation
// within it, and a sampled flag rides along. The wire form is the
// `traceparent` HTTP header (version 00); SpanContext.Traceparent and
// ParseTraceparent are exact inverses on valid input, which the fuzz
// harness pins. A client that sends a traceparent sees its trace ID in the
// server's access log, job record and recorded span tree; a request
// without one gets a server-generated root so every request is still
// correlatable.
//
// # The disabled path
//
// Tracing is designed to cost nothing when off. All entry points tolerate
// nil receivers: a nil *Tracer starts no spans, StartSpan without a parent
// span in the context returns a nil *Span, and every method on a nil *Span
// is an allocation-free no-op. Instrumented code therefore never branches
// on "is tracing on" — it calls the API unconditionally and the nil chain
// short-circuits. TestSpanDisabledPathAllocs pins the zero-allocation
// claim.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte identity of one request tree (W3C trace-id).
type TraceID [16]byte

// SpanID is the 8-byte identity of one span (W3C parent-id).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState drives the process-wide ID generator: a splitmix64 sequence over
// an atomic counter, seeded once from crypto/rand so concurrent processes
// do not collide. Generation is one atomic add plus a few multiplies —
// cheap enough for the per-request path.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	// crypto/rand.Read never fails on supported platforms (it panics
	// internally if the kernel source is broken).
	cryptorand.Read(seed[:])
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

// nextRand returns the next value of the splitmix64 sequence.
func nextRand() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.LittleEndian.PutUint64(t[:8], nextRand())
		binary.LittleEndian.PutUint64(t[8:], nextRand())
	}
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.LittleEndian.PutUint64(s[:], nextRand())
	}
	return s
}

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in the traceparent header, and what ties logs, job records and
// recorded spans to one request.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero (the W3C validity rule).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key/value annotation on a span or event. Value is kept as
// `any` for JSON rendering but is always a string, integer, float or bool
// in practice (the typed Span setters enforce this).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float64 builds a float attribute.
func Float64(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation within a span — coverd uses one per
// completed solve pass, so a trace stays O(passes), never O(items).
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation within a trace. Spans are created by
// Tracer.StartRoot (one per request) and StartSpan (children); End delivers
// the span to its trace's accumulator, and the trace commits to the flight
// recorder when its last open span ends. A nil *Span is a valid no-op.
//
// A span belongs to the goroutine that started it; SetAttr/AddEvent/End
// are nonetheless safe to call concurrently (they serialize on the owning
// trace's lock) because the solve driver appends pass events while request
// handlers snapshot state.
type Span struct {
	t      *active
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time

	// Guarded by t.mu.
	attrs  []Attr
	events []Event
	ended  bool
}

// Context returns the span's propagated identity, or the zero SpanContext
// for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Recording reports whether the span is live and will be recorded; false
// for a nil span. Callers use it to skip attribute assembly that would
// allocate before hitting the nil no-op.
func (s *Span) Recording() bool { return s != nil }

// The typed setters check nil before constructing the Attr: boxing the
// value into `any` is itself an allocation, and it must not happen on the
// disabled (nil-span) path.

// SetAttr annotates the span with a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attach(Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, value int) {
	if s == nil {
		return
	}
	s.attach(Attr{Key: key, Value: value})
}

// SetInt64 annotates the span with a 64-bit integer attribute.
func (s *Span) SetInt64(key string, value int64) {
	if s == nil {
		return
	}
	s.attach(Attr{Key: key, Value: value})
}

// SetBool annotates the span with a boolean attribute.
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	s.attach(Attr{Key: key, Value: value})
}

func (s *Span) attach(a Attr) {
	s.t.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, a)
	}
	s.t.mu.Unlock()
}

// AddEvent records a point-in-time event on the span. The attrs slice is
// retained; callers building attrs should gate on Recording() to keep the
// disabled path allocation-free.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	if !s.ended {
		s.events = append(s.events, Event{Name: name, Time: now, Attrs: attrs})
	}
	s.t.mu.Unlock()
}

// End finishes the span and hands it to the flight recorder's per-trace
// accumulator. The trace commits to the ring once every one of its spans
// has ended — so spans that outlive the request (an async job) still land
// in the same recorded trace. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.finish(s, time.Now())
}

// spanKey is the context key under which the current span travels.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the current span, or nil when the context carries
// none (the disabled path).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. Without a current span it returns (ctx, nil)
// — the nil chain that makes untraced requests free — so instrumented code
// calls it unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.t.start(name, parent.sc.SpanID, parent.sc.Sampled)
	return ContextWithSpan(ctx, child), child
}
