package trace

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Traceparent is the name of the W3C Trace Context propagation header.
const Traceparent = "traceparent"

// traceparent syntax (W3C Trace Context, version 00):
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  2 hex      32 hex       16 hex        2 hex
//
// all lowercase, 55 bytes total for version 00.
const (
	tpLen        = 55
	tpVersionEnd = 2
	tpTraceEnd   = tpVersionEnd + 1 + 32
	tpSpanEnd    = tpTraceEnd + 1 + 16
)

// ErrTraceparent is the sentinel all traceparent parse failures wrap.
var ErrTraceparent = errors.New("malformed traceparent")

// Traceparent renders the context as a version-00 traceparent header value.
// ParseTraceparent is its exact inverse.
func (sc SpanContext) Traceparent() string {
	var b [tpLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52], b[53] = '-', '0'
	if sc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value into a SpanContext.
// It enforces the W3C rules: lowercase hex throughout, version "ff" and
// all-zero IDs invalid, version 00 exactly 55 bytes. Higher versions are
// accepted forward-compatibly as long as they start with the version-00
// field layout and continue with "-" + extra data (the recommendation's
// parse-as-00 rule). Only the sampled bit of the flags is interpreted.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < tpLen {
		return sc, fmt.Errorf("%w: %d bytes, want at least %d", ErrTraceparent, len(h), tpLen)
	}
	if !isLowerHex(h[:tpVersionEnd]) {
		return sc, fmt.Errorf("%w: bad version %q", ErrTraceparent, h[:tpVersionEnd])
	}
	if h[:tpVersionEnd] == "ff" {
		return sc, fmt.Errorf("%w: version ff is forbidden", ErrTraceparent)
	}
	if h[:tpVersionEnd] == "00" && len(h) != tpLen {
		return sc, fmt.Errorf("%w: version 00 must be exactly %d bytes, got %d", ErrTraceparent, tpLen, len(h))
	}
	if len(h) > tpLen && h[tpLen] != '-' {
		return sc, fmt.Errorf("%w: trailing data must start with '-'", ErrTraceparent)
	}
	if h[tpVersionEnd] != '-' || h[tpTraceEnd] != '-' || h[tpSpanEnd] != '-' {
		return sc, fmt.Errorf("%w: bad field separators", ErrTraceparent)
	}
	traceHex := h[tpVersionEnd+1 : tpTraceEnd]
	spanHex := h[tpTraceEnd+1 : tpSpanEnd]
	flagsHex := h[tpSpanEnd+1 : tpLen]
	if !isLowerHex(traceHex) {
		return sc, fmt.Errorf("%w: bad trace-id %q", ErrTraceparent, traceHex)
	}
	if !isLowerHex(spanHex) {
		return sc, fmt.Errorf("%w: bad parent-id %q", ErrTraceparent, spanHex)
	}
	if !isLowerHex(flagsHex) {
		return sc, fmt.Errorf("%w: bad trace-flags %q", ErrTraceparent, flagsHex)
	}
	hex.Decode(sc.TraceID[:], []byte(traceHex))
	hex.Decode(sc.SpanID[:], []byte(spanHex))
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("%w: all-zero trace-id", ErrTraceparent)
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("%w: all-zero parent-id", ErrTraceparent)
	}
	var flags [1]byte
	hex.Decode(flags[:], []byte(flagsHex))
	sc.Sampled = flags[0]&0x01 != 0
	return sc, nil
}

// isLowerHex reports whether s is entirely lowercase hex digits. The W3C
// format forbids uppercase, so strings.ToLower normalization would accept
// headers other implementations reject.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// ParseRequestID parses a bare 32-hex trace ID (the form coverd echoes in
// X-Request-Id headers and logs), tolerating a full traceparent value too.
func ParseRequestID(s string) (TraceID, error) {
	if strings.Contains(s, "-") {
		sc, err := ParseTraceparent(s)
		return sc.TraceID, err
	}
	var t TraceID
	if len(s) != 32 || !isLowerHex(s) {
		return t, fmt.Errorf("%w: want 32 lowercase hex digits", ErrTraceparent)
	}
	hex.Decode(t[:], []byte(s))
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("%w: all-zero trace-id", ErrTraceparent)
	}
	return t, nil
}
