package trace

import (
	"context"
	"testing"
)

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("zero ID minted")
		}
		if seenT[tid] || seenS[sid] {
			t.Fatal("duplicate ID minted within 1000 draws")
		}
		seenT[tid], seenS[sid] = true, true
	}
}

// find returns the recorded span with the given name, failing the test when
// absent.
func find(t *testing.T, rec Recorded, name string) SpanData {
	t.Helper()
	for _, s := range rec.Spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("trace %s has no span %q (have %d spans)", rec.TraceID, name, len(rec.Spans))
	return SpanData{}
}

func TestTracerRecordsTree(t *testing.T) {
	tr := NewTracer(4, 0)
	ctx, root := tr.StartRoot(context.Background(), "request", SpanContext{})
	if root == nil {
		t.Fatal("StartRoot returned nil span on a live tracer")
	}
	root.SetAttr("route", "POST /v1/solve")
	ctx2, child := StartSpan(ctx, "solve")
	child.SetInt("alpha", 3)
	child.AddEvent("pass", Int("pass", 0), Int("items", 24))
	child.AddEvent("pass", Int("pass", 1), Int("items", 24))
	_, grand := StartSpan(ctx2, "pin")
	grand.End()
	child.End()

	if _, ok := tr.Lookup(root.Context().TraceID); ok {
		t.Fatal("trace committed while the root span is still open")
	}
	root.End()

	rec, ok := tr.Lookup(root.Context().TraceID)
	if !ok {
		t.Fatal("trace not retained after the last span ended")
	}
	if len(rec.Spans) != 3 || rec.Dropped != 0 {
		t.Fatalf("got %d spans (%d dropped), want 3 (0)", len(rec.Spans), rec.Dropped)
	}
	rootRec := find(t, rec, "request")
	solveRec := find(t, rec, "solve")
	pinRec := find(t, rec, "pin")
	if !rootRec.Parent.IsZero() {
		t.Fatalf("root parent = %s, want zero", rootRec.Parent)
	}
	if solveRec.Parent != rootRec.SpanID {
		t.Fatalf("solve parent = %s, want root %s", solveRec.Parent, rootRec.SpanID)
	}
	if pinRec.Parent != solveRec.SpanID {
		t.Fatalf("pin parent = %s, want solve %s", pinRec.Parent, solveRec.SpanID)
	}
	if len(solveRec.Events) != 2 || solveRec.Events[0].Name != "pass" {
		t.Fatalf("solve events = %+v, want two pass events", solveRec.Events)
	}
	if len(rootRec.Attrs) != 1 || rootRec.Attrs[0].Key != "route" {
		t.Fatalf("root attrs = %+v", rootRec.Attrs)
	}
	if rootRec.End.Before(rootRec.Start) {
		t.Fatal("root span ends before it starts")
	}
}

func TestTracerRemoteParent(t *testing.T) {
	tr := NewTracer(4, 0)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	_, root := tr.StartRoot(context.Background(), "request", remote)
	if got := root.Context().TraceID; got != remote.TraceID {
		t.Fatalf("root trace ID %s, want remote %s", got, remote.TraceID)
	}
	if root.Context().SpanID == remote.SpanID {
		t.Fatal("root reused the remote span ID instead of minting its own")
	}
	root.End()
	rec, ok := tr.Lookup(remote.TraceID)
	if !ok {
		t.Fatal("remote-parented trace not retained")
	}
	if rec.Spans[0].Parent != remote.SpanID {
		t.Fatalf("root parent = %s, want the remote span %s", rec.Spans[0].Parent, remote.SpanID)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2, 0)
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, root := tr.StartRoot(context.Background(), "r", SpanContext{})
		ids = append(ids, root.Context().TraceID)
		root.End()
	}
	if tr.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tr.Count())
	}
	if _, ok := tr.Lookup(ids[0]); ok {
		t.Fatal("oldest trace survived past the ring capacity")
	}
	recent := tr.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("Recent(0) = %d traces, want 2", len(recent))
	}
	if recent[0].TraceID != ids[2] || recent[1].TraceID != ids[1] {
		t.Fatalf("Recent order wrong: got %s,%s want %s,%s",
			recent[0].TraceID, recent[1].TraceID, ids[2], ids[1])
	}
	if got := tr.Recent(1); len(got) != 1 || got[0].TraceID != ids[2] {
		t.Fatalf("Recent(1) = %+v, want just the newest", got)
	}
}

func TestTracerMaxSpansBound(t *testing.T) {
	tr := NewTracer(2, 2)
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{})
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	rec, ok := tr.Lookup(root.Context().TraceID)
	if !ok {
		t.Fatal("bounded trace not retained")
	}
	if len(rec.Spans) != 2 || rec.Dropped != 2 {
		t.Fatalf("got %d spans, %d dropped; want 2 and 2", len(rec.Spans), rec.Dropped)
	}
}

// TestAsyncCommit pins the refcount contract: a trace whose child span
// outlives the root (an async job outliving its HTTP request) commits only
// when the last span ends, with every span present.
func TestAsyncCommit(t *testing.T) {
	tr := NewTracer(4, 0)
	ctx, root := tr.StartRoot(context.Background(), "request", SpanContext{})
	_, jobSpan := StartSpan(ctx, "job")
	root.End() // response went out; job still running
	if _, ok := tr.Lookup(root.Context().TraceID); ok {
		t.Fatal("trace committed while the job span is open")
	}
	jobSpan.End()
	rec, ok := tr.Lookup(root.Context().TraceID)
	if !ok {
		t.Fatal("trace not committed after the job span ended")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want root + job", len(rec.Spans))
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4, 0)
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{})
	_, sp := StartSpan(ctx, "child")
	sp.End()
	sp.End() // must not double-decrement and commit early
	if _, ok := tr.Lookup(root.Context().TraceID); ok {
		t.Fatal("double End committed the trace under the open root")
	}
	root.End()
	rec, _ := tr.Lookup(root.Context().TraceID)
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	// Mutations after End must not land.
	sp.SetAttr("late", "x")
	sp.AddEvent("late")
	rec, _ = tr.Lookup(root.Context().TraceID)
	if got := find(t, rec, "child"); len(got.Attrs) != 0 || len(got.Events) != 0 {
		t.Fatalf("post-End mutations recorded: %+v", got)
	}
}

// TestSpanDisabledPathAllocs pins the tracing-disabled hot path at zero
// allocations: starting, annotating and ending spans under a context with
// no current span (what every instrumented call site sees when coverd runs
// with tracing off) must not allocate.
func TestSpanDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		c, sp := StartSpan(ctx, "admission")
		sp.SetAttr("k", "v")
		sp.SetInt("n", 42)
		sp.SetBool("b", true)
		if sp.Recording() {
			sp.AddEvent("pass", Int("pass", 0))
		}
		sp.End()
		_, sp2 := StartSpan(c, "child")
		sp2.End()
		_ = sp.Context()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %v per run, want 0", n)
	}
	var nilTracer *Tracer
	if n := testing.AllocsPerRun(100, func() {
		c, sp := nilTracer.StartRoot(ctx, "request", SpanContext{})
		sp.End()
		_ = c
		_ = nilTracer.Recent(4)
		_, _ = nilTracer.Lookup(TraceID{})
	}); n != 0 {
		t.Fatalf("nil tracer path allocates %v per run, want 0", n)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(8, 0)
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				_, sp := StartSpan(ctx, "w")
				sp.AddEvent("e", Int("j", j))
				sp.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	rec, ok := tr.Lookup(root.Context().TraceID)
	if !ok {
		t.Fatal("concurrent trace not committed")
	}
	if len(rec.Spans)+rec.Dropped != 8*50+1 {
		t.Fatalf("spans+dropped = %d, want %d", len(rec.Spans)+rec.Dropped, 8*50+1)
	}
}

// TestTracerMergesSameTraceID: separate requests propagating one
// traceparent are one distributed trace; their commits merge into a single
// retained entry so Lookup returns the whole tree.
func TestTracerMergesSameTraceID(t *testing.T) {
	tr := NewTracer(4, 0)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	_, up := tr.StartRoot(context.Background(), "upload", remote)
	up.End()
	_, solve := tr.StartRoot(context.Background(), "solve", remote)
	solve.End()

	rec, ok := tr.Lookup(remote.TraceID)
	if !ok {
		t.Fatal("merged trace not retained")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("merged trace has %d spans, want 2", len(rec.Spans))
	}
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("ring holds %d entries, want 1 merged entry", got)
	}
}
