package buildinfo

import (
	"bytes"
	"strings"
	"testing"

	"streamcover/internal/obs"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() is empty")
	}
}

func TestPrint(t *testing.T) {
	var buf bytes.Buffer
	Print(&buf, "coverd")
	out := buf.String()
	if !strings.HasPrefix(out, "coverd ") || !strings.Contains(out, "grid kernel") {
		t.Fatalf("unexpected -version line: %q", out)
	}
}

func TestRegisterExposesBuildInfo(t *testing.T) {
	r := obs.NewRegistry()
	Register(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "coverd_build_info{") {
		t.Fatalf("exposition missing coverd_build_info:\n%s", out)
	}
	for _, label := range []string{`version="`, `goversion="`, `kernel="`} {
		if !strings.Contains(out, label) {
			t.Fatalf("exposition missing %s label:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "} 1\n") {
		t.Fatalf("build info gauge not constant 1:\n%s", out)
	}
}
