// Package buildinfo identifies the running binary: the module version or
// VCS revision the Go linker baked in, the toolchain, and the dispatched
// bitset grid kernel. coverd exposes the identity as the conventional
// coverd_build_info constant-1 gauge, and both binaries print it for
// -version — so a metrics scrape or a bug report always says exactly which
// build and which kernel produced the numbers.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"streamcover/internal/bitset"
	"streamcover/internal/obs"
)

// Version resolves the binary's version string: the main module's version
// for a build of a tagged module, else the VCS revision the toolchain
// stamped (truncated, with a -dirty suffix for local edits), else "devel"
// (test binaries, builds outside a checkout).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// Print writes the one-line -version output for the named binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s, grid kernel %s)\n",
		binary, Version(), runtime.Version(), bitset.GridKernel())
}

// Register exposes the build identity on r as coverd_build_info: a
// constant-1 gauge whose information lives in its labels, the standard
// shape for joining build metadata onto other series.
func Register(r *obs.Registry) {
	r.GaugeVec("coverd_build_info",
		"Build identity of the running coverd binary (constant 1; the information is in the labels).",
		"version", "goversion", "kernel").
		With(Version(), runtime.Version(), bitset.GridKernel()).Set(1)
}
