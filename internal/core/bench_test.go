package core

import (
	"fmt"
	"testing"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// BenchmarkObserveRuns measures the prune-phase Observe hot loop — the
// per-item cost every guess of the grid pays on every pass. The threshold
// n/(ε·õpt) is far above the set sizes, so every item is counted against
// the uncovered bitset and none is taken: the steady-state probe workload.
//
// Sub-benchmarks, from one to many guesses:
//
//   - "shared": a lone 1-lane run observing items that carry the
//     producer-built word-mask run list, exactly what both grid drivers
//     attach (the build cost is paid once per item per pass and amortized
//     over all guesses, so it is deliberately outside this loop);
//   - "scalar": the same lone run on items without a run list — the
//     element-at-a-time fallback a Run driven alone by stream.Run uses;
//   - "grid16": a 16-guess GridRun group — the bit-sliced sweep, one
//     interleaved Grid.AndCountRuns per item feeding all 16 threshold
//     tests, under whichever kernel body (scalar/AVX2) is active;
//   - "perguess16": the same 16 guesses as 16 separate 1-lane runs — the
//     pre-grid layout, one strided probe loop per guess per item. The
//     grid16/perguess16 ratio is the bit-slicing win recorded in
//     BENCH_masks.json.
func BenchmarkObserveRuns(b *testing.B) {
	inst := setsystem.Uniform(rng.New(1), 1<<14, 512, 256, 768)
	items := make([]stream.Item, inst.M())
	var runArena []bitset.Run
	for j := range items {
		elems := inst.Set(j)
		start := len(runArena)
		runArena = bitset.AppendRuns(runArena, elems)
		items[j] = stream.Item{ID: j, Elems: elems, Runs: runArena[start:len(runArena):len(runArena)]}
	}
	const lanes = 16
	guesses := make([]int, lanes)
	for i := range guesses {
		guesses[i] = 8
	}
	for _, mode := range []string{"shared", "scalar", "grid16", "perguess16"} {
		b.Run(mode, func(b *testing.B) {
			cfg := Config{Alpha: 2, Epsilon: 0.5}
			var observe func(item stream.Item)
			switch mode {
			case "grid16":
				rngs := make([]*rng.RNG, lanes)
				root := rng.New(2)
				for i := range rngs {
					rngs[i] = root.Split(fmt.Sprintf("guess-%d", i))
				}
				g := NewGridRun(inst.N, inst.M(), guesses, cfg, rngs)
				g.BeginPass(0)
				observe = g.Observe
			case "perguess16":
				runs := make([]*Run, lanes)
				root := rng.New(2)
				for i := range runs {
					runs[i] = NewRun(inst.N, inst.M(), 8, cfg, root.Split(fmt.Sprintf("guess-%d", i)))
					runs[i].BeginPass(0)
				}
				observe = func(item stream.Item) {
					for _, a := range runs {
						a.Observe(item)
					}
				}
			default:
				a := NewRun(inst.N, inst.M(), 8, cfg, rng.New(2))
				a.BeginPass(0)
				observe = a.Observe
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, item := range items {
					if mode == "scalar" {
						item.Runs = nil
					}
					observe(item)
				}
			}
		})
	}
}
