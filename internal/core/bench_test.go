package core

import (
	"testing"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// BenchmarkObserveRuns measures the prune-phase Observe hot loop — the
// per-item cost every guess of the grid pays on every pass. The threshold
// n/(ε·õpt) is far above the set sizes, so every item is counted against
// the uncovered bitset and none is taken: the steady-state probe workload.
//
// "shared" items carry the producer-built word-mask run list, exactly what
// both grid drivers attach (the cost of building it is paid once per item
// per pass and amortized over all ~20 guesses, so it is deliberately
// outside this loop); "scalar" items have no run list and take the
// element-at-a-time fallback a lone Run driven by stream.Run uses.
func BenchmarkObserveRuns(b *testing.B) {
	inst := setsystem.Uniform(rng.New(1), 1<<14, 512, 256, 768)
	items := make([]stream.Item, inst.M())
	var runArena []bitset.Run
	for j := range items {
		elems := inst.Set(j)
		start := len(runArena)
		runArena = bitset.AppendRuns(runArena, elems)
		items[j] = stream.Item{ID: j, Elems: elems, Runs: runArena[start:len(runArena):len(runArena)]}
	}
	for _, mode := range []string{"shared", "scalar"} {
		b.Run(mode, func(b *testing.B) {
			a := NewRun(inst.N, inst.M(), 8, Config{Alpha: 2, Epsilon: 0.5}, rng.New(2))
			a.BeginPass(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, item := range items {
					if mode == "scalar" {
						item.Runs = nil
					}
					a.Observe(item)
				}
			}
		})
	}
}
