package core

import (
	"testing"

	"streamcover/internal/bitset"
	"streamcover/internal/parallel"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// Allocation-regression guards for the per-item Observe hot path: every
// pass of Algorithm 1 calls Observe m times, so a single allocation per
// item multiplies into millions on large streams. The prune and subtract
// phases must be allocation-free outright; the store phase must be
// allocation-free in steady state (its flat projection arena grows
// amortized and keeps capacity across iterations).

func TestObservePruneAllocFree(t *testing.T) {
	const n = 1000
	a := NewRun(n, 64, 1, Config{Alpha: 2, Epsilon: 0.5}, rng.New(1))
	a.BeginPass(0) // prune phase
	elems := []int32{1, 5, 9, 400, 999}
	item := stream.Item{ID: 7, Elems: elems}
	// Threshold n/(ε·õpt) = 2000 > |elems|: the set is counted, not taken,
	// which is the overwhelmingly common prune-pass outcome.
	allocs := testing.AllocsPerRun(500, func() { a.Observe(item) })
	if allocs > 0 {
		t.Fatalf("prune-phase Observe allocates %.2f objects/item", allocs)
	}
}

func TestObserveSubtractAllocFree(t *testing.T) {
	const n = 1000
	a := NewRun(n, 64, 1, Config{Alpha: 2, Epsilon: 0.5}, rng.New(1))
	a.BeginPass(0)
	a.g.phase = phaseSubtract
	a.chosen[7] = true
	item := stream.Item{ID: 7, Elems: []int32{1, 5, 9, 400, 999}}
	other := stream.Item{ID: 8, Elems: []int32{2, 6}}
	allocs := testing.AllocsPerRun(500, func() {
		a.Observe(item)  // chosen: clears uncovered bits
		a.Observe(other) // not chosen: skipped
	})
	if allocs > 0 {
		t.Fatalf("subtract-phase Observe allocates %.2f objects/item", allocs)
	}
}

// TestObserveAllocFreeWithSharedRuns covers the producer-amortized path:
// when the driver prefilled item.Runs (parallel.runPass, stream.Parallel),
// Observe must not even build runs — every phase is allocation-free from
// the first item.
func TestObserveAllocFreeWithSharedRuns(t *testing.T) {
	const n = 1000
	a := NewRun(n, 64, 1, Config{Alpha: 2, Epsilon: 0.5}, rng.New(1))
	a.BeginPass(0) // prune phase
	elems := []int32{1, 5, 9, 400, 999}
	item := stream.Item{ID: 7, Elems: elems, Runs: bitset.AppendRuns(nil, elems)}
	allocs := testing.AllocsPerRun(500, func() { a.Observe(item) })
	if allocs > 0 {
		t.Fatalf("prune-phase Observe with shared runs allocates %.2f objects/item", allocs)
	}
	a.g.phase = phaseSubtract
	a.chosen[7] = true
	allocs = testing.AllocsPerRun(500, func() { a.Observe(item) })
	if allocs > 0 {
		t.Fatalf("subtract-phase Observe with shared runs allocates %.2f objects/item", allocs)
	}
}

// nullPassAlg is a no-op PassAlgorithm that needs a fixed number of passes.
// It contributes zero allocations of its own, so driving it through
// parallel.Run meters the driver's per-pass cost in isolation.
type nullPassAlg struct {
	need int
	pass int
}

func (a *nullPassAlg) BeginPass(pass int)  { a.pass = pass }
func (a *nullPassAlg) Observe(stream.Item) {}
func (a *nullPassAlg) EndPass() bool       { return a.pass+1 >= a.need }
func (a *nullPassAlg) Space() int          { return 0 }

// runDriverAllocs measures whole-Run allocations with four null children
// needing `need` passes each. Setup cost (pool, accounting slices, worker
// spawns) is identical for any need, so differencing two pass counts
// isolates the marginal per-pass cost.
func runDriverAllocs(s stream.Stream, need int) float64 {
	children := make([]stream.PassAlgorithm, 4)
	for i := range children {
		children[i] = &nullPassAlg{need: need}
	}
	cfg := parallel.Config{Workers: 4, MaxPasses: need + 1}
	return testing.AllocsPerRun(10, func() {
		if _, err := parallel.Run(s, children, cfg); err != nil {
			panic(err)
		}
	})
}

// TestParallelRunSteadyStatePassAllocFree pins the chunk-recycling
// contract: after the first pass warms the free list (and the chunk-owned
// run arenas), every further pass of parallel.Run must broadcast the whole
// stream without allocating. A multi-chunk stable stream with several
// children exercises broadcast refcounting and shared run building.
func TestParallelRunSteadyStatePassAllocFree(t *testing.T) {
	sets := make([][]int, 300) // ~5 chunks per pass at the default chunk size
	for i := range sets {
		sets[i] = []int{i % 64, 64 + (i*7)%192, 256 + (i*13)%256}
	}
	s := stream.FromInstance(setsystem.FromSets(512, sets), stream.Adversarial, nil)
	base := runDriverAllocs(s, 1)
	long := runDriverAllocs(s, 17)
	if perPass := (long - base) / 16; perPass >= 1 {
		t.Fatalf("parallel.Run allocates %.2f objects per steady-state pass (1-pass run: %.1f, 17-pass run: %.1f)",
			perPass, base, long)
	}
}

func TestObserveStoreSteadyStateAllocFree(t *testing.T) {
	const n = 1000
	a := NewRun(n, 64, 1, Config{Alpha: 2, Epsilon: 0.5}, rng.New(1))
	a.g.phase = phaseStore
	a.g.sole = a.lane // the one-live-lane fallback, as a real pass would set
	a.g.usmpl = bitset.NewGrid(n, 1)
	for _, e := range []int{1, 9, 400} {
		a.g.usmpl.Set(a.lane, e)
		a.usmplCnt++
	}
	a.projOffs = append(a.projOffs, 0)
	item := stream.Item{ID: 7, Elems: []int32{1, 5, 9, 400, 999}}
	a.Observe(item) // warm-up grows the arena to one item's projection
	allocs := testing.AllocsPerRun(500, func() {
		// Rewind to the warmed pass start, as EndPass/beginStorePass do,
		// then observe: appends land in existing capacity.
		a.projIDs = a.projIDs[:0]
		a.projOffs = a.projOffs[:1]
		a.projElems = a.projElems[:0]
		a.Observe(item)
	})
	if allocs > 0 {
		t.Fatalf("store-phase Observe allocates %.2f objects/item in steady state", allocs)
	}
}
