package core

import (
	"slices"
	"testing"
	"testing/quick"

	"streamcover/internal/bitset"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func TestGuesses(t *testing.T) {
	g := Guesses(10, 0.5)
	if g[0] != 1 {
		t.Fatalf("guess grid %v must start at 1", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("guess grid not increasing: %v", g)
		}
		if g[i] > 10 {
			t.Fatalf("guess grid exceeds n: %v", g)
		}
	}
	if g := Guesses(1, 0.5); len(g) != 1 || g[0] != 1 {
		t.Fatalf("Guesses(1) = %v", g)
	}
	if g := Guesses(5, -1); len(g) == 0 {
		t.Fatal("Guesses with bad eps empty")
	}
}

func TestPasses(t *testing.T) {
	if Passes(1) != 3 || Passes(3) != 7 {
		t.Fatal("Passes formula wrong")
	}
}

func TestSampleRateClamped(t *testing.T) {
	a := NewRun(100, 50, 90, Config{Alpha: 2}, rng.New(1))
	if p := a.sampleRate(); p != 1 {
		t.Fatalf("huge guess sample rate = %v, want clamp to 1", p)
	}
	b := NewRun(1_000_000, 100, 1, Config{Alpha: 4}, rng.New(1))
	if p := b.sampleRate(); p <= 0 || p >= 1 {
		t.Fatalf("sample rate = %v, want in (0,1)", p)
	}
}

func TestSolvePlanted(t *testing.T) {
	r := rng.New(7)
	inst, planted := setsystem.PlantedCover(r, 1024, 200, 4, 0.6)
	cfg := Config{Alpha: 2, Epsilon: 0.5}
	res, acc, err := Solve(inst, stream.Adversarial, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatalf("returned set %v is not a cover", res.Cover)
	}
	// Guarantee: (α+ε)·(1+ε)·opt with opt = len(planted) = 4.
	bound := int((2.5)*(1.5)*float64(len(planted))) + 1
	if len(res.Cover) > bound {
		t.Fatalf("cover size %d exceeds guarantee %d", len(res.Cover), bound)
	}
	if acc.Passes > Passes(cfg.Alpha) {
		t.Fatalf("used %d passes, bound %d", acc.Passes, Passes(cfg.Alpha))
	}
	if acc.PeakSpace < inst.N {
		t.Fatalf("peak space %d below the uncovered-bitset floor %d", acc.PeakSpace, inst.N)
	}
}

func TestSolveDeterministic(t *testing.T) {
	inst, _ := setsystem.PlantedCover(rng.New(3), 512, 100, 3, 0.5)
	r1, _, err1 := Solve(inst, stream.Adversarial, Config{Alpha: 2}, rng.New(5))
	r2, _, err2 := Solve(inst, stream.Adversarial, Config{Alpha: 2}, rng.New(5))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1.Cover) != len(r2.Cover) {
		t.Fatalf("non-deterministic: %v vs %v", r1.Cover, r2.Cover)
	}
	for i := range r1.Cover {
		if r1.Cover[i] != r2.Cover[i] {
			t.Fatalf("non-deterministic: %v vs %v", r1.Cover, r2.Cover)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	inst := setsystem.FromSets(10, [][]int{{0, 1}, {2, 3}})
	_, _, err := Solve(inst, stream.Adversarial, Config{Alpha: 2}, rng.New(1))
	if err != offline.ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRunWithCorrectGuess(t *testing.T) {
	r := rng.New(9)
	inst, planted := setsystem.PlantedCover(r, 2048, 300, 5, 0.6)
	opt := len(planted)
	run := NewRun(inst.N, inst.M(), opt, Config{Alpha: 2, Epsilon: 0.5}, rng.New(13))
	s := stream.FromInstance(inst, stream.Adversarial, nil)
	acc, err := stream.Run(s, run, Passes(2))
	if err != nil {
		t.Fatal(err)
	}
	res := run.Result()
	if !res.Feasible {
		t.Fatal("correct guess did not produce a feasible cover")
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("claimed feasible but not a cover")
	}
	// Lemma 3.10: at most (α+ε)·õpt sets.
	if max := int(2.5*float64(opt)) + 1; len(res.Cover) > max {
		t.Fatalf("cover size %d > (α+ε)·õpt = %d", len(res.Cover), max)
	}
	if acc.Passes > Passes(2) {
		t.Fatalf("passes = %d", acc.Passes)
	}
}

func TestRunGuessTooSmallFails(t *testing.T) {
	// opt is 4 planted blocks; guess 1 cannot succeed on a non-degenerate
	// instance, and the run must report infeasible rather than lie.
	inst, _ := setsystem.PlantedCover(rng.New(21), 512, 60, 4, 0.4)
	run := NewRun(inst.N, inst.M(), 1, Config{Alpha: 2, Epsilon: 0.5}, rng.New(22))
	s := stream.FromInstance(inst, stream.Adversarial, nil)
	if _, err := stream.Run(s, run, Passes(2)); err != nil {
		t.Fatal(err)
	}
	res := run.Result()
	if res.Feasible && !inst.IsCover(res.Cover) {
		t.Fatal("run claims feasible but the cover is invalid")
	}
}

func TestGreedySubsolver(t *testing.T) {
	inst, _ := setsystem.PlantedCover(rng.New(31), 1024, 150, 4, 0.5)
	cfg := Config{Alpha: 2, Epsilon: 0.5, Subsolver: SubsolverGreedy}
	res, _, err := Solve(inst, stream.Adversarial, cfg, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("greedy-subsolver result is not a cover")
	}
}

func TestRandomOrderSolve(t *testing.T) {
	inst, planted := setsystem.PlantedCover(rng.New(41), 1024, 200, 4, 0.6)
	res, _, err := Solve(inst, stream.RandomOnce, Config{Alpha: 3}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("random order produced a non-cover")
	}
	if len(res.Cover) > 6*len(planted) {
		t.Fatalf("cover way oversized: %d vs opt %d", len(res.Cover), len(planted))
	}
}

func TestAlpha1StoresEverythingAndIsNearOptimal(t *testing.T) {
	// α=1 ⇒ p=1: the sampled instance is the full uncovered instance, so the
	// sub-solve is exact set cover; the answer should be ≤ (1+ε)(1+ε)·opt.
	inst, planted := setsystem.PlantedCover(rng.New(51), 256, 40, 3, 0.5)
	res, acc, err := Solve(inst, stream.Adversarial, Config{Alpha: 1, Epsilon: 0.5}, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	if len(res.Cover) > 2*len(planted) {
		t.Fatalf("α=1 cover %d, opt %d", len(res.Cover), len(planted))
	}
	if acc.Passes > 3 {
		t.Fatalf("α=1 used %d passes", acc.Passes)
	}
}

// Property: on random coverable instances the solver returns a feasible
// cover within the pass bound.
func TestQuickSolveFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64 + r.Intn(128)
		m := 20 + r.Intn(40)
		inst := setsystem.Uniform(r, n, m, n/4, n/2)
		if !inst.Coverable() {
			return true
		}
		res, acc, err := Solve(inst, stream.Adversarial, Config{Alpha: 2}, rng.New(seed^0xabc))
		if err != nil {
			return false
		}
		return inst.IsCover(res.Cover) && acc.Passes <= Passes(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceShrinksWithAlpha(t *testing.T) {
	// The m·n^{1/α} term must fall as α grows (Theorem 2's tradeoff), holding
	// the workload fixed. We compare stored projection words via the peak
	// space of single runs at the correct guess, subtracting the common n
	// floor for the uncovered bitset.
	inst, planted := setsystem.PlantedCover(rng.New(61), 4096, 600, 4, 0.6)
	opt := len(planted)
	peak := func(alpha int) int {
		run := NewRun(inst.N, inst.M(), opt, Config{Alpha: alpha, Epsilon: 0.5}, rng.New(62))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, run, Passes(alpha))
		if err != nil {
			t.Fatal(err)
		}
		if !run.Result().Feasible {
			t.Fatalf("alpha=%d infeasible at correct guess", alpha)
		}
		return acc.PeakSpace - inst.N
	}
	p2, p4 := peak(2), peak(4)
	if p4 >= p2 {
		t.Fatalf("projection space did not shrink with α: α=2→%d, α=4→%d", p2, p4)
	}
}

func TestSubsolverString(t *testing.T) {
	if SubsolverExact.String() != "exact" || SubsolverGreedy.String() != "greedy" {
		t.Fatal("Subsolver.String mismatch")
	}
	if Subsolver(9).String() == "" {
		t.Fatal("unknown subsolver empty string")
	}
}

func TestMaxPasses(t *testing.T) {
	if got := (Config{Alpha: 3}).MaxPasses(); got != 7 {
		t.Fatalf("MaxPasses(α=3) = %d, want 7", got)
	}
	if got := (Config{Alpha: 3, DisablePrune: true}).MaxPasses(); got != 6 {
		t.Fatalf("MaxPasses(α=3, no prune) = %d, want 6", got)
	}
	// β = 2/α halves the iteration count (rounded up).
	if got := (Config{Alpha: 4, SampleExponent: 0.5}).MaxPasses(); got != 5 {
		t.Fatalf("MaxPasses(β=1/2) = %d, want 5", got)
	}
}

func TestCoarseExponentBaseline(t *testing.T) {
	// β = 2/α (the Har-Peled-style rate): fewer iterations, more space.
	inst, planted := setsystem.PlantedCover(rng.New(71), 4096, 400, 4, 0.6)
	opt := len(planted)
	peak := func(cfg Config) int {
		run := NewRun(inst.N, inst.M(), opt, cfg, rng.New(72))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, run, cfg.MaxPasses())
		if err != nil {
			t.Fatal(err)
		}
		if !run.Result().Feasible {
			t.Fatalf("cfg %+v infeasible at correct guess", cfg)
		}
		if !inst.IsCover(run.Result().Cover) {
			t.Fatal("not a cover")
		}
		return acc.PeakSpace - inst.N
	}
	sharp := peak(Config{Alpha: 4, Epsilon: 0.5})
	coarse := peak(Config{Alpha: 4, Epsilon: 0.5, SampleExponent: 0.5})
	if coarse <= sharp {
		t.Fatalf("coarse β=2/α should cost more space: sharp=%d coarse=%d", sharp, coarse)
	}
}

func TestDisablePruneStillCovers(t *testing.T) {
	inst, _ := setsystem.PlantedCover(rng.New(81), 1024, 150, 4, 0.5)
	cfg := Config{Alpha: 2, Epsilon: 0.5, DisablePrune: true}
	res, acc, err := Solve(inst, stream.Adversarial, cfg, rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("no-prune variant returned a non-cover")
	}
	if acc.Passes > cfg.MaxPasses() {
		t.Fatalf("passes %d > %d", acc.Passes, cfg.MaxPasses())
	}
}

func TestPrunePickBound(t *testing.T) {
	// Lemma 3.10 (first part): the pruning pass takes at most ε·õpt sets
	// when the threshold exceeds 1 — each pick covers ≥ n/(ε·õpt) fresh
	// elements. Use a workload with sets big enough to trigger pruning.
	r := rng.New(91)
	inst := setsystem.Uniform(r, 2048, 200, 1024, 1800) // dense sets
	eps := 0.5
	for _, guess := range []int{4, 8, 16} {
		run := NewRun(inst.N, inst.M(), guess, Config{Alpha: 2, Epsilon: eps}, rng.New(92))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		if _, err := stream.Run(s, run, Passes(2)); err != nil {
			t.Fatal(err)
		}
		bound := int(eps*float64(guess)) + 1
		if got := run.PrunePicked(); got > bound {
			t.Fatalf("guess=%d: prune picked %d sets > ε·õpt bound %d", guess, got, bound)
		}
	}
}

// TestSolveKernelParity runs identical solves under every grid kernel body
// available on this machine and requires bit-identical results and space
// accounting — the end-to-end half of the dispatch parity contract (the
// bitset package pins the kernels word by word). The guess grid passes
// through every lane-liveness regime: all lanes live on the first pass,
// then progressively fewer as guesses finish, down to the one-live scalar
// fallback path.
func TestSolveKernelParity(t *testing.T) {
	kernels := bitset.GridKernels()
	if len(kernels) < 2 {
		t.Logf("only %v available; parity degenerates to self-comparison", kernels)
	}
	prev := bitset.GridKernel()
	defer func() {
		if err := bitset.SetGridKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	inst, _ := setsystem.PlantedCover(rng.New(9), 600, 96, 6, 0.6)
	for _, workers := range []int{1, 4} {
		var ref Result
		var refAcc stream.Accounting
		for ki, kernel := range kernels {
			if err := bitset.SetGridKernel(kernel); err != nil {
				t.Fatal(err)
			}
			res, acc, err := Solve(inst, stream.Adversarial, Config{Alpha: 2, Workers: workers}, rng.New(17))
			if err != nil {
				t.Fatalf("kernel=%s workers=%d: %v", kernel, workers, err)
			}
			if ki == 0 {
				ref, refAcc = res, acc
				continue
			}
			if !slices.Equal(res.Cover, ref.Cover) || res.Guess != ref.Guess {
				t.Fatalf("kernel=%s workers=%d: cover %v (guess %d) differs from %s's %v (guess %d)",
					kernel, workers, res.Cover, res.Guess, kernels[0], ref.Cover, ref.Guess)
			}
			if acc != refAcc {
				t.Fatalf("kernel=%s workers=%d: accounting %+v differs from %s's %+v",
					kernel, workers, acc, kernels[0], refAcc)
			}
		}
	}
}
