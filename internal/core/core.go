// Package core implements the paper's primary upper-bound contribution:
// Algorithm 1 of "Tight Space-Approximation Tradeoff for the Multi-Pass
// Streaming Set Cover Problem" (Assadi, PODS 2017), an (α+ε)-approximation
// streaming set cover algorithm that makes 2α+1 passes and stores
// Õ(m·n^{1/α}/ε² + n/ε) words (Theorem 2).
//
// The algorithm, given a guess õpt of the optimal cover size:
//
//  1. One-shot pruning pass: greedily pick every set covering at least
//     n/(ε·õpt) still-uncovered elements; at most ε·õpt sets are picked and
//     afterwards every set covers fewer than n/(ε·õpt) uncovered elements.
//  2. For α iterations: sample each uncovered element independently with
//     probability p = C·õpt·ln(m)/n^{1−1/α} (Lemma 3.12 with ρ = n^{−1/α},
//     paper constant C = 16); store the projection of every set onto the
//     sample (one pass); solve the sampled sub-instance *optimally* offline;
//     subtract the chosen sets from the uncovered universe (another pass).
//     Each iteration shrinks the uncovered set by a factor n^{1/α} w.h.p.,
//     so α iterations finish the cover with at most õpt sets per iteration
//     (Lemmas 3.10, 3.11).
//
// Since the correct õpt is unknown, Solve runs a (1+ε)-geometric grid of
// guesses in parallel over the same passes (the standard guessing trick the
// paper invokes) and returns the smallest feasible cover. The guesses of
// one worker share a bit-sliced uncovered grid (GridRun over bitset.Grid),
// so the hot prune-phase count probes all of them in one interleaved sweep
// per streamed set; see DESIGN.md §2.7.
package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"streamcover/internal/bitset"
	"streamcover/internal/offline"
	"streamcover/internal/parallel"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// Subsolver selects how the sampled sub-instance of each iteration is
// covered.
type Subsolver int

const (
	// SubsolverExact solves each sampled sub-instance optimally (what the
	// paper's Algorithm 1 step 3(c) specifies; the streaming model does not
	// charge computation). Required for the (α+ε)·opt guarantee.
	SubsolverExact Subsolver = iota
	// SubsolverGreedy covers each sampled sub-instance greedily. Cheaper
	// computationally but weakens the guarantee to O(α·log)·opt; kept as the
	// ablation of the exact sub-solve (experiment E11).
	SubsolverGreedy
)

func (s Subsolver) String() string {
	switch s {
	case SubsolverExact:
		return "exact"
	case SubsolverGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("subsolver(%d)", int(s))
	}
}

// Config parameterizes Algorithm 1.
type Config struct {
	// Alpha is the approximation parameter α ≥ 1: 2α+1 passes,
	// Õ(m·n^{1/α}) space, (α+ε)-approximation.
	Alpha int
	// Epsilon is ε ∈ (0,1]: prune-pass aggressiveness and guess-grid
	// resolution.
	Epsilon float64
	// SampleC is the constant in the element-sampling rate
	// p = SampleC·õpt·ln(m)/n^{1−1/α}. 0 means the paper's 16. Experiment
	// E10 sweeps it to locate the failure threshold of Lemma 3.12.
	SampleC float64
	// Subsolver selects the per-iteration offline solver (default exact).
	Subsolver Subsolver
	// NodeBudget bounds each exact sub-solve (0 = offline package default).
	NodeBudget int64
	// SampleExponent overrides the per-iteration reduction exponent β in
	// ρ = n^{−β}: the sampling rate becomes C·õpt·ln(m)/n^{1−β} and the
	// number of iterations ⌈1/β⌉. 0 means the paper's β = 1/α. Setting
	// β = 2/α reproduces the coarser sampling of Har-Peled et al. (PODS
	// 2016), whose exponent constant is "larger than 2" — the baseline the
	// paper improves on (experiments E7, E11).
	SampleExponent float64
	// DisablePrune skips the one-shot pruning pass (ablation E11: the pass
	// is the other ingredient, besides the sharper rate, separating
	// Algorithm 1 from its predecessor).
	DisablePrune bool
	// OptGuesses overrides the õpt guess grid. nil means the full
	// (1+ε)-geometric grid over [1, n] (the paper's wrapper, which costs an
	// extra Õ(1/ε) space factor across parallel guesses). Callers that know
	// the optimum approximately can pass a short list — Algorithm 1 proper
	// (Theorem 2's statement) assumes õpt is given.
	OptGuesses []int
	// Workers is the multi-core parallelism of the guess grid: Solve fans
	// the per-guess runs out to this many workers via internal/parallel.
	// 0 selects GOMAXPROCS; 1 forces the sequential driver. The result is
	// bit-identical at every value (each guess owns an RNG split from the
	// root seed and observes the full stream in arrival order).
	Workers int
	// Context, when non-nil, cancels the solve cooperatively: both drivers
	// poll it at pass boundaries (and within passes — see stream.RunContext
	// and parallel.Config.Context) and abort with ctx.Err(). nil means no
	// cancellation. Cancellation does not perturb determinism: a run either
	// completes with the usual bit-identical result or returns ctx.Err().
	Context context.Context
	// Plan, when non-nil, is a pass-replay recording of the instance
	// (stream.BuildPlan): Solve serves every item's payload — elements and
	// prebuilt run list — from the plan while the instance stream still
	// drives arrival order, so replay is bit-identical under every Order
	// including RandomEachPass. A serving optimization only: plan bytes are
	// accounted by the owner (the coverd registry), never in the returned
	// Accounting, and the experiments harness leaves it nil.
	Plan *stream.Plan
	// Trace, when non-nil, receives one stream.PassSample per completed
	// pass from whichever driver runs the solve. Sampling happens only at
	// pass boundaries (O(passes) work and storage); nil disables tracing
	// entirely, including the wall-clock reads. Tracing never perturbs
	// results: the solve's RNG discipline and pass schedule are untouched.
	Trace stream.TraceSink
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Alpha < 1 {
		out.Alpha = 1
	}
	if out.Epsilon <= 0 || out.Epsilon > 1 {
		out.Epsilon = 0.5
	}
	if out.SampleC <= 0 {
		out.SampleC = 16
	}
	if out.SampleExponent <= 0 || out.SampleExponent > 1 {
		out.SampleExponent = 1 / float64(out.Alpha)
	}
	return out
}

// iterations returns the number of sample/solve iterations: ⌈1/β⌉, which is
// α for the paper's β = 1/α.
func (c Config) iterations() int {
	it := int(math.Ceil(1/c.SampleExponent - 1e-9))
	if it < 1 {
		it = 1
	}
	return it
}

// Result reports the outcome of a run for one õpt guess.
type Result struct {
	Cover    []int // chosen set IDs, sorted
	Feasible bool  // the algorithm verified every universe element covered
	Guess    int   // the õpt guess this run used
	Err      error // sub-solver failure (e.g. node budget exceeded)
}

// Run is the single-guess Algorithm 1. Every Run is a lane of a GridRun —
// the group that owns the bit-sliced uncovered/sample bitsets and drives
// the shared pass state machine; a standalone Run (NewRun) is the lane of
// a 1-lane group, whose grid layout is byte-identical to a dense bitset.
//
// Run implements stream.PassAlgorithm by delegating to its group, so
// existing single-guess call sites (stream.Run(st, run, ...)) are
// unchanged. Do not drive a lane of a multi-lane group directly — drive
// the GridRun; the per-lane accessors (Result, UncoveredHistory,
// PrunePicked) are always safe.
//
// Pass layout: pass 0 prunes; then iteration j ∈ [0,α) uses pass 2j+1 to
// store sampled projections and pass 2j+2 to subtract the sub-cover. A
// lane finishes early once its uncovered set is empty.
type Run struct {
	cfg  Config
	n, m int
	opt  int // the õpt guess
	r    *rng.RNG

	g    *GridRun // owning group
	lane int      // this run's lane in g

	uCount   int // |U| for this lane
	usmplCnt int // |sample| for this lane
	// Stored projections, in CSR form mirroring setsystem.Instance: one flat
	// element arena plus offsets, so the store-pass Observe path appends to
	// two flat slices (amortized allocation-free) instead of allocating one
	// slice per projected set.
	projIDs   []int   // set IDs with non-empty sampled projection
	projOffs  []int   // offsets into projElems; len(projIDs)+1 when non-empty
	projElems []int32 // sampled-element IDs, all projections concatenated
	chosen    map[int]bool
	pending   []int // sub-cover awaiting subtraction
	sol       []int
	solSet    map[int]bool
	failed    bool
	err       error
	done      bool

	// uncovHistory records |U| after the prune pass and after each
	// subtraction pass — the Lemma 3.11 decay trace (each iteration should
	// shrink |U| by roughly n^{β}).
	uncovHistory []int
	// prunePicked counts sets taken by the pruning pass; Lemma 3.10 bounds
	// it by ε·õpt (each pick covers ≥ n/(ε·õpt) new elements).
	prunePicked int
}

type phase int

const (
	phasePrune phase = iota
	phaseStore
	phaseSubtract
	phaseDone
)

// GridRun runs a group of single-guess Algorithm 1 lanes in pass lockstep
// over one bit-sliced bitset.Grid: lane g's uncovered (and sample) bitset
// is lane g of the grid, so the prune-phase count — the hottest loop in the
// solver — probes every live guess with one interleaved sweep per streamed
// set (Grid.AndCountRuns, the dispatched scalar/AVX2 kernel) instead of one
// strided pass per guess.
//
// All lanes share the phase schedule (every guess of Algorithm 1 uses the
// same pass layout), so the group is a single stream.PassAlgorithm; lanes
// that finish early are skipped (their state frozen) until the whole group
// is done. Grouping is invisible in results and accounting: each lane's
// RNG, decisions, and Space contribution are exactly those of a standalone
// Run, so any partition of a guess grid into groups — including the
// per-worker partition NewSolver picks — is bit-identical to per-guess runs
// (the masks_parity goldens pin this).
type GridRun struct {
	cfg  Config
	n, m int

	runs  []*Run
	phase phase
	iter  int
	live  int // lanes not yet done
	sole  int // the single live lane when live == 1, else -1 (set per pass)

	u          *bitset.Grid // uncovered elements, one lane per guess
	usmpl      *bitset.Grid // current samples (lane-wise subsets of u)
	counts     []int64      // AndCountRuns accumulator, grid width
	runScratch []bitset.Run // per-item run list when no driver prefilled one
}

// NewGridRun returns the bit-sliced group of one Algorithm 1 lane per
// guess, all over a universe of size n with m sets. rngs must have one
// entry per guess; each lane samples from its own RNG, so grouping does not
// perturb per-guess determinism. Guesses below 1 are clamped to 1.
func NewGridRun(n, m int, guesses []int, cfg Config, rngs []*rng.RNG) *GridRun {
	if len(guesses) == 0 {
		panic("core: GridRun needs at least one guess")
	}
	if len(guesses) != len(rngs) {
		panic(fmt.Sprintf("core: %d guesses but %d RNGs", len(guesses), len(rngs)))
	}
	c := cfg.withDefaults()
	g := &GridRun{cfg: c, n: n, m: m, sole: -1}
	g.runs = make([]*Run, len(guesses))
	for i, opt := range guesses {
		if opt < 1 {
			opt = 1
		}
		g.runs[i] = &Run{cfg: c, n: n, m: m, opt: opt, r: rngs[i],
			g: g, lane: i, chosen: map[int]bool{}, solSet: map[int]bool{}}
	}
	return g
}

// Lanes returns the number of guesses in the group.
func (g *GridRun) Lanes() int { return len(g.runs) }

// LiveLanes implements stream.LaneCounter: the number of guesses in the
// group still running. Traced drivers read it at pass boundaries to fill
// PassSample.Live.
func (g *GridRun) LiveLanes() int { return g.live }

// Lane returns the single-guess run occupying lane i.
func (g *GridRun) Lane(i int) *Run { return g.runs[i] }

// NewRun returns a single-guess Algorithm 1 over a universe of size n with
// m sets, guessing õpt = optGuess. The RNG drives element sampling. The
// returned Run is the lane of a fresh 1-lane GridRun, so driving it costs
// exactly what the pre-grid dense-bitset run cost.
func NewRun(n, m, optGuess int, cfg Config, r *rng.RNG) *Run {
	return NewGridRun(n, m, []int{optGuess}, cfg, []*rng.RNG{r}).Lane(0)
}

// sampleRate returns p = C·õpt·ln(m)/n^{1−β}, clamped to [0,1], where β is
// the reduction exponent (the paper's 1/α by default).
func (a *Run) sampleRate() float64 {
	if a.n == 0 {
		return 0
	}
	lm := math.Log(float64(a.m))
	if lm < 1 {
		lm = 1
	}
	p := a.cfg.SampleC * float64(a.opt) * lm /
		math.Pow(float64(a.n), 1-a.cfg.SampleExponent)
	if p > 1 {
		p = 1
	}
	return p
}

// pruneThreshold returns the first-pass pick threshold n/(ε·õpt).
func (a *Run) pruneThreshold() float64 {
	return float64(a.n) / (a.cfg.Epsilon * float64(a.opt))
}

// BeginPass implements stream.PassAlgorithm for the group.
func (g *GridRun) BeginPass(pass int) {
	switch {
	case pass == 0:
		g.u = bitset.NewGrid(g.n, len(g.runs))
		g.counts = g.u.MakeCounts()
		for lane, a := range g.runs {
			g.u.Fill(lane)
			a.uCount = g.n
		}
		g.live = len(g.runs)
		if g.cfg.DisablePrune {
			g.beginStorePass()
		} else {
			g.phase = phasePrune
		}
	case g.live == 0:
		g.phase = phaseDone
	case g.phase == phasePrune || g.phase == phaseSubtract:
		g.beginStorePass()
	case g.phase == phaseStore:
		g.phase = phaseSubtract
	}
	// live only changes at EndPass, so the sole-live-lane shortcut the
	// Observe fallbacks use is stable for the whole pass.
	g.sole = -1
	if g.live == 1 {
		for lane, a := range g.runs {
			if !a.done {
				g.sole = lane
				break
			}
		}
	}
}

// BeginPass implements stream.PassAlgorithm by delegating to the group.
func (a *Run) BeginPass(pass int) { a.g.BeginPass(pass) }

// beginStorePass starts the next iteration by sampling each live lane's
// uncovered universe at its configured rate.
func (g *GridRun) beginStorePass() {
	g.phase = phaseStore
	if g.usmpl == nil {
		g.usmpl = bitset.NewGrid(g.n, len(g.runs))
	}
	for lane, a := range g.runs {
		if a.done {
			continue
		}
		g.usmpl.Reset(lane)
		a.usmplCnt = 0
		p := a.sampleRate()
		g.u.Range(lane, func(e int) bool {
			if a.r.Bernoulli(p) {
				g.usmpl.Set(lane, e)
				a.usmplCnt++
			}
			return true
		})
		a.projIDs = a.projIDs[:0]
		a.projOffs = append(a.projOffs[:0], 0)
		a.projElems = a.projElems[:0]
	}
}

// Observe implements stream.PassAlgorithm for the group. This is the
// per-item hot path. With more than one live lane the item's word-mask run
// list (prefilled by the driver, or built here once into group scratch) is
// swept across the whole grid: the prune phase is one interleaved
// Grid.AndCountRuns — the dispatched scalar/AVX2 kernel — feeding every
// lane's threshold test, and the store/subtract phases use the strided
// single-lane kernels per live lane. With exactly one live lane the group
// degenerates to the pre-grid behavior: kernels when the driver shipped
// runs, scalar element loops otherwise (building a run list for a single
// consumer costs more than one probe loop, so the word-parallel path is
// taken exactly when the build is amortized). All paths compute identical
// results (the grid parity property tests and the scalar-golden parity
// tests pin this) and allocate nothing in the prune and subtract phases
// (the store phase appends to the flat projection arenas, amortized
// allocation-free once the arenas have grown).
func (g *GridRun) Observe(item stream.Item) {
	switch g.phase {
	case phasePrune:
		if g.sole >= 0 {
			g.lanePrune(g.sole, item)
			return
		}
		var runs []bitset.Run
		runs, g.runScratch = item.RunsInto(g.runScratch)
		counts := g.counts
		for i := range counts {
			counts[i] = 0
		}
		g.u.AndCountRuns(runs, counts)
		for lane, a := range g.runs {
			if a.done {
				continue
			}
			if cnt := counts[lane]; cnt > 0 && float64(cnt) >= a.pruneThreshold() {
				a.takeSet(item.ID)
				a.prunePicked++
				a.uCount -= g.u.LaneAndNotRuns(lane, runs)
			}
		}
	case phaseStore:
		if g.sole >= 0 {
			g.laneStore(g.sole, item)
			return
		}
		var runs []bitset.Run
		runs, g.runScratch = item.RunsInto(g.runScratch)
		for lane, a := range g.runs {
			if a.done {
				continue
			}
			start := len(a.projElems)
			a.projElems = g.usmpl.LaneAndRunsAppend(lane, a.projElems, runs)
			if len(a.projElems) > start {
				a.projIDs = append(a.projIDs, item.ID)
				a.projOffs = append(a.projOffs, len(a.projElems))
			}
		}
	case phaseSubtract:
		if g.sole >= 0 {
			if g.runs[g.sole].chosen[item.ID] {
				g.laneSubtract(g.sole, item)
			}
			return
		}
		// Probe the (tiny) chosen maps before paying for a runs build: at
		// most õpt sets per lane are subtracted per pass.
		need := false
		for _, a := range g.runs {
			if !a.done && a.chosen[item.ID] {
				need = true
				break
			}
		}
		if !need {
			return
		}
		var runs []bitset.Run
		runs, g.runScratch = item.RunsInto(g.runScratch)
		for lane, a := range g.runs {
			if !a.done && a.chosen[item.ID] {
				a.uCount -= g.u.LaneAndNotRuns(lane, runs)
			}
		}
	}
}

// Observe implements stream.PassAlgorithm by delegating to the group.
func (a *Run) Observe(item stream.Item) { a.g.Observe(item) }

// lanePrune is the one-live-lane prune fallback: kernel probe when the
// driver shipped runs, scalar element loop otherwise.
func (g *GridRun) lanePrune(lane int, item stream.Item) {
	a := g.runs[lane]
	cnt := 0
	if item.Runs != nil {
		cnt = g.u.LaneAndCountRuns(lane, item.Runs)
	} else {
		cnt = g.u.LaneCountElems(lane, item.Elems)
	}
	if cnt > 0 && float64(cnt) >= a.pruneThreshold() {
		a.takeSet(item.ID)
		a.prunePicked++
		g.laneSubtract(lane, item)
	}
}

// laneStore is the one-live-lane store fallback.
func (g *GridRun) laneStore(lane int, item stream.Item) {
	a := g.runs[lane]
	start := len(a.projElems)
	if item.Runs != nil {
		a.projElems = g.usmpl.LaneAndRunsAppend(lane, a.projElems, item.Runs)
	} else {
		a.projElems = g.usmpl.LaneFilterElemsAppend(lane, a.projElems, item.Elems)
	}
	if len(a.projElems) > start {
		a.projIDs = append(a.projIDs, item.ID)
		a.projOffs = append(a.projOffs, len(a.projElems))
	}
}

// laneSubtract removes the item's elements from the lane's uncovered set,
// keeping uCount in sync via the kernel's popcount delta (or the scalar
// loop when the item carries no run list).
func (g *GridRun) laneSubtract(lane int, item stream.Item) {
	a := g.runs[lane]
	if item.Runs != nil {
		a.uCount -= g.u.LaneAndNotRuns(lane, item.Runs)
		return
	}
	a.uCount -= g.u.LaneClearElems(lane, item.Elems)
}

// EndPass implements stream.PassAlgorithm for the group; done means every
// lane has finished.
func (g *GridRun) EndPass() bool {
	switch g.phase {
	case phasePrune:
		for _, a := range g.runs {
			if a.done {
				continue
			}
			a.uncovHistory = append(a.uncovHistory, a.uCount)
			if a.uCount == 0 {
				g.laneDone(a)
			}
		}
	case phaseStore:
		for _, a := range g.runs {
			if a.done {
				continue
			}
			a.solveSample()
			if a.failed {
				g.laneDone(a)
			}
		}
	case phaseSubtract:
		next := g.iter + 1
		for _, a := range g.runs {
			if a.done {
				continue
			}
			for _, id := range a.pending {
				a.takeSet(id)
			}
			a.pending = nil
			a.chosen = map[int]bool{}
			a.freeProjections()
			a.uncovHistory = append(a.uncovHistory, a.uCount)
			if a.uCount == 0 {
				g.laneDone(a)
			} else if next >= a.cfg.iterations() {
				// Iterations exhausted with uncovered elements left: this guess
				// failed (õpt too small for the sampling to succeed).
				a.failed = true
				g.laneDone(a)
			}
		}
		g.iter = next
	case phaseDone:
		// nothing to do; stay done
	}
	return g.live == 0
}

// EndPass implements stream.PassAlgorithm by delegating to the group.
func (a *Run) EndPass() bool { return a.g.EndPass() }

func (g *GridRun) laneDone(a *Run) {
	a.done = true
	g.live--
}

// solveSample covers the lane's sampled universe with the configured
// sub-solver and records the chosen set IDs for the subtraction pass.
func (a *Run) solveSample() {
	if a.usmplCnt == 0 {
		// Nothing sampled (tiny U or p rounding): the iteration is a no-op.
		return
	}
	// Remap sampled elements to a compact universe [0, usmplCnt).
	remap := make(map[int32]int32, a.usmplCnt)
	a.g.usmpl.Range(a.lane, func(e int) bool {
		remap[int32(e)] = int32(len(remap))
		return true
	})
	// Build the sub-instance straight from the flat projection arena.
	sb := setsystem.NewBuilder(a.usmplCnt)
	sb.Grow(len(a.projIDs), len(a.projElems))
	for i := range a.projIDs {
		for _, e := range a.projElems[a.projOffs[i]:a.projOffs[i+1]] {
			sb.Append(remap[e])
		}
		slices.Sort(sb.EndSet())
	}
	sub := sb.Build()

	var picked []int
	switch a.cfg.Subsolver {
	case SubsolverGreedy:
		cover, err := offline.GreedyContext(a.cfg.Context, sub)
		if err != nil {
			if err != offline.ErrInfeasible {
				a.err = err
			}
			a.failed = true
			return
		}
		picked = cover
	default:
		cover, ok, err := offline.CoverAtMost(sub, a.opt,
			offline.ExactConfig{NodeBudget: a.cfg.NodeBudget, Context: a.cfg.Context})
		if err != nil {
			a.err = err
			a.failed = true
			return
		}
		if !ok {
			// No cover of size ≤ õpt exists on the sample ⇒ the guess is too
			// small (the true optimum restricted to the sample would fit).
			a.failed = true
			return
		}
		picked = cover
	}
	a.pending = a.pending[:0]
	for _, local := range picked {
		id := a.projIDs[local]
		a.pending = append(a.pending, id)
		a.chosen[id] = true
	}
}

func (a *Run) takeSet(id int) {
	if !a.solSet[id] {
		a.solSet[id] = true
		a.sol = append(a.sol, id)
	}
}

// freeProjections ends the accounting life of the stored projections. The
// backing arrays keep their capacity for the next iteration (the space
// charge is what the algorithm logically retains, not Go's allocator
// state), except the sample bitset count which must read as zero.
func (a *Run) freeProjections() {
	a.projIDs = a.projIDs[:0]
	a.projOffs = a.projOffs[:0]
	a.projElems = a.projElems[:0]
	a.usmplCnt = 0
}

// Space implements stream.PassAlgorithm for the group: the sum of the
// lanes' footprints, each charged exactly as a standalone run — the
// uncovered lane at n words (one flag per universe element, the paper's
// O(n) term), stored projections at one word per retained set ID and
// element ID. Finished lanes keep paying for what they retain.
func (g *GridRun) Space() int {
	sp := 0
	for _, a := range g.runs {
		sp += len(a.sol) + len(a.pending)
		if g.u != nil {
			sp += a.n
		}
		sp += a.usmplCnt + len(a.projIDs) + len(a.projElems)
	}
	return sp
}

// Space implements stream.PassAlgorithm by delegating to the group (for a
// standalone Run the group is its 1-lane group, so this is the run's own
// footprint).
func (a *Run) Space() int { return a.g.Space() }

// UncoveredHistory returns |U| after the prune pass and after each
// sample/solve/subtract iteration — the empirical Lemma 3.11 decay trace.
func (a *Run) UncoveredHistory() []int {
	return append([]int(nil), a.uncovHistory...)
}

// PrunePicked returns the number of sets the pruning pass took; Lemma 3.10
// bounds it by ε·õpt.
func (a *Run) PrunePicked() int { return a.prunePicked }

// Result returns the run outcome. Valid after the driver reports done.
func (a *Run) Result() Result {
	cover := append([]int(nil), a.sol...)
	sort.Ints(cover)
	return Result{Cover: cover, Feasible: !a.failed && a.uCount == 0, Guess: a.opt, Err: a.err}
}

// Passes returns the pass count Algorithm 1 needs in the worst case for the
// configured α: one prune pass plus two per iteration (2α+1, Theorem 2).
func Passes(alpha int) int { return 2*alpha + 1 }

// MaxPasses returns the worst-case pass count for this configuration,
// accounting for a custom reduction exponent and a disabled prune pass.
func (c Config) MaxPasses() int {
	d := c.withDefaults()
	passes := 2 * d.iterations()
	if !d.DisablePrune {
		passes++
	}
	return passes
}

// Guesses returns the (1+ε)-geometric õpt guess grid {1, (1+ε), ...} ∩ [1,n],
// deduplicated after rounding up.
func Guesses(n int, eps float64) []int {
	if eps <= 0 {
		eps = 0.5
	}
	var out []int
	last := 0
	for g := 1.0; ; g *= 1 + eps {
		v := int(math.Ceil(g))
		if v > n {
			break
		}
		if v != last {
			out = append(out, v)
			last = v
		}
		if v == n {
			break
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Solver runs Algorithm 1 for every õpt guess in parallel over the shared
// passes, as the paper prescribes, and reports the smallest feasible cover.
// The guesses are partitioned contiguously into one GridRun group per
// worker, so each worker sweeps its guesses' uncovered bitsets with the
// interleaved grid kernel; the partition is invisible in results and
// accounting (see GridRun).
type Solver struct {
	*stream.Parallel
	groups  []*GridRun
	runs    []*Run
	workers int
	ctx     context.Context
	trace   stream.TraceSink
}

// NewSolver builds the parallel guess runner for a stream with universe n
// and m sets.
func NewSolver(n, m int, cfg Config, r *rng.RNG) *Solver {
	c := cfg.withDefaults()
	guesses := c.OptGuesses
	if len(guesses) == 0 {
		guesses = Guesses(n, c.Epsilon)
	}
	// Split the per-guess RNGs in guess order, before grouping: Split
	// advances the parent RNG, so the split order is part of the seed
	// contract and must not depend on the worker count.
	rngs := make([]*rng.RNG, len(guesses))
	for i, g := range guesses {
		rngs[i] = r.Split(fmt.Sprintf("guess-%d", g))
	}
	ng := min(parallel.Workers(c.Workers), len(guesses))
	if ng < 1 {
		ng = 1
	}
	groups := make([]*GridRun, ng)
	algs := make([]stream.PassAlgorithm, ng)
	runs := make([]*Run, 0, len(guesses))
	for gi := range groups {
		lo, hi := gi*len(guesses)/ng, (gi+1)*len(guesses)/ng
		groups[gi] = NewGridRun(n, m, guesses[lo:hi], c, rngs[lo:hi])
		algs[gi] = groups[gi]
		for l := 0; l < groups[gi].Lanes(); l++ {
			runs = append(runs, groups[gi].Lane(l))
		}
	}
	return &Solver{Parallel: stream.NewParallel(algs...), groups: groups, runs: runs,
		workers: c.Workers, ctx: c.Context, trace: c.Trace}
}

// Run drives the solver over st for up to maxPasses passes at the
// guess-grid parallelism of the Config it was built with: Workers == 1 uses
// the sequential lockstep driver (stream.Run over the Parallel composition);
// any other value fans the per-worker guess groups out to that many
// goroutines (0 = GOMAXPROCS) via parallel.Run. Results and accounting are
// bit-identical at every worker count — each guess owns an RNG split from
// the root seed and observes the full stream in arrival order (see
// internal/parallel's determinism contract and GridRun's grouping
// invariance).
func (s *Solver) Run(st stream.Stream, maxPasses int) (stream.Accounting, error) {
	if s.workers == 1 {
		ctx := s.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		return stream.RunTraced(ctx, st, s, maxPasses, s.trace)
	}
	return parallel.Run(st, s.Children(), parallel.Config{Workers: s.workers, MaxPasses: maxPasses, Context: s.ctx, Trace: s.trace})
}

// Best returns the smallest feasible cover across guesses. ok is false when
// no guess produced a feasible cover (e.g. the instance is not coverable).
func (s *Solver) Best() (Result, bool) {
	var best Result
	found := false
	for _, run := range s.runs {
		res := run.Result()
		if !res.Feasible {
			continue
		}
		if !found || len(res.Cover) < len(best.Cover) {
			best = res
			found = true
		}
	}
	return best, found
}

// Runs exposes the per-guess runs in guess order (for tests and
// experiments).
func (s *Solver) Runs() []*Run { return s.runs }

// Groups exposes the per-worker guess groups (for tests).
func (s *Solver) Groups() []*GridRun { return s.groups }

// Solve is the convenience entry point: stream the instance in the given
// order and return the best cover with driver accounting.
func Solve(inst *setsystem.Instance, order stream.Order, cfg Config, r *rng.RNG) (Result, stream.Accounting, error) {
	s := stream.FromInstance(inst, order, r.Split("stream-order"))
	if cfg.Plan != nil {
		if cfg.Plan.Universe() != inst.N || cfg.Plan.Len() != inst.M() {
			return Result{}, stream.Accounting{}, fmt.Errorf(
				"core: replay plan shape (n=%d, m=%d) does not match instance (n=%d, m=%d)",
				cfg.Plan.Universe(), cfg.Plan.Len(), inst.N, inst.M())
		}
		// The instance stream still draws the arrival permutation (so the
		// RNG discipline and every Order behave exactly as an honest solve);
		// only the per-item payload comes from the plan.
		return SolveStream(stream.Replay(s, cfg.Plan), cfg, r)
	}
	return SolveStream(s, cfg, r)
}

// SolveStream runs the guess grid over an already-constructed stream (for
// Solve's in-memory streams the order split has been consumed by the
// caller; file-backed streams are inherently adversarial-order and take
// this entry point directly, e.g. covercli's -in path). The root RNG must
// be post-split — use SolveFile-style call sites as the template:
//
//	r := rng.New(seed)
//	r.Split("stream-order") // discard: parity with Solve on the decoded instance
//	res, acc, err := core.SolveStream(fs, cfg, r)
//
// SolveFileRNG packages that discipline.
func SolveStream(st stream.Stream, cfg Config, r *rng.RNG) (Result, stream.Accounting, error) {
	c := cfg.withDefaults()
	solver := NewSolver(st.Universe(), st.Len(), c, r)
	acc, err := solver.Run(st, c.MaxPasses()+1)
	if err != nil {
		return Result{}, acc, err
	}
	best, ok := solver.Best()
	if !ok {
		return Result{}, acc, offline.ErrInfeasible
	}
	return best, acc, nil
}

// SolveFileRNG returns the root RNG for a file-backed SolveStream call:
// rng.New(seed) with the "stream-order" split consumed exactly as Solve
// consumes it, so that for a fixed seed a solve over a file stream is
// bit-identical — cover, guess, passes, space — to Solve (and the public
// SolveSetCover) on the decoded instance in adversarial order. This is
// the equality the coverd serve-smoke diff enforces end to end.
func SolveFileRNG(seed uint64) *rng.RNG {
	r := rng.New(seed)
	r.Split("stream-order")
	return r
}
