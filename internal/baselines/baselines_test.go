package baselines

import (
	"testing"
	"testing/quick"

	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func runAlg(t *testing.T, inst *setsystem.Instance, alg stream.PassAlgorithm, maxPasses int) stream.Accounting {
	t.Helper()
	s := stream.FromInstance(inst, stream.Adversarial, nil)
	acc, err := stream.Run(s, alg, maxPasses)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestProgressiveGreedyCovers(t *testing.T) {
	inst, planted := setsystem.PlantedCover(rng.New(1), 1024, 150, 4, 0.6)
	g := NewProgressiveGreedy(inst.N, 2)
	acc := runAlg(t, inst, g, g.MaxPasses())
	cover, ok := g.Result()
	if !ok || !inst.IsCover(cover) {
		t.Fatalf("progressive greedy failed: ok=%v", ok)
	}
	// λ=2 emulates greedy within factor 2: cover ≤ 2·H_n·opt, loosely.
	if len(cover) > 30*len(planted) {
		t.Fatalf("cover size %d vs opt %d", len(cover), len(planted))
	}
	if acc.Passes > g.MaxPasses() {
		t.Fatalf("passes %d > bound %d", acc.Passes, g.MaxPasses())
	}
}

func TestProgressiveGreedyInfeasible(t *testing.T) {
	inst := setsystem.FromSets(8, [][]int{{0, 1, 2}, {3}})
	g := NewProgressiveGreedy(inst.N, 2)
	runAlg(t, inst, g, g.MaxPasses())
	if _, ok := g.Result(); ok {
		t.Fatal("claimed feasible on an uncoverable instance")
	}
}

func TestProgressiveGreedyLambdaTradeoff(t *testing.T) {
	// Larger λ ⇒ fewer passes, (weakly) worse covers.
	inst, _ := setsystem.PlantedCover(rng.New(2), 2048, 300, 6, 0.5)
	run := func(lambda float64) (passes, size int) {
		g := NewProgressiveGreedy(inst.N, lambda)
		acc := runAlg(t, inst, g, g.MaxPasses())
		cover, ok := g.Result()
		if !ok {
			t.Fatalf("λ=%v infeasible", lambda)
		}
		return acc.Passes, len(cover)
	}
	p2, _ := run(2)
	p16, _ := run(16)
	if p16 >= p2 {
		t.Fatalf("λ=16 should use fewer passes: %d vs %d", p16, p2)
	}
}

func TestProgressiveGreedyBadLambdaDefaults(t *testing.T) {
	g := NewProgressiveGreedy(100, 0.5)
	if g.lambda != 2 {
		t.Fatalf("lambda = %v, want default 2", g.lambda)
	}
}

func TestStoreAllGreedy(t *testing.T) {
	inst, planted := setsystem.PlantedCover(rng.New(3), 512, 80, 4, 0.6)
	s := NewStoreAllGreedy(inst.N)
	acc := runAlg(t, inst, s, 2)
	cover, ok := s.Result()
	if !ok || !inst.IsCover(cover) {
		t.Fatal("store-all greedy failed")
	}
	if acc.Passes != 1 {
		t.Fatalf("store-all used %d passes", acc.Passes)
	}
	// Space must be the full input size.
	want := inst.TotalElems() + inst.M()
	if acc.PeakSpace < want {
		t.Fatalf("peak space %d below input size %d", acc.PeakSpace, want)
	}
	// Greedy quality: within H_n of opt, loosely ≤ ln(n)+1 times planted.
	if len(cover) > 8*len(planted) {
		t.Fatalf("greedy cover %d vs opt %d", len(cover), len(planted))
	}
}

func TestStoreAllGreedyMatchesOffline(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 32 + r.Intn(64)
		m := 10 + r.Intn(20)
		inst := setsystem.Uniform(r, n, m, 1, n/2+1)
		s := NewStoreAllGreedy(inst.N)
		st := stream.FromInstance(inst, stream.Adversarial, nil)
		if _, err := stream.Run(st, s, 2); err != nil {
			return false
		}
		cover, ok := s.Result()
		offCover, offErr := offline.Greedy(inst)
		if (offErr == nil) != ok {
			return false
		}
		if !ok {
			return true
		}
		return len(cover) == len(offCover)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAllInfeasible(t *testing.T) {
	inst := setsystem.FromSets(4, [][]int{{0}, {1}})
	s := NewStoreAllGreedy(inst.N)
	runAlg(t, inst, s, 2)
	if _, ok := s.Result(); ok {
		t.Fatal("claimed feasible on uncoverable instance")
	}
}
