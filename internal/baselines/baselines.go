// Package baselines implements the prior streaming set cover algorithms the
// paper positions itself against, in the same PassAlgorithm shape as the
// core Algorithm 1 so experiments can compare passes, space and cover
// quality directly (experiment E7):
//
//   - ProgressiveGreedy: the classical multi-pass threshold greedy in the
//     lineage of Saha–Getoor (SDM 2009), Cormode–Karloff–Wirth (CIKM 2010)
//     and Demaine et al. (DISC 2014): pass j picks every set that covers at
//     least |threshold_j| uncovered elements, with geometrically decaying
//     thresholds. With decay λ it uses ~log_λ(n) passes, O(n) words beyond
//     the solution, and approximates greedy within a factor λ (so ~λ·ln n
//     overall). Setting λ = n^{1/p} yields the few-pass/space-light but
//     approximation-heavy end of the spectrum.
//
//   - StoreAllGreedy: buffers the entire stream in one pass and runs offline
//     greedy — the space-maximal quality baseline (Θ(Σ|S_i|) words).
//
// The Har-Peled et al. (PODS 2016) iterative-sampling baseline is provided
// through core.Config{SampleExponent: 2/α, DisablePrune: true}; see package
// core.
package baselines

import (
	"math"
	"sort"

	"streamcover/internal/bitset"
	"streamcover/internal/offline"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// ProgressiveGreedy is the threshold-decay multi-pass greedy.
type ProgressiveGreedy struct {
	n         int
	lambda    float64
	threshold float64
	u         *bitset.Bitset
	uCount    int
	sol       []int
	done      bool
}

// NewProgressiveGreedy returns a progressive greedy over a universe of size
// n with threshold decay λ > 1 (λ = 2 is the classical choice; larger λ
// trades approximation for passes).
func NewProgressiveGreedy(n int, lambda float64) *ProgressiveGreedy {
	if lambda <= 1 {
		lambda = 2
	}
	return &ProgressiveGreedy{n: n, lambda: lambda}
}

// MaxPasses returns an upper bound on the passes needed: ⌈log_λ n⌉ + 2.
func (g *ProgressiveGreedy) MaxPasses() int {
	if g.n <= 1 {
		return 2
	}
	return int(math.Ceil(math.Log(float64(g.n))/math.Log(g.lambda))) + 2
}

// BeginPass implements stream.PassAlgorithm.
func (g *ProgressiveGreedy) BeginPass(pass int) {
	if pass == 0 {
		g.u = bitset.New(g.n)
		g.u.Fill()
		g.uCount = g.n
		g.threshold = float64(g.n) / g.lambda
	} else {
		g.threshold /= g.lambda
	}
	if g.threshold < 1 {
		g.threshold = 1
	}
}

// Observe implements stream.PassAlgorithm: when a grid driver attached the
// item's shared run list, probing costs one AND+popcount per occupied word;
// an unshared item keeps the scalar loop (building runs for one consumer
// costs more than one probe loop).
func (g *ProgressiveGreedy) Observe(item stream.Item) {
	if g.done || g.uCount == 0 {
		return
	}
	cnt := 0
	if item.Runs != nil {
		cnt = g.u.AndCountRuns(item.Runs)
	} else {
		for _, e := range item.Elems {
			if g.u.Has(int(e)) {
				cnt++
			}
		}
	}
	if cnt > 0 && float64(cnt) >= g.threshold {
		g.sol = append(g.sol, item.ID)
		if item.Runs != nil {
			g.uCount -= g.u.AndNotRuns(item.Runs)
		} else {
			for _, e := range item.Elems {
				if g.u.Has(int(e)) {
					g.u.Clear(int(e))
					g.uCount--
				}
			}
		}
	}
}

// EndPass implements stream.PassAlgorithm. The run finishes when the
// universe is covered, or when a full pass at threshold 1 picked nothing
// (the remaining elements are uncoverable).
func (g *ProgressiveGreedy) EndPass() bool {
	if g.uCount == 0 {
		g.done = true
	} else if g.threshold <= 1 {
		// At threshold 1 every useful set is picked greedily within the
		// pass; leftovers are in no set.
		g.done = true
	}
	return g.done
}

// Space implements stream.PassAlgorithm: the uncovered bitset (n words, as
// in package core's accounting) plus the solution.
func (g *ProgressiveGreedy) Space() int {
	sp := len(g.sol)
	if g.u != nil {
		sp += g.n
	}
	return sp
}

// Result returns the cover and whether it is feasible.
func (g *ProgressiveGreedy) Result() (cover []int, feasible bool) {
	out := append([]int(nil), g.sol...)
	sort.Ints(out)
	return out, g.uCount == 0
}

// StoreAllGreedy buffers the whole stream (into a CSR arena, one flat copy)
// and solves offline.
type StoreAllGreedy struct {
	n     int
	ids   []int
	buf   *setsystem.Builder
	words int
	sol   []int
	ok    bool
	done  bool
}

// NewStoreAllGreedy returns the store-everything baseline for universe n.
func NewStoreAllGreedy(n int) *StoreAllGreedy {
	return &StoreAllGreedy{n: n, buf: setsystem.NewBuilder(n)}
}

// BeginPass implements stream.PassAlgorithm.
func (s *StoreAllGreedy) BeginPass(pass int) {}

// Observe implements stream.PassAlgorithm.
func (s *StoreAllGreedy) Observe(item stream.Item) {
	s.ids = append(s.ids, item.ID)
	s.buf.AddSet32(item.Elems)
	s.words += 1 + len(item.Elems)
}

// EndPass implements stream.PassAlgorithm: solves after the single pass.
func (s *StoreAllGreedy) EndPass() bool {
	cover, err := offline.Greedy(s.buf.Build())
	if err == nil {
		s.ok = true
		for _, local := range cover {
			s.sol = append(s.sol, s.ids[local])
		}
		sort.Ints(s.sol)
	}
	s.done = true
	return true
}

// Space implements stream.PassAlgorithm.
func (s *StoreAllGreedy) Space() int { return s.words + len(s.sol) }

// Result returns the cover and whether it is feasible.
func (s *StoreAllGreedy) Result() (cover []int, feasible bool) {
	return append([]int(nil), s.sol...), s.ok
}
