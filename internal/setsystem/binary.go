package setsystem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary codec — the compact on-disk twin of the text format, designed so a
// multi-pass file stream can re-read it with a small reusable buffer and no
// integer re-parsing. Layout (all integers unsigned LEB128 varints unless
// noted):
//
//	magic   4 bytes  "SCB1" (version folded into the magic)
//	n       uvarint  universe size
//	m       uvarint  number of sets
//	total   uvarint  Σ|S_i| (arena length; lets a reader pre-allocate)
//	len_i   uvarint  ×m — per-set lengths (the offsets table in delta form)
//	payload          per set, in id order: the elements delta-encoded —
//	                 first element as-is, then successor gaps minus one
//	                 (sets are sorted and duplicate-free, so every gap ≥ 1)
//
// The length table up front means a reader knows every set boundary before
// touching the payload — the on-disk mirror of the in-memory CSR offsets —
// and a future mmap/seek implementation can index without scanning. Writing
// requires a normalized instance (sorted, duplicate-free, in-range); Write
// fails otherwise rather than silently emitting an undecodable stream.

// binaryMagic identifies binary instance files (version 1).
const binaryMagic = "SCB1"

// BinaryMagic returns the leading bytes of the binary format, for format
// sniffing by CLIs and stream openers.
func BinaryMagic() []byte { return []byte(binaryMagic) }

// WriteBinary encodes the instance in the binary format. The instance must
// be normalized: sorted, duplicate-free sets with elements in [0, N).
func WriteBinary(w io.Writer, in *Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("setsystem: binary encode needs a normalized instance: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	m := in.M()
	if err := putUvarint(uint64(in.N)); err != nil {
		return err
	}
	if err := putUvarint(uint64(m)); err != nil {
		return err
	}
	if err := putUvarint(uint64(in.TotalElems())); err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		if err := putUvarint(uint64(in.SetLen(i))); err != nil {
			return err
		}
	}
	for i := 0; i < m; i++ {
		prev := int32(-1)
		for j, e := range in.Set(i) {
			var d uint64
			if j == 0 {
				d = uint64(e)
			} else {
				d = uint64(e - prev - 1)
			}
			if err := putUvarint(d); err != nil {
				return err
			}
			prev = e
		}
	}
	return bw.Flush()
}

// ReadBinary decodes an instance from the binary format and validates it.
func ReadBinary(r io.Reader) (*Instance, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	n, m, lens, err := ReadBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	total := 0
	for _, l := range lens {
		total += int(l)
	}
	// The header's total is untrusted until the payload backs it up: a tiny
	// file can claim a multi-terabyte arena (small m, huge per-set lengths),
	// so cap the upfront reservation and let append grow with the varints
	// actually decoded — a truncated payload then errors long before the
	// claimed size is ever allocated.
	b.Grow(min(m, readChunkPrealloc), min(total, readChunkPrealloc))
	for i := 0; i < m; i++ {
		prev := int32(-1)
		for j := int32(0); j < lens[i]; j++ {
			e, err := decodeElem(br, &prev, j == 0, n)
			if err != nil {
				return nil, fmt.Errorf("setsystem: binary set %d: %w", i, err)
			}
			b.Append(e)
		}
		b.EndSet()
	}
	in := b.Build()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// ReadBinaryHeader consumes the magic, dimensions and length table. It is
// shared with the multi-pass stream.BinaryFileStream, which reads the
// header once and then decodes the payload set by set with DecodeBinarySet.
func ReadBinaryHeader(br io.ByteReader) (n, m int, lens []int32, err error) {
	for i := 0; i < len(binaryMagic); i++ {
		c, err := br.ReadByte()
		if err != nil {
			return 0, 0, nil, fmt.Errorf("setsystem: short binary magic: %w", err)
		}
		if c != binaryMagic[i] {
			return 0, 0, nil, fmt.Errorf("setsystem: bad binary magic (not an %s file)", binaryMagic)
		}
	}
	un, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("setsystem: binary header n: %w", err)
	}
	um, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("setsystem: binary header m: %w", err)
	}
	utotal, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("setsystem: binary header total: %w", err)
	}
	if un > uint64(MaxElement) || um > uint64(MaxElement) {
		return 0, 0, nil, fmt.Errorf("setsystem: binary header dimensions overflow (n=%d m=%d)", un, um)
	}
	n, m = int(un), int(um)
	// m is untrusted: a five-byte header can claim 2^31 sets. Each claimed
	// length still costs at least one payload byte, so growing the table
	// with append bounds the allocation by the input actually present
	// instead of the claim.
	lens = make([]int32, 0, min(m, readChunkPrealloc))
	var total uint64
	for i := 0; i < m; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("setsystem: binary length table: %w", err)
		}
		if l > uint64(n) {
			return 0, 0, nil, fmt.Errorf("setsystem: set %d length %d exceeds universe %d", i, l, n)
		}
		lens = append(lens, int32(l))
		total += l
	}
	if total != utotal {
		return 0, 0, nil, fmt.Errorf("setsystem: length table sums to %d, header says %d", total, utotal)
	}
	return n, m, lens, nil
}

// DecodeBinarySet decodes the next payload set (of the given length, over
// universe [0, n)) by appending its elements to dst[:0] and returning the
// extended slice — pass the previous call's return value back in to decode
// an entire pass with zero steady-state allocations.
func DecodeBinarySet(br io.ByteReader, dst []int32, length int32, n int) ([]int32, error) {
	dst = dst[:0]
	prev := int32(-1)
	for j := int32(0); j < length; j++ {
		e, err := decodeElem(br, &prev, j == 0, n)
		if err != nil {
			return dst, err
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// decodeElem reads one delta-encoded element, updating *prev. Bounds are
// checked against n so a corrupt payload fails fast instead of producing an
// invalid instance; the delta is bounded before the addition so a huge
// varint cannot wrap uint64 past the range check.
func decodeElem(br io.ByteReader, prev *int32, first bool, n int) (int32, error) {
	d, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if first {
		if d >= uint64(n) {
			return 0, fmt.Errorf("element %d out of range [0,%d)", d, n)
		}
		*prev = int32(d)
		return *prev, nil
	}
	// e = prev + 1 + d must stay below n, i.e. d < n − prev − 1 (prev was
	// itself validated < n, so the subtraction cannot underflow).
	if room := uint64(n) - uint64(*prev) - 1; d >= room {
		return 0, fmt.Errorf("element delta %d after %d escapes [0,%d)", d, *prev, n)
	}
	*prev += 1 + int32(d)
	return *prev, nil
}
