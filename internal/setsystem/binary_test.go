package setsystem

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := []*Instance{
		FromSets(0, nil),                     // empty universe, m=0
		FromSets(5, nil),                     // m=0
		FromSets(1, [][]int{{0}}),            // singleton universe
		FromSets(8, [][]int{{}, {0, 7}, {}}), // empty sets interleaved
		FromSets(6, [][]int{{0, 1, 2, 3, 4, 5}}),
		Uniform(rng.New(1), 300, 40, 0, 120),
		Zipf(rng.New(2), 200, 30, 1.5, 60),
	}
	// Max-universe elements: the largest encodable element round-trips.
	big := FromSets(MaxElement, [][]int{{0, MaxElement - 1}})
	cases = append(cases, big)
	for i, in := range cases {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, in); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if !equalInstances(got, in) {
			t.Fatalf("case %d: binary round trip differs", i)
		}
	}
}

func TestBinaryQuickRoundTripMatchesText(t *testing.T) {
	// Property: text and binary codecs decode to identical instances, and
	// binary→text→binary is the identity.
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 20
		in := Uniform(rng.New(seed), n, m, 0, n)

		var tbuf, bbuf bytes.Buffer
		if err := Write(&tbuf, in); err != nil {
			return false
		}
		if err := WriteBinary(&bbuf, in); err != nil {
			return false
		}
		fromText, err1 := Read(&tbuf)
		fromBin, err2 := ReadBinary(&bbuf)
		if err1 != nil || err2 != nil {
			return false
		}
		if !equalInstances(fromText, fromBin) || !equalInstances(fromBin, in) {
			return false
		}
		// Cross the codecs: binary → text → binary.
		var tbuf2, bbuf2 bytes.Buffer
		if err := Write(&tbuf2, fromBin); err != nil {
			return false
		}
		again, err := Read(&tbuf2)
		if err != nil {
			return false
		}
		if err := WriteBinary(&bbuf2, again); err != nil {
			return false
		}
		final, err := ReadBinary(&bbuf2)
		return err == nil && equalInstances(final, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsUnnormalized(t *testing.T) {
	for i, in := range []*Instance{
		FromSets(5, [][]int{{2, 1}}), // unsorted
		FromSets(5, [][]int{{1, 1}}), // duplicate
		FromSets(5, [][]int{{9}}),    // out of range
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, in); err == nil {
			t.Errorf("case %d: unnormalized instance encoded", i)
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, FromSets(10, [][]int{{0, 3}, {1, 2, 9}})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := [][]byte{
		{},                       // empty
		[]byte("setcover 3 1\n"), // text file fed to the binary decoder
		good[:2],                 // truncated magic
		good[:len(good)-1],       // truncated payload
		good[:6],                 // truncated header
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// A payload whose deltas escape the universe must fail, not produce an
	// invalid instance: encode {0, 9} under n=10, then shrink n in a forged
	// header by re-encoding a smaller instance and splicing payloads. The
	// simpler equivalent: decode with a length table claiming more elements
	// than the payload holds is covered by the truncation cases above, so
	// here we just check the in-range guard directly.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromSets(10, [][]int{{0, 9}})); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Patch n from 10 to 5 (single-byte varint right after the magic).
	raw[len(binaryMagic)] = 5
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("out-of-range payload accepted after header patch")
	}
}

func TestBinaryDecodeWrappingDelta(t *testing.T) {
	// A corrupt delta near 2^64 must not wrap the running element past the
	// bounds check: hand-craft a set {5, <delta 2^64-6>} over n=10 and
	// check both the set decoder and the instance decoder reject it.
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{5, ^uint64(0) - 5} {
		k := binary.PutUvarint(tmp[:], v)
		payload.Write(tmp[:k])
	}
	dec := bytes.NewReader(payload.Bytes())
	if got, err := DecodeBinarySet(dec, nil, 2, 10); err == nil {
		t.Fatalf("wrapping delta decoded to %v without error", got)
	}

	var file bytes.Buffer
	file.WriteString(binaryMagic)
	for _, v := range []uint64{10, 1, 2, 2} { // n, m, total, len_0
		k := binary.PutUvarint(tmp[:], v)
		file.Write(tmp[:k])
	}
	file.Write(payload.Bytes())
	if _, err := ReadBinary(bytes.NewReader(file.Bytes())); err == nil {
		t.Fatal("wrapping delta accepted by ReadBinary")
	}
}

func TestReadAutoDispatch(t *testing.T) {
	in := Uniform(rng.New(7), 50, 12, 0, 25)
	var tbuf, bbuf bytes.Buffer
	if err := Write(&tbuf, in); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, in); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadAuto(&tbuf)
	if err != nil {
		t.Fatalf("auto text: %v", err)
	}
	fromBin, err := ReadAuto(&bbuf)
	if err != nil {
		t.Fatalf("auto binary: %v", err)
	}
	if !equalInstances(fromText, in) || !equalInstances(fromBin, in) {
		t.Fatal("ReadAuto decoded a different instance")
	}
	if _, err := ReadAuto(strings.NewReader("")); err == nil {
		t.Fatal("ReadAuto accepted empty input")
	}
}
