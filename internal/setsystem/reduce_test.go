package setsystem

import (
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
)

func TestReduceDominatedBasic(t *testing.T) {
	in := FromSets(6, [][]int{
		{0, 1, 2},
		{0, 1}, // subsumed by 0
		{3, 4, 5},
		{3, 4, 5}, // duplicate of 2
		{5},       // subsumed by 2
		{2, 3},    // kept: not inside any other
	})
	red, kept := ReduceDominated(in)
	if len(kept) != 3 {
		t.Fatalf("kept %v", kept)
	}
	want := map[int]bool{0: true, 2: true, 5: true}
	for _, k := range kept {
		if !want[k] {
			t.Fatalf("kept unexpected set %d (%v)", k, kept)
		}
	}
	if red.M() != 3 || red.N != 6 {
		t.Fatalf("reduced = %+v", red)
	}
	if err := red.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceDominatedEmpty(t *testing.T) {
	red, kept := ReduceDominated(&Instance{N: 5})
	if red.M() != 0 || kept != nil {
		t.Fatalf("empty reduce: %v %v", red, kept)
	}
}

func TestReduceDominatedKeepsOneOfEqualDuplicates(t *testing.T) {
	in := FromSets(3, [][]int{{0, 1}, {0, 1}, {0, 1}})
	red, kept := ReduceDominated(in)
	if red.M() != 1 || len(kept) != 1 {
		t.Fatalf("dups not collapsed: %v", kept)
	}
}

// Property: reduction preserves coverage semantics — the union is unchanged
// and every original set is a subset of some kept set.
func TestQuickReducePreservesCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(30)
		m := 1 + r.Intn(20)
		in := Uniform(r, n, m, 0, n/2+1)
		red, kept := ReduceDominated(in)
		if len(kept) != red.M() {
			return false
		}
		// Union unchanged.
		all := make([]int, in.M())
		for i := range all {
			all[i] = i
		}
		allRed := make([]int, red.M())
		for i := range allRed {
			allRed[i] = i
		}
		if in.CoverageOf(all) != red.CoverageOf(allRed) {
			return false
		}
		// Every original set fits inside a kept one.
		for si := 0; si < in.M(); si++ {
			b := in.Bitset(si)
			found := false
			for ri := 0; ri < red.M(); ri++ {
				if b.SubsetOf(red.Bitset(ri)) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
