package setsystem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/rng"
)

// Fuzz harnesses for the on-disk decoders. The contract under fuzzing is
// uniform: arbitrary bytes must either decode into a Validate-clean
// instance or return an error — never panic, and never allocate
// proportionally to a header claim instead of the input actually present
// (the prealloc clamps in binary.go/scb2.go; see the over-claim seeds).
//
// Run the full fuzzers locally with, e.g.:
//
//	go test -fuzz FuzzReadBinary -fuzztime 30s ./internal/setsystem
//	go test -fuzz FuzzReadSCB2  -fuzztime 30s ./internal/setsystem
//
// CI executes the seed corpus below as ordinary tests.

// fuzzSeeds returns valid encodings plus adversarial mutations shared by
// both fuzzers: truncations, bit flips, and headers whose length tables
// claim far more data than the file carries.
func fuzzSeeds(t *testing.F, encode func(*Instance) []byte) [][]byte {
	t.Helper()
	var seeds [][]byte
	for _, in := range []*Instance{
		{N: 0},
		{N: 9},
		FromSets(8, [][]int{{0, 3, 7}, {}, {1, 2}}),
		Zipf(rng.New(2), 128, 24, 1.5, 40),
	} {
		b := encode(in)
		seeds = append(seeds, b)
		if len(b) > 5 {
			seeds = append(seeds, b[:len(b)/2], b[:5])
			flip := append([]byte(nil), b...)
			flip[len(flip)/2] ^= 0x40
			seeds = append(seeds, flip)
		}
	}
	return seeds
}

func FuzzReadBinary(f *testing.F) {
	for _, s := range fuzzSeeds(f, func(in *Instance) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, in); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}) {
		f.Add(s)
	}
	// Over-claim seeds: tiny files whose headers assert huge tables. The
	// clamped decoders must reject these without materializing the claim.
	f.Add([]byte("SCB1\xff\xff\xff\xff\x07\xff\xff\xff\xff\x07\xff\xff\xff\xff\x07")) // n=m=total=2^31-ish
	f.Add([]byte("SCB1\x80\x80\x80\x80\x08\x04\x90\xce\xb3\x9f\x08"))                 // small m, giant total claim

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("ReadBinary returned an invalid instance: %v", verr)
		}
	})
}

func FuzzReadSCB2(f *testing.F) {
	for _, s := range fuzzSeeds(f, func(in *Instance) []byte {
		var buf bytes.Buffer
		if err := WriteSCB2(&buf, in); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}) {
		f.Add(s)
	}
	// A syntactically plausible header claiming 2^30 sets in a 72-byte file.
	head := make([]byte, scb2HeaderSize+8)
	copy(head, scb2Magic)
	head[16], head[19] = 0, 64 // m = 64<<24
	f.Add(head)

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadSCB2(bytes.NewReader(data))
		if err == nil {
			if verr := in.Validate(); verr != nil {
				t.Fatalf("ReadSCB2 returned an invalid instance: %v", verr)
			}
		}
		// The mapped opener must uphold the same contract on the same bytes
		// (it validates through header parse + offsets check + Validate on
		// the mapped view, a separate code path from the stream decoder).
		path := filepath.Join(t.TempDir(), "fuzz.scb2")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Skip("cannot stage fuzz file")
		}
		mapped, merr := Map(path)
		if (merr == nil) != (err == nil) {
			t.Fatalf("Map and ReadSCB2 disagree: map err=%v, read err=%v", merr, err)
		}
		if merr == nil {
			if !instancesEqual(in, mapped) {
				mapped.Unmap()
				t.Fatal("Map and ReadSCB2 decode different instances")
			}
			mapped.Unmap()
		}
	})
}
