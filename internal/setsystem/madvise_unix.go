//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package setsystem

import "syscall"

// madviseAvailable reports that this build can pass paging hints to the
// kernel. Gated on the explicit OS list (not `unix`) because syscall
// does not define Madvise on every unix port.
const madviseAvailable = true

// madviseData forwards an access-pattern hint for the mapped pages.
func madviseData(data []byte, a Advice) error {
	if len(data) == 0 {
		return nil
	}
	adv := syscall.MADV_NORMAL
	switch a {
	case AdviseSequential:
		adv = syscall.MADV_SEQUENTIAL
	case AdviseWillNeed:
		adv = syscall.MADV_WILLNEED
	}
	return syscall.Madvise(data, adv)
}
