package setsystem

import "slices"

// Project returns the instance induced on a sub-universe: elements is a
// sorted, duplicate-free subset of [0, N); element elements[i] becomes i in
// the result, and every set is replaced by its intersection with the
// sub-universe (empty projections are kept so set indices line up). This is
// the "element sampling" view at the heart of Algorithm 1 and Lemma 3.12.
func Project(in *Instance, elements []int) *Instance {
	remap := make(map[int32]int32, len(elements))
	for i, e := range elements {
		if e < 0 || e >= in.N {
			panic("setsystem: Project element out of range")
		}
		if _, dup := remap[int32(e)]; dup {
			panic("setsystem: Project elements must be unique")
		}
		remap[int32(e)] = int32(i)
	}
	b := NewBuilder(len(elements))
	b.Grow(in.M(), len(elements))
	for si := 0; si < in.M(); si++ {
		for _, e := range in.Set(si) {
			if idx, ok := remap[e]; ok {
				b.Append(idx)
			}
		}
		slices.Sort(b.EndSet())
	}
	return b.Build()
}

// Merge concatenates the set collections of several instances over a common
// universe n; set indices follow the concatenation order. The arenas are
// copied, so the result shares no storage with the inputs. It panics if any
// input has a different universe size.
func Merge(n int, ins ...*Instance) *Instance {
	sets, total := 0, 0
	for _, in := range ins {
		if in.N != n {
			panic("setsystem: Merge universe mismatch")
		}
		sets += in.M()
		total += in.TotalElems()
	}
	b := NewBuilder(n)
	b.Grow(sets, total)
	for _, in := range ins {
		for i := 0; i < in.M(); i++ {
			b.AddSet32(in.Set(i))
		}
	}
	return b.Build()
}
