package setsystem

import "sort"

// Project returns the instance induced on a sub-universe: elements is a
// sorted, duplicate-free subset of [0, N); element elements[i] becomes i in
// the result, and every set is replaced by its intersection with the
// sub-universe (empty projections are kept so set indices line up). This is
// the "element sampling" view at the heart of Algorithm 1 and Lemma 3.12.
func Project(in *Instance, elements []int) *Instance {
	remap := make(map[int]int, len(elements))
	for i, e := range elements {
		if e < 0 || e >= in.N {
			panic("setsystem: Project element out of range")
		}
		if _, dup := remap[e]; dup {
			panic("setsystem: Project elements must be unique")
		}
		remap[e] = i
	}
	out := &Instance{N: len(elements), Sets: make([][]int, len(in.Sets))}
	for si, s := range in.Sets {
		var proj []int
		for _, e := range s {
			if idx, ok := remap[e]; ok {
				proj = append(proj, idx)
			}
		}
		sort.Ints(proj)
		out.Sets[si] = proj
	}
	return out
}

// Merge concatenates the set collections of several instances over a common
// universe n; set indices follow the concatenation order. It panics if any
// input has a different universe size.
func Merge(n int, ins ...*Instance) *Instance {
	out := &Instance{N: n}
	for _, in := range ins {
		if in.N != n {
			panic("setsystem: Merge universe mismatch")
		}
		for _, s := range in.Sets {
			out.Sets = append(out.Sets, append([]int(nil), s...))
		}
	}
	return out
}
