//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package setsystem

// madviseAvailable reports that this build has no madvise; Advise is a
// silent no-op (hints are optional by definition).
const madviseAvailable = false

func madviseData(_ []byte, _ Advice) error { return nil }
