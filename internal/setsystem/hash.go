package setsystem

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Hash returns the content hash of the instance: a hex SHA-256 over the
// universe size, the per-set lengths and the element arena, each field
// length-prefixed so distinct shapes can never collide by concatenation.
// Two instances hash equal iff they have the same n and the same sequence
// of sets (order and content; sets are compared as stored, so callers that
// want normalization-insensitive identity should SortSets first — every
// codec reader already does).
//
// The registry uses this as the instance identity: uploads deduplicate by
// hash, and a solve request names its instance by hash, which also makes
// the (hash, options) result-cache key stable across server restarts.
func Hash(in *Instance) string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(in.N))
	m := in.M()
	writeU64(uint64(m))
	for i := 0; i < m; i++ {
		writeU64(uint64(in.SetLen(i)))
	}
	writeU64(uint64(len(in.elems)))
	// Hash the arena in one pass, 8 elements per write via the fixed buffer
	// would still be one call per element; instead reinterpret chunk-wise.
	var chunk [512]byte
	k := 0
	for _, e := range in.elems {
		binary.LittleEndian.PutUint32(chunk[k:], uint32(e))
		k += 4
		if k == len(chunk) {
			h.Write(chunk[:])
			k = 0
		}
	}
	if k > 0 {
		h.Write(chunk[:k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SizeBytes estimates the resident heap footprint of the instance in bytes:
// the element arena (4 bytes per element) plus the offsets table (8 bytes
// per entry) plus a fixed struct overhead. The registry charges this
// against its memory budget.
func SizeBytes(in *Instance) int64 {
	return int64(4*len(in.elems)) + int64(8*len(in.offsets)) + 64
}
