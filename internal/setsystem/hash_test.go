package setsystem

import (
	"strings"
	"testing"
)

func TestHashIdentity(t *testing.T) {
	a := FromSets(10, [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7, 8, 9}})
	b := FromSets(10, [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7, 8, 9}})
	if Hash(a) != Hash(b) {
		t.Fatalf("equal instances hash differently: %s vs %s", Hash(a), Hash(b))
	}
	if len(Hash(a)) != 64 || strings.ToLower(Hash(a)) != Hash(a) {
		t.Fatalf("hash %q is not lowercase hex sha256", Hash(a))
	}
}

func TestHashDistinguishes(t *testing.T) {
	base := FromSets(10, [][]int{{0, 1, 2}, {3, 4}})
	variants := []*Instance{
		FromSets(11, [][]int{{0, 1, 2}, {3, 4}}),     // different n
		FromSets(10, [][]int{{3, 4}, {0, 1, 2}}),     // different set order
		FromSets(10, [][]int{{0, 1, 2}, {3, 5}}),     // different element
		FromSets(10, [][]int{{0, 1, 2, 3}, {4}}),     // same arena, shifted boundary
		FromSets(10, [][]int{{0, 1, 2}, {3, 4}, {}}), // extra empty set
	}
	seen := map[string]bool{Hash(base): true}
	for i, v := range variants {
		h := Hash(v)
		if seen[h] {
			t.Fatalf("variant %d collides: %s", i, h)
		}
		seen[h] = true
	}
}

func TestSizeBytes(t *testing.T) {
	in := FromSets(100, [][]int{{0, 1, 2}, {3, 4}})
	want := int64(4*5 + 8*3 + 64)
	if got := SizeBytes(in); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}
