// Package setsystem defines set-cover instances — a universe [0, n) and a
// collection of subsets — together with invariant checks, statistics, and
// workload generators.
//
// An Instance is the at-rest representation; streaming algorithms never see
// one directly but consume it through package stream one set at a time.
package setsystem

import (
	"fmt"
	"sort"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
)

// Instance is a set-cover (or maximum-coverage) instance: m subsets of the
// universe [0, N). Sets[i] is sorted and duplicate-free.
type Instance struct {
	N    int
	Sets [][]int
}

// M returns the number of sets.
func (in *Instance) M() int { return len(in.Sets) }

// Validate checks structural invariants: elements in range, sets sorted and
// duplicate-free. It returns the first violation found.
func (in *Instance) Validate() error {
	if in.N < 0 {
		return fmt.Errorf("setsystem: negative universe size %d", in.N)
	}
	for i, s := range in.Sets {
		for j, e := range s {
			if e < 0 || e >= in.N {
				return fmt.Errorf("setsystem: set %d element %d out of range [0,%d)", i, e, in.N)
			}
			if j > 0 && s[j-1] >= e {
				return fmt.Errorf("setsystem: set %d not sorted/unique at index %d", i, j)
			}
		}
	}
	return nil
}

// Bitset returns set i as a bitset over [0, N).
func (in *Instance) Bitset(i int) *bitset.Bitset {
	return bitset.FromSlice(in.N, in.Sets[i])
}

// Bitsets materializes every set as a bitset. The result is O(m·n/64) words;
// intended for offline solvers and verification, not streaming code.
func (in *Instance) Bitsets() []*bitset.Bitset {
	out := make([]*bitset.Bitset, len(in.Sets))
	for i := range in.Sets {
		out[i] = in.Bitset(i)
	}
	return out
}

// CoverageOf returns the number of distinct elements covered by the sets
// with the given indices.
func (in *Instance) CoverageOf(indices []int) int {
	cov := bitset.New(in.N)
	for _, i := range indices {
		for _, e := range in.Sets[i] {
			cov.Set(e)
		}
	}
	return cov.Count()
}

// IsCover reports whether the given indices cover the entire universe.
func (in *Instance) IsCover(indices []int) bool {
	return in.CoverageOf(indices) == in.N
}

// Coverable reports whether the union of all sets is the universe, i.e.
// whether a feasible set cover exists at all.
func (in *Instance) Coverable() bool {
	all := make([]int, len(in.Sets))
	for i := range all {
		all[i] = i
	}
	return in.IsCover(all)
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	sets := make([][]int, len(in.Sets))
	for i, s := range in.Sets {
		sets[i] = append([]int(nil), s...)
	}
	return &Instance{N: in.N, Sets: sets}
}

// Stats summarizes an instance for reporting.
type Stats struct {
	N, M                 int
	MinSize, MaxSize     int
	TotalSize            int     // Σ|S_i|, the "input size" a semi-streaming bound compares against
	MeanSize             float64 //
	ElementsCovered      int     // |∪S_i|
	MaxElementFrequency  int     // how many sets the most frequent element is in
	MeanElementFrequency float64
}

// ComputeStats scans the instance once and returns summary statistics.
func ComputeStats(in *Instance) Stats {
	st := Stats{N: in.N, M: len(in.Sets), MinSize: -1}
	freq := make([]int, in.N)
	for _, s := range in.Sets {
		st.TotalSize += len(s)
		if st.MinSize < 0 || len(s) < st.MinSize {
			st.MinSize = len(s)
		}
		if len(s) > st.MaxSize {
			st.MaxSize = len(s)
		}
		for _, e := range s {
			freq[e]++
		}
	}
	if st.MinSize < 0 {
		st.MinSize = 0
	}
	if st.M > 0 {
		st.MeanSize = float64(st.TotalSize) / float64(st.M)
	}
	sum := 0
	for _, f := range freq {
		if f > 0 {
			st.ElementsCovered++
		}
		if f > st.MaxElementFrequency {
			st.MaxElementFrequency = f
		}
		sum += f
	}
	if in.N > 0 {
		st.MeanElementFrequency = float64(sum) / float64(in.N)
	}
	return st
}

// SortSets normalizes every set in place: sorted, duplicates removed.
func (in *Instance) SortSets() {
	for i, s := range in.Sets {
		sort.Ints(s)
		in.Sets[i] = dedupSorted(s)
	}
}

func dedupSorted(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// --- Generators -----------------------------------------------------------

// Uniform returns an instance of m sets over [0, n) where each set is a
// uniformly random k-subset with k drawn uniformly from [minSize, maxSize].
func Uniform(r *rng.RNG, n, m, minSize, maxSize int) *Instance {
	if minSize < 0 || maxSize > n || minSize > maxSize {
		panic("setsystem: invalid size range")
	}
	sets := make([][]int, m)
	for i := range sets {
		k := minSize
		if maxSize > minSize {
			k += r.Intn(maxSize - minSize + 1)
		}
		sets[i] = r.KSubset(n, k)
	}
	return &Instance{N: n, Sets: sets}
}

// PlantedCover returns an instance with a planted optimal cover of exactly
// optSize sets: the universe is partitioned into optSize blocks forming the
// planted solution, and m−optSize decoy sets are random subsets whose sizes
// follow the planted blocks but that (with high probability) cover poorly.
// The planted indices are returned alongside; they are shuffled into random
// positions.
func PlantedCover(r *rng.RNG, n, m, optSize int, decoyFrac float64) (*Instance, []int) {
	if optSize < 1 || optSize > m || optSize > n {
		panic("setsystem: invalid planted cover size")
	}
	perm := r.Perm(n)
	sets := make([][]int, 0, m)
	// Planted blocks: near-equal partition of the permuted universe.
	for b := 0; b < optSize; b++ {
		lo := b * n / optSize
		hi := (b + 1) * n / optSize
		blk := append([]int(nil), perm[lo:hi]...)
		sort.Ints(blk)
		sets = append(sets, blk)
	}
	// Decoys: random subsets of decoyFrac·(n/optSize) elements.
	decoySize := int(decoyFrac * float64(n) / float64(optSize))
	if decoySize < 1 {
		decoySize = 1
	}
	if decoySize > n {
		decoySize = n
	}
	for i := optSize; i < m; i++ {
		sets = append(sets, r.KSubset(n, decoySize))
	}
	// Shuffle set positions, tracking where the planted sets land.
	pos := r.Perm(m)
	shuffled := make([][]int, m)
	planted := make([]int, 0, optSize)
	for i, p := range pos {
		shuffled[p] = sets[i]
		if i < optSize {
			planted = append(planted, p)
		}
	}
	sort.Ints(planted)
	return &Instance{N: n, Sets: shuffled}, planted
}

// Zipf returns an instance where set sizes follow a Zipf-like distribution
// with exponent s (heavier heads for smaller s>1), capped at maxSize, and
// element popularity is skewed: low-numbered elements appear in more sets.
// This models the document/topic workloads motivating streaming set cover.
func Zipf(r *rng.RNG, n, m int, s float64, maxSize int) *Instance {
	if maxSize > n {
		maxSize = n
	}
	sets := make([][]int, m)
	for i := range sets {
		k := r.Zipf(s, maxSize)
		// Skewed element choice: mix uniform picks with popularity-biased
		// picks (element ~ Zipf rank), then dedup.
		seen := make(map[int]struct{}, k)
		elems := make([]int, 0, k)
		for len(elems) < k {
			var e int
			if r.Bernoulli(0.5) {
				e = r.Intn(n)
			} else {
				e = r.Zipf(s, n) - 1
			}
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			elems = append(elems, e)
		}
		sort.Ints(elems)
		sets[i] = elems
	}
	return &Instance{N: n, Sets: sets}
}

// Clustered returns an instance where the universe is split into nClusters
// contiguous clusters and each set draws most of its elements from a single
// home cluster plus a few random outliers. This models topical corpora.
func Clustered(r *rng.RNG, n, m, nClusters, setSize int, outlierFrac float64) *Instance {
	if nClusters < 1 || nClusters > n {
		panic("setsystem: invalid cluster count")
	}
	if setSize > n {
		setSize = n
	}
	sets := make([][]int, m)
	for i := range sets {
		c := r.Intn(nClusters)
		lo := c * n / nClusters
		hi := (c + 1) * n / nClusters
		inCluster := setSize - int(outlierFrac*float64(setSize))
		if inCluster > hi-lo {
			inCluster = hi - lo
		}
		seen := make(map[int]struct{}, setSize)
		elems := make([]int, 0, setSize)
		for _, e := range r.KSubset(hi-lo, inCluster) {
			elems = append(elems, lo+e)
			seen[lo+e] = struct{}{}
		}
		for len(elems) < setSize {
			e := r.Intn(n)
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			elems = append(elems, e)
		}
		sort.Ints(elems)
		sets[i] = elems
	}
	return &Instance{N: n, Sets: sets}
}
