// Package setsystem defines set-cover instances — a universe [0, n) and a
// collection of subsets — together with invariant checks, statistics, and
// workload generators.
//
// An Instance is the at-rest representation; streaming algorithms never see
// one directly but consume it through package stream one set at a time.
//
// # Storage layout
//
// Instances are stored in compressed-sparse-row (CSR) form: one flat
// []int32 element arena plus an offsets table, so set i is the contiguous
// view elems[offsets[i]:offsets[i+1]]. Compared to a [][]int
// slice-of-slices this removes one pointer chase and one heap object per
// set, keeps multi-pass scans cache-linear, and makes the whole instance a
// pair of flat arrays — cheap to broadcast read-only across worker
// goroutines and directly serializable by the binary codec. Elements are
// int32 (universes beyond 2^31−1 are outside every workload this
// repository targets and are rejected at construction).
package setsystem

import (
	"fmt"
	"slices"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
)

// MaxElement is the largest universe element the CSR layout can store.
const MaxElement = int(^uint32(0) >> 1) // math.MaxInt32

// Instance is a set-cover (or maximum-coverage) instance: m subsets of the
// universe [0, N) in CSR layout. Construct with FromSets or a Builder; the
// zero value (and &Instance{N: n}) is a valid empty instance. Sets are
// expected to be sorted and duplicate-free (call SortSets after assembling
// from unnormalized data; Validate checks).
type Instance struct {
	N int

	offsets []int   // len M()+1 when sets exist; offsets[0] == 0
	elems   []int32 // flat element arena

	// Mapped instances (Map) view an mmap'd SCB2 file instead of owning
	// heap arrays; see Backing/MappedBytes/Unmap in mmap.go. mapData is
	// the raw mapping, retained so Advise can pass paging hints to the
	// kernel. The zero values describe an ordinary heap instance.
	backing     Backing
	mappedBytes int64
	mapData     []byte
	unmap       func() error
}

// FromSets builds an instance over [0, n) from a slice of sets, copying the
// elements into a fresh arena. Elements are not normalized or range-checked
// (use SortSets/Validate), but must fit in int32.
func FromSets(n int, sets [][]int) *Instance {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	b := NewBuilder(n)
	b.Grow(len(sets), total)
	for _, s := range sets {
		b.AddSet(s)
	}
	return b.Build()
}

// M returns the number of sets.
func (in *Instance) M() int {
	if len(in.offsets) == 0 {
		return 0
	}
	return len(in.offsets) - 1
}

// Set returns set i as a zero-copy view into the instance's element arena.
// The view is valid for the life of the instance; callers must not append
// to it (the capacity is clipped so an append cannot bleed into set i+1,
// but would still allocate a confusing copy) and must not mutate it unless
// they own the instance.
func (in *Instance) Set(i int) []int32 {
	return in.elems[in.offsets[i]:in.offsets[i+1]:in.offsets[i+1]]
}

// SetLen returns |S_i| without materializing a view.
func (in *Instance) SetLen(i int) int {
	return in.offsets[i+1] - in.offsets[i]
}

// TotalElems returns Σ|S_i|, the arena length.
func (in *Instance) TotalElems() int { return len(in.elems) }

// Validate checks structural invariants: elements in range, sets sorted and
// duplicate-free. It returns the first violation found.
func (in *Instance) Validate() error {
	if in.N < 0 {
		return fmt.Errorf("setsystem: negative universe size %d", in.N)
	}
	for i := 0; i < in.M(); i++ {
		s := in.Set(i)
		for j, e := range s {
			if e < 0 || int(e) >= in.N {
				return fmt.Errorf("setsystem: set %d element %d out of range [0,%d)", i, e, in.N)
			}
			if j > 0 && s[j-1] >= e {
				return fmt.Errorf("setsystem: set %d not sorted/unique at index %d", i, j)
			}
		}
	}
	return nil
}

// Bitset returns set i as a bitset over [0, N).
func (in *Instance) Bitset(i int) *bitset.Bitset {
	b := bitset.New(in.N)
	b.SetAll(in.Set(i))
	return b
}

// Bitsets materializes every set as a bitset, straight from the arena. The
// result is O(m·n/64) words; intended for offline solvers and verification,
// not streaming code.
func (in *Instance) Bitsets() []*bitset.Bitset {
	out := make([]*bitset.Bitset, in.M())
	for i := range out {
		out[i] = in.Bitset(i)
	}
	return out
}

// CoverageOf returns the number of distinct elements covered by the sets
// with the given indices.
func (in *Instance) CoverageOf(indices []int) int {
	cov := bitset.New(in.N)
	for _, i := range indices {
		cov.SetAll(in.Set(i))
	}
	return cov.Count()
}

// IsCover reports whether the given indices cover the entire universe.
func (in *Instance) IsCover(indices []int) bool {
	return in.CoverageOf(indices) == in.N
}

// Coverable reports whether the union of all sets is the universe, i.e.
// whether a feasible set cover exists at all.
func (in *Instance) Coverable() bool {
	cov := bitset.New(in.N)
	cov.SetAll(in.elems)
	return cov.Count() == in.N
}

// Clone returns a deep copy of the instance. The copy is always
// heap-backed, so cloning is also how a caller detaches from a mapped
// instance before its mapping goes away.
func (in *Instance) Clone() *Instance {
	return &Instance{
		N:       in.N,
		offsets: slices.Clone(in.offsets),
		elems:   slices.Clone(in.elems),
	}
}

// Stats summarizes an instance for reporting.
type Stats struct {
	N, M                 int
	MinSize, MaxSize     int
	TotalSize            int     // Σ|S_i|, the "input size" a semi-streaming bound compares against
	MeanSize             float64 //
	ElementsCovered      int     // |∪S_i|
	MaxElementFrequency  int     // how many sets the most frequent element is in
	MeanElementFrequency float64
}

// ComputeStats scans the instance once and returns summary statistics.
func ComputeStats(in *Instance) Stats {
	st := Stats{N: in.N, M: in.M(), MinSize: -1}
	freq := make([]int, in.N)
	st.TotalSize = in.TotalElems()
	for i := 0; i < st.M; i++ {
		l := in.SetLen(i)
		if st.MinSize < 0 || l < st.MinSize {
			st.MinSize = l
		}
		if l > st.MaxSize {
			st.MaxSize = l
		}
	}
	for _, e := range in.elems {
		freq[e]++
	}
	if st.MinSize < 0 {
		st.MinSize = 0
	}
	if st.M > 0 {
		st.MeanSize = float64(st.TotalSize) / float64(st.M)
	}
	sum := 0
	for _, f := range freq {
		if f > 0 {
			st.ElementsCovered++
		}
		if f > st.MaxElementFrequency {
			st.MaxElementFrequency = f
		}
		sum += f
	}
	if in.N > 0 {
		st.MeanElementFrequency = float64(sum) / float64(in.N)
	}
	return st
}

// SortSets normalizes every set in place: sorted, duplicates removed. The
// arena is compacted when duplicates are dropped.
func (in *Instance) SortSets() {
	w := 0 // arena write pointer
	for i := 0; i < in.M(); i++ {
		s := in.elems[in.offsets[i]:in.offsets[i+1]]
		slices.Sort(s)
		start := w
		for j, v := range s {
			if j > 0 && v == in.elems[w-1] {
				continue
			}
			in.elems[w] = v
			w++
		}
		in.offsets[i] = start
	}
	if m := in.M(); m > 0 {
		in.offsets[m] = w
	}
	in.elems = in.elems[:w]
}

// --- Builder --------------------------------------------------------------

// Builder assembles an Instance set by set into a single arena. The zero
// value is unusable; call NewBuilder.
type Builder struct {
	n       int
	offsets []int
	elems   []int32
}

// NewBuilder returns a builder for an instance over the universe [0, n).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, offsets: []int{0}}
}

// Grow pre-allocates capacity for the given number of additional sets and
// elements (a hint; exceeding it is fine).
func (b *Builder) Grow(sets, elems int) {
	b.offsets = slices.Grow(b.offsets, sets)
	b.elems = slices.Grow(b.elems, elems)
}

// AddSet appends a set, copying and converting its elements. It panics if
// an element does not fit in int32 (range vs. the universe is checked by
// Validate, not here, so invalid instances can be built for negative
// tests).
func (b *Builder) AddSet(s []int) {
	for _, e := range s {
		if e > MaxElement || e < -MaxElement-1 {
			panic(fmt.Sprintf("setsystem: element %d overflows int32", e))
		}
		b.elems = append(b.elems, int32(e))
	}
	b.offsets = append(b.offsets, len(b.elems))
}

// AddSet32 appends a set of int32 elements, copying them.
func (b *Builder) AddSet32(s []int32) {
	b.elems = append(b.elems, s...)
	b.offsets = append(b.offsets, len(b.elems))
}

// Append adds one element to the currently open set (the set is open from
// the previous EndSet/AddSet boundary and closed by the next EndSet).
func (b *Builder) Append(e int32) { b.elems = append(b.elems, e) }

// EndSet closes the set being filled by Append and returns a mutable view
// of it (e.g. to sort in place before starting the next set).
func (b *Builder) EndSet() []int32 {
	start := b.offsets[len(b.offsets)-1]
	b.offsets = append(b.offsets, len(b.elems))
	return b.elems[start:len(b.elems):len(b.elems)]
}

// Len returns the number of sets added so far.
func (b *Builder) Len() int { return len(b.offsets) - 1 }

// Build finalizes the instance. The builder must not be reused afterwards.
func (b *Builder) Build() *Instance {
	return &Instance{N: b.n, offsets: b.offsets, elems: b.elems}
}

// --- Generators -----------------------------------------------------------

// Uniform returns an instance of m sets over [0, n) where each set is a
// uniformly random k-subset with k drawn uniformly from [minSize, maxSize].
func Uniform(r *rng.RNG, n, m, minSize, maxSize int) *Instance {
	if minSize < 0 || maxSize > n || minSize > maxSize {
		panic("setsystem: invalid size range")
	}
	b := NewBuilder(n)
	b.Grow(m, m*(minSize+maxSize)/2)
	for i := 0; i < m; i++ {
		k := minSize
		if maxSize > minSize {
			k += r.Intn(maxSize - minSize + 1)
		}
		b.AddSet(r.KSubset(n, k))
	}
	return b.Build()
}

// PlantedCover returns an instance with a planted optimal cover of exactly
// optSize sets: the universe is partitioned into optSize blocks forming the
// planted solution, and m−optSize decoy sets are random subsets whose sizes
// follow the planted blocks but that (with high probability) cover poorly.
// The planted indices are returned alongside; they are shuffled into random
// positions.
func PlantedCover(r *rng.RNG, n, m, optSize int, decoyFrac float64) (*Instance, []int) {
	if optSize < 1 || optSize > m || optSize > n {
		panic("setsystem: invalid planted cover size")
	}
	perm := r.Perm(n)
	sets := make([][]int, 0, m)
	// Planted blocks: near-equal partition of the permuted universe.
	for b := 0; b < optSize; b++ {
		lo := b * n / optSize
		hi := (b + 1) * n / optSize
		blk := append([]int(nil), perm[lo:hi]...)
		slices.Sort(blk)
		sets = append(sets, blk)
	}
	// Decoys: random subsets of decoyFrac·(n/optSize) elements.
	decoySize := int(decoyFrac * float64(n) / float64(optSize))
	if decoySize < 1 {
		decoySize = 1
	}
	if decoySize > n {
		decoySize = n
	}
	for i := optSize; i < m; i++ {
		sets = append(sets, r.KSubset(n, decoySize))
	}
	// Shuffle set positions, tracking where the planted sets land.
	pos := r.Perm(m)
	shuffled := make([][]int, m)
	planted := make([]int, 0, optSize)
	for i, p := range pos {
		shuffled[p] = sets[i]
		if i < optSize {
			planted = append(planted, p)
		}
	}
	slices.Sort(planted)
	return FromSets(n, shuffled), planted
}

// dedupScratch is the shared per-generator deduplication state: a stamp
// array indexed by element, bumped once per set, so membership checks need
// no clearing and no per-set map allocation (the map-per-set version
// dominated GenerateZipf profiles).
type dedupScratch struct {
	stamp []int32
	epoch int32
}

func newDedupScratch(n int) *dedupScratch {
	return &dedupScratch{stamp: make([]int32, n)}
}

// next starts a new set; seen reports (and records) membership.
func (d *dedupScratch) next() { d.epoch++ }

func (d *dedupScratch) seen(e int) bool {
	if d.stamp[e] == d.epoch {
		return true
	}
	d.stamp[e] = d.epoch
	return false
}

// Zipf returns an instance where set sizes follow a Zipf-like distribution
// with exponent s (heavier heads for smaller s>1), capped at maxSize, and
// element popularity is skewed: low-numbered elements appear in more sets.
// This models the document/topic workloads motivating streaming set cover.
func Zipf(r *rng.RNG, n, m int, s float64, maxSize int) *Instance {
	if maxSize > n {
		maxSize = n
	}
	b := NewBuilder(n)
	b.Grow(m, m*4) // Zipf sizes are head-heavy; the arena grows as needed
	scratch := newDedupScratch(n)
	for i := 0; i < m; i++ {
		k := r.Zipf(s, maxSize)
		// Skewed element choice: mix uniform picks with popularity-biased
		// picks (element ~ Zipf rank), then dedup via the stamp scratch.
		scratch.next()
		for added := 0; added < k; {
			var e int
			if r.Bernoulli(0.5) {
				e = r.Intn(n)
			} else {
				e = r.Zipf(s, n) - 1
			}
			if scratch.seen(e) {
				continue
			}
			b.Append(int32(e))
			added++
		}
		slices.Sort(b.EndSet())
	}
	return b.Build()
}

// Clustered returns an instance where the universe is split into nClusters
// contiguous clusters and each set draws most of its elements from a single
// home cluster plus a few random outliers. This models topical corpora.
func Clustered(r *rng.RNG, n, m, nClusters, setSize int, outlierFrac float64) *Instance {
	if nClusters < 1 || nClusters > n {
		panic("setsystem: invalid cluster count")
	}
	if setSize > n {
		setSize = n
	}
	b := NewBuilder(n)
	b.Grow(m, m*setSize)
	scratch := newDedupScratch(n)
	for i := 0; i < m; i++ {
		c := r.Intn(nClusters)
		lo := c * n / nClusters
		hi := (c + 1) * n / nClusters
		inCluster := setSize - int(outlierFrac*float64(setSize))
		if inCluster > hi-lo {
			inCluster = hi - lo
		}
		scratch.next()
		added := 0
		for _, e := range r.KSubset(hi-lo, inCluster) {
			scratch.seen(lo + e)
			b.Append(int32(lo + e))
			added++
		}
		for added < setSize {
			e := r.Intn(n)
			if scratch.seen(e) {
				continue
			}
			b.Append(int32(e))
			added++
		}
		slices.Sort(b.EndSet())
	}
	return b.Build()
}
