package setsystem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
)

// equalInstances reports whether two instances have identical universes and
// identical sets (by arena comparison).
func equalInstances(a, b *Instance) bool {
	if a.N != b.N || a.M() != b.M() {
		return false
	}
	for i := 0; i < a.M(); i++ {
		sa, sb := a.Set(i), b.Set(i)
		if len(sa) != len(sb) {
			return false
		}
		for j := range sa {
			if sa[j] != sb[j] {
				return false
			}
		}
	}
	return true
}

func TestValidate(t *testing.T) {
	good := FromSets(5, [][]int{{0, 1}, {2, 4}, {}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []*Instance{
		FromSets(5, [][]int{{0, 5}}), // out of range
		FromSets(5, [][]int{{-1}}),   // negative
		FromSets(5, [][]int{{2, 1}}), // unsorted
		FromSets(5, [][]int{{1, 1}}), // duplicate
		FromSets(-1, nil),            // bad n
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid instance accepted", i)
		}
	}
}

func TestEmptyInstanceForms(t *testing.T) {
	// The zero value and the N-only literal are valid empty instances.
	for _, in := range []*Instance{{}, {N: 7}, FromSets(7, nil)} {
		if in.M() != 0 || in.TotalElems() != 0 {
			t.Fatalf("empty instance reports m=%d total=%d", in.M(), in.TotalElems())
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("empty instance invalid: %v", err)
		}
	}
}

func TestSetViews(t *testing.T) {
	in := FromSets(6, [][]int{{0, 1, 2}, {}, {3, 5}})
	if in.SetLen(0) != 3 || in.SetLen(1) != 0 || in.SetLen(2) != 2 {
		t.Fatalf("SetLen mismatch")
	}
	if in.TotalElems() != 5 {
		t.Fatalf("TotalElems = %d", in.TotalElems())
	}
	s2 := in.Set(2)
	if len(s2) != 2 || s2[0] != 3 || s2[1] != 5 {
		t.Fatalf("Set(2) = %v", s2)
	}
	// Views have clipped capacity: an append must not bleed into the arena.
	s0 := in.Set(0)
	_ = append(s0, 99)
	if got := in.Set(1); len(got) != 0 {
		t.Fatalf("append through view corrupted the arena: set 1 = %v", got)
	}
	if s2[0] != 3 {
		t.Fatalf("append through view overwrote a neighbor: %v", s2)
	}
}

func TestCoverageAndIsCover(t *testing.T) {
	in := FromSets(6, [][]int{{0, 1, 2}, {2, 3}, {4, 5}, {0, 5}})
	if got := in.CoverageOf([]int{0, 1}); got != 4 {
		t.Fatalf("CoverageOf = %d, want 4", got)
	}
	if in.IsCover([]int{0, 1}) {
		t.Fatal("partial cover reported as full")
	}
	if !in.IsCover([]int{0, 1, 2}) {
		t.Fatal("full cover not detected")
	}
	if !in.Coverable() {
		t.Fatal("Coverable false for coverable instance")
	}
	bad := FromSets(3, [][]int{{0}, {1}})
	if bad.Coverable() {
		t.Fatal("Coverable true for uncoverable instance")
	}
}

func TestStats(t *testing.T) {
	in := FromSets(4, [][]int{{0, 1}, {1, 2, 3}, {}})
	st := ComputeStats(in)
	if st.N != 4 || st.M != 3 || st.MinSize != 0 || st.MaxSize != 3 || st.TotalSize != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ElementsCovered != 4 || st.MaxElementFrequency != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSortSets(t *testing.T) {
	in := FromSets(10, [][]int{{5, 3, 3, 1}, {9, 9}, {7}})
	in.SortSets()
	if err := in.Validate(); err != nil {
		t.Fatalf("after SortSets: %v", err)
	}
	if in.SetLen(0) != 3 || in.SetLen(1) != 1 || in.SetLen(2) != 1 {
		t.Fatalf("dedup failed: lens %d %d %d", in.SetLen(0), in.SetLen(1), in.SetLen(2))
	}
	if s := in.Set(0); s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Fatalf("set 0 = %v", s)
	}
	// The arena was compacted: later sets survived the shift intact.
	if s := in.Set(2); s[0] != 7 {
		t.Fatalf("set 2 = %v after compaction", s)
	}
	if in.TotalElems() != 5 {
		t.Fatalf("arena not compacted: total = %d", in.TotalElems())
	}
}

func TestClone(t *testing.T) {
	in := FromSets(5, [][]int{{0, 2}, {1}})
	cp := in.Clone()
	if !equalInstances(in, cp) {
		t.Fatal("clone differs")
	}
	// Mutating the clone's arena must not touch the original.
	cp.Set(0)[0] = 4
	if in.Set(0)[0] != 0 {
		t.Fatal("clone shares arena storage with original")
	}
}

func TestBuilderIncremental(t *testing.T) {
	b := NewBuilder(9)
	b.AddSet([]int{1, 4})
	b.Append(0)
	b.Append(8)
	if v := b.EndSet(); len(v) != 2 || v[0] != 0 || v[1] != 8 {
		t.Fatalf("EndSet view = %v", v)
	}
	b.AddSet32([]int32{3})
	if b.Len() != 3 {
		t.Fatalf("builder Len = %d", b.Len())
	}
	in := b.Build()
	want := FromSets(9, [][]int{{1, 4}, {0, 8}, {3}})
	if !equalInstances(in, want) {
		t.Fatal("builder output differs from FromSets")
	}
}

func TestUniformGenerator(t *testing.T) {
	r := rng.New(1)
	in := Uniform(r, 100, 50, 5, 20)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 50 {
		t.Fatalf("M = %d", in.M())
	}
	for i := 0; i < in.M(); i++ {
		if l := in.SetLen(i); l < 5 || l > 20 {
			t.Fatalf("set %d size %d outside [5,20]", i, l)
		}
	}
}

func TestPlantedCover(t *testing.T) {
	r := rng.New(2)
	in, planted := PlantedCover(r, 200, 40, 4, 0.8)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(planted) != 4 {
		t.Fatalf("planted = %v", planted)
	}
	if !in.IsCover(planted) {
		t.Fatal("planted sets do not cover the universe")
	}
	// Planted blocks partition the universe: total size = n.
	total := 0
	for _, i := range planted {
		total += in.SetLen(i)
	}
	if total != 200 {
		t.Fatalf("planted blocks total %d elements, want 200 (partition)", total)
	}
}

func TestZipfGenerator(t *testing.T) {
	r := rng.New(3)
	in := Zipf(r, 500, 100, 1.5, 50)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 100 {
		t.Fatalf("M = %d", in.M())
	}
	for i := 0; i < in.M(); i++ {
		if l := in.SetLen(i); l < 1 || l > 50 {
			t.Fatalf("zipf set size %d", l)
		}
	}
}

func TestClusteredGenerator(t *testing.T) {
	r := rng.New(4)
	in := Clustered(r, 400, 80, 8, 30, 0.1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Most sets should be concentrated: ≥70% of elements in one cluster.
	concentrated := 0
	for i := 0; i < in.M(); i++ {
		s := in.Set(i)
		counts := make([]int, 8)
		for _, e := range s {
			counts[e/50]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if float64(max) >= 0.7*float64(len(s)) {
			concentrated++
		}
	}
	if concentrated < 60 {
		t.Fatalf("only %d/80 sets concentrated in a cluster", concentrated)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := rng.New(5)
	in := Uniform(r, 64, 20, 0, 30)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInstances(got, in) {
		t.Fatal("text round trip differs")
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 20
		in := Uniform(rng.New(seed), n, m, 0, n)
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return equalInstances(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2",
		"setcover 5\n",
		"setcover 5 1\n3 0 1\n",    // bad id
		"setcover 5 2\n0 1\n0 2\n", // duplicate id
		"setcover 5 2\n0 1\n",      // missing set
		"setcover 5 1\n0 1 x\n",    // bad element
		"setcover 5 1\n0 9\n",      // element out of range
		"setcover 5 1\n0 -2\n",     // negative element
		// int32-overflow element: must be an error, never an arena panic.
		"setcover 10 1\n0 4000000000\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header comment\nsetcover 3 1\n\n# set\n0 0 1 2\n"
	in, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("comment case rejected: %v", err)
	}
	if in.N != 3 || in.M() != 1 {
		t.Fatalf("comment case parsed wrong: %+v", in)
	}
}
