package setsystem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
)

func TestValidate(t *testing.T) {
	good := &Instance{N: 5, Sets: [][]int{{0, 1}, {2, 4}, {}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []*Instance{
		{N: 5, Sets: [][]int{{0, 5}}}, // out of range
		{N: 5, Sets: [][]int{{-1}}},   // negative
		{N: 5, Sets: [][]int{{2, 1}}}, // unsorted
		{N: 5, Sets: [][]int{{1, 1}}}, // duplicate
		{N: -1, Sets: nil},            // bad n
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid instance accepted", i)
		}
	}
}

func TestCoverageAndIsCover(t *testing.T) {
	in := &Instance{N: 6, Sets: [][]int{{0, 1, 2}, {2, 3}, {4, 5}, {0, 5}}}
	if got := in.CoverageOf([]int{0, 1}); got != 4 {
		t.Fatalf("CoverageOf = %d, want 4", got)
	}
	if in.IsCover([]int{0, 1}) {
		t.Fatal("partial cover reported as full")
	}
	if !in.IsCover([]int{0, 1, 2}) {
		t.Fatal("full cover not detected")
	}
	if !in.Coverable() {
		t.Fatal("Coverable false for coverable instance")
	}
	bad := &Instance{N: 3, Sets: [][]int{{0}, {1}}}
	if bad.Coverable() {
		t.Fatal("Coverable true for uncoverable instance")
	}
}

func TestStats(t *testing.T) {
	in := &Instance{N: 4, Sets: [][]int{{0, 1}, {1, 2, 3}, {}}}
	st := ComputeStats(in)
	if st.N != 4 || st.M != 3 || st.MinSize != 0 || st.MaxSize != 3 || st.TotalSize != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ElementsCovered != 4 || st.MaxElementFrequency != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSortSets(t *testing.T) {
	in := &Instance{N: 10, Sets: [][]int{{5, 3, 3, 1}, {9, 9}}}
	in.SortSets()
	if err := in.Validate(); err != nil {
		t.Fatalf("after SortSets: %v", err)
	}
	if len(in.Sets[0]) != 3 || len(in.Sets[1]) != 1 {
		t.Fatalf("dedup failed: %v", in.Sets)
	}
}

func TestUniformGenerator(t *testing.T) {
	r := rng.New(1)
	in := Uniform(r, 100, 50, 5, 20)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 50 {
		t.Fatalf("M = %d", in.M())
	}
	for i, s := range in.Sets {
		if len(s) < 5 || len(s) > 20 {
			t.Fatalf("set %d size %d outside [5,20]", i, len(s))
		}
	}
}

func TestPlantedCover(t *testing.T) {
	r := rng.New(2)
	in, planted := PlantedCover(r, 200, 40, 4, 0.8)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(planted) != 4 {
		t.Fatalf("planted = %v", planted)
	}
	if !in.IsCover(planted) {
		t.Fatal("planted sets do not cover the universe")
	}
	// Planted blocks partition the universe: total size = n.
	total := 0
	for _, i := range planted {
		total += len(in.Sets[i])
	}
	if total != 200 {
		t.Fatalf("planted blocks total %d elements, want 200 (partition)", total)
	}
}

func TestZipfGenerator(t *testing.T) {
	r := rng.New(3)
	in := Zipf(r, 500, 100, 1.5, 50)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M() != 100 {
		t.Fatalf("M = %d", in.M())
	}
	for _, s := range in.Sets {
		if len(s) < 1 || len(s) > 50 {
			t.Fatalf("zipf set size %d", len(s))
		}
	}
}

func TestClusteredGenerator(t *testing.T) {
	r := rng.New(4)
	in := Clustered(r, 400, 80, 8, 30, 0.1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Most sets should be concentrated: ≥70% of elements in one cluster.
	concentrated := 0
	for _, s := range in.Sets {
		counts := make([]int, 8)
		for _, e := range s {
			counts[e/50]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if float64(max) >= 0.7*float64(len(s)) {
			concentrated++
		}
	}
	if concentrated < 60 {
		t.Fatalf("only %d/80 sets concentrated in a cluster", concentrated)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := rng.New(5)
	in := Uniform(r, 64, 20, 0, 30)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != in.N || got.M() != in.M() {
		t.Fatalf("round trip header mismatch: %d/%d vs %d/%d", got.N, got.M(), in.N, in.M())
	}
	for i := range in.Sets {
		if len(got.Sets[i]) != len(in.Sets[i]) {
			t.Fatalf("set %d size mismatch", i)
		}
		for j := range in.Sets[i] {
			if got.Sets[i][j] != in.Sets[i][j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 20
		in := Uniform(rng.New(seed), n, m, 0, n)
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N != in.N || got.M() != in.M() {
			return false
		}
		for i := range in.Sets {
			if len(got.Sets[i]) != len(in.Sets[i]) {
				return false
			}
			for j := range in.Sets[i] {
				if got.Sets[i][j] != in.Sets[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2",
		"setcover 5\n",
		"setcover 5 1\n3 0 1\n",    // bad id
		"setcover 5 2\n0 1\n0 2\n", // duplicate id
		"setcover 5 2\n0 1\n",      // missing set
		"setcover 5 1\n0 1 x\n",    // bad element
		"setcover 5 1\n0 9\n",      // element out of range
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header comment\nsetcover 3 1\n\n# set\n0 0 1 2\n"
	in, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("comment case rejected: %v", err)
	}
	if in.N != 3 || in.M() != 1 {
		t.Fatalf("comment case parsed wrong: %+v", in)
	}
}
