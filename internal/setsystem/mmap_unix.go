//go:build unix

package setsystem

import (
	"os"
	"syscall"
)

// mmapAvailable reports that this build has a real mmap syscall.
const mmapAvailable = true

// mmapFile maps size bytes of f read-only. MAP_PRIVATE is equivalent to
// MAP_SHARED for a PROT_READ mapping and keeps the mapping immune to
// concurrent writers growing the file.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
