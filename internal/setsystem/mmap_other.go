//go:build !unix

package setsystem

import (
	"errors"
	"os"
)

// mmapAvailable reports that this build has no mmap; Map falls back to the
// heap decoder (ReadSCB2) and never calls these stubs.
const mmapAvailable = false

func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, errors.New("setsystem: mmap is not available on this platform")
}

func munmapFile(_ []byte) error { return nil }
