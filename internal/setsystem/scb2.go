package setsystem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// SCB2 — the mmap-native on-disk format. Where SCB1 optimizes for bytes
// (varints, delta coding) and therefore needs a decode pass, SCB2 optimizes
// for load time: the offsets and element sections are stored exactly as the
// in-memory CSR arena lays them out (fixed-width little-endian, 64-byte
// aligned), so on a little-endian 64-bit host an Instance can be backed
// directly by an mmap'd view of the file — opening costs O(pages touched),
// not O(decode), and the resident footprint is page cache, not heap.
//
// Layout (all integers little-endian; byte offsets from the start of file):
//
//	[0,4)    magic "SCB2" (version folded into the magic)
//	[4,8)    reserved, must be zero
//	[8,16)   n        u64  universe size
//	[16,24)  m        u64  number of sets
//	[24,32)  total    u64  Σ|S_i| (element-arena length)
//	[32,40)  offsOff  u64  byte offset of the offsets section (= 64)
//	[40,48)  elemsOff u64  byte offset of the elements section
//	[48,56)  fileSize u64  total file size (truncation check)
//	[56,64)  reserved, must be zero
//
//	offsets section at offsOff:  (m+1) × u64 — the CSR offsets table,
//	                             offsets[0] = 0, offsets[m] = total
//	elements section at elemsOff: total × u32 — the element arena, each
//	                             set's elements sorted strictly increasing
//
// Both sections are 64-byte aligned (the gap is zero padding), so inside a
// page-aligned mapping every section starts on a cache-line boundary and
// the offsets bytes reinterpret directly as []int (int64) and the element
// bytes as []int32. The header is itself exactly one 64-byte line.
//
// Writing requires a normalized instance (sorted, duplicate-free,
// in-range), which is also what lets Map skip any per-set normalization:
// the file is validated once at map time with a single allocation-free
// scan. Decoding without mmap (ReadSCB2) exists for uploads, non-unix
// hosts and big-endian hosts, and produces a heap-backed twin.

// scb2Magic identifies mmap-native instance files (version 2).
const scb2Magic = "SCB2"

// scb2HeaderSize is the fixed header length; also the section alignment.
const scb2HeaderSize = 64

// scb2Align is the required alignment of both sections.
const scb2Align = 64

// SCB2Magic returns the leading bytes of the SCB2 format, for format
// sniffing by CLIs, stream openers and the registry.
func SCB2Magic() []byte { return []byte(scb2Magic) }

// scb2Header is the parsed fixed header.
type scb2Header struct {
	n, m, total int
	offsOff     int64
	elemsOff    int64
	fileSize    int64
}

// scb2Layout computes the section offsets and total file size for an
// instance with m sets and total elements.
func scb2Layout(m, total int) (offsOff, elemsOff, fileSize int64) {
	offsOff = scb2HeaderSize
	offsEnd := offsOff + 8*int64(m+1)
	elemsOff = (offsEnd + scb2Align - 1) &^ (scb2Align - 1)
	fileSize = elemsOff + 4*int64(total)
	return offsOff, elemsOff, fileSize
}

// WriteSCB2 encodes the instance in the SCB2 format. The instance must be
// normalized: sorted, duplicate-free sets with elements in [0, N).
func WriteSCB2(w io.Writer, in *Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("setsystem: scb2 encode needs a normalized instance: %w", err)
	}
	m, total := in.M(), in.TotalElems()
	offsOff, elemsOff, fileSize := scb2Layout(m, total)

	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [scb2HeaderSize]byte
	copy(hdr[0:4], scb2Magic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(in.N))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(total))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(offsOff))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(elemsOff))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(fileSize))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	var buf [8]byte
	// Offsets section: m+1 entries even when the instance is empty, so the
	// mapped view always has a well-formed offsets table.
	for i := 0; i <= m; i++ {
		off := 0
		if len(in.offsets) > 0 {
			off = in.offsets[i]
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	pad := elemsOff - (offsOff + 8*int64(m+1))
	for i := int64(0); i < pad; i++ {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	for _, e := range in.elems {
		binary.LittleEndian.PutUint32(buf[:], uint32(e))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseSCB2Header validates and decodes the fixed header. Every bound the
// rest of the file depends on is checked here, so corrupt or adversarial
// headers fail fast and cannot drive readers into huge allocations or
// out-of-range section arithmetic.
func parseSCB2Header(hdr []byte) (scb2Header, error) {
	var h scb2Header
	if len(hdr) < scb2HeaderSize {
		return h, fmt.Errorf("setsystem: short scb2 header (%d bytes)", len(hdr))
	}
	if string(hdr[0:4]) != scb2Magic {
		return h, fmt.Errorf("setsystem: bad scb2 magic (not an %s file)", scb2Magic)
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != 0 || binary.LittleEndian.Uint64(hdr[56:]) != 0 {
		return h, fmt.Errorf("setsystem: scb2 reserved header bytes are nonzero (newer format version?)")
	}
	un := binary.LittleEndian.Uint64(hdr[8:])
	um := binary.LittleEndian.Uint64(hdr[16:])
	utotal := binary.LittleEndian.Uint64(hdr[24:])
	uoffsOff := binary.LittleEndian.Uint64(hdr[32:])
	uelemsOff := binary.LittleEndian.Uint64(hdr[40:])
	ufileSize := binary.LittleEndian.Uint64(hdr[48:])
	if un > uint64(MaxElement) || um > uint64(MaxElement) {
		return h, fmt.Errorf("setsystem: scb2 header dimensions overflow (n=%d m=%d)", un, um)
	}
	if utotal > uint64(math.MaxInt)/4 || utotal > um*un {
		return h, fmt.Errorf("setsystem: scb2 header total %d impossible for n=%d m=%d", utotal, un, um)
	}
	if uoffsOff != scb2HeaderSize {
		return h, fmt.Errorf("setsystem: scb2 offsets section at %d, want %d", uoffsOff, scb2HeaderSize)
	}
	offsEnd := uoffsOff + 8*(um+1) // um ≤ 2^31, cannot overflow
	if uelemsOff%scb2Align != 0 || uelemsOff < offsEnd {
		return h, fmt.Errorf("setsystem: scb2 elements section at %d overlaps or is misaligned (offsets end at %d)",
			uelemsOff, offsEnd)
	}
	if uelemsOff-offsEnd >= scb2Align {
		return h, fmt.Errorf("setsystem: scb2 inter-section gap %d exceeds alignment padding", uelemsOff-offsEnd)
	}
	want := uelemsOff + 4*utotal
	if ufileSize != want || ufileSize > uint64(math.MaxInt64) {
		return h, fmt.Errorf("setsystem: scb2 file size %d, sections need %d", ufileSize, want)
	}
	h.n, h.m, h.total = int(un), int(um), int(utotal)
	h.offsOff, h.elemsOff, h.fileSize = int64(uoffsOff), int64(uelemsOff), int64(ufileSize)
	return h, nil
}

// checkOffsets validates the structural invariants Validate cannot (it
// would panic slicing a non-monotone table): offsets start at 0, never
// decrease, and end exactly at total.
func checkOffsets(offsets []int, total int) error {
	if len(offsets) == 0 || offsets[0] != 0 {
		return fmt.Errorf("setsystem: scb2 offsets table does not start at 0")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("setsystem: scb2 offsets table decreases at entry %d", i)
		}
	}
	if last := offsets[len(offsets)-1]; last != total {
		return fmt.Errorf("setsystem: scb2 offsets end at %d, element section holds %d", last, total)
	}
	return nil
}

// readChunkPrealloc caps upfront slice capacity while decoding untrusted
// streams: a header may claim billions of entries, but every claimed entry
// still needs real input bytes, so readers start at a bounded capacity and
// let append grow with the data actually read.
const readChunkPrealloc = 1 << 17

// ReadSCB2 decodes an SCB2 stream into a heap-backed instance and
// validates it. It is the no-mmap twin of Map: uploads, pipes and hosts
// where zero-copy mapping is unavailable decode through here.
func ReadSCB2(r io.Reader) (*Instance, error) {
	var hdr [scb2HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("setsystem: scb2 header: %w", err)
	}
	h, err := parseSCB2Header(hdr[:])
	if err != nil {
		return nil, err
	}
	offsets, err := readOffsetsSection(r, h.m+1)
	if err != nil {
		return nil, fmt.Errorf("setsystem: scb2 offsets section: %w", err)
	}
	if pad := h.elemsOff - (h.offsOff + 8*int64(h.m+1)); pad > 0 {
		if _, err := io.CopyN(io.Discard, r, pad); err != nil {
			return nil, fmt.Errorf("setsystem: scb2 section padding: %w", err)
		}
	}
	elems, err := readElemsSection(r, h.total)
	if err != nil {
		return nil, fmt.Errorf("setsystem: scb2 element section: %w", err)
	}
	if err := checkOffsets(offsets, h.total); err != nil {
		return nil, err
	}
	in := &Instance{N: h.n, offsets: offsets, elems: elems}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// readOffsetsSection decodes count little-endian u64 offsets, in bounded
// chunks so a lying header cannot force a giant upfront allocation.
func readOffsetsSection(r io.Reader, count int) ([]int, error) {
	out := make([]int, 0, min(count, readChunkPrealloc))
	var buf [8 << 10]byte
	for len(out) < count {
		k := min(count-len(out), len(buf)/8)
		if _, err := io.ReadFull(r, buf[:k*8]); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			v := binary.LittleEndian.Uint64(buf[i*8:])
			if v > uint64(math.MaxInt)/4 {
				return nil, fmt.Errorf("offset %d out of range", v)
			}
			out = append(out, int(v))
		}
	}
	return out, nil
}

// readElemsSection decodes count little-endian u32 elements, chunked like
// readOffsetsSection.
func readElemsSection(r io.Reader, count int) ([]int32, error) {
	out := make([]int32, 0, min(count, readChunkPrealloc))
	var buf [8 << 10]byte
	for len(out) < count {
		k := min(count-len(out), len(buf)/4)
		if _, err := io.ReadFull(r, buf[:k*4]); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			v := binary.LittleEndian.Uint32(buf[i*4:])
			if v > uint32(MaxElement) {
				return nil, fmt.Errorf("element %d overflows int32", v)
			}
			out = append(out, int32(v))
		}
	}
	return out, nil
}
