package setsystem

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamcover/internal/rng"
)

// instancesEqual compares two instances by content (n + sequence of sets).
func instancesEqual(a, b *Instance) bool {
	if a.N != b.N || a.M() != b.M() {
		return false
	}
	for i := 0; i < a.M(); i++ {
		if !reflect.DeepEqual(a.Set(i), b.Set(i)) {
			return false
		}
	}
	return true
}

func writeSCB2File(t *testing.T, in *Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.scb2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSCB2(f, in); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSCB2RoundTrip(t *testing.T) {
	cases := map[string]*Instance{
		"zipf":    Zipf(rng.New(3), 512, 64, 1.4, 128),
		"uniform": Uniform(rng.New(4), 100, 20, 1, 30),
		"empty":   {N: 7},
		"single":  FromSets(5, [][]int{{0, 2, 4}}),
		"emptysets": func() *Instance {
			in := FromSets(4, [][]int{{}, {1, 3}, {}})
			return in
		}(),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSCB2(&buf, in); err != nil {
				t.Fatal(err)
			}
			// Alignment spec: both sections 64-byte aligned, header exact.
			if got := buf.Bytes(); string(got[:4]) != scb2Magic {
				t.Fatalf("magic = %q", got[:4])
			}
			elemsOff := binary.LittleEndian.Uint64(buf.Bytes()[40:])
			if elemsOff%scb2Align != 0 {
				t.Fatalf("elems section at %d not %d-byte aligned", elemsOff, scb2Align)
			}
			if int64(buf.Len()) != int64(binary.LittleEndian.Uint64(buf.Bytes()[48:])) {
				t.Fatalf("file size %d != header fileSize", buf.Len())
			}

			dec, err := ReadSCB2(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !instancesEqual(in, dec) {
				t.Fatal("heap decode does not round-trip")
			}
			if dec.Backing() != BackingHeap || dec.MappedBytes() != 0 {
				t.Fatal("ReadSCB2 must produce a heap instance")
			}

			// ReadAuto dispatches on the SCB2 magic too.
			auto, err := ReadAuto(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !instancesEqual(in, auto) {
				t.Fatal("ReadAuto(scb2) does not round-trip")
			}
		})
	}
}

func TestMapRoundTrip(t *testing.T) {
	in := Zipf(rng.New(9), 1024, 128, 1.3, 200)
	path := writeSCB2File(t, in)
	mapped, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Unmap()
	if !instancesEqual(in, mapped) {
		t.Fatal("mapped instance differs from source")
	}
	if MapSupported() {
		if mapped.Backing() != BackingMapped {
			t.Fatalf("Backing() = %v, want mapped", mapped.Backing())
		}
		fi, _ := os.Stat(path)
		if mapped.MappedBytes() != fi.Size() {
			t.Fatalf("MappedBytes() = %d, file is %d", mapped.MappedBytes(), fi.Size())
		}
	}
	// Hash identity holds across backings: the registry dedups a mapped
	// load against a heap upload of the same content.
	if Hash(mapped) != Hash(in) {
		t.Fatal("mapped instance hashes differently from its heap twin")
	}
	// Clone detaches to the heap.
	cl := mapped.Clone()
	if cl.Backing() != BackingHeap {
		t.Fatal("Clone of a mapped instance must be heap-backed")
	}
	if err := mapped.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Unmap(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !instancesEqual(in, cl) {
		t.Fatal("clone invalidated by Unmap")
	}
}

func TestMapRejectsCorruptFiles(t *testing.T) {
	// Fixed sets so each mutation below is guaranteed to break an
	// invariant (the last set has two ascending elements, etc.).
	in := FromSets(64, [][]int{{0, 5, 9}, {1, 2, 3, 63}, {7, 8}})
	var buf bytes.Buffer
	if err := WriteSCB2(&buf, in); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			data := mutate(append([]byte(nil), good...))
			path := filepath.Join(t.TempDir(), "bad.scb2")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if inst, err := Map(path); err == nil {
				inst.Unmap()
				t.Fatal("Map accepted a corrupt file")
			}
			if inst, err := ReadSCB2(bytes.NewReader(data)); err == nil {
				_ = inst
				t.Fatal("ReadSCB2 accepted a corrupt file")
			}
		})
	}

	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("reserved-set", func(b []byte) []byte { b[60] = 1; return b })
	corrupt("offsets-decrease", func(b []byte) []byte {
		// Swap the last two offsets entries so the table decreases.
		off := int(binary.LittleEndian.Uint64(b[32:]))
		m := int(binary.LittleEndian.Uint64(b[16:]))
		binary.LittleEndian.PutUint64(b[off+8*(m-1):], 1<<30)
		return b
	})
	corrupt("element-out-of-range", func(b []byte) []byte {
		elemsOff := int(binary.LittleEndian.Uint64(b[40:]))
		binary.LittleEndian.PutUint32(b[elemsOff:], 1<<20) // >> n
		return b
	})
	corrupt("unsorted-set", func(b []byte) []byte {
		// Make some set's elements non-increasing by zeroing the last one.
		binary.LittleEndian.PutUint32(b[len(b)-4:], 0)
		return b
	})
	corrupt("file-size-lie", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[48:], uint64(len(b)+64))
		return b
	})
}

// TestMapAllocsIndependentOfSize is the acceptance guard for the zero-copy
// claim: opening an SCB2 mapping allocates O(1) — the instance header and
// mapping bookkeeping — regardless of how many sets or elements the file
// holds. A decode pass would show up here as per-set or per-element
// allocations.
func TestMapAllocsIndependentOfSize(t *testing.T) {
	if !MapSupported() {
		t.Skip("no zero-copy mapping on this host")
	}
	small := writeSCB2File(t, Uniform(rng.New(1), 256, 16, 1, 32))
	large := writeSCB2File(t, Uniform(rng.New(2), 8192, 2048, 16, 128))

	allocs := func(path string) float64 {
		return testing.AllocsPerRun(10, func() {
			in, err := Map(path)
			if err != nil {
				t.Fatal(err)
			}
			in.Unmap()
		})
	}
	a, b := allocs(small), allocs(large)
	if b > a {
		t.Fatalf("Map allocations grow with instance size: small=%v large=%v", a, b)
	}
	if a > 32 {
		t.Fatalf("Map of a small instance costs %v allocations; want O(1)", a)
	}
}

// Load-time benchmarks behind `make bench-json` (BENCH_datasets.json):
// decoding SCB1 pays per set and per element; mapping SCB2 pays a header
// read, the mmap, and one validation scan — no decode, O(1) allocations.

func benchInstance() *Instance {
	return Zipf(rng.New(11), 1<<14, 1<<11, 1.3, 1<<10)
}

func BenchmarkLoadSCB1Decode(b *testing.B) {
	in := benchInstance()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSCB2HeapDecode(b *testing.B) {
	in := benchInstance()
	var buf bytes.Buffer
	if err := WriteSCB2(&buf, in); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSCB2(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSCB2Map(b *testing.B) {
	if !MapSupported() {
		b.Skip("no zero-copy mapping on this host")
	}
	in := benchInstance()
	path := filepath.Join(b.TempDir(), "bench.scb2")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteSCB2(f, in); err != nil {
		b.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := Map(path)
		if err != nil {
			b.Fatal(err)
		}
		inst.Unmap()
	}
}
