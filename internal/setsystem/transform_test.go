package setsystem

import (
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
)

func TestProjectBasic(t *testing.T) {
	in := FromSets(10, [][]int{{0, 2, 4}, {1, 3}, {}})
	sub := Project(in, []int{2, 3, 4})
	if sub.N != 3 || sub.M() != 3 {
		t.Fatalf("projected shape %d/%d", sub.N, sub.M())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Set 0 keeps {2,4} → {0,2}; set 1 keeps {3} → {1}; set 2 empty.
	if s := sub.Set(0); len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("set 0 projected to %v", s)
	}
	if s := sub.Set(1); len(s) != 1 || s[0] != 1 {
		t.Fatalf("set 1 projected to %v", s)
	}
	if sub.SetLen(2) != 0 {
		t.Fatalf("set 2 projected to %v", sub.Set(2))
	}
}

func TestProjectPanics(t *testing.T) {
	in := FromSets(5, [][]int{{0}})
	for _, elems := range [][]int{{7}, {-1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Project(%v) did not panic", elems)
				}
			}()
			Project(in, elems)
		}()
	}
}

// Property: coverage of any index subset in the projection equals the
// original coverage restricted to the sub-universe.
func TestQuickProjectCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(40)
		m := 1 + r.Intn(10)
		in := Uniform(r, n, m, 0, n/2+1)
		k := 1 + r.Intn(n)
		elems := r.KSubset(n, k)
		sub := Project(in, elems)
		inSub := map[int]bool{}
		for _, e := range elems {
			inSub[e] = true
		}
		pick := r.KSubset(m, 1+r.Intn(m))
		// Original coverage restricted to elems.
		covered := map[int]bool{}
		for _, si := range pick {
			for _, e := range in.Set(si) {
				if inSub[int(e)] {
					covered[int(e)] = true
				}
			}
		}
		return sub.CoverageOf(pick) == len(covered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := FromSets(4, [][]int{{0, 1}})
	b := FromSets(4, [][]int{{2}, {3}})
	merged := Merge(4, a, b)
	if merged.M() != 3 || !merged.IsCover([]int{0, 1, 2}) {
		t.Fatalf("merged = %+v", merged)
	}
	// Deep copy: mutating the merged arena must not touch the inputs.
	merged.Set(0)[0] = 3
	if a.Set(0)[0] != 0 {
		t.Fatal("Merge aliased input storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge universe mismatch did not panic")
		}
	}()
	Merge(5, a)
}
