package setsystem

import (
	"sort"

	"streamcover/internal/bitset"
)

// ReduceDominated removes duplicate and subsumed sets: a set S_i is dropped
// when some kept S_j ⊇ S_i (ties keep the lower index). The reduced
// instance has the same optimal cover value; kept maps reduced indices back
// to original ones. This is the classical preprocessing step for offline
// solvers (it shrinks branch-and-bound inputs, often substantially on
// skewed workloads).
func ReduceDominated(in *Instance) (reduced *Instance, kept []int) {
	m := in.M()
	if m == 0 {
		return &Instance{N: in.N}, nil
	}
	// Sort indices by size descending: a set can only be subsumed by an
	// earlier (larger-or-equal) one.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// Counting sort on size, then stable within size by index.
	maxSize := 0
	for i := 0; i < m; i++ {
		if l := in.SetLen(i); l > maxSize {
			maxSize = l
		}
	}
	buckets := make([][]int, maxSize+1)
	for i := 0; i < m; i++ {
		buckets[in.SetLen(i)] = append(buckets[in.SetLen(i)], i)
	}
	order = order[:0]
	for size := maxSize; size >= 0; size-- {
		order = append(order, buckets[size]...)
	}

	var keptBits []*bitset.Bitset
	dominated := func(b *bitset.Bitset) bool {
		for _, kb := range keptBits {
			if b.SubsetOf(kb) {
				return true
			}
		}
		return false
	}
	keptOrig := make([]int, 0, m)
	for _, i := range order {
		b := in.Bitset(i)
		if dominated(b) {
			continue
		}
		keptBits = append(keptBits, b)
		keptOrig = append(keptOrig, i)
	}
	// Restore original relative order for determinism and readability.
	sort.Ints(keptOrig)
	b := NewBuilder(in.N)
	b.Grow(len(keptOrig), in.TotalElems())
	for _, oi := range keptOrig {
		b.AddSet32(in.Set(oi))
	}
	return b.Build(), keptOrig
}
