package setsystem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec uses a simple line format compatible with common set-cover
// benchmark dumps:
//
//	setcover <n> <m>
//	<id> e1 e2 e3 ...
//	...
//
// Lines beginning with '#' are comments. Set IDs must be 0..m-1 and each
// must appear exactly once; elements are whitespace-separated integers.
//
// A compact binary codec lives alongside in binary.go; ReadAuto sniffs the
// leading magic bytes and dispatches to the right decoder.

// Write encodes the instance in the text format.
func Write(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "setcover %d %d\n", in.N, in.M()); err != nil {
		return err
	}
	for i := 0; i < in.M(); i++ {
		if _, err := fmt.Fprintf(bw, "%d", i); err != nil {
			return err
		}
		for _, e := range in.Set(i) {
			if _, err := fmt.Fprintf(bw, " %d", e); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes an instance from the text format and validates it.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var sets [][]int
	headerSeen := false
	n := 0
	seen := map[int]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if !headerSeen {
			if len(fields) != 3 || fields[0] != "setcover" {
				return nil, fmt.Errorf("setsystem: line %d: expected header 'setcover <n> <m>'", line)
			}
			hn, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || hn < 0 || m < 0 {
				return nil, fmt.Errorf("setsystem: line %d: bad header values", line)
			}
			n = hn
			sets = make([][]int, m)
			headerSeen = true
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= len(sets) {
			return nil, fmt.Errorf("setsystem: line %d: bad set id %q", line, fields[0])
		}
		if seen[id] {
			return nil, fmt.Errorf("setsystem: line %d: duplicate set id %d", line, id)
		}
		seen[id] = true
		elems := make([]int, 0, len(fields)-1)
		for _, f := range fields[1:] {
			e, err := strconv.Atoi(f)
			if err != nil || e < 0 || e > MaxElement {
				// The arena panics on int32 overflow; reject here so a
				// malformed file is an error, never a panic.
				return nil, fmt.Errorf("setsystem: line %d: bad element %q", line, f)
			}
			elems = append(elems, e)
		}
		sets[id] = elems
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !headerSeen {
		return nil, fmt.Errorf("setsystem: empty input")
	}
	if len(seen) != len(sets) {
		return nil, fmt.Errorf("setsystem: %d of %d sets missing", len(sets)-len(seen), len(sets))
	}
	in := FromSets(n, sets)
	in.SortSets()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// ReadAuto decodes an instance from any codec — SCB1 varint binary, SCB2
// mmap-native binary, or text — sniffing the leading magic bytes. The SCB2
// path decodes into the heap (uploads and pipes have no file to map; use
// Map for the zero-copy open).
func ReadAuto(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil {
		switch string(head) {
		case binaryMagic:
			return ReadBinary(br)
		case scb2Magic:
			return ReadSCB2(br)
		}
	}
	return Read(br)
}
