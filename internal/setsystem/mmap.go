package setsystem

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"unsafe"
)

// Backing identifies the storage behind an Instance's CSR arrays.
type Backing int

const (
	// BackingHeap is the ordinary case: offsets and elements live on the
	// Go heap and are owned by the instance.
	BackingHeap Backing = iota
	// BackingMapped means the arrays are views into an mmap'd SCB2 file:
	// read-only, resident in page cache rather than heap, and valid only
	// until Unmap. Mutating methods (SortSets, Builder reuse) must not be
	// called on a mapped instance.
	BackingMapped
)

func (b Backing) String() string {
	switch b {
	case BackingHeap:
		return "heap"
	case BackingMapped:
		return "mapped"
	default:
		return fmt.Sprintf("backing(%d)", int(b))
	}
}

// Backing reports what storage backs the instance. Callers that cache or
// account instances (the registry) use it to charge mapped bytes and heap
// bytes to the right ledger and to unmap on eviction.
func (in *Instance) Backing() Backing { return in.backing }

// MappedBytes returns the size of the mapping backing the instance, or 0
// for heap-backed instances.
func (in *Instance) MappedBytes() int64 { return in.mappedBytes }

// Advice is an access-pattern hint for the pages backing a mapped
// instance, forwarded to the kernel via madvise where available.
type Advice int

const (
	// AdviseSequential hints that the mapping will be read front to back
	// (streaming passes walk the CSR arena in offset order), enabling
	// aggressive kernel readahead. Map applies it to every new mapping.
	AdviseSequential Advice = iota
	// AdviseWillNeed hints that the whole mapping is about to be used,
	// prompting the kernel to start paging it in now. The registry issues
	// it when an instance is pinned for a solve, so the first pass overlaps
	// page-in with compute instead of faulting page by page.
	AdviseWillNeed
)

// Advise passes an access-pattern hint for the instance's mapped pages to
// the kernel. It is a no-op (and nil) on heap-backed or already-unmapped
// instances and on platforms without madvise: hints are best-effort by
// definition, so callers typically ignore the error.
func (in *Instance) Advise(a Advice) error {
	if in.mapData == nil {
		return nil
	}
	return madviseData(in.mapData, a)
}

// AdviseSupported reports whether Advise reaches a real madvise on this
// build.
func AdviseSupported() bool { return madviseAvailable }

// Unmap releases the mapping behind a mapped instance and invalidates it:
// the CSR views are nilled so later use fails fast instead of touching
// unmapped memory. It is idempotent and a no-op on heap instances.
func (in *Instance) Unmap() error {
	if in.unmap == nil {
		return nil
	}
	u := in.unmap
	in.unmap = nil
	in.offsets, in.elems = nil, nil
	in.mappedBytes = 0
	in.mapData = nil
	return u()
}

// hostLittleEndian reports whether the host stores integers little-endian,
// the byte order SCB2 sections are written in.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MapSupported reports whether Map can back an Instance by the file pages
// directly on this host: mmap must exist and the host must read the
// little-endian 64-bit sections without conversion. When false, Map still
// works but decodes into the heap (ReadSCB2).
func MapSupported() bool {
	return mmapAvailable && hostLittleEndian && bits.UintSize == 64
}

// Map opens an SCB2 file as an Instance backed directly by the mapped file
// pages: no decode pass, no per-set allocation — open cost is the header
// read plus one allocation-free validation scan (structural offsets check
// and element range/order check), and the arena stays in page cache. The
// caller owns the mapping and must Unmap when done (the registry does so
// on eviction). On hosts without zero-copy support the file is decoded
// into a heap-backed instance instead; check Backing to know which you
// got.
func Map(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !MapSupported() {
		return readSCB2File(f)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < scb2HeaderSize {
		return nil, fmt.Errorf("setsystem: %s: file too short for an scb2 header (%d bytes)", path, size)
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("setsystem: %s: file too large to map (%d bytes)", path, size)
	}
	var hdr [scb2HeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("setsystem: %s: scb2 header: %w", path, err)
	}
	h, err := parseSCB2Header(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("setsystem: %s: %w", path, err)
	}
	if h.fileSize != size {
		return nil, fmt.Errorf("setsystem: %s: header says %d bytes, file has %d (truncated or padded)",
			path, h.fileSize, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("setsystem: %s: mmap: %w", path, err)
	}
	// Reinterpret the sections in place. The mapping is page-aligned and the
	// sections 64-byte aligned within it, so both casts are aligned; the
	// header guarantees both ranges lie inside the file.
	offsets := unsafe.Slice((*int)(unsafe.Pointer(&data[h.offsOff])), h.m+1)
	var elems []int32
	if h.total > 0 {
		elems = unsafe.Slice((*int32)(unsafe.Pointer(&data[h.elemsOff])), h.total)
	}
	in := &Instance{
		N: h.n, offsets: offsets, elems: elems,
		backing:     BackingMapped,
		mappedBytes: size,
		mapData:     data,
		unmap:       func() error { return munmapFile(data) },
	}
	// Streaming passes (and the validation scan below) walk the arena front
	// to back; tell the kernel so readahead works with us. Best-effort.
	_ = in.Advise(AdviseSequential)
	// One sequential, allocation-free scan stands in for the decode pass:
	// offsets must be monotone before Set(i) may slice, then Validate checks
	// element range and per-set ordering on the mapped bytes directly.
	if err := checkOffsets(offsets, h.total); err != nil {
		in.Unmap()
		return nil, fmt.Errorf("setsystem: %s: %w", path, err)
	}
	if err := in.Validate(); err != nil {
		in.Unmap()
		return nil, fmt.Errorf("setsystem: %s: %w", path, err)
	}
	return in, nil
}

// readSCB2File is Map's heap fallback: decode the whole file through
// ReadSCB2 (which issues its own bounded chunk reads, so no extra
// buffering is needed).
func readSCB2File(f *os.File) (*Instance, error) {
	in, err := ReadSCB2(f)
	if err != nil {
		return nil, fmt.Errorf("setsystem: %s: %w", f.Name(), err)
	}
	return in, nil
}
