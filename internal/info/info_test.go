package info

import (
	"fmt"
	"math"
	"testing"

	"streamcover/internal/rng"
)

func TestEntropy(t *testing.T) {
	if h := Entropy(map[string]int{}); h != 0 {
		t.Fatalf("empty entropy = %v", h)
	}
	if h := Entropy(map[string]int{"a": 10}); h != 0 {
		t.Fatalf("deterministic entropy = %v", h)
	}
	if h := Entropy(map[string]int{"a": 5, "b": 5}); math.Abs(h-1) > 1e-12 {
		t.Fatalf("fair coin entropy = %v, want 1", h)
	}
	h := Entropy(map[string]int{"a": 1, "b": 1, "c": 1, "d": 1})
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy = %v, want 2", h)
	}
}

func TestMutualInfoIndependent(t *testing.T) {
	r := rng.New(1)
	var samples []Sample
	for i := 0; i < 50000; i++ {
		samples = append(samples, Sample{
			X: fmt.Sprint(r.Intn(4)),
			Z: fmt.Sprint(r.Intn(4)),
		})
	}
	mi := MutualInfo(samples, func(s Sample) string { return s.X }, func(s Sample) string { return s.Z })
	if mi > 0.01 {
		t.Fatalf("independent MI = %v, want ≈0", mi)
	}
}

func TestMutualInfoDeterministicCopy(t *testing.T) {
	r := rng.New(2)
	var samples []Sample
	for i := 0; i < 50000; i++ {
		v := fmt.Sprint(r.Intn(8))
		samples = append(samples, Sample{X: v, Z: v})
	}
	mi := MutualInfo(samples, func(s Sample) string { return s.X }, func(s Sample) string { return s.Z })
	if math.Abs(mi-3) > 0.02 {
		t.Fatalf("copy MI = %v, want ≈3 bits", mi)
	}
}

func TestCondMutualInfoXOR(t *testing.T) {
	// Z = X ⊕ Y with X,Y fair independent bits: I(X;Z) = 0 but I(X;Z|Y) = 1.
	r := rng.New(3)
	var samples []Sample
	for i := 0; i < 60000; i++ {
		x, y := r.Intn(2), r.Intn(2)
		samples = append(samples, Sample{
			X: fmt.Sprint(x), Y: fmt.Sprint(y), Z: fmt.Sprint(x ^ y),
		})
	}
	xf := func(s Sample) string { return s.X }
	yf := func(s Sample) string { return s.Y }
	zf := func(s Sample) string { return s.Z }
	if mi := MutualInfo(samples, xf, zf); mi > 0.01 {
		t.Fatalf("I(X;X⊕Y) = %v, want ≈0", mi)
	}
	if cmi := CondMutualInfo(samples, xf, yf, zf); math.Abs(cmi-1) > 0.02 {
		t.Fatalf("I(X;X⊕Y|Y) = %v, want ≈1", cmi)
	}
}

func TestInternalCostFullReveal(t *testing.T) {
	// Protocol that sends X: internal cost = I(Π:X|Y)+I(Π:Y|X) = H(X)+0.
	r := rng.New(4)
	var samples []Sample
	for i := 0; i < 60000; i++ {
		x := fmt.Sprint(r.Intn(8))
		samples = append(samples, Sample{X: x, Y: fmt.Sprint(r.Intn(4)), Z: x})
	}
	ic := InternalCost(samples)
	if math.Abs(ic-3) > 0.05 {
		t.Fatalf("full-reveal internal cost = %v, want ≈3 bits", ic)
	}
}

func TestInternalCostSilentProtocol(t *testing.T) {
	r := rng.New(5)
	var samples []Sample
	for i := 0; i < 20000; i++ {
		samples = append(samples, Sample{
			X: fmt.Sprint(r.Intn(4)), Y: fmt.Sprint(r.Intn(4)), Z: "const",
		})
	}
	if ic := InternalCost(samples); ic > 0.01 {
		t.Fatalf("silent protocol internal cost = %v, want ≈0", ic)
	}
}

func TestChernoffUpper(t *testing.T) {
	if b := ChernoffUpper(0, 0.5); b != 1 {
		t.Fatalf("degenerate bound %v", b)
	}
	b := ChernoffUpper(1000, 0.1)
	want := 2 * math.Exp(-0.01*1000/2)
	if math.Abs(b-want) > 1e-12 {
		t.Fatalf("bound %v want %v", b, want)
	}
	if b := ChernoffUpper(1, 0.01); b != 1 {
		t.Fatalf("bound should clamp to 1, got %v", b)
	}
	// Monotone: larger mean ⇒ smaller bound.
	if ChernoffUpper(10000, 0.1) >= ChernoffUpper(100, 0.1) {
		t.Fatal("bound not monotone in mean")
	}
}

func TestLemma22Bound(t *testing.T) {
	th, pr := Lemma22Bound(1000, 1000, 250, 2)
	wantTh := 500 * math.Pow(0.125, 2)
	if math.Abs(th-wantTh) > 1e-9 {
		t.Fatalf("threshold %v want %v", th, wantTh)
	}
	if pr <= 0 || pr > 1 {
		t.Fatalf("prob %v out of range", pr)
	}
	// More sets ⇒ lower threshold and weaker (larger) failure probability.
	th2, pr2 := Lemma22Bound(1000, 1000, 250, 4)
	if th2 >= th || pr2 <= pr {
		t.Fatalf("k-monotonicity violated: th %v→%v, pr %v→%v", th, th2, pr, pr2)
	}
}

func TestEmptySamples(t *testing.T) {
	if mi := MutualInfo(nil, nil, nil); mi != 0 {
		t.Fatal("nil samples MI != 0")
	}
	if cmi := CondMutualInfo(nil, nil, nil, nil); cmi != 0 {
		t.Fatal("nil samples CMI != 0")
	}
}
