// Package info provides the information-theoretic toolkit used by the
// lower-bound experiments: plug-in (empirical) estimators of Shannon
// entropy, mutual information and conditional mutual information over
// discrete samples, plus the Chernoff-bound helpers of Section 2.
//
// The paper's lower bounds are statements about the internal information
// cost ICost_D(π) = I(Π:X|Y) + I(Π:Y|X) of two-party protocols (Definition
// 2). For concrete protocols over small universes these quantities can be
// estimated from samples of (X, Y, Π) triples; experiment E9 uses them to
// exhibit the Ω(t) growth of Proposition 2.5 and the Yes/No-instance cost
// relation behind Lemma 3.5.
package info

import (
	"math"
)

// Dist is an empirical distribution over string-keyed outcomes.
type Dist map[string]float64

// Entropy returns the Shannon entropy (bits) of an empirical count map.
func Entropy(counts map[string]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Sample is one observation of the triple (X, Y, Z): for protocol analysis
// X and Y are the players' inputs and Z the transcript (all serialized to
// strings by the caller).
type Sample struct {
	X, Y, Z string
}

// MutualInfo returns the plug-in estimate of I(X;Z) in bits from samples.
func MutualInfo(samples []Sample, x func(Sample) string, z func(Sample) string) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := float64(len(samples))
	px := map[string]float64{}
	pz := map[string]float64{}
	pxz := map[[2]string]float64{}
	for _, s := range samples {
		xv, zv := x(s), z(s)
		px[xv]++
		pz[zv]++
		pxz[[2]string{xv, zv}]++
	}
	mi := 0.0
	for k, c := range pxz {
		pxy := c / n
		mi += pxy * math.Log2(pxy/((px[k[0]]/n)*(pz[k[1]]/n)))
	}
	if mi < 0 {
		mi = 0 // numerical noise
	}
	return mi
}

// CondMutualInfo returns the plug-in estimate of I(X;Z | Y) in bits:
// Σ_y p(y)·I(X;Z | Y=y).
func CondMutualInfo(samples []Sample, x, y, z func(Sample) string) float64 {
	if len(samples) == 0 {
		return 0
	}
	byY := map[string][]Sample{}
	for _, s := range samples {
		k := y(s)
		byY[k] = append(byY[k], s)
	}
	total := float64(len(samples))
	cmi := 0.0
	for _, group := range byY {
		w := float64(len(group)) / total
		cmi += w * MutualInfo(group, x, z)
	}
	return cmi
}

// InternalCost returns the plug-in estimate of the internal information
// cost I(Π:X|Y) + I(Π:Y|X) in bits from samples of (X, Y, Π).
func InternalCost(samples []Sample) float64 {
	xf := func(s Sample) string { return s.X }
	yf := func(s Sample) string { return s.Y }
	zf := func(s Sample) string { return s.Z }
	return CondMutualInfo(samples, xf, yf, zf) + CondMutualInfo(samples, yf, xf, zf)
}

// ChernoffUpper bounds P(|X − E[X]| > ε·E[X]) for a sum X of independent
// [0,1] variables (Proposition 2.1): 2·exp(−ε²·E[X]/2).
func ChernoffUpper(mean, eps float64) float64 {
	if mean <= 0 {
		return 1
	}
	if eps < 0 {
		eps = -eps
	}
	if eps > 1 {
		eps = 1
	}
	b := 2 * math.Exp(-eps*eps*mean/2)
	if b > 1 {
		return 1
	}
	return b
}

// Lemma22Bound returns the failure probability bound of Lemma 2.2: for k
// independent uniformly random (n−s)-subsets of [n] and a set U,
// P(|U \ cover| < |U|/2·(s/2n)^k) < 2·exp(−|U|/8·(s/2n)^k).
func Lemma22Bound(uSize, n, s, k int) (threshold float64, prob float64) {
	ratio := math.Pow(float64(s)/(2*float64(n)), float64(k))
	threshold = float64(uSize) / 2 * ratio
	prob = 2 * math.Exp(-float64(uSize)/8*ratio)
	if prob > 1 {
		prob = 1
	}
	return threshold, prob
}
