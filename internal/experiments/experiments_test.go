package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(ids), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E999", Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Notes:   []string{"note"},
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 0.125)
	md := tb.Markdown()
	for _, want := range []string{"### EX", "demo", "Paper claim: c", "| a", "bb", "2.5", "> note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2.5\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1:      "1",
		0.5:    "0.5",
		0.1234: "0.1234",
		2.5000: "2.5",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// runQuick runs an experiment in quick mode and does generic validation.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	tb, err := Run(id, Config{Seed: 1234, Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tb.ID != id || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
		t.Fatalf("%s: malformed table %+v", id, tb)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tb.Columns))
		}
	}
	return tb
}

func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tb.Columns)
	return ""
}

func cellF(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not a float", col, row, cell(t, tb, row, col))
	}
	return v
}

func TestE1Quick(t *testing.T) {
	tb := runQuick(t, "E1")
	if len(tb.Rows) < 4 {
		t.Fatalf("E1 rows = %d", len(tb.Rows))
	}
	// Projection words must decrease from α=1 to α=3.
	p1 := cellF(t, tb, 0, "proj_words")
	p3 := cellF(t, tb, 2, "proj_words")
	if p3 >= p1 {
		t.Fatalf("projection words not shrinking with α: %v vs %v", p1, p3)
	}
	// Cover stays within (α+ε)(1+ε)·opt.
	for i := range tb.Rows {
		alpha := cellF(t, tb, i, "alpha")
		cover := cellF(t, tb, i, "cover")
		opt := cellF(t, tb, i, "opt")
		if cover > (alpha+0.5)*1.5*opt+1 {
			t.Fatalf("α=%v cover %v breaks the guarantee (opt %v)", alpha, cover, opt)
		}
	}
}

func TestE2Quick(t *testing.T) {
	tb := runQuick(t, "E2")
	// Success at the largest budget must beat success at the smallest, for
	// the single-pass rows.
	var lo, hi float64
	loSet, hiSet := false, false
	for i := range tb.Rows {
		if cell(t, tb, i, "passes") != "1" {
			continue
		}
		frac := cellF(t, tb, i, "budget/(m·t)")
		s := cellF(t, tb, i, "success")
		if !loSet || frac < lo {
			lo, loSet = frac, true
			_ = lo
		}
		_ = s
		_ = hiSet
	}
	first := cellF(t, tb, 0, "success")
	last := -1.0
	for i := range tb.Rows {
		if cell(t, tb, i, "passes") == "1" {
			last = cellF(t, tb, i, "success")
		}
	}
	if last < first-0.05 {
		t.Fatalf("E2: success at max budget (%v) below min budget (%v)", last, first)
	}
	if last < 0.7 {
		t.Fatalf("E2: success at full budget too low: %v", last)
	}
	_ = hi
}

func TestE3Quick(t *testing.T) {
	tb := runQuick(t, "E3")
	for i := range tb.Rows {
		if v := cellF(t, tb, i, "P[opt≤2 | θ=1]"); v < 0.99 {
			t.Fatalf("E3 row %d: θ=1 opt=2 rate %v", i, v)
		}
		if v := cellF(t, tb, i, "P[opt>2α | θ=0]"); v < 0.8 {
			t.Fatalf("E3 row %d: gap rate %v", i, v)
		}
	}
}

func TestE4Quick(t *testing.T) {
	tb := runQuick(t, "E4")
	// At the largest budget both orders succeed.
	last := len(tb.Rows) - 1
	if cellF(t, tb, last, "success(adversarial)") < 0.7 ||
		cellF(t, tb, last, "success(random)") < 0.7 {
		t.Fatalf("E4: full-budget success too low: %v", tb.Rows[last])
	}
}

func TestE5Quick(t *testing.T) {
	tb := runQuick(t, "E5")
	// Per ε block, success at multiplier 4 ≥ success at 1/16 − slack.
	for i := 0; i+3 < len(tb.Rows); i += 4 {
		lo := cellF(t, tb, i, "success")
		hi := cellF(t, tb, i+3, "success")
		if hi < lo-0.1 {
			t.Fatalf("E5 block at row %d: success fell with budget (%v → %v)", i, lo, hi)
		}
	}
}

func TestE6Quick(t *testing.T) {
	tb := runQuick(t, "E6")
	for i := range tb.Rows {
		r1 := cellF(t, tb, i, "mean opt/τ (θ=1)")
		r0 := cellF(t, tb, i, "mean opt/τ (θ=0)")
		if r1 <= r0 {
			t.Fatalf("E6 row %d: no separation (%v vs %v)", i, r1, r0)
		}
		if r1 < 1 || r0 > 1 {
			t.Fatalf("E6 row %d: τ does not separate (%v, %v)", i, r1, r0)
		}
	}
}

func TestE7Quick(t *testing.T) {
	tb := runQuick(t, "E7")
	byName := map[string]int{}
	for i := range tb.Rows {
		byName[cell(t, tb, i, "algorithm")] = i
	}
	a3, okA := byName["Algorithm1(α=3)"]
	sa, okS := byName["StoreAllGreedy"]
	if !okA || !okS {
		t.Fatalf("E7 missing rows: %v", byName)
	}
	if cellF(t, tb, a3, "peak_words") >= cellF(t, tb, sa, "peak_words") {
		t.Fatal("E7: Algorithm1(α=3) should use less space than store-all")
	}
}

func TestE8Quick(t *testing.T) {
	tb := runQuick(t, "E8")
	for i := range tb.Rows {
		below := cellF(t, tb, i, "P[below]")
		bound := cellF(t, tb, i, "bound")
		if below > bound+0.05 {
			t.Fatalf("E8 row %d: empirical violation %v exceeds bound %v", i, below, bound)
		}
	}
}

func TestE9Quick(t *testing.T) {
	tb := runQuick(t, "E9")
	// full-reveal must carry more information than silent at every t.
	var fullY, silentY float64 = -1, -1
	for i := range tb.Rows {
		switch cell(t, tb, i, "protocol") {
		case "full-reveal":
			fullY = cellF(t, tb, i, "ICost(D^Y)")
		case "silent":
			silentY = cellF(t, tb, i, "ICost(D^Y)")
			if silentY > fullY {
				t.Fatalf("E9: silent (%v) ≥ full-reveal (%v)", silentY, fullY)
			}
			if e := cellF(t, tb, i, "error"); e < 0.3 || e > 0.7 {
				t.Fatalf("E9: silent error %v not ≈ 1/2", e)
			}
		}
	}
	if fullY < 0 || silentY < 0 {
		t.Fatal("E9 missing protocols")
	}
}

func TestE10Quick(t *testing.T) {
	tb := runQuick(t, "E10")
	first := cellF(t, tb, 0, "success")
	last := cellF(t, tb, len(tb.Rows)-1, "success")
	if last < first {
		t.Fatalf("E10: success fell with sampling rate (%v → %v)", first, last)
	}
	if last < 0.9 {
		t.Fatalf("E10: success at the paper rate too low: %v", last)
	}
}

func TestE11Quick(t *testing.T) {
	tb := runQuick(t, "E11")
	byName := map[string]int{}
	for i := range tb.Rows {
		byName[cell(t, tb, i, "variant")] = i
	}
	full, ok1 := byName["full (paper)"]
	coarse, ok2 := byName["coarse β=2/α"]
	if !ok1 || !ok2 {
		t.Fatalf("E11 missing variants: %v", byName)
	}
	if cellF(t, tb, full, "proj_words") >= cellF(t, tb, coarse, "proj_words") {
		t.Fatal("E11: sharp exponent should store fewer projection words than coarse")
	}
}

func TestE12Quick(t *testing.T) {
	tb := runQuick(t, "E12")
	for i := range tb.Rows {
		if rate := cellF(t, tb, i, "rate"); rate < 0.85 {
			t.Fatalf("E12 row %d: reduction success %v", i, rate)
		}
	}
}

func TestE13Quick(t *testing.T) {
	tb := runQuick(t, "E13")
	// Iteration-1 rows at the healthy rate must decay at least ~n^{1/α}/4
	// (later iterations act on near-empty U, where ratios are noise); at
	// least one starved row must show a visible (non-covered) residue.
	sawResidue := false
	for i := range tb.Rows {
		c := cellF(t, tb, i, "sampleC")
		shrinkCell := cell(t, tb, i, "shrink")
		if shrinkCell == "covered" {
			continue
		}
		sawResidue = true
		if c >= 2 && cell(t, tb, i, "iter") == "1" {
			pred := cellF(t, tb, i, "n^(1/a)")
			if cellF(t, tb, i, "shrink") < pred/4 {
				t.Fatalf("E13 row %d: healthy-rate iter-1 shrink %v far below %v", i, shrinkCell, pred)
			}
		}
	}
	if !sawResidue {
		t.Fatal("E13: starved rates never left a residue — sweep not informative")
	}
}

func TestE14Quick(t *testing.T) {
	tb := runQuick(t, "E14")
	for i := range tb.Rows {
		over := cellF(t, tb, i, "overhead")
		guesses := cellF(t, tb, i, "guesses")
		if over < 1 {
			t.Fatalf("E14 row %d: overhead %v < 1", i, over)
		}
		if over > guesses+1 {
			t.Fatalf("E14 row %d: overhead %v exceeds guess count %v", i, over, guesses)
		}
	}
	// Smaller ε ⇒ more guesses ⇒ weakly more overhead (same α block).
	if len(tb.Rows) >= 2 {
		if cellF(t, tb, 1, "guesses") <= cellF(t, tb, 0, "guesses") {
			t.Fatal("E14: smaller ε should add guesses")
		}
	}
}
