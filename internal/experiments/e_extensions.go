package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/core"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func init() {
	register("E13", E13IterationShrinkage)
	register("E14", E14GuessGridOverhead)
}

// E13IterationShrinkage traces the uncovered-universe decay of Algorithm 1
// across its iterations — the empirical content of Lemma 3.11: at the
// justified sampling rate every iteration shrinks |U| by at least n^{1/α}
// (here: the planted workload is finished outright, shown as "covered"),
// while starving the sampler below the Lemma 3.12 rate leaves per-iteration
// residues that no longer compound fast enough for α iterations to finish.
func E13IterationShrinkage(cfg Config) (*Table, error) {
	n, m := 16384, 1024
	trials := 10
	if cfg.Quick {
		n, m, trials = 4096, 256, 3
	}
	r := rng.New(cfg.Seed)
	// Decoys the same size as the planted blocks (decoyFrac=1): sets that
	// cover a weak sample well may cover the universe only partially, so
	// starved rates leave a visible residue.
	inst, planted := setsystem.PlantedCover(r.Split("instance"), n, m, 8, 1.0)
	t := &Table{
		ID:    "E13",
		Title: "Per-iteration uncovered decay vs sampling rate (Lemma 3.11)",
		Claim: "at the justified rate each iteration shrinks |U| by ≥ n^{1/α} (the planted " +
			"workload simply finishes); below the Lemma 3.12 rate the per-iteration shrink " +
			"drops under n^{1/α} and α iterations stop sufficing",
		Columns: []string{"alpha", "n^(1/a)", "sampleC", "iter",
			"mean |U| before", "mean |U| after", "shrink", "feasible"},
	}
	for _, alpha := range []int{2, 3} {
		pred := math.Pow(float64(n), 1/float64(alpha))
		for _, sampleC := range []float64{2, 0.25, 0.03125} {
			type agg struct {
				before, after float64
				count         int
			}
			aggs := make([]agg, alpha)
			feasible := 0
			for trial := 0; trial < trials; trial++ {
				// The greedy sub-solver suffices here: Lemma 3.12 transfers
				// *any* cover of the sample, so the decay trace is the same
				// while the equal-size-decoy workload's exact tiling search
				// (exponential) is avoided.
				run := core.NewRun(inst.N, inst.M(), len(planted),
					core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: sampleC,
						Subsolver: core.SubsolverGreedy},
					r.Split(fmt.Sprintf("run-%d-%v-%d", alpha, sampleC, trial)))
				s := stream.FromInstance(inst, stream.Adversarial, nil)
				if _, err := stream.Run(s, run, core.Passes(alpha)); err != nil {
					return nil, err
				}
				if run.Result().Feasible {
					feasible++
				}
				hist := run.UncoveredHistory() // [after prune, after iter1, ...]
				for it := 0; it+1 < len(hist); it++ {
					aggs[it].before += float64(hist[it])
					aggs[it].after += float64(hist[it+1])
					aggs[it].count++
				}
			}
			for it, a := range aggs {
				if a.count == 0 {
					continue
				}
				before := a.before / float64(a.count)
				after := a.after / float64(a.count)
				shrinkStr := "covered"
				if after > 0 {
					shrinkStr = trimFloat(before / after)
				}
				t.AddRow(alpha, pred, sampleC, it+1, before, after, shrinkStr,
					fmt.Sprintf("%d/%d", feasible, trials))
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d, planted opt=%d with same-size decoys, %d trials, correct õpt guess, greedy sub-solver", n, m, len(planted), trials),
		"sampleC=2 is the laptop-calibrated healthy rate (1/8 of the paper's 16); the starved rows violate Lemma 3.12's premise",
		"'covered' = decay at least as fast as the Lemma 3.11 guarantee; numeric shrink below n^(1/a) with feasible < trials shows the failure mode")
	return t, nil
}

// E14GuessGridOverhead measures the extra space the õpt-guessing wrapper
// pays over a single correct-guess run — the Õ(1/ε) (log n/ε guesses)
// factor separating Theorem 2's statement ("given õpt") from the fully
// agnostic solver.
func E14GuessGridOverhead(cfg Config) (*Table, error) {
	n, m, opt := 8192, 1024, 4
	if cfg.Quick {
		n, m = 2048, 256
	}
	r := rng.New(cfg.Seed)
	inst, planted := setsystem.PlantedCover(r.Split("instance"), n, m, opt, 0.6)
	t := &Table{
		ID:    "E14",
		Title: "Cost of the õpt guess grid (Theorem 2's /ε² factor)",
		Claim: "running Θ(log n/ε) guesses in parallel multiplies space by the number of " +
			"live guesses; a known õpt removes the factor",
		Columns: []string{"alpha", "eps", "guesses", "peak(single)", "peak(grid)", "overhead"},
	}
	for _, alpha := range []int{2, 3} {
		for _, eps := range []float64{0.5, 0.25} {
			single := core.NewRun(inst.N, inst.M(), len(planted),
				core.Config{Alpha: alpha, Epsilon: eps, SampleC: 2},
				r.Split(fmt.Sprintf("s-%d-%v", alpha, eps)))
			s := stream.FromInstance(inst, stream.Adversarial, nil)
			accS, err := stream.Run(s, single, core.Passes(alpha))
			if err != nil {
				return nil, err
			}
			if !single.Result().Feasible {
				t.Notes = append(t.Notes, fmt.Sprintf("alpha=%d eps=%v: single run infeasible", alpha, eps))
				continue
			}
			solver := core.NewSolver(inst.N, inst.M(),
				core.Config{Alpha: alpha, Epsilon: eps, SampleC: 2, Workers: cfg.Workers},
				r.Split(fmt.Sprintf("g-%d-%v", alpha, eps)))
			s2 := stream.FromInstance(inst, stream.Adversarial, nil)
			accG, err := solver.Run(s2, core.Passes(alpha)+1)
			if err != nil {
				return nil, err
			}
			if _, ok := solver.Best(); !ok {
				t.Notes = append(t.Notes, fmt.Sprintf("alpha=%d eps=%v: grid infeasible", alpha, eps))
				continue
			}
			guesses := len(core.Guesses(inst.N, eps))
			t.AddRow(alpha, eps, guesses, accS.PeakSpace, accG.PeakSpace,
				float64(accG.PeakSpace)/float64(accS.PeakSpace))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d planted opt=%d; 'overhead' ≤ #guesses, shrinking as ε grows", n, m, opt))
	return t, nil
}
