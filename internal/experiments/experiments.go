// Package experiments contains the reproduction harness: one driver per
// experiment in DESIGN.md's per-experiment index (E1–E12), each producing a
// Table that cmd/tradeoff renders and EXPERIMENTS.md records.
//
// The paper is a theory paper with no empirical tables; every experiment
// regenerates the measurable shape of a theorem or load-bearing lemma —
// who wins, by what factor, where transitions fall — as laid out in
// DESIGN.md §5.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed uint64
	// Quick shrinks sizes and trial counts for tests and benchmarks.
	Quick bool
	// Workers is the guess-grid parallelism for experiments that run the
	// full õpt grid (0 = GOMAXPROCS, 1 = sequential). Tables are identical
	// at every value; only wall-clock time changes.
	Workers int
}

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's prediction this table checks
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "Paper claim: %s\n\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	sb.WriteString("| ")
	for i, c := range t.Columns {
		sb.WriteString(pad(c, widths[i]))
		sb.WriteString(" | ")
	}
	sb.WriteString("\n|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteString("|")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString("| ")
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			sb.WriteString(pad(cell, widths[i]))
			sb.WriteString(" | ")
		}
		sb.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (*Table, error)

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{}

func register(id string, r Runner) {
	Registry[id] = r
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 < E12 (numeric suffix order).
		var a, b int
		fmt.Sscanf(out[i], "E%d", &a)
		fmt.Sscanf(out[j], "E%d", &b)
		return a < b
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}
