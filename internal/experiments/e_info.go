package experiments

import (
	"fmt"

	"streamcover/internal/comm"
	"streamcover/internal/hardinst"
	"streamcover/internal/info"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func init() {
	register("E6", E6MaxCoverGap)
	register("E8", E8CoverageConcentration)
	register("E9", E9InfoCost)
	register("E12", E12Reductions)
}

// E6MaxCoverGap verifies the Lemma 4.3 separation on D_MC: the k=2 optimum
// sits above (1+Θ(ε))·τ under θ=1 and below (1−Θ(ε))·τ under θ=0.
func E6MaxCoverGap(cfg Config) (*Table, error) {
	trials := 30
	epsSet := []float64{1.0 / 4, 1.0 / 8, 1.0 / 12}
	if cfg.Quick {
		trials = 6
		epsSet = epsSet[:2]
	}
	m := 8
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E6",
		Title: "D_MC optimum separation (k=2)",
		Claim: "Lemma 4.3: opt ≥ (1+Θ(ε))·τ | θ=1 and opt ≤ (1−Θ(ε))·τ | θ=0, each w.p. 1−o(1)",
		Columns: []string{"eps", "t1", "tau",
			"mean opt/τ (θ=1)", "mean opt/τ (θ=0)", "separated"},
	}
	for _, eps := range epsSet {
		p := hardinst.MCParams{Eps: eps, M: m}
		sum1, sum0 := 0.0, 0.0
		separated := 0
		var tau float64
		for i := 0; i < trials; i++ {
			mc1 := hardinst.SampleMaxCover(p, 1, r.Split(fmt.Sprintf("1-%v-%d", eps, i)))
			_, _, cov1 := offline.MaxCoverPair(mc1.Inst)
			mc0 := hardinst.SampleMaxCover(p, 0, r.Split(fmt.Sprintf("0-%v-%d", eps, i)))
			_, _, cov0 := offline.MaxCoverPair(mc0.Inst)
			tau = mc1.Tau
			r1 := float64(cov1) / mc1.Tau
			r0 := float64(cov0) / mc0.Tau
			sum1 += r1
			sum0 += r0
			if r1 > r0 {
				separated++
			}
		}
		t.AddRow(eps, p.T1(), tau, sum1/float64(trials), sum0/float64(trials),
			fmt.Sprintf("%d/%d", separated, trials))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("m=%d pairs per instance, exact k=2 evaluation; τ = t2+(a+b)/2+t1/4", m))
	return t, nil
}

// E8CoverageConcentration validates Lemma 2.2 empirically: for k
// independent random (n−s)-subsets, the uncovered portion of U stays above
// |U|/2·(s/2n)^k with the probability the lemma guarantees (and the mean
// matches the |U|·(s/n)^k heuristic).
func E8CoverageConcentration(cfg Config) (*Table, error) {
	trials := 300
	if cfg.Quick {
		trials = 40
	}
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E8",
		Title: "Coverage concentration for random large sets (Lemma 2.2)",
		Claim: "P(|U \\ cover| < |U|/2·(s/2n)^k) < 2·exp(−|U|/8·(s/2n)^k); " +
			"mean uncovered ≈ |U|·(s/n)^k",
		Columns: []string{"n", "s", "k", "mean_uncov", "pred_mean",
			"threshold", "P[below]", "bound"},
	}
	for _, s := range []int{n / 4, n / 8} {
		for _, k := range []int{1, 2, 3} {
			below, sum := 0, 0.0
			threshold, bound := info.Lemma22Bound(n, n, s, k)
			for i := 0; i < trials; i++ {
				tr := r.Split(fmt.Sprintf("%d-%d-%d", s, k, i))
				uncovered := make([]bool, n)
				for e := range uncovered {
					uncovered[e] = true
				}
				count := n
				for j := 0; j < k; j++ {
					// A random (n−s)-subset = complement of a random s-subset.
					for _, e := range tr.KSubset(n, n-s) {
						if uncovered[e] {
							uncovered[e] = false
							count--
						}
					}
				}
				sum += float64(count)
				if float64(count) < threshold {
					below++
				}
			}
			pred := float64(n)
			for j := 0; j < k; j++ {
				pred *= float64(s) / float64(n)
			}
			t.AddRow(n, s, k, sum/float64(trials), pred, threshold,
				float64(below)/float64(trials), bound)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("U = [n], %d trials per row; the empirical violation rate must stay below the bound column", trials))
	return t, nil
}

// E9InfoCost estimates internal information costs of concrete Disj
// protocols on D^Y and D^N, exhibiting the Ω(t) growth for correct
// protocols (Proposition 2.5) and the floor at 0 for the trivial one.
func E9InfoCost(cfg Config) (*Table, error) {
	samplesPer := 40000
	tSet := []int{4, 6, 8}
	if cfg.Quick {
		samplesPer = 6000
		tSet = tSet[:2]
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E9",
		Title: "Internal information cost of Disj protocols on D_Disj",
		Claim: "Prop 2.5 / Lemma 3.5: any δ<1/2-error protocol pays Ω(t) information, on both " +
			"D^Y and D^N; low-information protocols err ≈ 1/2",
		Columns: []string{"t", "protocol", "error", "ICost(D^Y)", "ICost(D^N)", "ICost(D^Y)/t"},
	}
	for _, tSize := range tSet {
		protos := []comm.DisjProtocol{
			comm.FullRevealDisj{},
			comm.SampledDisj{S: tSize},
			comm.SampledDisj{S: 1},
			comm.SilentDisj{},
		}
		for _, proto := range protos {
			pr := r.Split(fmt.Sprintf("%d-%s", tSize, proto.Name()))
			errs := 0
			var yesSamples, noSamples []info.Sample
			for i := 0; i < samplesPer; i++ {
				d := hardinst.SampleDisj(tSize, pr)
				var tr comm.Transcript
				got := proto.Run(d, pr, &tr)
				if got != d.Disjoint() {
					errs++
				}
				sample := info.Sample{
					X: comm.EncodeIntSet(d.A),
					Y: comm.EncodeIntSet(d.B),
					Z: tr.Key(),
				}
				if d.Disjoint() {
					yesSamples = append(yesSamples, sample)
				} else {
					noSamples = append(noSamples, sample)
				}
			}
			icY := info.InternalCost(yesSamples)
			icN := info.InternalCost(noSamples)
			t.AddRow(tSize, proto.Name(), float64(errs)/float64(samplesPer),
				icY, icN, icY/float64(tSize))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d samples per (t, protocol); plug-in estimates (upward-biased at small sample counts)", samplesPer),
		"correct protocols (error ≪ 1/2) keep ICost/t roughly constant as t grows; 'silent' shows the 0-information/0.5-error floor")
	return t, nil
}

// E12Reductions validates the Lemma 3.4 and Lemma 4.5 embeddings: with an
// exact oracle standing in for the approximation protocol, the constructed
// π_Disj and π_GHD answer correctly (w.h.p. over the embedding).
func E12Reductions(cfg Config) (*Table, error) {
	trials := 40
	if cfg.Quick {
		trials = 8
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E12",
		Title: "Soundness of the Lemma 3.4 / Lemma 4.5 reductions",
		Claim: "π_Disj errs at most o(1) more than π_SC (resp. π_GHD vs π_MC): with an exact " +
			"oracle the reduction answers Disj/GHD correctly w.h.p.",
		Columns: []string{"reduction", "trials", "correct", "rate"},
	}

	scOracle := func(inst *setsystem.Instance, bound int) (bool, error) {
		opt, err := offline.OptAtMost(inst, bound, offline.ExactConfig{})
		if err != nil {
			return false, err
		}
		return opt <= bound, nil
	}
	scP := hardinst.SCParams{N: 2048, M: 6, Alpha: 2}
	tBlocks := scP.BlockParam()
	correct := 0
	for i := 0; i < trials; i++ {
		pr := r.Split(fmt.Sprintf("disj-%d", i))
		var d hardinst.Disj
		want := i%2 == 0
		if want {
			d = hardinst.SampleDisjYes(tBlocks, pr)
		} else {
			d = hardinst.SampleDisjNo(tBlocks, pr)
		}
		got, err := comm.SolveDisjViaSetCover(d, scP, scOracle, pr)
		if err != nil {
			return nil, err
		}
		if got == want {
			correct++
		}
	}
	t.AddRow("Disj via SetCover (Lemma 3.4)", trials, correct, float64(correct)/float64(trials))

	mcOracle := func(inst *setsystem.Instance, threshold float64) (bool, error) {
		_, _, cov := offline.MaxCoverPair(inst)
		return float64(cov) > threshold, nil
	}
	mcP := hardinst.MCParams{Eps: 1.0 / 8, M: 5}
	t1 := mcP.T1()
	correct = 0
	for i := 0; i < trials; i++ {
		pr := r.Split(fmt.Sprintf("ghd-%d", i))
		var g hardinst.GHD
		want := i%2 == 0
		if want {
			g = hardinst.SampleGHDYes(t1, pr)
		} else {
			g = hardinst.SampleGHDNo(t1, pr)
		}
		got, err := comm.SolveGHDViaMaxCover(g, mcP, mcOracle, pr)
		if err != nil {
			return nil, err
		}
		if got == want {
			correct++
		}
	}
	t.AddRow("GHD via MaxCover (Lemma 4.5)", trials, correct, float64(correct)/float64(trials))
	t.Notes = append(t.Notes,
		"oracles are exact (OptAtMost / MaxCoverPair): failures can only come from the embedding distribution itself")
	return t, nil
}
