package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/baselines"
	"streamcover/internal/bitset"
	"streamcover/internal/core"
	"streamcover/internal/hardinst"
	"streamcover/internal/offline"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

func init() {
	register("E1", E1SpaceApproxTradeoff)
	register("E3", E3HardInstanceGap)
	register("E7", E7BaselineComparison)
	register("E10", E10ElementSampling)
	register("E11", E11Ablations)
}

// E1SpaceApproxTradeoff sweeps α and measures Algorithm 1's passes, cover
// quality and peak space, against Theorem 2's Õ(m·n^{1/α}) prediction.
func E1SpaceApproxTradeoff(cfg Config) (*Table, error) {
	n, m, opt := 16384, 2048, 4
	if cfg.Quick {
		n, m = 4096, 512
	}
	r := rng.New(cfg.Seed)
	inst, planted := setsystem.PlantedCover(r.Split("instance"), n, m, opt, 0.6)
	t := &Table{
		ID:    "E1",
		Title: "Algorithm 1 space–approximation tradeoff (planted instances)",
		Claim: "Theorem 2: (α+ε)-approximation, 2α+1 passes, Õ(m·n^{1/α}/ε²+n/ε) words; " +
			"the m·n^{1/α} projection term shrinks geometrically with α",
		Columns: []string{"alpha", "passes(bound)", "passes(used)", "cover", "opt",
			"peak_words", "proj_words", "m*n^(1/a)", "proj/pred"},
	}
	for alpha := 1; alpha <= 5; alpha++ {
		run := core.NewRun(inst.N, inst.M(), len(planted),
			core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2}, r.Split(fmt.Sprintf("run-%d", alpha)))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, run, core.Passes(alpha))
		if err != nil {
			return nil, err
		}
		res := run.Result()
		if !res.Feasible {
			t.Notes = append(t.Notes, fmt.Sprintf("alpha=%d: infeasible at correct guess (sampling failure)", alpha))
			continue
		}
		proj := acc.PeakSpace - inst.N
		pred := float64(m) * math.Pow(float64(inst.N), 1/float64(alpha))
		t.AddRow(alpha, core.Passes(alpha), acc.Passes, len(res.Cover), len(planted),
			acc.PeakSpace, proj, int(pred), float64(proj)/pred)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d planted opt=%d; peak_words includes the n-word uncovered bitset; proj_words = peak − n", inst.N, m, opt),
		"proj/pred is the hidden Õ(·) factor (≈ C·õpt·ln m/ε at small α, dropping toward the solution floor as α grows)",
		"SampleC=2 (not the paper's worst-case 16) so the rate stays below 1 at laptop n — E10 locates the safe range")
	return t, nil
}

// E3HardInstanceGap verifies Lemma 3.2 and the θ=1 pair cover on D_SC:
// opt = 2 under θ=1, opt > 2α under θ=0, with frequency → 1.
func E3HardInstanceGap(cfg Config) (*Table, error) {
	trials := 30
	grid := []hardinst.SCParams{
		{N: 1024, M: 8, Alpha: 2},
		{N: 2048, M: 8, Alpha: 2},
		{N: 4096, M: 12, Alpha: 2},
		{N: 8192, M: 8, Alpha: 2},
		{N: 4096, M: 8, Alpha: 3},
	}
	if cfg.Quick {
		trials = 6
		grid = grid[:2]
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E3",
		Title: "Hard distribution D_SC optimum gap",
		Claim: "Lemma 3.2 + construction: θ=1 ⇒ opt ≤ 2 always (= 2 for t large); θ=0 ⇒ opt > 2α w.p. 1−o(1)",
		Columns: []string{"n", "m", "alpha", "t", "trials",
			"P[opt≤2 | θ=1]", "P[opt>2α | θ=0]"},
	}
	for _, p := range grid {
		opt2, gap := 0, 0
		for i := 0; i < trials; i++ {
			sc1 := hardinst.SampleSetCover(p, 1, r)
			o1, err := offline.OptAtMost(sc1.Inst, 2, offline.ExactConfig{})
			if err != nil {
				return nil, err
			}
			if o1 <= 2 {
				opt2++
			}
			sc0 := hardinst.SampleSetCover(p, 0, r)
			o0, err := offline.OptAtMost(sc0.Inst, 2*p.Alpha, offline.ExactConfig{})
			if err != nil {
				return nil, err
			}
			if o0 > 2*p.Alpha {
				gap++
			}
		}
		t.AddRow(p.EffectiveN(), p.M, p.Alpha, p.BlockParam(), trials,
			float64(opt2)/float64(trials), float64(gap)/float64(trials))
	}
	t.Notes = append(t.Notes,
		"t uses TConst=0.25 (see DESIGN.md: the paper's 2^-15 plays the same role asymptotically)")
	return t, nil
}

// E7BaselineComparison pits Algorithm 1 against the prior algorithms on a
// planted workload: passes, space and cover size.
func E7BaselineComparison(cfg Config) (*Table, error) {
	n, m, opt := 8192, 1024, 4
	if cfg.Quick {
		n, m = 2048, 256
	}
	r := rng.New(cfg.Seed)
	inst, planted := setsystem.PlantedCover(r.Split("instance"), n, m, opt, 0.6)
	t := &Table{
		ID:    "E7",
		Title: "Algorithm 1 vs baselines (planted workload)",
		Claim: "§1.1: Algorithm 1 stores Õ(m·n^{1/α}) vs Õ(m·n^{Θ(2/α)}) for Har-Peled-style " +
			"sampling at the same approximation; progressive greedy is space-light but " +
			"approximation-heavy; store-all pays the whole input",
		Columns: []string{"algorithm", "passes", "cover", "cover/opt", "peak_words", "proj_words"},
	}
	addRun := func(name string, alg stream.PassAlgorithm, maxPasses int,
		result func() ([]int, bool)) error {
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, alg, maxPasses)
		if err != nil {
			return err
		}
		cover, ok := result()
		if !ok {
			t.Notes = append(t.Notes, name+": infeasible")
			return nil
		}
		t.AddRow(name, acc.Passes, len(cover), float64(len(cover))/float64(len(planted)),
			acc.PeakSpace, maxInt(acc.PeakSpace-inst.N, 0))
		return nil
	}

	for _, alpha := range []int{2, 3, 4} {
		run := core.NewRun(inst.N, inst.M(), len(planted),
			core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2}, r.Split(fmt.Sprintf("alg1-%d", alpha)))
		if err := addRun(fmt.Sprintf("Algorithm1(α=%d)", alpha), run, core.Passes(alpha),
			func() ([]int, bool) { res := run.Result(); return res.Cover, res.Feasible }); err != nil {
			return nil, err
		}
	}
	// Har-Peled-style: coarser exponent 2/α, no one-shot prune.
	for _, alpha := range []int{4} {
		hpCfg := core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2, SampleExponent: 2 / float64(alpha), DisablePrune: true}
		run := core.NewRun(inst.N, inst.M(), len(planted), hpCfg, r.Split("harpeled"))
		if err := addRun(fmt.Sprintf("HarPeled-style(α=%d, β=2/α)", alpha), run, hpCfg.MaxPasses(),
			func() ([]int, bool) { res := run.Result(); return res.Cover, res.Feasible }); err != nil {
			return nil, err
		}
	}
	pg := baselines.NewProgressiveGreedy(inst.N, 2)
	if err := addRun("ProgressiveGreedy(λ=2)", pg, pg.MaxPasses(),
		func() ([]int, bool) { return pg.Result() }); err != nil {
		return nil, err
	}
	sa := baselines.NewStoreAllGreedy(inst.N)
	if err := addRun("StoreAllGreedy", sa, 2,
		func() ([]int, bool) { return sa.Result() }); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d planted opt=%d; Algorithm 1 and HarPeled-style run at the correct õpt guess", n, m, opt))
	return t, nil
}

// E10ElementSampling sweeps the sampling-rate constant of Lemma 3.12 and
// measures when a k-cover of the sample stops covering (1−ρ)·n elements.
func E10ElementSampling(cfg Config) (*Table, error) {
	n, m, k := 4096, 256, 4
	trials := 40
	if cfg.Quick {
		n, m, trials = 1024, 64, 8
	}
	rho := 1.0 / 16
	r := rng.New(cfg.Seed)
	inst, _ := setsystem.PlantedCover(r.Split("instance"), n, m, k, 0.6)
	t := &Table{
		ID:    "E10",
		Title: "Element sampling threshold (Lemma 3.12)",
		Claim: "p ≥ 16·k·ln m/(ρ·n) suffices w.p. 1−1/m²; far smaller rates fail to transfer " +
			"sample covers to (1−ρ)-covers",
		Columns: []string{"multiplier", "p", "E[sample]", "success", "mean_uncovered_frac"},
	}
	pStar := 16 * float64(k) * math.Log(float64(m)) / (rho * float64(n))
	sets := inst.Bitsets()
	for _, mult := range []float64{1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1} {
		p := pStar * mult
		if p > 1 {
			p = 1
		}
		success, uncovSum := 0, 0.0
		for i := 0; i < trials; i++ {
			tr := r.Split(fmt.Sprintf("t-%v-%d", mult, i))
			sample := tr.SampleEach(n, p)
			// The sampled sub-instance, covered with ≤ k sets.
			sub := setsystem.Project(inst, sample)
			cover, ok, err := offline.CoverAtMost(sub, k, offline.ExactConfig{})
			if err != nil {
				return nil, err
			}
			if !ok {
				// Sample not coverable with k sets (can happen at p=0 edge):
				// count as failure.
				uncovSum += 1
				continue
			}
			cb := bitset.New(inst.N)
			for _, si := range cover {
				cb.Or(sets[si])
			}
			covered := cb.Count()
			frac := 1 - float64(covered)/float64(n)
			uncovSum += frac
			if frac <= rho {
				success++
			}
		}
		t.AddRow(mult, p, p*float64(n), float64(success)/float64(trials), uncovSum/float64(trials))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d k=%d ρ=%v; p*=16k·ln(m)/(ρn)=%.4f; success = sampled k-cover also covers (1−ρ)n", n, m, k, rho, pStar))
	return t, nil
}

// E11Ablations isolates the two ingredients separating Algorithm 1 from its
// predecessor — the one-shot prune pass and the sharp 1/α exponent — plus
// the exact-vs-greedy sub-solver choice.
func E11Ablations(cfg Config) (*Table, error) {
	n, m, opt := 8192, 1024, 6
	if cfg.Quick {
		n, m = 2048, 256
	}
	alpha := 4
	r := rng.New(cfg.Seed)
	inst, planted := setsystem.PlantedCover(r.Split("instance"), n, m, opt, 0.6)
	t := &Table{
		ID:    "E11",
		Title: "Ablations of Algorithm 1's ingredients (α=4)",
		Claim: "§3.4: one-shot pruning bounds stored set projections by n/(ε·õpt); the 1/α " +
			"exponent shrinks the sample n^{1/α}-fold vs 2/α; the exact sub-solve keeps " +
			"≤ õpt sets per iteration (greedy inflates the cover)",
		Columns: []string{"variant", "passes", "cover", "peak_words", "proj_words", "feasible"},
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"full (paper)", core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2}},
		{"no prune pass", core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2, DisablePrune: true}},
		{"coarse β=2/α", core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2, SampleExponent: 2 / float64(alpha)}},
		{"greedy subsolver", core.Config{Alpha: alpha, Epsilon: 0.5, SampleC: 2, Subsolver: core.SubsolverGreedy}},
	}
	for _, v := range variants {
		run := core.NewRun(inst.N, inst.M(), len(planted), v.cfg, r.Split(v.name))
		s := stream.FromInstance(inst, stream.Adversarial, nil)
		acc, err := stream.Run(s, run, v.cfg.MaxPasses())
		if err != nil {
			return nil, err
		}
		res := run.Result()
		t.AddRow(v.name, acc.Passes, len(res.Cover), acc.PeakSpace,
			maxInt(acc.PeakSpace-inst.N, 0), res.Feasible)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d planted opt=%d, correct õpt guess, ε=0.5", n, m, opt))
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
