package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/hardinst"
	"streamcover/internal/lowerbound"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

func init() {
	register("E2", E2LowerBoundTransition)
	register("E4", E4RandomOrder)
	register("E5", E5MaxCoverageTransition)
}

// scSuccessRate measures the θ-distinguishing success rate of the budgeted
// strategy on D_SC over `trials` draws with a fair θ coin.
func scSuccessRate(p hardinst.SCParams, cfg lowerbound.SCConfig, order stream.Order,
	trials int, r *rng.RNG) (float64, error) {
	correct := 0
	for i := 0; i < trials; i++ {
		theta := i % 2
		sc := hardinst.SampleSetCover(p, theta, r.Split(fmt.Sprintf("inst-%d", i)))
		d := lowerbound.NewSCDistinguisher(sc.N, p.M, cfg, r.Split(fmt.Sprintf("alg-%d", i)))
		var orderRNG *rng.RNG
		if order != stream.Adversarial {
			orderRNG = r.Split(fmt.Sprintf("ord-%d", i))
		}
		s := stream.FromInstance(sc.Inst, order, orderRNG)
		if _, err := stream.Run(s, d, cfg.Passes+1); err != nil {
			return 0, err
		}
		if d.Decide() == theta {
			correct++
		}
	}
	return float64(correct) / float64(trials), nil
}

// E2LowerBoundTransition sweeps the distinguisher budget through the
// Θ̃(m·n^{1/α}) threshold predicted by Theorems 1/3, for several pass
// counts, on adversarial-order streams.
func E2LowerBoundTransition(cfg Config) (*Table, error) {
	trials := 60
	params := []hardinst.SCParams{
		{N: 4096, M: 32, Alpha: 2},
		// α=3 needs a larger universe for a non-degenerate block parameter
		// (t = Θ((n/ln m)^{1/3})).
		{N: 32768, M: 32, Alpha: 3},
	}
	passSet := []int{1, 2, 4}
	if cfg.Quick {
		trials = 12
		params = params[:1]
		passSet = []int{1, 2}
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E2",
		Title: "Space→success transition for θ-distinguishing on D_SC",
		Claim: "Theorems 1/3: deciding θ (⇔ α-approximating set cover on D_SC) needs " +
			"Ω̃(m·n^{1/α}/p) words; success crosses 1/2→1 near budget ≈ m·t·ln(m)/3 per pass " +
			"and the threshold drops ∝ 1/p with p passes",
		Columns: []string{"alpha", "t", "passes", "budget", "budget/(m·t)", "success"},
	}
	for _, p := range params {
		tBlocks := p.BlockParam()
		ref := float64(p.M) * float64(tBlocks) * math.Log(float64(p.M)) / 3
		for _, passes := range passSet {
			for _, mult := range []float64{1.0 / 16, 1.0 / 4, 1, 4} {
				budget := int(ref * mult / float64(passes))
				rate, err := scSuccessRate(p, lowerbound.SCConfig{Budget: budget, Passes: passes},
					stream.Adversarial, trials, r.Split(fmt.Sprintf("%d-%d-%v", p.Alpha, passes, mult)))
				if err != nil {
					return nil, err
				}
				t.AddRow(p.Alpha, tBlocks, passes, budget,
					float64(budget)/(float64(p.M)*float64(tBlocks)), rate)
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("m=%d pairs, n=%d (α=2) / 32768 (α=3), %d trials per row, fair θ coin (0.5 = chance)", params[0].M, params[0].N, trials),
		"budget column is per pass; the p-pass rows use budget ≈ ref·mult/p, so equal success across p at equal mult demonstrates the s·p tradeoff")
	return t, nil
}

// E4RandomOrder repeats the E2 sweep on random-arrival streams with a
// random Alice/Bob partition, checking the robustness claim of Lemma 3.7:
// random order does not make the problem easier (nor harder) for the
// sampling strategy.
func E4RandomOrder(cfg Config) (*Table, error) {
	trials := 60
	if cfg.Quick {
		trials = 12
	}
	p := hardinst.SCParams{N: 4096, M: 32, Alpha: 2}
	if cfg.Quick {
		p = hardinst.SCParams{N: 2048, M: 16, Alpha: 2}
	}
	r := rng.New(cfg.Seed)
	tBlocks := p.BlockParam()
	ref := float64(p.M) * float64(tBlocks) * math.Log(float64(p.M)) / 3
	t := &Table{
		ID:    "E4",
		Title: "Random arrival robustness (D_SC^rnd)",
		Claim: "Theorem 1 / Lemma 3.7: the Ω̃(m·n^{1/α}) bound holds even on random arrival " +
			"streams — the strategy's success at matched budgets is the same under both orders",
		Columns: []string{"budget/(m·t)", "success(adversarial)", "success(random)"},
	}
	for _, mult := range []float64{1.0 / 16, 1.0 / 4, 1, 4} {
		budget := int(ref * mult)
		adv, err := scSuccessRate(p, lowerbound.SCConfig{Budget: budget, Passes: 1},
			stream.Adversarial, trials, r.Split(fmt.Sprintf("adv-%v", mult)))
		if err != nil {
			return nil, err
		}
		rnd, err := scSuccessRate(p, lowerbound.SCConfig{Budget: budget, Passes: 1},
			stream.RandomOnce, trials, r.Split(fmt.Sprintf("rnd-%v", mult)))
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(budget)/(float64(p.M)*float64(tBlocks)), adv, rnd)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d α=%d t=%d, %d trials per cell", p.N, p.M, p.Alpha, tBlocks, trials))
	return t, nil
}

// E5MaxCoverageTransition sweeps the D_MC distinguisher budget through the
// Θ̃(m/ε²) threshold of Theorems 4/5.
func E5MaxCoverageTransition(cfg Config) (*Table, error) {
	trials := 60
	epsSet := []float64{1.0 / 4, 1.0 / 8, 1.0 / 12}
	if cfg.Quick {
		trials = 12
		epsSet = epsSet[:2]
	}
	m := 32
	if cfg.Quick {
		m = 16
	}
	r := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E5",
		Title: "Space→success transition for (1−ε)-approximating max coverage on D_MC (k=2)",
		Claim: "Theorems 4/5: distinguishing θ (⇔ (1−ε)-approximating max coverage) needs " +
			"Ω̃(m/ε²) words; success transitions near budget ≈ m·ln(m)/ε²-scale " +
			"and the threshold location scales with 1/ε²",
		Columns: []string{"eps", "t1=1/ε²", "budget", "budget/(m·t1)", "success"},
	}
	for _, eps := range epsSet {
		p := hardinst.MCParams{Eps: eps, M: m}
		t1 := p.T1()
		ref := float64(m) * float64(t1) // the m/ε² scale
		for _, mult := range []float64{1.0 / 16, 1.0 / 4, 1, 4} {
			budget := int(ref * mult)
			correct := 0
			for i := 0; i < trials; i++ {
				theta := i % 2
				mc := hardinst.SampleMaxCover(p, theta, r.Split(fmt.Sprintf("mc-%v-%v-%d", eps, mult, i)))
				d := lowerbound.NewMCDistinguisher(m, lowerbound.MCConfig{Budget: budget, Passes: 1, T1: t1},
					r.Split(fmt.Sprintf("alg-%v-%v-%d", eps, mult, i)))
				s := stream.FromInstance(mc.Inst, stream.Adversarial, nil)
				if _, err := stream.Run(s, d, 2); err != nil {
					return nil, err
				}
				if d.Decide() == theta {
					correct++
				}
			}
			t.AddRow(eps, t1, budget, mult, float64(correct)/float64(trials))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("m=%d pairs, k=2, %d trials per row, fair θ coin (0.5 = chance)", m, trials))
	return t, nil
}
