package service

import (
	"sync"

	"streamcover/client"
	"streamcover/internal/bitset"
	"streamcover/internal/obs"
	"streamcover/internal/obs/trace"
	"streamcover/internal/stream"
)

// schedMetrics is the scheduler's instrument set, registered once per obs
// registry. Counters and histograms are updated inline at job transitions
// and pass boundaries (all lock-free atomic adds); point-in-time state
// (queue depth, running jobs) is exposed pull-style from the scheduler's
// own stats ledger, so instrumentation never adds bookkeeping to the
// scheduling paths.
type schedMetrics struct {
	submitted      *obs.Counter
	completed      *obs.CounterVec // status: done / failed / canceled
	rejected       *obs.CounterVec // reason: queue_full / stopped
	jobDuration    *obs.Histogram
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	passDuration   *obs.Histogram
	passesTotal    *obs.Counter
	passesReplayed *obs.Counter
}

func newSchedMetrics(r *obs.Registry, s *Scheduler) *schedMetrics {
	m := &schedMetrics{
		submitted: r.Counter("coverd_jobs_submitted_total",
			"Solve jobs admitted (including cache hits)."),
		completed: r.CounterVec("coverd_jobs_completed_total",
			"Jobs reaching a terminal state, by final status.", "status"),
		rejected: r.CounterVec("coverd_jobs_rejected_total",
			"Submissions rejected at admission, by reason.", "reason"),
		jobDuration: r.Histogram("coverd_job_duration_seconds",
			"Wall time of executed jobs, start to terminal state (cache hits excluded).",
			obs.DefBuckets),
		cacheHits: r.Counter("coverd_result_cache_hits_total",
			"Submissions answered from the result cache."),
		cacheMisses: r.Counter("coverd_result_cache_misses_total",
			"Cache-eligible submissions that had to solve."),
		passDuration: r.Histogram("coverd_solve_pass_duration_seconds",
			"Wall time of individual stream passes across all solves.",
			obs.PassBuckets),
		passesTotal: r.Counter("coverd_solve_passes_total",
			"Stream passes completed across all solves."),
		passesReplayed: r.Counter("coverd_solve_passes_replayed_total",
			"Stream passes served from a recorded replay plan."),
	}
	r.GaugeFunc("coverd_jobs_running",
		"Jobs currently executing in worker slots.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.stats.Running)
		})
	r.GaugeFunc("coverd_jobs_queued",
		"Jobs admitted and waiting for a worker slot.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.stats.Queued)
		})
	return m
}

// traceRecorder is the scheduler's per-job stream.TraceSink: it converts
// driver pass samples to the wire form for job snapshots (and the ?watch=1
// stream) and feeds the pass-duration aggregates live, as passes complete.
// One recorder belongs to one job; TracePass is called from the job's
// driver goroutine while snapshot may run concurrently from any request.
type traceRecorder struct {
	m      *schedMetrics // nil when the scheduler has no metrics registry
	kernel string
	span   *trace.Span // solve span pass events land on; nil when untraced

	mu     sync.Mutex
	passes []client.PassTrace
}

// setSpan routes subsequent pass samples to sp as span events. Called once,
// before the solve starts emitting; nil receivers (untraced algos) and nil
// spans (tracing off) are no-ops downstream.
func (t *traceRecorder) setSpan(sp *trace.Span) {
	if t != nil {
		t.span = sp
	}
}

// newTraceRecorder returns a recorder for one streaming job. gridKernel
// selects whether the dispatched bitset grid-kernel body is recorded —
// true only for solves that sweep the guess grid (setcover).
func newTraceRecorder(m *schedMetrics, gridKernel bool) *traceRecorder {
	t := &traceRecorder{m: m}
	if gridKernel {
		t.kernel = bitset.GridKernel()
	}
	return t
}

// TracePass implements stream.TraceSink.
func (t *traceRecorder) TracePass(s stream.PassSample) {
	// Recording() gates the attr assembly so untraced solves stay
	// allocation-free here (the events would be dropped anyway).
	if t.span.Recording() {
		t.span.AddEvent("pass",
			trace.Int("pass", s.Pass),
			trace.Float64("duration_seconds", s.Duration.Seconds()),
			trace.Int("items", s.Items),
			trace.Int("space_words", s.SpaceWords),
			trace.Bool("replayed", s.Replayed))
	}
	if t.m != nil {
		t.m.passDuration.Observe(s.Duration.Seconds())
		t.m.passesTotal.Inc()
		if s.Replayed {
			t.m.passesReplayed.Inc()
		}
	}
	t.mu.Lock()
	t.passes = append(t.passes, client.PassTrace{
		Pass:            s.Pass,
		DurationSeconds: s.Duration.Seconds(),
		Items:           s.Items,
		SpaceWords:      s.SpaceWords,
		PeakSpaceWords:  s.PeakSpace,
		Live:            s.Live,
		Replayed:        s.Replayed,
	})
	t.mu.Unlock()
}

// snapshot returns the wire form of the trace so far, or nil before the
// first pass completes.
func (t *traceRecorder) snapshot() *client.SolveTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.passes) == 0 {
		return nil
	}
	return &client.SolveTrace{
		Kernel: t.kernel,
		Passes: append([]client.PassTrace(nil), t.passes...),
	}
}
