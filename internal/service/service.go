// Package service is coverd's solve plane: a bounded job scheduler that
// multiplexes many concurrent solve requests over the repository's solvers,
// plus the HTTP layer (server.go) that exposes it as a streaming JSON API.
//
// # Scheduling model
//
// A Scheduler owns a fixed pool of Config.Slots worker goroutines; each
// running job solves with Config.JobWorkers-way guess-grid parallelism
// (streamcover.WithParallelism), so Slots × JobWorkers is the process-wide
// worker budget — by default it is sized to GOMAXPROCS, the same global
// budget internal/parallel resolves for a single in-process solve.
// Admission is two-staged and strictly bounded: at most Slots jobs run and
// at most QueueDepth more wait in the queue; a Submit beyond that fails
// fast with ErrQueueFull (backpressure to the client, HTTP 429) instead of
// buffering unboundedly.
//
// Submitting pins the job's instance in the registry until the job reaches
// a terminal state, so the memory-budget eviction can never pull an
// instance out from under queued or running work.
//
// # Determinism over the wire
//
// A job's result is a pure function of (instance content hash, normalized
// solve options): solves run through the same public entry points as an
// in-process call with a caller-supplied seed, and the worker count is
// excluded from the function by the library's parallelism-determinism
// contract. That is what makes the result cache sound — Results returns
// bit-identical covers, pass counts and space accounting whether computed
// or cached, and a coverd answer equals the corresponding local
// streamcover.SolveSetCover answer exactly (pinned by TestWireDeterminism
// and the serve-smoke CI target).
//
// # Cancellation
//
// Every running job owns a context; Cancel (DELETE /v1/jobs/{id}, or a
// waiting client disconnecting) cancels it and the solve aborts at the
// next pass boundary or chunk poll (see streamcover.WithContext). Queued
// jobs cancel immediately without occupying a slot.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"streamcover"
	"streamcover/client"
	"streamcover/internal/baselines"
	"streamcover/internal/obs"
	"streamcover/internal/obs/trace"
	"streamcover/internal/registry"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

// The wire types live in the public client package (shared with the Go
// client so server and client cannot drift); the scheduler aliases them.
type (
	SolveRequest = client.SolveRequest
	SolveResult  = client.SolveResult
	JobStatus    = client.JobStatus
	Job          = client.Job
	Stats        = client.SchedulerStats
)

// Job lifecycle states, re-exported for readability at use sites.
const (
	StatusQueued   = client.StatusQueued
	StatusRunning  = client.StatusRunning
	StatusDone     = client.StatusDone
	StatusFailed   = client.StatusFailed
	StatusCanceled = client.StatusCanceled
)

// Algos and Orders are the accepted enum vocabularies ("alg1" and "random"
// are normalized to "setcover" and "random-once" respectively).
var (
	Algos  = client.Algos
	Orders = client.Orders
)

// normalize applies option defaults and validates the enum fields,
// returning the canonical request whose field values define the cache key.
func normalize(r SolveRequest) (SolveRequest, error) {
	switch r.Algo {
	case "", "alg1":
		r.Algo = "setcover"
	case "setcover", "maxcover", "greedy", "exact", "progressive", "storeall":
	default:
		return r, &BadRequestError{fmt.Sprintf("unknown algo %q (valid: %s, or alg1 as an alias for setcover)",
			r.Algo, strings.Join(Algos, ", "))}
	}
	switch r.Order {
	case "", "adversarial":
		r.Order = "adversarial"
	case "random", "random-once":
		r.Order = "random-once"
	case "random-each-pass":
	default:
		return r, &BadRequestError{fmt.Sprintf("unknown order %q (valid: %s, or random as an alias for random-once)",
			r.Order, strings.Join(Orders, ", "))}
	}
	if r.Instance == "" {
		return r, &BadRequestError{"missing instance hash (upload via POST /v1/instances first)"}
	}
	if r.Alpha == 0 {
		r.Alpha = 2
	}
	if r.Alpha < 1 {
		return r, &BadRequestError{fmt.Sprintf("alpha %d out of range (want >= 1)", r.Alpha)}
	}
	if r.Epsilon == 0 {
		if r.Algo == "maxcover" {
			r.Epsilon = 0.1
		} else {
			r.Epsilon = 0.5
		}
	}
	if r.Epsilon < 0 || r.Epsilon > 1 {
		return r, &BadRequestError{fmt.Sprintf("epsilon %g out of range (0,1]", r.Epsilon)}
	}
	// Seed passes through verbatim — including 0, a legal seed. Rewriting
	// it would make an explicit {"seed":0} solve differently from the
	// in-process WithSeed(0) call, breaking determinism over the wire.
	if r.Algo == "maxcover" && r.K < 1 {
		return r, &BadRequestError{fmt.Sprintf("maxcover needs k >= 1, got %d", r.K)}
	}
	if r.Algo == "progressive" && r.Lambda == 0 {
		r.Lambda = 2
	}
	return r, nil
}

// orderOf maps the canonical order name to the stream order.
func orderOf(r SolveRequest) streamcover.Order {
	switch r.Order {
	case "random-once":
		return streamcover.RandomOnce
	case "random-each-pass":
		return streamcover.RandomEachPass
	default:
		return streamcover.Adversarial
	}
}

// cacheKey identifies the result of a normalized request: the instance
// content hash plus every result-affecting option. Workers, NoCache and
// Wait are deliberately absent — the first cannot change the result, the
// others are per-call behavior.
func cacheKey(r SolveRequest) string {
	return fmt.Sprintf("%s|%s|a=%d|e=%g|s=%d|o=%s|g=%t|c=%g|h=%d|k=%d|l=%g",
		r.Instance, r.Algo, r.Alpha, r.Epsilon, r.Seed, r.Order,
		r.GreedySubsolver, r.SampleConstant, r.OptimumHint, r.K, r.Lambda)
}

// job is the scheduler-owned mutable record behind Job snapshots. Fields
// are guarded by Scheduler.mu; done is closed exactly once on reaching a
// terminal status.
type job struct {
	id       string
	status   JobStatus
	req      SolveRequest
	result   *SolveResult
	err      error
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	release  func()             // registry unpin, called once on terminal
	cancel   context.CancelFunc // non-nil while running
	canceled bool               // cancel requested (covers the queued window)
	trace    *traceRecorder     // per-pass solve timeline (streaming algos)
	done     chan struct{}

	// Request-tracing state: nil/empty when the submitting request carried
	// no span (tracing off). The job span brackets the job's whole life —
	// it keeps the trace open in the flight recorder until the job is
	// terminal, even after the submitting HTTP request has returned — and
	// the queue span times the admission-to-worker wait under it.
	span      *trace.Span
	queueSpan *trace.Span
	traceID   string
}

// BadRequestError is a validation failure the HTTP layer maps to 400.
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

// ErrQueueFull is the admission-bound backpressure signal (HTTP 429).
var ErrQueueFull = errors.New("service: job queue full, retry later")

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("service: scheduler stopped")

// ErrUnknownJob is returned for job IDs that were never issued.
var ErrUnknownJob = errors.New("service: unknown job id")

// Config parameterizes NewScheduler. The zero value is production-usable.
type Config struct {
	// Slots is the number of concurrently running jobs (worker pool size).
	// Default: 2, clamped to GOMAXPROCS.
	Slots int
	// JobWorkers is the per-job guess-grid parallelism. Default:
	// GOMAXPROCS / Slots (at least 1), so that Slots × JobWorkers fills the
	// same global budget a single in-process solve would.
	JobWorkers int
	// QueueDepth is the number of admitted-but-not-running jobs held before
	// Submit fails with ErrQueueFull. Default 64.
	QueueDepth int
	// CacheEntries caps the result cache (FIFO eviction). Default 1024;
	// negative disables caching.
	CacheEntries int
	// MaxJobs caps retained job records: once exceeded, the oldest
	// *terminal* jobs are forgotten (their IDs return ErrUnknownJob), so a
	// long-running daemon cannot leak one record per request. In-flight
	// jobs are never pruned; they are bounded by Slots+QueueDepth anyway.
	// Default 4096.
	MaxJobs int
	// DisableReplay turns the pass-replay plane off: no plans are built or
	// attached, and every solve streams honestly each pass. The default
	// (false) builds a replay plan lazily the first time an instance is
	// solved with the multi-pass setcover algorithm and serves all later
	// passes — of that job and every subsequent one on the instance — from
	// it. Replay never changes results (bit-identical by construction and
	// by the replay-parity tests); plan bytes are charged to the registry
	// budget and reported as plan_bytes in /v1/stats.
	DisableReplay bool
	// Metrics, when non-nil, is the obs registry the scheduler registers
	// its instrument families on (job counters, queue/running gauges, job
	// and pass duration histograms, result-cache hit/miss). nil disables
	// scheduler metrics; per-job pass traces are recorded either way.
	Metrics *obs.Registry
	// Logger receives structured job-lifecycle logs (submitted, started,
	// finished with status/duration/accounting). nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if p := runtime.GOMAXPROCS(0); c.Slots > p {
		c.Slots = p
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0) / c.Slots
		if c.JobWorkers < 1 {
			c.JobWorkers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Scheduler admits solve jobs into a fixed worker pool over a registry of
// resident instances. Create with NewScheduler; Stop for a clean shutdown.
type Scheduler struct {
	cfg Config
	reg *registry.Registry

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // job IDs in submit order, scanned by gcJobsLocked
	queue     chan *job
	stopped   bool
	nextID    uint64
	cache     map[string]*SolveResult
	cacheFIFO []string
	stats     Stats

	metrics *schedMetrics // nil without a Config.Metrics registry
	log     *slog.Logger

	wg sync.WaitGroup
}

// NewScheduler starts the worker pool and returns the scheduler.
func NewScheduler(reg *registry.Registry, cfg Config) *Scheduler {
	c := cfg.withDefaults()
	s := &Scheduler{
		cfg:   c,
		reg:   reg,
		jobs:  map[string]*job{},
		queue: make(chan *job, c.QueueDepth),
		cache: map[string]*SolveResult{},
		log:   c.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if c.Metrics != nil {
		s.metrics = newSchedMetrics(c.Metrics, s)
	}
	for i := 0; i < c.Slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the resolved configuration (defaults applied).
func (s *Scheduler) Config() Config { return s.cfg }

// Submit validates and admits a solve job, returning its snapshot
// (StatusQueued, or StatusDone immediately on a cache hit). It fails with
// a *BadRequestError for malformed requests, registry.ErrNotFound for an
// unknown instance hash, ErrQueueFull under backpressure and ErrStopped
// after shutdown.
func (s *Scheduler) Submit(req SolveRequest) (Job, error) {
	return s.SubmitContext(context.Background(), req)
}

// SubmitContext is Submit with a caller context, used only for tracing: when
// ctx carries a span (the HTTP root), the scheduler hangs its admission,
// pin, cache, queue and solve spans off it, and the job's snapshots carry
// the trace ID. The context does NOT bound the job's execution — jobs are
// owned by the scheduler and canceled via Cancel, never by the submitting
// request going away (a waiting handler does that explicitly).
func (s *Scheduler) SubmitContext(ctx context.Context, req SolveRequest) (Job, error) {
	ctx, adm := trace.StartSpan(ctx, "admission")
	defer adm.End()
	req, err := normalize(req)
	if err != nil {
		return Job{}, err
	}
	adm.SetAttr("algo", req.Algo)
	adm.SetAttr("instance", req.Instance)
	_, pin := trace.StartSpan(ctx, "pin")
	_, release, err := s.reg.Acquire(req.Instance)
	pin.SetBool("ok", err == nil)
	pin.End()
	if err != nil {
		return Job{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		release()
		if s.metrics != nil {
			s.metrics.rejected.With("stopped").Inc()
		}
		return Job{}, ErrStopped
	}
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("j%d", s.nextID),
		status:  StatusQueued,
		req:     req,
		created: time.Now(),
		release: release,
		done:    make(chan struct{}),
	}
	if adm.Recording() {
		j.traceID = adm.Context().TraceID.String()
	}
	if !req.NoCache && s.cfg.CacheEntries >= 0 {
		_, cs := trace.StartSpan(ctx, "cache")
		res, ok := s.cache[cacheKey(req)]
		cs.SetBool("hit", ok)
		cs.End()
		if ok {
			now := time.Now()
			j.status = StatusDone
			j.result = res
			j.cacheHit = true
			j.started, j.finished = now, now
			close(j.done)
			release()
			s.stats.CacheHits++
			s.stats.Completed++
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.stats.Submitted++
			s.gcJobsLocked()
			if s.metrics != nil {
				s.metrics.submitted.Inc()
				s.metrics.cacheHits.Inc()
				s.metrics.completed.With(string(StatusDone)).Inc()
			}
			s.log.Info("job cache hit", jobLogAttrs(j, "algo", req.Algo, "instance", req.Instance)...)
			return j.snapshotLocked(), nil
		}
		if s.metrics != nil {
			s.metrics.cacheMisses.Inc()
		}
	}
	select {
	case s.queue <- j:
	default:
		release()
		if s.metrics != nil {
			s.metrics.rejected.With("queue_full").Inc()
		}
		s.log.Warn("job rejected: queue full", "algo", req.Algo, "instance", req.Instance,
			"queue_depth", s.cfg.QueueDepth)
		return Job{}, ErrQueueFull
	}
	// The job span stays open until finishLocked, holding the trace in
	// flight across the async gap; the queue span under it times the wait
	// for a worker slot (ended in runJob, or at cancellation).
	jctx, jspan := trace.StartSpan(ctx, "job")
	jspan.SetAttr("job", j.id)
	j.span = jspan
	_, j.queueSpan = trace.StartSpan(jctx, "queue")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.stats.Submitted++
	s.stats.Queued++
	s.gcJobsLocked()
	if s.metrics != nil {
		s.metrics.submitted.Inc()
	}
	s.log.Info("job queued", jobLogAttrs(j, "algo", req.Algo, "instance", req.Instance,
		"seed", req.Seed, "alpha", req.Alpha, "order", req.Order)...)
	return j.snapshotLocked(), nil
}

// jobLogAttrs builds a job-lifecycle log attribute list, appending the
// trace ID when the job was submitted under a traced request so one grep
// pivots between access log, lifecycle log and recorded trace.
func jobLogAttrs(j *job, attrs ...any) []any {
	out := append([]any{"job", j.id}, attrs...)
	if j.traceID != "" {
		out = append(out, "trace_id", j.traceID)
	}
	return out
}

// gcJobsLocked bounds the job table at Config.MaxJobs records by
// forgetting the oldest terminal jobs (their IDs stop resolving). Caller
// holds s.mu. In-flight jobs are always kept — they are bounded by
// Slots+QueueDepth, so the table never exceeds MaxJobs + that bound.
func (s *Scheduler) gcJobsLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if j := s.jobs[id]; excess > 0 && j.status.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// worker is one slot of the fixed pool: it drains the queue until Stop
// closes it, running one job at a time at JobWorkers-way parallelism.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one dequeued job end to end.
func (s *Scheduler) runJob(j *job) {
	s.mu.Lock()
	s.stats.Queued--
	j.queueSpan.End()
	if j.canceled || s.stopped {
		s.finishLocked(j, nil, context.Canceled)
		s.mu.Unlock()
		s.logFinished(j)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if j.span != nil {
		// The job runs on a scheduler-owned context, not the submitting
		// request's — re-attach the job span so solve-side StartSpan calls
		// land in the same trace.
		ctx = trace.ContextWithSpan(ctx, j.span)
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	if tracedAlgo(j.req.Algo) {
		j.trace = newTraceRecorder(s.metrics, j.req.Algo == "setcover")
	}
	s.stats.Running++
	if s.stats.Running > s.stats.PeakRunning {
		s.stats.PeakRunning = s.stats.Running
	}
	inst, release, err := s.reg.Acquire(j.req.Instance) // recency touch; job already holds a pin
	s.mu.Unlock()
	if err != nil {
		// Unreachable while the submit-time pin is held; defensive.
		cancel()
		s.finish(j, nil, err)
		return
	}
	release()
	s.log.Info("job started", jobLogAttrs(j, "algo", j.req.Algo, "instance", j.req.Instance,
		"workers", s.cfg.JobWorkers)...)

	res, err := s.solve(ctx, inst, j.req, j.trace)
	cancel()
	s.finish(j, res, err)
}

// tracedAlgo reports whether the algo runs a streaming pass driver (and so
// produces a per-pass trace); the offline references (greedy, exact) do not
// stream.
func tracedAlgo(algo string) bool {
	switch algo {
	case "setcover", "maxcover", "progressive", "storeall":
		return true
	}
	return false
}

// logFinished emits the terminal job-lifecycle log line. Called after the
// job is terminal (its record is immutable), outside s.mu.
func (s *Scheduler) logFinished(j *job) {
	attrs := jobLogAttrs(j, "status", string(j.status),
		"duration", j.finished.Sub(j.started))
	if j.result != nil {
		attrs = append(attrs, "cover", len(j.result.Cover),
			"passes", j.result.Passes, "space_words", j.result.SpaceWords)
	}
	if j.err != nil {
		attrs = append(attrs, "err", j.err)
		s.log.Warn("job finished", attrs...)
		return
	}
	s.log.Info("job finished", attrs...)
}

// finish moves a job to its terminal state, releases its registry pin and
// updates stats. finishLocked is the variant for callers holding s.mu.
func (s *Scheduler) finish(j *job, res *SolveResult, err error) {
	s.mu.Lock()
	s.finishLocked(j, res, err)
	s.mu.Unlock()
	s.logFinished(j)
}

func (s *Scheduler) finishLocked(j *job, res *SolveResult, err error) {
	wasRunning := j.status == StatusRunning
	if wasRunning {
		s.stats.Running--
	}
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = res
		s.stats.Completed++
		if res.SpaceWords > s.stats.PeakSpaceWords {
			s.stats.PeakSpaceWords = res.SpaceWords
		}
		// NoCache skips only the lookup; the fresh result still refreshes
		// the cache (the documented semantics of a forced recompute).
		if s.cfg.CacheEntries > 0 {
			s.cacheStoreLocked(cacheKey(j.req), res)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.err = err
		s.stats.Canceled++
	default:
		j.status = StatusFailed
		j.err = err
		s.stats.Failed++
	}
	if s.metrics != nil {
		s.metrics.completed.With(string(j.status)).Inc()
		if wasRunning {
			s.metrics.jobDuration.Observe(j.finished.Sub(j.started).Seconds())
		}
	}
	// Close out the job's spans; the trace commits to the flight recorder
	// here if the submitting HTTP request has already returned. Both Ends
	// are idempotent, so the canceled-while-queued path (queue span already
	// ended by runJob) is safe.
	j.queueSpan.End()
	j.span.SetAttr("status", string(j.status))
	j.span.End()
	j.release()
	close(j.done)
}

func (s *Scheduler) cacheStoreLocked(key string, res *SolveResult) {
	if _, ok := s.cache[key]; ok {
		return
	}
	if len(s.cacheFIFO) >= s.cfg.CacheEntries {
		delete(s.cache, s.cacheFIFO[0])
		s.cacheFIFO = s.cacheFIFO[1:]
	}
	s.cache[key] = res
	s.cacheFIFO = append(s.cacheFIFO, key)
}

// replayPlan returns the pass-replay plan for the instance, building it
// lazily on the first multi-pass solve and attaching it to the registry
// entry (which charges the plan's bytes to the memory budget and drops the
// plan if the instance is evicted). Returns nil — and the solve streams
// honestly — when replay is disabled or the plan does not fit the budget.
// Concurrent first solves may each build a plan; the registry keeps exactly
// one and the losers serve their own copy for just their job.
func (s *Scheduler) replayPlan(ctx context.Context, inst *streamcover.Instance, hash string) *streamcover.ReplayPlan {
	if s.cfg.DisableReplay {
		return nil
	}
	_, sp := trace.StartSpan(ctx, "plan")
	defer sp.End()
	if p, ok := s.reg.Plan(hash); ok {
		plan, _ := p.(*streamcover.ReplayPlan)
		sp.SetBool("reused", true)
		return plan
	}
	plan, err := streamcover.BuildReplayPlan(inst)
	if err != nil {
		return nil
	}
	sp.SetBool("reused", false)
	sp.SetInt64("bytes", int64(plan.Bytes()))
	if !s.reg.AttachPlan(hash, plan, plan.Bytes()) {
		if p, ok := s.reg.Plan(hash); ok {
			// Lost a build race: use the attached winner.
			if attached, k := p.(*streamcover.ReplayPlan); k {
				return attached
			}
		}
		// Over budget: still worth using for this one job — the bytes are
		// transient (job-lifetime, like any solve scratch), not resident.
	}
	return plan
}

// solve dispatches one job to the right solver, threading the job context,
// the per-job worker budget, and the job's pass-trace recorder (nil for the
// offline references).
func (s *Scheduler) solve(ctx context.Context, inst *streamcover.Instance, req SolveRequest, tr *traceRecorder) (*SolveResult, error) {
	workers := s.cfg.JobWorkers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}
	ctx, sp := trace.StartSpan(ctx, "solve")
	defer sp.End()
	sp.SetAttr("algo", req.Algo)
	sp.SetInt("workers", workers)
	// Bridge the per-pass trace sink: each completed pass becomes one event
	// on the solve span, reusing the drivers' existing single
	// instrumentation point.
	tr.setSpan(sp)
	// A typed-nil recorder must become an untyped-nil sink, or the drivers
	// would see a non-nil interface and trace into nothing.
	var sink stream.TraceSink
	if tr != nil {
		sink = tr
	}
	switch req.Algo {
	case "setcover":
		opts := []streamcover.Option{
			streamcover.WithAlpha(req.Alpha), streamcover.WithEpsilon(req.Epsilon),
			streamcover.WithOrder(orderOf(req)), streamcover.WithSeed(req.Seed),
			streamcover.WithParallelism(workers), streamcover.WithContext(ctx),
			streamcover.WithPassTrace(sink),
		}
		if req.GreedySubsolver {
			opts = append(opts, streamcover.WithGreedySubsolver())
		}
		if req.SampleConstant > 0 {
			opts = append(opts, streamcover.WithSampleConstant(req.SampleConstant))
		}
		if req.OptimumHint > 0 {
			opts = append(opts, streamcover.WithOptimumHint(req.OptimumHint))
		}
		if plan := s.replayPlan(ctx, inst, req.Instance); plan != nil {
			opts = append(opts, streamcover.WithReplayPlan(plan))
		}
		res, err := streamcover.SolveSetCover(inst, opts...)
		if err != nil {
			return nil, err
		}
		return &SolveResult{Cover: res.Cover, Guess: res.Guess, Passes: res.Passes, SpaceWords: res.SpaceWords}, nil
	case "maxcover":
		opts := []streamcover.Option{
			streamcover.WithEpsilon(req.Epsilon), streamcover.WithOrder(orderOf(req)),
			streamcover.WithSeed(req.Seed), streamcover.WithParallelism(workers),
			streamcover.WithContext(ctx), streamcover.WithPassTrace(sink),
		}
		if req.GreedySubsolver {
			opts = append(opts, streamcover.WithGreedySubsolver())
		}
		if req.SampleConstant > 0 {
			opts = append(opts, streamcover.WithSampleConstant(req.SampleConstant))
		}
		res, err := streamcover.SolveMaxCoverage(inst, req.K, opts...)
		if err != nil {
			return nil, err
		}
		return &SolveResult{Cover: res.Chosen, Covered: res.Covered, Passes: res.Passes, SpaceWords: res.SpaceWords}, nil
	case "greedy":
		cover, err := streamcover.GreedySetCoverContext(ctx, inst)
		if err != nil {
			return nil, err
		}
		return &SolveResult{Cover: cover}, nil
	case "exact":
		cover, err := streamcover.ExactSetCoverContext(ctx, inst)
		if err != nil {
			return nil, err
		}
		return &SolveResult{Cover: cover}, nil
	case "progressive":
		pg := baselines.NewProgressiveGreedy(inst.N, req.Lambda)
		return s.runBaseline(ctx, inst, req, pg, pg.MaxPasses(), pg.Result, sink)
	case "storeall":
		sa := baselines.NewStoreAllGreedy(inst.N)
		return s.runBaseline(ctx, inst, req, sa, 2, sa.Result, sink)
	default:
		return nil, &BadRequestError{fmt.Sprintf("unknown algo %q", req.Algo)}
	}
}

// runBaseline drives a streaming baseline over the instance in the
// requested order, mirroring covercli's local driver.
func (s *Scheduler) runBaseline(ctx context.Context, inst *streamcover.Instance, req SolveRequest,
	alg stream.PassAlgorithm, maxPasses int, result func() ([]int, bool), sink stream.TraceSink) (*SolveResult, error) {
	var orderRNG *rng.RNG
	if orderOf(req) != streamcover.Adversarial {
		orderRNG = rng.New(req.Seed)
	}
	st := stream.FromInstance(inst, orderOf(req), orderRNG)
	acc, err := stream.RunTraced(ctx, st, alg, maxPasses, sink)
	if err != nil {
		return nil, err
	}
	cover, ok := result()
	if !ok {
		return nil, streamcover.ErrInfeasible
	}
	sort.Ints(cover)
	return &SolveResult{Cover: cover, Passes: acc.Passes, SpaceWords: acc.PeakSpace}, nil
}

// Cancel requests cancellation of a job: queued jobs terminate without
// running, running jobs abort at the solver's next cancellation poll. It
// is a no-op on terminal jobs.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	j.canceled = true
	if j.cancel != nil {
		j.cancel()
	}
	return nil
}

// Job returns the snapshot of a job.
func (s *Scheduler) Job(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return j.snapshotLocked(), nil
}

// Handle is a stable subscription to one job: it holds direct references
// to the job record and its completion channel, so the job's terminal
// snapshot stays observable even after the MaxJobs GC forgets the record's
// ID. Waiters must use a Handle (or Wait, built on one) rather than
// re-resolving the ID around a blocking point — a busy scheduler can prune
// a just-finished job between "it completed" and "read its result", and an
// ID re-lookup would then misreport the finished job as unknown.
type Handle struct {
	s *Scheduler
	j *job
}

// Done returns the channel the scheduler closes when the job reaches a
// terminal status.
func (h *Handle) Done() <-chan struct{} { return h.j.done }

// Snapshot returns the job's current snapshot. After Done is closed it is
// the final, immutable state.
func (h *Handle) Snapshot() Job {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.j.snapshotLocked()
}

// Subscribe returns a stable Handle on the job, or ErrUnknownJob if the ID
// was never issued (or already pruned by the MaxJobs GC).
func (s *Scheduler) Subscribe(id string) (*Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return &Handle{s: s, j: j}, nil
}

// Wait blocks until the job reaches a terminal status (returning its final
// snapshot) or ctx is done (returning ctx.Err()).
func (s *Scheduler) Wait(ctx context.Context, id string) (Job, error) {
	h, err := s.Subscribe(id)
	if err != nil {
		return Job{}, err
	}
	select {
	case <-h.Done():
		return h.Snapshot(), nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Stats returns the cumulative scheduler accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CacheSize = len(s.cache)
	st.Slots = s.cfg.Slots
	st.JobWorkers = s.cfg.JobWorkers
	st.QueueDepth = s.cfg.QueueDepth
	return st
}

// Stop shuts the scheduler down: no new submissions, queued jobs are
// canceled, running jobs' contexts are canceled, and Stop returns once all
// workers have exited. Idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	close(s.queue) // Submit holds s.mu for its send, so this cannot race
	for _, j := range s.jobs {
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// snapshotLocked copies the job into its wire form. Caller holds s.mu (or
// has exclusive access during construction).
func (j *job) snapshotLocked() Job {
	out := Job{
		ID:       j.id,
		Status:   j.status,
		Request:  j.req,
		CacheHit: j.cacheHit,
		Created:  j.created,
	}
	if j.result != nil {
		r := *j.result
		r.Cover = append([]int(nil), j.result.Cover...)
		out.Result = &r
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		out.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.Finished = &t
	}
	if j.trace != nil {
		out.Trace = j.trace.snapshot() // nil before the first pass completes
	}
	out.TraceID = j.traceID
	return out
}
