package service

import (
	"context"
	"testing"

	"streamcover"
	"streamcover/client"
	"streamcover/internal/obs/trace"
	"streamcover/internal/registry"
	"streamcover/internal/stream"
)

// BenchmarkSolveTracing measures the request-tracing plane's cost on a full
// scheduler solve: identical jobs with the flight recorder attached (root
// span, scheduler child spans, one event per pass) and with tracing off
// (the nil chain). The recorded delta is the plane's whole overhead —
// BENCH_obs.json tracks it across PRs.
func BenchmarkSolveTracing(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			reg := registry.New(registry.Config{})
			sched := NewScheduler(reg, Config{Slots: 1, CacheEntries: -1})
			defer sched.Stop()
			inst, _ := streamcover.GeneratePlanted(3, 2048, 256, 4)
			hash, _, err := reg.Put(inst)
			if err != nil {
				b.Fatal(err)
			}
			var tracer *trace.Tracer
			if mode == "on" {
				tracer = trace.NewTracer(trace.DefaultCapacity, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh seed defeats the result cache; StartRoot on a nil
				// tracer is the production disabled path.
				ctx, root := tracer.StartRoot(context.Background(), "bench", trace.SpanContext{})
				job, err := sched.SubmitContext(ctx, SolveRequest{
					Instance: hash, Seed: uint64(i + 1), NoCache: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				final, err := sched.Wait(context.Background(), job.ID)
				root.End()
				if err != nil {
					b.Fatal(err)
				}
				if final.Status != StatusDone {
					b.Fatalf("job %s: %s", final.Status, final.Error)
				}
			}
		})
	}
}

// TestTracingDisabledHotPathAllocs guards the zero-perturbation contract at
// the service layer: with no span attached (tracing off), the per-pass
// bridge must not allocate — the pass slice is the only append, and it is
// pre-grown here so any allocation the test sees comes from the tracing
// path. The trace package pins the same property for the span API itself.
func TestTracingDisabledHotPathAllocs(t *testing.T) {
	rec := newTraceRecorder(nil, false)
	rec.passes = make([]client.PassTrace, 0, 8)
	sample := stream.PassSample{Pass: 1, Items: 100, SpaceWords: 64, Live: -1}
	allocs := testing.AllocsPerRun(200, func() {
		rec.passes = rec.passes[:0]
		rec.TracePass(sample)
	})
	if allocs != 0 {
		t.Fatalf("untraced TracePass allocates %.1f times per pass, want 0", allocs)
	}
}
