package service

import (
	"sort"

	"streamcover/client"
	"streamcover/internal/obs/trace"
)

// Trace wire types, aliased from the public client package like the rest
// of the API surface.
type (
	RecordedTrace  = client.RecordedTrace
	TraceSpan      = client.TraceSpan
	TraceEvent     = client.TraceEvent
	TracesResponse = client.TracesResponse
	DebugBundle    = client.DebugBundle
)

// wireTrace converts one flight-recorder trace to its wire form: the flat
// end-ordered span list becomes a tree (children nested under parents,
// ordered by start time), ready for JSON.
func wireTrace(rec trace.Recorded) RecordedTrace {
	nodes := make([]TraceSpan, len(rec.Spans))
	index := make(map[trace.SpanID]int, len(rec.Spans))
	for i, s := range rec.Spans {
		nodes[i] = TraceSpan{
			SpanID:          s.SpanID.String(),
			Name:            s.Name,
			Start:           s.Start,
			DurationSeconds: s.Duration().Seconds(),
			Attrs:           attrMap(s.Attrs),
			Events:          wireEvents(s.Events),
		}
		if !s.Parent.IsZero() {
			nodes[i].Parent = s.Parent.String()
		}
		index[s.SpanID] = i
	}
	// Group children by parent. Spans whose parent has no record here —
	// local roots, or the server root of a client-propagated trace — are
	// the tree roots.
	children := make(map[int][]int)
	var roots []int
	for i, s := range rec.Spans {
		if p, ok := index[s.Parent]; ok && !s.Parent.IsZero() {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return nodes[idx[a]].Start.Before(nodes[idx[b]].Start) })
	}
	var build func(i int) TraceSpan
	build = func(i int) TraceSpan {
		n := nodes[i]
		kids := children[i]
		byStart(kids)
		for _, k := range kids {
			n.Children = append(n.Children, build(k))
		}
		return n
	}
	byStart(roots)
	out := RecordedTrace{TraceID: rec.TraceID.String(), DroppedSpans: rec.Dropped}
	for _, r := range roots {
		out.Spans = append(out.Spans, build(r))
	}
	return out
}

func wireTraces(recs []trace.Recorded) []RecordedTrace {
	out := make([]RecordedTrace, len(recs))
	for i, r := range recs {
		out[i] = wireTrace(r)
	}
	return out
}

// attrMap flattens span attributes for JSON. Later values win on duplicate
// keys (a span that sets the same attribute twice meant the update).
func attrMap(attrs []trace.Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func wireEvents(events []trace.Event) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, e := range events {
		out[i] = TraceEvent{Name: e.Name, Time: e.Time, Attrs: attrMap(e.Attrs)}
	}
	return out
}
