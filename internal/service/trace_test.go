package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/obs"
	"streamcover/internal/obs/trace"
	"streamcover/internal/registry"
)

// syncBuffer is a goroutine-safe log sink: the access log writes from the
// server goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every JSON log line written so far.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// newTracedEnv starts a fully instrumented server: tracing, metrics, access
// log into buf, lifecycle logs into the same buffer.
func newTracedEnv(t *testing.T, buf *syncBuffer) (*httptest.Server, *Server, *trace.Tracer) {
	t.Helper()
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	reg := registry.New(registry.Config{})
	sched := NewScheduler(reg, Config{Slots: 1, Logger: logger})
	tracer := trace.NewTracer(8, 0)
	h := NewServer(reg, sched, 0,
		WithTracing(tracer), WithMetrics(obs.NewRegistry()),
		WithAccessLog(), WithLogger(logger))
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return srv, h, tracer
}

// waitTrace polls the flight recorder for a trace: the root span ends after
// the response bytes reach the client, so the commit races the test.
func waitTrace(t *testing.T, tracer *trace.Tracer, id trace.TraceID) trace.Recorded {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rec, ok := tracer.Lookup(id); ok {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %s never committed", id)
	return trace.Recorded{}
}

func spanByName(rec trace.Recorded, name string) (trace.SpanData, bool) {
	for _, s := range rec.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return trace.SpanData{}, false
}

// TestTracePropagationEndToEnd pins the acceptance criterion: a
// client-supplied traceparent yields a server-side trace whose span tree
// contains the admission, queue, pin, plan and solve spans with one event
// per solve pass, and the same trace ID appears in the X-Request-Id header,
// the job snapshot, the access log and the lifecycle log.
func TestTracePropagationEndToEnd(t *testing.T) {
	var buf syncBuffer
	srv, _, tracer := newTracedEnv(t, &buf)
	inst, _ := streamcover.GeneratePlanted(7, 1024, 128, 3)
	up := upload(t, srv.URL, inst, http.StatusCreated)

	const (
		traceIDHex = "0123456789abcdef0123456789abcdef"
		parentHex  = "00f067aa0ba902b7"
	)
	tp := "00-" + traceIDHex + "-" + parentHex + "-01"

	body, _ := json.Marshal(SolveRequest{Instance: up.Hash, Wait: true})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceIDHex {
		t.Fatalf("X-Request-Id = %q, want the propagated trace id %q", got, traceIDHex)
	}
	job := decode[Job](t, resp, http.StatusOK)
	if job.Status != StatusDone {
		t.Fatalf("job %s (%s)", job.Status, job.Error)
	}
	if job.TraceID != traceIDHex {
		t.Fatalf("job snapshot trace_id = %q, want %q", job.TraceID, traceIDHex)
	}

	id, err := trace.ParseRequestID(traceIDHex)
	if err != nil {
		t.Fatal(err)
	}
	rec := waitTrace(t, tracer, id)

	root, ok := spanByName(rec, "HTTP POST /v1/solve")
	if !ok {
		t.Fatalf("no HTTP root span in %v", spanNames(rec))
	}
	if root.Parent.String() != parentHex {
		t.Fatalf("root parented under %s, want the client span %s", root.Parent, parentHex)
	}
	for _, name := range []string{"admission", "pin", "cache", "queue", "job", "solve", "plan"} {
		if _, ok := spanByName(rec, name); !ok {
			t.Fatalf("span %q missing from trace %v", name, spanNames(rec))
		}
	}
	solve, _ := spanByName(rec, "solve")
	passes := 0
	for _, ev := range solve.Events {
		if ev.Name == "pass" {
			passes++
		}
	}
	if passes != job.Result.Passes {
		t.Fatalf("solve span has %d pass events, want %d (one per solve pass)", passes, job.Result.Passes)
	}

	// One grep pivots across planes: the access log line and the job
	// lifecycle lines all carry the propagated trace ID.
	var sawAccess, sawLifecycle bool
	for _, line := range buf.logLines(t) {
		if line["trace_id"] != traceIDHex {
			continue
		}
		switch line["msg"] {
		case "request":
			sawAccess = true
			if line["request_id"] != traceIDHex {
				t.Fatalf("access log request_id = %v, want %q", line["request_id"], traceIDHex)
			}
			if line["span_id"] != root.SpanID.String() {
				t.Fatalf("access log span_id = %v, want root %s", line["span_id"], root.SpanID)
			}
		case "job finished":
			sawLifecycle = true
		}
	}
	if !sawAccess || !sawLifecycle {
		t.Fatalf("trace id missing from logs (access=%t lifecycle=%t):\n%s", sawAccess, sawLifecycle, buf.String())
	}
}

func spanNames(rec trace.Recorded) []string {
	names := make([]string, len(rec.Spans))
	for i, s := range rec.Spans {
		names[i] = s.Name
	}
	return names
}

// TestTraceAsyncSubmit pins the flight recorder's refcount commit: on an
// async submit the HTTP request returns while the job still runs, and the
// trace must stay open — committing with the job's solve spans — until the
// job's last span ends.
func TestTraceAsyncSubmit(t *testing.T) {
	var buf syncBuffer
	srv, _, tracer := newTracedEnv(t, &buf)
	inst, _ := streamcover.GeneratePlanted(9, 1024, 128, 3)
	up := upload(t, srv.URL, inst, http.StatusCreated)

	sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
	body, _ := json.Marshal(SolveRequest{Instance: up.Hash, Seed: 3})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	job := decode[Job](t, resp, http.StatusAccepted)
	if job.TraceID != sc.TraceID.String() {
		t.Fatalf("job snapshot trace_id = %q, want %q", job.TraceID, sc.TraceID)
	}

	rec := waitTrace(t, tracer, sc.TraceID)
	for _, name := range []string{"HTTP POST /v1/solve", "job", "queue", "solve"} {
		if _, ok := spanByName(rec, name); !ok {
			t.Fatalf("span %q missing from async trace %v", name, spanNames(rec))
		}
	}
}

// TestTraceEndpoint covers GET /v1/traces/{id}: the wire span tree nests
// children under parents, bad IDs are 400, unknown ones 404.
func TestTraceEndpoint(t *testing.T) {
	var buf syncBuffer
	srv, _, tracer := newTracedEnv(t, &buf)

	sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", sc.Traceparent())
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	waitTrace(t, tracer, sc.TraceID)

	resp, err := http.Get(srv.URL + "/v1/traces/" + sc.TraceID.String())
	if err != nil {
		t.Fatal(err)
	}
	wire := decode[RecordedTrace](t, resp, http.StatusOK)
	if wire.TraceID != sc.TraceID.String() {
		t.Fatalf("wire trace id %q, want %q", wire.TraceID, sc.TraceID)
	}
	if len(wire.Spans) != 1 || wire.Spans[0].Name != "HTTP GET /v1/healthz" {
		t.Fatalf("wire roots = %+v, want the single HTTP root", wire.Spans)
	}
	if wire.Spans[0].Parent != sc.SpanID.String() {
		t.Fatalf("wire root parent %q, want %q", wire.Spans[0].Parent, sc.SpanID)
	}

	resp, err = http.Get(srv.URL + "/v1/traces/not-a-trace-id")
	if err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, resp, http.StatusBadRequest)
	resp, err = http.Get(srv.URL + "/v1/traces/" + trace.NewTraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, resp, http.StatusNotFound)
}

// TestRequestIDFallback: without a traceparent (and even without tracing),
// the middleware mints a request ID, echoes it in X-Request-Id and stamps
// the access log line with it.
func TestRequestIDFallback(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	reg := registry.New(registry.Config{})
	sched := NewScheduler(reg, Config{Slots: 1})
	srv := httptest.NewServer(NewServer(reg, sched, 0, WithAccessLog(), WithLogger(logger)))
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(got) {
		t.Fatalf("fallback X-Request-Id = %q, want 32 lowercase hex digits", got)
	}
	var found bool
	for _, line := range buf.logLines(t) {
		if line["msg"] != "request" {
			continue
		}
		found = true
		if line["request_id"] != got {
			t.Fatalf("access log request_id = %v, want header value %q", line["request_id"], got)
		}
		if _, ok := line["trace_id"]; ok {
			t.Fatalf("untraced request logged a trace_id: %v", line)
		}
	}
	if !found {
		t.Fatalf("no access log line:\n%s", buf.String())
	}
}

// TestDebugEndpoints covers RegisterDebug: /debug/traces lists recent
// traces and /debug/bundle packages stats + metrics + traces in one body.
func TestDebugEndpoints(t *testing.T) {
	var buf syncBuffer
	srv, h, tracer := newTracedEnv(t, &buf)

	sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", sc.Traceparent())
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	waitTrace(t, tracer, sc.TraceID)

	dmux := http.NewServeMux()
	h.RegisterDebug(dmux)
	dsrv := httptest.NewServer(dmux)
	t.Cleanup(dsrv.Close)

	resp, err := http.Get(dsrv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	traces := decode[TracesResponse](t, resp, http.StatusOK)
	var found bool
	for _, tr := range traces.Traces {
		if tr.TraceID == sc.TraceID.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in /debug/traces", sc.TraceID)
	}

	resp, err = http.Get(dsrv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	bundle := decode[DebugBundle](t, resp, http.StatusOK)
	if len(bundle.Traces) == 0 {
		t.Fatal("bundle has no traces")
	}
	if !strings.Contains(bundle.Metrics, "coverd_http_requests_total") {
		t.Fatalf("bundle metrics missing exposition:\n%.200s", bundle.Metrics)
	}
	if bundle.Stats.Scheduler.Slots == 0 {
		t.Fatalf("bundle stats empty: %+v", bundle.Stats)
	}

	resp, err = http.Get(dsrv.URL + "/debug/traces?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, resp, http.StatusBadRequest)
}
