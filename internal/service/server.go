package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"streamcover/client"
	"streamcover/internal/obs"
	"streamcover/internal/obs/trace"
	"streamcover/internal/registry"
	"streamcover/internal/setsystem"
)

// Server is the HTTP face of the solve service — coverd's handler. The API
// is JSON over five endpoints:
//
//	POST   /v1/instances        upload an instance (either on-disk codec,
//	                            sniffed); responds with its content hash
//	POST   /v1/solve            submit a solve job; ?wait / "wait":true
//	                            blocks until the job finishes (the request
//	                            context cancels the job if the client goes
//	                            away mid-wait)
//	GET    /v1/jobs/{id}        job snapshot; ?watch=1 streams NDJSON
//	                            snapshots on every status or trace change
//	                            until the job is terminal
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/healthz          readiness: "ok", or "degraded" + 503 with
//	                            reasons when the queue is saturated or the
//	                            registry is nearly out of budget
//	GET    /v1/stats            scheduler + registry + cache counters
//	GET    /metrics             Prometheus text exposition (only with
//	                            WithMetrics)
//	GET    /v1/traces/{id}      recorded span tree for one trace ID (only
//	                            with WithTracing)
//
// Every response is JSON; errors are {"error": "..."} with a matching
// status code (400 malformed, 404 unknown instance/job, 413 oversized
// upload, 429 queue full, 507 registry budget exhausted).
type Server struct {
	reg       *registry.Registry
	sched     *Scheduler
	mux       *http.ServeMux
	started   time.Time
	maxUpload int64

	log       *slog.Logger
	accessLog bool
	metrics   *httpMetrics  // nil without WithMetrics
	tracer    *trace.Tracer // nil without WithTracing
}

// DefaultMaxUploadBytes bounds POST /v1/instances bodies.
const DefaultMaxUploadBytes = 1 << 30

// ServerOption customizes a Server beyond the required wiring.
type ServerOption func(*Server)

// WithMetrics registers the server's HTTP instrument families (request
// counts and latencies by route, in-flight gauge) on m and serves the whole
// registry's exposition at GET /metrics.
func WithMetrics(m *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = newHTTPMetrics(m) }
}

// WithLogger routes the server's structured logs (response-write failures,
// the optional access log) to log. nil keeps the default discard logger.
func WithLogger(log *slog.Logger) ServerOption {
	return func(s *Server) {
		if log != nil {
			s.log = log
		}
	}
}

// WithAccessLog emits one structured log line per completed request.
func WithAccessLog() ServerOption {
	return func(s *Server) { s.accessLog = true }
}

// WithTracing turns on the request-tracing plane: every request gets a
// root span (adopting a client-sent W3C traceparent, or minting fresh
// identity), handlers and the scheduler hang child spans and pass events
// off it, and completed traces land in tr's flight recorder, served at
// GET /v1/traces/{id} and the debug endpoints (RegisterDebug). A nil
// tracer leaves tracing off.
func WithTracing(tr *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// NewServer wires the handler around a registry and scheduler.
// maxUploadBytes <= 0 selects DefaultMaxUploadBytes.
func NewServer(reg *registry.Registry, sched *Scheduler, maxUploadBytes int64, opts ...ServerOption) *Server {
	if maxUploadBytes <= 0 {
		maxUploadBytes = DefaultMaxUploadBytes
	}
	s := &Server{
		reg: reg, sched: sched, mux: http.NewServeMux(),
		started: time.Now(), maxUpload: maxUploadBytes,
		log: slog.New(slog.DiscardHandler),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/instances", s.handleUpload)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	if s.metrics != nil {
		s.mux.Handle("GET /metrics", obs.Handler(s.metrics.reg))
	}
	if s.tracer != nil {
		s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	}
	return s
}

// httpMetrics is the server's instrument set: white-box request accounting
// by route pattern and status code, sampled in the ServeHTTP middleware.
type httpMetrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // route, code
	duration *obs.HistogramVec // route
	inFlight *obs.Gauge
}

func newHTTPMetrics(r *obs.Registry) *httpMetrics {
	return &httpMetrics{
		reg: r,
		requests: r.CounterVec("coverd_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		duration: r.HistogramVec("coverd_http_request_duration_seconds",
			"HTTP request latency by route pattern.", obs.DefBuckets, "route"),
		inFlight: r.Gauge("coverd_http_requests_in_flight",
			"Requests currently being served."),
	}
}

// statusWriter captures the response status code for the middleware while
// delegating everything else — including Flush, which the ?watch=1 NDJSON
// stream depends on — to the wrapped writer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler. With metrics, access logging or tracing
// enabled it wraps the mux in a recording middleware; otherwise it is the
// bare mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil && !s.accessLog && s.tracer == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	route := "unmatched"
	if _, pattern := s.mux.Handler(r); pattern != "" {
		route = pattern
	}
	if s.metrics != nil {
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
	}
	// Request identity: adopt the client's traceparent when one parses
	// (malformed headers are treated as absent, per the W3C recommendation),
	// otherwise mint fresh. The trace ID doubles as the request ID — echoed
	// in X-Request-Id, stamped on the access log, and with tracing on it
	// names the recorded span tree at GET /v1/traces/{id}.
	var remote trace.SpanContext
	if tp := r.Header.Get(trace.Traceparent); tp != "" {
		remote, _ = trace.ParseTraceparent(tp)
	}
	var sp *trace.Span
	if s.tracer != nil {
		var ctx context.Context
		ctx, sp = s.tracer.StartRoot(r.Context(), "HTTP "+route, remote)
		sp.SetAttr("http.method", r.Method)
		sp.SetAttr("http.path", r.URL.Path)
		r = r.WithContext(ctx)
	}
	requestID := sp.Context().TraceID
	if requestID.IsZero() {
		if remote.Valid() {
			requestID = remote.TraceID
		} else {
			requestID = trace.NewTraceID()
		}
	}
	w.Header().Set("X-Request-Id", requestID.String())
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(start)
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	if sp != nil {
		sp.SetInt("http.status", sw.code)
		sp.End()
	}
	if s.metrics != nil {
		s.metrics.requests.With(route, strconv.Itoa(sw.code)).Inc()
		s.metrics.duration.With(route).Observe(elapsed.Seconds())
	}
	if s.accessLog {
		args := []any{"method", r.Method, "path", r.URL.Path,
			"route", route, "code", sw.code, "duration", elapsed,
			"remote", r.RemoteAddr, "request_id", requestID.String()}
		if sc := sp.Context(); sc.Valid() {
			args = append(args, "trace_id", sc.TraceID.String(), "span_id", sc.SpanID.String())
		}
		s.log.Info("request", args...)
	}
}

// Response bodies are defined in the public client package; aliased here
// for use sites and tests.
type (
	UploadResponse = client.UploadResponse
	ErrorResponse  = client.ErrorResponse
	HealthResponse = client.HealthResponse
	StatsResponse  = client.StatsResponse
)

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	inst, err := setsystem.ReadAuto(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("instance exceeds the %d-byte upload limit", s.maxUpload))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("undecodable instance: %v", err))
		return
	}
	hash, added, err := s.reg.Put(inst)
	if err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	code := http.StatusOK
	if added {
		code = http.StatusCreated
	}
	s.writeJSON(w, code, UploadResponse{
		Hash: hash, N: inst.N, M: inst.M(), Added: added, Bytes: setsystem.SizeBytes(inst),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad solve request: %v", err))
		return
	}
	if v := r.URL.Query().Get("wait"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad wait parameter %q: want a boolean", v))
			return
		}
		req.Wait = b
	}
	job, err := s.sched.SubmitContext(r.Context(), req)
	if err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	if !req.Wait {
		s.writeJSON(w, http.StatusAccepted, job)
		return
	}
	final, err := s.sched.Wait(r.Context(), job.ID)
	if err != nil {
		// The waiting client went away: it created this job, so abort the
		// work rather than burn a slot for nobody.
		s.sched.Cancel(job.ID)
		s.writeError(w, 499, fmt.Sprintf("client disconnected while waiting; job %s canceled: %v", job.ID, err))
		return
	}
	s.writeJSON(w, http.StatusOK, final)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if watch, _ := strconv.ParseBool(r.URL.Query().Get("watch")); watch {
		s.watchJob(w, r, id)
		return
	}
	job, err := s.sched.Job(id)
	if err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// watchJob streams NDJSON job snapshots: one line immediately, one on
// every observed status change or newly completed solve pass, and the
// final line is the terminal snapshot. This is the streaming side of the
// API — a client tails one response instead of polling, and sees the
// per-pass trace grow while the solve runs. Snapshots come from a
// Subscribe handle, not repeated ID lookups, so the stream always ends
// with the terminal snapshot even if the MaxJobs GC prunes the job the
// moment it finishes.
func (s *Server) watchJob(w http.ResponseWriter, r *http.Request, id string) {
	h, err := s.sched.Subscribe(id)
	if err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	var last JobStatus
	lastPasses := -1
	emit := func() (terminal bool) {
		job := h.Snapshot()
		passes := 0
		if job.Trace != nil {
			passes = len(job.Trace.Passes)
		}
		if job.Status == last && passes == lastPasses {
			return job.Status.Terminal()
		}
		last, lastPasses = job.Status, passes
		if err := enc.Encode(job); err != nil {
			s.log.Debug("watch stream write failed", "job", id, "err", err)
			return true
		}
		if flusher != nil {
			flusher.Flush()
		}
		return job.Status.Terminal()
	}
	if emit() {
		return
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-h.Done():
			emit()
			return
		case <-ticker.C:
			if emit() {
				return
			}
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	job, err := s.sched.Job(id)
	if err != nil {
		s.writeError(w, statusFor(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// handleHealth is a readiness probe, not bare liveness: it reports
// "degraded" with a 503 and the list of reasons when the service would
// reject or stall new work — the job queue is saturated, or the registry is
// within 5% of its byte budget (the next upload likely fails with 507).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if st := s.sched.Stats(); st.QueueDepth > 0 && st.Queued >= st.QueueDepth {
		reasons = append(reasons, "job queue saturated")
	}
	if rst := s.reg.Stats(); rst.BudgetBytes > 0 && rst.ResidentBytes >= rst.BudgetBytes-rst.BudgetBytes/20 {
		reasons = append(reasons, "registry within 5% of byte budget")
	}
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Reasons:       reasons,
	}
	code := http.StatusOK
	if len(reasons) > 0 {
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.stats())
}

func (s *Server) stats() StatsResponse {
	return StatsResponse{
		Scheduler: s.sched.Stats(),
		Registry:  s.reg.Stats(),
		Instances: s.reg.Snapshot(),
	}
}

// handleTrace serves one recorded span tree by trace ID. 404 means the
// trace is still in flight (a span has not ended yet), already evicted from
// the flight recorder ring, or was never seen.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := trace.ParseRequestID(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad trace id %q: want 32 lowercase hex digits or a traceparent value", r.PathValue("id")))
		return
	}
	rec, ok := s.tracer.Lookup(id)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("trace %s not recorded (still in flight, evicted, or never seen)", id))
		return
	}
	s.writeJSON(w, http.StatusOK, wireTrace(rec))
}

// debugRecentTraces bounds /debug/traces and /debug/bundle responses.
const debugRecentTraces = 16

// RegisterDebug installs the operator debug endpoints on mux — coverd hangs
// these off the -debug-addr listener next to pprof, never the public API
// port:
//
//	GET /debug/traces   recent completed traces as JSON span trees, newest
//	                    first (?n= bounds the count, default 16)
//	GET /debug/bundle   one self-contained JSON document for attaching to an
//	                    incident report: stats + metrics exposition + recent
//	                    traces
func (s *Server) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/bundle", s.handleDebugBundle)
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	n := debugRecentTraces
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad n parameter %q: want a positive integer", v))
			return
		}
		n = p
	}
	s.writeJSON(w, http.StatusOK, TracesResponse{Traces: wireTraces(s.tracer.Recent(n))})
}

func (s *Server) handleDebugBundle(w http.ResponseWriter, _ *http.Request) {
	bundle := DebugBundle{
		Stats:  s.stats(),
		Traces: wireTraces(s.tracer.Recent(debugRecentTraces)),
	}
	if s.metrics != nil {
		var buf bytes.Buffer
		if err := s.metrics.reg.WritePrometheus(&buf); err == nil {
			bundle.Metrics = buf.String()
		}
	}
	s.writeJSON(w, http.StatusOK, bundle)
}

// statusFor maps service/registry errors to HTTP status codes.
func statusFor(err error) int {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, registry.ErrBudget):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes one JSON response body. Encode failures after the header
// is out cannot reach the client anymore (the status code is already on the
// wire), so they are logged instead of silently dropped — almost always a
// client that hung up mid-response.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("response write failed", "code", code, "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, ErrorResponse{Error: msg})
}
