package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"streamcover/client"
	"streamcover/internal/registry"
	"streamcover/internal/setsystem"
)

// Server is the HTTP face of the solve service — coverd's handler. The API
// is JSON over five endpoints:
//
//	POST   /v1/instances        upload an instance (either on-disk codec,
//	                            sniffed); responds with its content hash
//	POST   /v1/solve            submit a solve job; ?wait / "wait":true
//	                            blocks until the job finishes (the request
//	                            context cancels the job if the client goes
//	                            away mid-wait)
//	GET    /v1/jobs/{id}        job snapshot; ?watch=1 streams NDJSON
//	                            snapshots on every status change until the
//	                            job is terminal
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            scheduler + registry + cache counters
//
// Every response is JSON; errors are {"error": "..."} with a matching
// status code (400 malformed, 404 unknown instance/job, 413 oversized
// upload, 429 queue full, 507 registry budget exhausted).
type Server struct {
	reg       *registry.Registry
	sched     *Scheduler
	mux       *http.ServeMux
	started   time.Time
	maxUpload int64
}

// DefaultMaxUploadBytes bounds POST /v1/instances bodies.
const DefaultMaxUploadBytes = 1 << 30

// NewServer wires the handler around a registry and scheduler.
// maxUploadBytes <= 0 selects DefaultMaxUploadBytes.
func NewServer(reg *registry.Registry, sched *Scheduler, maxUploadBytes int64) *Server {
	if maxUploadBytes <= 0 {
		maxUploadBytes = DefaultMaxUploadBytes
	}
	s := &Server{reg: reg, sched: sched, mux: http.NewServeMux(), started: time.Now(), maxUpload: maxUploadBytes}
	s.mux.HandleFunc("POST /v1/instances", s.handleUpload)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Response bodies are defined in the public client package; aliased here
// for use sites and tests.
type (
	UploadResponse = client.UploadResponse
	ErrorResponse  = client.ErrorResponse
	HealthResponse = client.HealthResponse
	StatsResponse  = client.StatsResponse
)

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	inst, err := setsystem.ReadAuto(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("instance exceeds the %d-byte upload limit", s.maxUpload))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("undecodable instance: %v", err))
		return
	}
	hash, added, err := s.reg.Put(inst)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	code := http.StatusOK
	if added {
		code = http.StatusCreated
	}
	writeJSON(w, code, UploadResponse{
		Hash: hash, N: inst.N, M: inst.M(), Added: added, Bytes: setsystem.SizeBytes(inst),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad solve request: %v", err))
		return
	}
	if v := r.URL.Query().Get("wait"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad wait parameter %q: want a boolean", v))
			return
		}
		req.Wait = b
	}
	job, err := s.sched.Submit(req)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	final, err := s.sched.Wait(r.Context(), job.ID)
	if err != nil {
		// The waiting client went away: it created this job, so abort the
		// work rather than burn a slot for nobody.
		s.sched.Cancel(job.ID)
		writeError(w, 499, fmt.Sprintf("client disconnected while waiting; job %s canceled: %v", job.ID, err))
		return
	}
	writeJSON(w, http.StatusOK, final)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if watch, _ := strconv.ParseBool(r.URL.Query().Get("watch")); watch {
		s.watchJob(w, r, id)
		return
	}
	job, err := s.sched.Job(id)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// watchJob streams NDJSON job snapshots: one line immediately, one on
// every observed status change, and the final line is the terminal
// snapshot. This is the streaming side of the API — a client tails one
// response instead of polling. Snapshots come from a Subscribe handle, not
// repeated ID lookups, so the stream always ends with the terminal
// snapshot even if the MaxJobs GC prunes the job the moment it finishes.
func (s *Server) watchJob(w http.ResponseWriter, r *http.Request, id string) {
	h, err := s.sched.Subscribe(id)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	var last JobStatus
	emit := func() (terminal bool) {
		job := h.Snapshot()
		if job.Status == last {
			return job.Status.Terminal()
		}
		last = job.Status
		if enc.Encode(job) != nil {
			return true
		}
		if flusher != nil {
			flusher.Flush()
		}
		return job.Status.Terminal()
	}
	if emit() {
		return
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-h.Done():
			emit()
			return
		case <-ticker.C:
			if emit() {
				return
			}
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	job, err := s.sched.Job(id)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Scheduler: s.sched.Stats(),
		Registry:  s.reg.Stats(),
		Instances: s.reg.Snapshot(),
	})
}

// statusFor maps service/registry errors to HTTP status codes.
func statusFor(err error) int {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, registry.ErrBudget):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
