package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/registry"
	"streamcover/internal/setsystem"
)

// newEnv returns a registry+scheduler pair, stopping the scheduler at test
// end.
func newEnv(t *testing.T, rcfg registry.Config, scfg Config) (*registry.Registry, *Scheduler) {
	t.Helper()
	reg := registry.New(rcfg)
	sched := NewScheduler(reg, scfg)
	t.Cleanup(sched.Stop)
	return reg, sched
}

// smallInst returns a fast-to-solve planted instance; distinct seeds give
// distinct content hashes.
func smallInst(seed uint64) *setsystem.Instance {
	inst, _ := streamcover.GeneratePlanted(seed, 256, 64, 4)
	return inst
}

// slowInst is sized so a progressive solve with lambda just above 1 runs
// for hundreds of passes — long enough to observe running/queued states,
// quick enough (sub-second) to never stall the suite.
func slowInst() *setsystem.Instance {
	return streamcover.GenerateUniform(99, 2048, 256, 64, 256)
}

func slowReq(hash string, seed uint64) SolveRequest {
	return SolveRequest{Instance: hash, Algo: "progressive", Lambda: 1.01, Seed: seed}
}

func waitStatus(t *testing.T, s *Scheduler, id string, want JobStatus, within time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if j.Status == want {
			return j
		}
		if j.Status.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s status %s, want %s", id, j.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSchedulerSolveMatchesInProcess(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 2})
	inst := smallInst(1)
	hash, _, err := reg.Put(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 0 is a legal seed and must pass through verbatim, not be
	// rewritten to a default — WithSeed(0) locally must match {"seed":0}.
	for _, seed := range []uint64{0, 42} {
		job, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		final, err := sched.Wait(t.Context(), job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != StatusDone {
			t.Fatalf("seed %d: job finished %s (%s), want done", seed, final.Status, final.Error)
		}
		want, err := streamcover.SolveSetCover(inst,
			streamcover.WithAlpha(3), streamcover.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		got := final.Result
		if !reflect.DeepEqual(got.Cover, want.Cover) || got.Guess != want.Guess ||
			got.Passes != want.Passes || got.SpaceWords != want.SpaceWords {
			t.Fatalf("seed %d: scheduler result %+v differs from in-process %+v", seed, got, want)
		}
	}
}

func TestSchedulerJobTableGC(t *testing.T) {
	const maxJobs = 8
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1, MaxJobs: maxJobs, QueueDepth: 64})
	hash, _, err := reg.Put(smallInst(30))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3*maxJobs; i++ {
		j, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 2, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Wait(t.Context(), j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// The oldest terminal jobs are forgotten; the newest survive. (GC runs
	// on Submit, so up to maxJobs records remain afterwards.)
	if _, err := sched.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job still resolvable after GC: err=%v", err)
	}
	resolvable := 0
	for _, id := range ids {
		if _, err := sched.Job(id); err == nil {
			resolvable++
		}
	}
	if resolvable > maxJobs+1 {
		t.Fatalf("%d job records retained, want <= %d", resolvable, maxJobs+1)
	}
	if _, err := sched.Job(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job pruned: %v", err)
	}
}

func TestSchedulerNoCacheForcesFreshSolveButPopulates(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1})
	hash, _, err := reg.Put(smallInst(31))
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Instance: hash, Alpha: 2, Seed: 5, NoCache: true}
	j1, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := sched.Wait(t.Context(), j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A NoCache job still populates the cache...
	plain := req
	plain.NoCache = false
	j2, err := sched.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || !reflect.DeepEqual(j2.Result, f1.Result) {
		t.Fatalf("cache not populated by NoCache job: hit=%v", j2.CacheHit)
	}
	// ...but a NoCache submit never reads it.
	j3, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j3.CacheHit {
		t.Fatalf("NoCache submit served from cache")
	}
	f3, err := sched.Wait(t.Context(), j3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f3.Result, f1.Result) {
		t.Fatalf("fresh NoCache solve differs from cached: %+v vs %+v", f3.Result, f1.Result)
	}
}

func TestSchedulerResultCache(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1})
	hash, _, err := reg.Put(smallInst(2))
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Instance: hash, Alpha: 2, Seed: 7}
	j1, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := sched.Wait(t.Context(), j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status != StatusDone || !j2.CacheHit {
		t.Fatalf("second submit: status=%s cacheHit=%v, want immediate cached done", j2.Status, j2.CacheHit)
	}
	if !reflect.DeepEqual(j2.Result, f1.Result) {
		t.Fatalf("cached result differs: %+v vs %+v", j2.Result, f1.Result)
	}
	// A different seed is a different cache key.
	j3, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status == StatusDone {
		t.Fatalf("different options must not hit the cache")
	}
	if _, err := sched.Wait(t.Context(), j3.ID); err != nil {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.CacheHits != 1 || st.CacheSize != 2 {
		t.Fatalf("stats: hits=%d size=%d, want 1 hit / 2 entries", st.CacheHits, st.CacheSize)
	}
}

func TestSchedulerValidation(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1})
	hash, _, err := reg.Put(smallInst(3))
	if err != nil {
		t.Fatal(err)
	}
	var bad *BadRequestError
	cases := []SolveRequest{
		{Instance: hash, Algo: "quantum"},
		{Instance: hash, Order: "sorted"},
		{Instance: hash, Alpha: -1},
		{Instance: hash, Epsilon: 2},
		{Instance: hash, Algo: "maxcover"}, // missing k
		{},                                 // missing instance
	}
	for i, req := range cases {
		if _, err := sched.Submit(req); !errors.As(err, &bad) {
			t.Fatalf("case %d: err=%v, want BadRequestError", i, err)
		}
	}
	if _, err := sched.Submit(SolveRequest{Instance: "ffff"}); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("unknown instance: err=%v, want ErrNotFound", err)
	}
	if _, err := sched.Job("j999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: err=%v, want ErrUnknownJob", err)
	}
}

func TestSchedulerBaselineAndOfflineAlgos(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 2})
	inst := smallInst(4)
	hash, _, err := reg.Put(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"setcover", "maxcover", "greedy", "exact", "progressive", "storeall"} {
		req := SolveRequest{Instance: hash, Algo: algo, K: 4}
		job, err := sched.Submit(req)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		final, err := sched.Wait(t.Context(), job.ID)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if final.Status != StatusDone {
			t.Fatalf("%s: finished %s (%s)", algo, final.Status, final.Error)
		}
		if len(final.Result.Cover) == 0 {
			t.Fatalf("%s: empty cover", algo)
		}
		if algo != "maxcover" && !inst.IsCover(final.Result.Cover) {
			t.Fatalf("%s: result is not a cover", algo)
		}
	}
}

func TestSchedulerQueueBoundsAndCancel(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1, QueueDepth: 1})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sched.Submit(slowReq(hash, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, sched, a.ID, StatusRunning, 5*time.Second)
	b, err := sched.Submit(slowReq(hash, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(slowReq(hash, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err=%v, want ErrQueueFull", err)
	}
	// Cancel the running job and the queued job; both must terminate as
	// canceled — the running one aborts mid-solve via its context.
	if err := sched.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := sched.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	fa, err := sched.Wait(t.Context(), a.ID)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := sched.Wait(t.Context(), b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Status != StatusCanceled || fb.Status != StatusCanceled {
		t.Fatalf("statuses %s/%s, want canceled/canceled", fa.Status, fb.Status)
	}
	if st := sched.Stats(); st.Canceled != 2 {
		t.Fatalf("stats.Canceled = %d, want 2", st.Canceled)
	}
}

// TestSchedulerUnderLoad is the ISSUE acceptance scenario: >= 64 concurrent
// solve jobs against a small worker budget. All jobs must terminate,
// concurrent execution must never exceed the slot cap, cancellation must
// abort jobs, and the registry must stay within its memory budget while
// evicting LRU instances.
func TestSchedulerUnderLoad(t *testing.T) {
	const (
		slots     = 3
		phases    = 6
		perPhase  = 11 // 66 jobs >= 64
		budgetFor = 3  // resident instances
	)
	one := setsystem.SizeBytes(smallInst(0))
	reg, sched := newEnv(t,
		registry.Config{BudgetBytes: budgetFor * one},
		Config{Slots: slots, JobWorkers: 1, QueueDepth: phases * perPhase})

	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	canceled := 0
	for phase := 0; phase < phases; phase++ {
		// Admit the phase's instance, waiting out transient ErrBudget while
		// earlier phases' pinned jobs drain.
		var hash string
		for {
			var err error
			hash, _, err = reg.Put(smallInst(uint64(100 + phase)))
			if err == nil {
				break
			}
			if !errors.Is(err, registry.ErrBudget) {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if st := reg.Stats(); st.ResidentBytes > st.BudgetBytes {
			t.Fatalf("phase %d: resident %d exceeds budget %d", phase, st.ResidentBytes, st.BudgetBytes)
		}
		for i := 0; i < perPhase; i++ {
			seed := uint64(phase*perPhase + i + 1)
			// Submit inline so the job's registry pin exists before the next
			// phase's upload can evict this instance; wait concurrently.
			job, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 2, Seed: seed})
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			mu.Lock()
			ids = append(ids, job.ID)
			mu.Unlock()
			if i%5 == 4 {
				sched.Cancel(job.ID)
				canceled++
			}
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if _, err := sched.Wait(t.Context(), id); err != nil {
					t.Errorf("wait %s: %v", id, err)
				}
			}(job.ID)
		}
	}
	wg.Wait()

	if len(ids) != phases*perPhase {
		t.Fatalf("submitted %d jobs, want %d", len(ids), phases*perPhase)
	}
	doneJobs, canceledJobs := 0, 0
	for _, id := range ids {
		j, err := sched.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !j.Status.Terminal() {
			t.Fatalf("job %s not terminal: %s", id, j.Status)
		}
		switch j.Status {
		case StatusDone:
			doneJobs++
		case StatusCanceled:
			canceledJobs++
		default:
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
	}
	st := sched.Stats()
	if st.PeakRunning > slots {
		t.Fatalf("peak running %d exceeds the %d-slot cap", st.PeakRunning, slots)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained: running=%d queued=%d", st.Running, st.Queued)
	}
	if doneJobs == 0 {
		t.Fatalf("no job completed")
	}
	// Cancellation raced real execution: a job may finish before its cancel
	// lands, so canceled <= requested — but the scheduler must have
	// honored at least one (the load keeps slots busy, so queued cancels
	// are near-certain to land).
	if canceledJobs == 0 {
		t.Fatalf("no cancellation landed out of %d requested", canceled)
	}
	rst := reg.Stats()
	if rst.ResidentBytes > rst.BudgetBytes {
		t.Fatalf("registry over budget at end: %d > %d", rst.ResidentBytes, rst.BudgetBytes)
	}
	if rst.Evictions == 0 {
		t.Fatalf("no LRU evictions despite %d phases over a %d-instance budget", phases, budgetFor)
	}
	if rst.Instances > budgetFor {
		t.Fatalf("%d resident instances exceed the %d-instance budget", rst.Instances, budgetFor)
	}
}

func TestSchedulerStop(t *testing.T) {
	reg := registry.New(registry.Config{})
	sched := NewScheduler(reg, Config{Slots: 1, JobWorkers: 1, QueueDepth: 8})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sched.Submit(slowReq(hash, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Submit(slowReq(hash, 2))
	if err != nil {
		t.Fatal(err)
	}
	stopDone := make(chan struct{})
	go func() { sched.Stop(); close(stopDone) }()
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return")
	}
	for _, id := range []string{a.ID, b.ID} {
		j, err := sched.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !j.Status.Terminal() {
			t.Fatalf("job %s left non-terminal after Stop: %s", id, j.Status)
		}
	}
	if _, err := sched.Submit(slowReq(hash, 3)); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: err=%v, want ErrStopped", err)
	}
}

func TestCacheKeyCoversOptions(t *testing.T) {
	base := SolveRequest{Instance: "h", Algo: "setcover"}
	norm := func(r SolveRequest) string {
		n, err := normalize(r)
		if err != nil {
			t.Fatal(err)
		}
		return cacheKey(n)
	}
	keys := map[string]string{"base": norm(base)}
	variants := map[string]SolveRequest{
		"alpha":   {Instance: "h", Alpha: 3},
		"eps":     {Instance: "h", Epsilon: 0.25},
		"seed":    {Instance: "h", Seed: 9},
		"order":   {Instance: "h", Order: "random"},
		"gsub":    {Instance: "h", GreedySubsolver: true},
		"sampleC": {Instance: "h", SampleConstant: 4},
		"hint":    {Instance: "h", OptimumHint: 5},
		"algo":    {Instance: "h", Algo: "progressive"},
		"inst":    {Instance: "h2"},
	}
	for name, req := range variants {
		k := norm(req)
		for prev, pk := range keys {
			if k == pk {
				t.Fatalf("option %q does not change the cache key (collides with %q): %s", name, prev, k)
			}
		}
		keys[name] = k
	}
	// Workers and Wait must NOT change the key.
	same := norm(SolveRequest{Instance: "h", Workers: 7, Wait: true})
	if same != keys["base"] {
		t.Fatalf("workers/wait leaked into the cache key: %s vs %s", same, keys["base"])
	}
}

// TestSchedulerCancelExactJob pins the offline-branch cancellation wiring:
// before the solvers grew Context support, the "exact" (and "greedy")
// algos ignored the job context, so a worst-case branch-and-bound could
// block Cancel and Stop indefinitely. The instance here is dense enough
// that an uncancelled exact solve runs far beyond the test timeout.
func TestSchedulerCancelExactJob(t *testing.T) {
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1, QueueDepth: 1})
	hash, _, err := reg.Put(streamcover.GenerateUniform(11, 64, 256, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	j, err := sched.Submit(SolveRequest{Instance: hash, Algo: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, sched, j.ID, StatusRunning, 5*time.Second)
	time.Sleep(20 * time.Millisecond) // let the search descend past its entry checks
	if err := sched.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fj, err := sched.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v (exact job did not abort after Cancel)", err)
	}
	if fj.Status != StatusCanceled {
		t.Fatalf("status %s, want %s", fj.Status, StatusCanceled)
	}
}

// TestSubscribeSurvivesJobTableGC pins the Wait/watch fix: a Handle taken
// before the MaxJobs GC prunes a finished job still reports the job's
// terminal snapshot, while plain ID lookups (correctly) fail. Before
// Subscribe existed, Wait re-resolved the ID after the done signal, so a
// pruned record turned a finished job into ErrUnknownJob for its waiter.
func TestSubscribeSurvivesJobTableGC(t *testing.T) {
	const maxJobs = 2
	reg, sched := newEnv(t, registry.Config{}, Config{Slots: 1, MaxJobs: maxJobs, QueueDepth: 64})
	hash, _, err := reg.Put(smallInst(41))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sched.Subscribe(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Wait(t.Context(), a.ID); err != nil {
		t.Fatal(err)
	}
	// Push enough newer jobs through to prune a's record.
	for i := 0; i < 3*maxJobs; i++ {
		j, err := sched.Submit(SolveRequest{Instance: hash, Alpha: 2, Seed: uint64(i + 2), NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Wait(t.Context(), j.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sched.Job(a.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("job %s still resolvable by ID, want pruned (err=%v)", a.ID, err)
	}
	if _, err := sched.Subscribe(a.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Subscribe on pruned ID: err=%v, want ErrUnknownJob", err)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("handle's Done channel not closed for a finished job")
	}
	final := h.Snapshot()
	if final.Status != StatusDone || final.Result == nil {
		t.Fatalf("handle snapshot after GC = %+v, want done with result", final)
	}
}
