package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/registry"
	"streamcover/internal/setsystem"
)

// newHTTPEnv starts an httptest server over a fresh registry+scheduler.
func newHTTPEnv(t *testing.T, rcfg registry.Config, scfg Config) (*httptest.Server, *registry.Registry, *Scheduler) {
	t.Helper()
	reg := registry.New(rcfg)
	sched := NewScheduler(reg, scfg)
	srv := httptest.NewServer(NewServer(reg, sched, 0))
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return srv, reg, sched
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response, wantCode int) T {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, wantCode, raw)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return v
}

func upload(t *testing.T, base string, inst *setsystem.Instance, wantCode int) UploadResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := setsystem.WriteBinary(&buf, inst); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/instances", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return decode[UploadResponse](t, resp, wantCode)
}

// TestWireDeterminism is the ISSUE acceptance criterion: for a fixed seed a
// solve through the service returns bit-identical cover, passes and space
// to the in-process SolveSetCover call.
func TestWireDeterminism(t *testing.T) {
	srv, _, _ := newHTTPEnv(t, registry.Config{}, Config{Slots: 2})
	inst, _ := streamcover.GeneratePlanted(1, 2048, 300, 4)

	up := upload(t, srv.URL, inst, http.StatusCreated)
	if up.Hash != setsystem.Hash(inst) {
		t.Fatalf("upload hash %s differs from local hash", up.Hash)
	}
	if up.N != inst.N || up.M != inst.M() {
		t.Fatalf("upload reported n=%d m=%d, want %d/%d", up.N, up.M, inst.N, inst.M())
	}

	for _, seed := range []uint64{1, 42, 1 << 40} {
		req := SolveRequest{Instance: up.Hash, Alpha: 3, Seed: seed, Wait: true}
		job := decode[Job](t, postJSON(t, srv.URL+"/v1/solve", req), http.StatusOK)
		if job.Status != StatusDone {
			t.Fatalf("seed %d: job %s (%s)", seed, job.Status, job.Error)
		}
		want, err := streamcover.SolveSetCover(inst,
			streamcover.WithAlpha(3), streamcover.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		got := job.Result
		if !reflect.DeepEqual(got.Cover, want.Cover) {
			t.Fatalf("seed %d: wire cover %v != local %v", seed, got.Cover, want.Cover)
		}
		if got.Guess != want.Guess || got.Passes != want.Passes || got.SpaceWords != want.SpaceWords {
			t.Fatalf("seed %d: wire accounting (g=%d p=%d w=%d) != local (g=%d p=%d w=%d)",
				seed, got.Guess, got.Passes, got.SpaceWords, want.Guess, want.Passes, want.SpaceWords)
		}
	}
}

func TestUploadDedupAndTextCodec(t *testing.T) {
	srv, _, _ := newHTTPEnv(t, registry.Config{}, Config{Slots: 1})
	inst, _ := streamcover.GeneratePlanted(5, 512, 64, 3)

	first := upload(t, srv.URL, inst, http.StatusCreated)
	if !first.Added {
		t.Fatalf("first upload not Added")
	}
	second := upload(t, srv.URL, inst, http.StatusOK)
	if second.Added || second.Hash != first.Hash {
		t.Fatalf("re-upload: added=%v hash=%s, want dedup to %s", second.Added, second.Hash, first.Hash)
	}
	// The text codec hashes identically to the binary upload.
	var buf bytes.Buffer
	if err := setsystem.Write(&buf, inst); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/instances", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	third := decode[UploadResponse](t, resp, http.StatusOK)
	if third.Added || third.Hash != first.Hash {
		t.Fatalf("text upload: added=%v hash=%s, want dedup to %s", third.Added, third.Hash, first.Hash)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	srv, reg, _ := newHTTPEnv(t, registry.Config{}, Config{Slots: 1})
	hash, _, err := reg.Put(smallInst(6))
	if err != nil {
		t.Fatal(err)
	}

	// Garbage upload: 400.
	resp, err := http.Post(srv.URL+"/v1/instances", "text/plain", strings.NewReader("not an instance"))
	if err != nil {
		t.Fatal(err)
	}
	e := decode[ErrorResponse](t, resp, http.StatusBadRequest)
	if e.Error == "" {
		t.Fatal("empty error body")
	}

	// Unknown algo: 400 with the valid choices listed.
	e = decode[ErrorResponse](t, postJSON(t, srv.URL+"/v1/solve",
		SolveRequest{Instance: hash, Algo: "quantum"}), http.StatusBadRequest)
	for _, algo := range Algos {
		if !strings.Contains(e.Error, algo) {
			t.Fatalf("error %q does not list valid algo %q", e.Error, algo)
		}
	}

	// Unknown instance hash: 404.
	decode[ErrorResponse](t, postJSON(t, srv.URL+"/v1/solve",
		SolveRequest{Instance: "ffff"}), http.StatusNotFound)

	// Unknown job: 404.
	resp, err = http.Get(srv.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, resp, http.StatusNotFound)

	// Unknown request field: 400 (DisallowUnknownFields).
	resp, err = http.Post(srv.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"instance":"`+hash+`","alfa":3}`))
	if err != nil {
		t.Fatal(err)
	}
	decode[ErrorResponse](t, resp, http.StatusBadRequest)

	// wait must be parsed as a boolean: ?wait=false is an async submit
	// (202), not a block; garbage is a 400.
	resp = postJSON(t, srv.URL+"/v1/solve?wait=false", SolveRequest{Instance: hash})
	job := decode[Job](t, resp, http.StatusAccepted)
	if job.ID == "" {
		t.Fatalf("wait=false submit returned no job: %+v", job)
	}
	resp = postJSON(t, srv.URL+"/v1/solve?wait=yes-please", SolveRequest{Instance: hash})
	decode[ErrorResponse](t, resp, http.StatusBadRequest)
}

func TestHealthAndStats(t *testing.T) {
	srv, reg, sched := newHTTPEnv(t, registry.Config{}, Config{Slots: 1})
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[HealthResponse](t, resp, http.StatusOK)
	if h.Status != "ok" {
		t.Fatalf("health %q", h.Status)
	}

	hash, _, err := reg.Put(smallInst(7))
	if err != nil {
		t.Fatal(err)
	}
	job, err := sched.Submit(SolveRequest{Instance: hash})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Wait(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[StatsResponse](t, resp, http.StatusOK)
	if st.Scheduler.Submitted != 1 || st.Scheduler.Completed != 1 {
		t.Fatalf("scheduler stats %+v", st.Scheduler)
	}
	if st.Registry.Instances != 1 || len(st.Instances) != 1 || st.Instances[0].Hash != hash {
		t.Fatalf("registry stats %+v / %+v", st.Registry, st.Instances)
	}
	// The resident-bytes split is part of the wire contract: an uploaded
	// (heap-decoded) instance is all heap plus the replay plan built lazily
	// by its first solve, no mapped bytes.
	if st.Registry.HeapBytes+st.Registry.PlanBytes != st.Registry.ResidentBytes || st.Registry.MappedBytes != 0 {
		t.Fatalf("heap/plan/mapped split off for a heap entry: %+v", st.Registry)
	}
	if st.Registry.PlanBytes <= 0 || st.Instances[0].PlanBytes != st.Registry.PlanBytes {
		t.Fatalf("first solve should have attached a replay plan: %+v / %+v", st.Registry, st.Instances)
	}
	if st.Instances[0].Backing != "heap" {
		t.Fatalf("instance backing = %q, want heap", st.Instances[0].Backing)
	}
	if st.Scheduler.PeakSpaceWords <= 0 {
		t.Fatalf("peak space words not tracked: %+v", st.Scheduler)
	}
}

func TestJobWatchStreamsNDJSON(t *testing.T) {
	srv, reg, _ := newHTTPEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	job := decode[Job](t, postJSON(t, srv.URL+"/v1/solve", slowReq(hash, 1)), http.StatusAccepted)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	var snaps []Job
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var snap Job
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		snaps = append(snaps, snap)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || !snaps[len(snaps)-1].Status.Terminal() {
		t.Fatalf("watch stream did not end terminal")
	}
	// Every line must bring news: a status change, or a grown pass trace.
	passesOf := func(j Job) int {
		if j.Trace == nil {
			return 0
		}
		return len(j.Trace.Passes)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Status == snaps[i-1].Status && passesOf(snaps[i]) == passesOf(snaps[i-1]) {
			t.Fatalf("watch emitted duplicate snapshot at line %d (status %s, %d passes)",
				i, snaps[i].Status, passesOf(snaps[i]))
		}
	}
	// The terminal snapshot carries the full per-pass trace of the solve.
	final := snaps[len(snaps)-1]
	if final.Trace == nil || len(final.Trace.Passes) != final.Result.Passes {
		t.Fatalf("terminal snapshot trace = %+v, want %d passes", final.Trace, final.Result.Passes)
	}
	for i, p := range final.Trace.Passes {
		if p.Pass != i || p.Items <= 0 || p.DurationSeconds < 0 {
			t.Fatalf("trace pass %d malformed: %+v", i, p)
		}
	}
}

func TestCancelViaHTTP(t *testing.T) {
	srv, reg, sched := newHTTPEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	job := decode[Job](t, postJSON(t, srv.URL+"/v1/solve", slowReq(hash, 2)), http.StatusAccepted)
	waitStatus(t, sched, job.ID, StatusRunning, 5*time.Second)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode[Job](t, resp, http.StatusOK)
	final, err := sched.Wait(t.Context(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("job finished %s, want canceled", final.Status)
	}
}

// TestWaitingClientDisconnectCancelsJob pins the request-context
// cancellation path: a wait=true solve whose client goes away must abort
// the job rather than keep burning its slot.
func TestWaitingClientDisconnectCancelsJob(t *testing.T) {
	srv, reg, sched := newHTTPEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	// Stretch the solve well past slowReq's usual length: the poll loop
	// below may observe StatusRunning tens of milliseconds late under
	// scheduler jitter, and the disconnect must still land while the job
	// has plenty of passes left (the happy path cancels almost at once, so
	// the test stays fast).
	solveReq := slowReq(hash, 3)
	solveReq.Lambda = 1.001
	body, err := json.Marshal(solveReq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req.WithContext(ctx))
		done <- err
	}()
	// Let the job start, then hang up.
	var id string
	deadline := time.Now().Add(5 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		for _, j := range []string{"j1"} {
			if snap, err := sched.Job(j); err == nil && snap.Status == StatusRunning {
				id = j
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelReq()
	if err := <-done; err == nil {
		t.Fatal("expected the aborted request to error")
	}
	final, err := sched.Wait(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("job finished %s, want canceled after client disconnect", final.Status)
	}
}
