package service

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/registry"
	"streamcover/internal/setsystem"
)

// newObsEnv is newHTTPEnv with the full observability plane wired in: one
// obs registry shared by the HTTP layer, the scheduler and the instance
// registry, exposed at GET /metrics.
func newObsEnv(t *testing.T, rcfg registry.Config, scfg Config) (*httptest.Server, *registry.Registry, *Scheduler) {
	t.Helper()
	m := obs.NewRegistry()
	reg := registry.New(rcfg)
	reg.RegisterMetrics(m)
	scfg.Metrics = m
	sched := NewScheduler(reg, scfg)
	srv := httptest.NewServer(NewServer(reg, sched, 0, WithMetrics(m)))
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return srv, reg, sched
}

// scrape fetches /metrics and returns the parsed sample values keyed by the
// full series line prefix (name plus rendered labels).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndToEnd drives one solve through the HTTP API and asserts the
// exposition covers every instrument family of the plane — http, scheduler,
// solve-pass and registry — with values that moved.
func TestMetricsEndToEnd(t *testing.T) {
	srv, reg, _ := newObsEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(setsystem.FromSets(8, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	job := decode[Job](t, postJSON(t, srv.URL+"/v1/solve?wait=1",
		SolveRequest{Instance: hash, Algo: "setcover", Alpha: 2}), http.StatusOK)
	if job.Status != StatusDone {
		t.Fatalf("solve finished %s", job.Status)
	}

	vals := scrape(t, srv.URL)
	wantPositive := []string{
		`coverd_http_requests_total{route="POST /v1/solve",code="200"}`,
		`coverd_http_request_duration_seconds_count{route="POST /v1/solve"}`,
		`coverd_jobs_submitted_total`,
		`coverd_jobs_completed_total{status="done"}`,
		`coverd_job_duration_seconds_count`,
		`coverd_solve_passes_total`,
		`coverd_solve_pass_duration_seconds_count`,
		`coverd_registry_instances`,
		`coverd_registry_resident_bytes`,
	}
	for _, series := range wantPositive {
		if vals[series] <= 0 {
			t.Errorf("%s = %v, want > 0", series, vals[series])
		}
	}
	if got := vals[`coverd_jobs_running`]; got != 0 {
		t.Errorf("coverd_jobs_running = %v after the solve finished", got)
	}
	if job.Result == nil || vals[`coverd_solve_passes_total`] != float64(job.Result.Passes) {
		t.Errorf("coverd_solve_passes_total = %v, job ran %+v", vals[`coverd_solve_passes_total`], job.Result)
	}

	// A second scrape must still include the http family and count itself.
	before := vals[`coverd_http_requests_total{route="GET /metrics",code="200"}`]
	after := scrape(t, srv.URL)[`coverd_http_requests_total{route="GET /metrics",code="200"}`]
	if after != before+1 {
		t.Errorf("GET /metrics self-count %v -> %v, want +1", before, after)
	}
}

// TestMetricsCacheHit pins the result-cache instrumentation: an identical
// resubmission is a hit, the first submission a miss.
func TestMetricsCacheHit(t *testing.T) {
	srv, reg, _ := newObsEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(setsystem.FromSets(8, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Instance: hash, Algo: "setcover", Alpha: 2}
	decode[Job](t, postJSON(t, srv.URL+"/v1/solve?wait=1", req), http.StatusOK)
	decode[Job](t, postJSON(t, srv.URL+"/v1/solve?wait=1", req), http.StatusOK)
	vals := scrape(t, srv.URL)
	if vals[`coverd_result_cache_misses_total`] != 1 || vals[`coverd_result_cache_hits_total`] != 1 {
		t.Fatalf("cache counters: misses=%v hits=%v, want 1/1",
			vals[`coverd_result_cache_misses_total`], vals[`coverd_result_cache_hits_total`])
	}
}

// TestHealthzDegradedRegistryBudget pins readiness: a registry within 5% of
// its byte budget turns /v1/healthz into a 503 "degraded" with a reason.
func TestHealthzDegradedRegistryBudget(t *testing.T) {
	inst := setsystem.FromSets(16, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}})
	size := setsystem.SizeBytes(inst)
	srv, reg, _ := newHTTPEnv(t, registry.Config{BudgetBytes: size}, Config{Slots: 1})
	if _, _, err := reg.Put(inst); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[HealthResponse](t, resp, http.StatusServiceUnavailable)
	if health.Status != "degraded" || len(health.Reasons) == 0 {
		t.Fatalf("healthz = %+v, want degraded with reasons", health)
	}
	if !strings.Contains(strings.Join(health.Reasons, "; "), "budget") {
		t.Fatalf("reasons %v do not mention the byte budget", health.Reasons)
	}
}

// TestHealthzDegradedQueueSaturated pins the other readiness condition: a
// full job queue degrades the probe, and draining it restores "ok".
func TestHealthzDegradedQueueSaturated(t *testing.T) {
	srv, reg, sched := newHTTPEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1, QueueDepth: 1})
	hash, _, err := reg.Put(slowInst())
	if err != nil {
		t.Fatal(err)
	}
	slow := slowReq(hash, 41)
	slow.Lambda = 1.001
	running := decode[Job](t, postJSON(t, srv.URL+"/v1/solve", slow), http.StatusAccepted)
	waitStatus(t, sched, running.ID, StatusRunning, 5*time.Second)
	slow.Seed = 42
	queued := decode[Job](t, postJSON(t, srv.URL+"/v1/solve", slow), http.StatusAccepted)

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[HealthResponse](t, resp, http.StatusServiceUnavailable)
	if health.Status != "degraded" || len(health.Reasons) == 0 {
		t.Fatalf("healthz = %+v, want degraded while the queue is full", health)
	}
	if !strings.Contains(strings.Join(health.Reasons, "; "), "queue") {
		t.Fatalf("reasons %v do not mention the queue", health.Reasons)
	}

	for _, id := range []string{queued.ID, running.ID} {
		if err := sched.Cancel(id); err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Wait(t.Context(), id); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if health := decode[HealthResponse](t, resp, http.StatusOK); health.Status != "ok" {
		t.Fatalf("healthz after drain = %+v, want ok", health)
	}
}

// TestMetricsNotRegisteredWithoutOption pins the opt-in: a server built
// without WithMetrics has no /metrics route.
func TestMetricsNotRegisteredWithoutOption(t *testing.T) {
	srv, _, _ := newHTTPEnv(t, registry.Config{}, Config{Slots: 1})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without WithMetrics: %d, want 404", resp.StatusCode)
	}
}

// TestMetricsExpositionParses sanity-checks the whole exposition against
// the text-format line grammar after real traffic.
func TestMetricsExpositionParses(t *testing.T) {
	srv, reg, _ := newObsEnv(t, registry.Config{}, Config{Slots: 1, JobWorkers: 1})
	hash, _, err := reg.Put(setsystem.FromSets(8, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	decode[Job](t, postJSON(t, srv.URL+"/v1/solve?wait=1",
		SolveRequest{Instance: hash, Algo: "progressive", Lambda: 2}), http.StatusOK)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?(Inf|[0-9].*))$`)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}
