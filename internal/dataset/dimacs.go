package dataset

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"streamcover/internal/setsystem"
)

// importDIMACS parses a DIMACS graph file: 'c' comment lines, one
// 'p <format> <nodes> <edges>' problem line, then 1-based 'e u v' edge
// lines. The declared node count fixes the set count (isolated nodes
// become empty sets, harmless to a cover); the edge count must match the
// edges actually present — a mismatch means a truncated or corrupted file
// and is an error, not a warning. The <format> word (edge, col, ...) is
// not interpreted.
func importDIMACS(r io.Reader) (*setsystem.Instance, Meta, error) {
	sc := newLineScanner(r)
	var edges [][2]int
	nodes, declaredEdges := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if nodes >= 0 {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: second problem line", line)
			}
			if len(fields) != 4 {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: want 'p <format> <nodes> <edges>', got %q", line, text)
			}
			n, err1 := strconv.Atoi(fields[2])
			e, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || n < 0 || e < 0 {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: bad problem counts %q", line, text)
			}
			nodes, declaredEdges = n, e
		case "e":
			if nodes < 0 {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: edge before problem line", line)
			}
			if len(fields) != 3 {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: want 'e <u> <v>', got %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > nodes || v > nodes {
				return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: endpoints %q out of [1,%d]", line, text, nodes)
			}
			edges = append(edges, [2]int{u - 1, v - 1})
		default:
			return nil, Meta{}, fmt.Errorf("dataset: dimacs line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, fmt.Errorf("dataset: dimacs: %w", err)
	}
	if nodes < 0 {
		return nil, Meta{}, fmt.Errorf("dataset: dimacs: no problem line")
	}
	if len(edges) != declaredEdges {
		return nil, Meta{}, fmt.Errorf("dataset: dimacs: problem line declares %d edges, file has %d",
			declaredEdges, len(edges))
	}
	in := incidenceInstance(nodes, edges)
	return in, Meta{Nodes: nodes, Edges: len(edges)}, nil
}
