package dataset

import (
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"streamcover/internal/setsystem"
)

// importSNAP parses a SNAP-style edge list: one "u v" pair per line,
// whitespace-separated, with '#' (and '%', used by some mirrors) comment
// lines. Node ids are arbitrary non-negative integers and are remapped to
// dense set indices in sorted-id order; edges are numbered in file order
// and become the universe. Lines may carry trailing columns (weights,
// timestamps); only the first two fields are read.
func importSNAP(r io.Reader) (*setsystem.Instance, Meta, error) {
	sc := newLineScanner(r)
	var edges [][2]int
	ids := map[int]struct{}{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, Meta{}, fmt.Errorf("dataset: snap line %d: want 'u v', got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || u < 0 || v < 0 {
			return nil, Meta{}, fmt.Errorf("dataset: snap line %d: bad node pair %q", line, text)
		}
		edges = append(edges, [2]int{u, v})
		ids[u] = struct{}{}
		ids[v] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, fmt.Errorf("dataset: snap: %w", err)
	}

	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	slices.Sort(sorted)
	index := make(map[int]int, len(sorted))
	for i, id := range sorted {
		index[id] = i
	}
	for i := range edges {
		edges[i][0] = index[edges[i][0]]
		edges[i][1] = index[edges[i][1]]
	}
	in := incidenceInstance(len(sorted), edges)
	return in, Meta{Nodes: len(sorted), Edges: len(edges)}, nil
}
