package dataset

import (
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"streamcover/internal/setsystem"
)

// importFIMI parses a FIMI transaction database: one transaction of
// whitespace-separated non-negative item ids per line (the format of the
// frequent-itemset-mining benchmark corpora: retail, kosarak, accidents).
// Transactions become the sets, in file order; items become the universe,
// remapped to dense element ids in sorted item-id order. Blank lines are
// skipped and '#' comments tolerated (the raw corpora have neither, but
// fixture files want a comment channel).
func importFIMI(r io.Reader) (*setsystem.Instance, Meta, error) {
	sc := newLineScanner(r)
	var transactions [][]int
	ids := map[int]struct{}{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		tx := make([]int, 0, len(fields))
		for _, f := range fields {
			item, err := strconv.Atoi(f)
			if err != nil || item < 0 {
				return nil, Meta{}, fmt.Errorf("dataset: fimi line %d: bad item %q", line, f)
			}
			tx = append(tx, item)
			ids[item] = struct{}{}
		}
		transactions = append(transactions, tx)
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, fmt.Errorf("dataset: fimi: %w", err)
	}

	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	slices.Sort(sorted)
	index := make(map[int]int, len(sorted))
	for i, id := range sorted {
		index[id] = i
	}

	b := setsystem.NewBuilder(len(sorted))
	total := 0
	for _, tx := range transactions {
		total += len(tx)
	}
	b.Grow(len(transactions), total)
	for _, tx := range transactions {
		for _, item := range tx {
			b.Append(int32(index[item]))
		}
		b.EndSet()
	}
	// Duplicate items within a transaction are legal input; Import's
	// SortSets pass normalizes them away.
	return b.Build(), Meta{Transactions: len(transactions), Items: len(sorted)}, nil
}
