package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"streamcover/internal/setsystem"
)

func importFile(t *testing.T, name string, f Format) (*setsystem.Instance, Meta) {
	t.Helper()
	file, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	in, meta, err := Import(file, f)
	if err != nil {
		t.Fatal(err)
	}
	return in, meta
}

func sets(in *setsystem.Instance) [][]int32 {
	out := make([][]int32, in.M())
	for i := range out {
		out[i] = in.Set(i)
	}
	return out
}

// TestImportSNAP checks the vertex-cover reduction on the checked-in
// fixture: edges in file order are the universe, node i's set is its
// incident edge ids.
func TestImportSNAP(t *testing.T) {
	in, meta := importFile(t, "tiny.snap", SNAP)
	// Edges: 0=(0,1) 1=(0,2) 2=(1,2) 3=(3,1) 4=(2,3) 5=(4,0).
	want := [][]int32{
		{0, 1, 5}, // node 0
		{0, 2, 3}, // node 1
		{1, 2, 4}, // node 2
		{3, 4},    // node 3
		{5},       // node 4
	}
	if !reflect.DeepEqual(sets(in), want) {
		t.Fatalf("snap sets = %v, want %v", sets(in), want)
	}
	if meta.Nodes != 5 || meta.Edges != 6 || meta.N != 6 || meta.M != 5 {
		t.Fatalf("snap meta = %+v", meta)
	}
	if !in.Coverable() {
		t.Fatal("vertex-cover instance must always be coverable")
	}
}

// TestImportFIMI checks the transaction reduction: items remap to dense
// element ids in sorted-item order, transactions keep file order.
func TestImportFIMI(t *testing.T) {
	in, meta := importFile(t, "tiny.fimi", FIMI)
	// Items 1..6 remap to 0..5.
	want := [][]int32{
		{0, 2, 3},    // 3 1 4
		{0, 4},       // 1 5
		{0, 1, 2, 4}, // 2 3 5 1
		{3},          // 4
		{1, 5},       // 2 6
	}
	if !reflect.DeepEqual(sets(in), want) {
		t.Fatalf("fimi sets = %v, want %v", sets(in), want)
	}
	if meta.Transactions != 5 || meta.Items != 6 || meta.N != 6 || meta.M != 5 {
		t.Fatalf("fimi meta = %+v", meta)
	}
	if !in.Coverable() {
		t.Fatal("every item appears in a transaction; instance must be coverable")
	}
}

// TestImportDIMACS checks the 1-based DIMACS reduction, including the
// declared-count cross-check.
func TestImportDIMACS(t *testing.T) {
	in, meta := importFile(t, "tiny.dimacs", DIMACS)
	// Edges in file order: 0=(1,2) 1=(1,3) 2=(2,3) 3=(2,4) 4=(3,5) 5=(4,5) 6=(1,5).
	want := [][]int32{
		{0, 1, 6}, // node 1
		{0, 2, 3}, // node 2
		{1, 2, 4}, // node 3
		{3, 5},    // node 4
		{4, 5, 6}, // node 5
	}
	if !reflect.DeepEqual(sets(in), want) {
		t.Fatalf("dimacs sets = %v, want %v", sets(in), want)
	}
	if meta.Nodes != 5 || meta.Edges != 7 || meta.N != 7 || meta.M != 5 {
		t.Fatalf("dimacs meta = %+v", meta)
	}
}

// TestImportDeterminism pins that importing the same bytes twice yields
// content-hash-identical instances — the property coverd's registry dedup
// relies on.
func TestImportDeterminism(t *testing.T) {
	for name, f := range map[string]Format{
		"tiny.snap": SNAP, "tiny.fimi": FIMI, "tiny.dimacs": DIMACS,
	} {
		a, _ := importFile(t, name, f)
		b, _ := importFile(t, name, f)
		if setsystem.Hash(a) != setsystem.Hash(b) {
			t.Fatalf("%s: two imports hash differently", name)
		}
	}
}

func TestImportErrors(t *testing.T) {
	cases := map[string]struct {
		f     Format
		input string
		want  string
	}{
		"snap-one-field":     {SNAP, "0 1\n7\n", "want 'u v'"},
		"snap-negative":      {SNAP, "0 -3\n", "bad node pair"},
		"fimi-bad-item":      {FIMI, "1 2\nx 3\n", "bad item"},
		"dimacs-no-problem":  {DIMACS, "e 1 2\n", "edge before problem line"},
		"dimacs-count-lie":   {DIMACS, "p edge 3 2\ne 1 2\n", "declares 2 edges, file has 1"},
		"dimacs-out-of-rng":  {DIMACS, "p edge 2 1\ne 1 9\n", "out of [1,2]"},
		"dimacs-second-prob": {DIMACS, "p edge 2 0\np edge 2 0\n", "second problem line"},
		"dimacs-unknown":     {DIMACS, "p edge 1 0\nz 1\n", "unknown line type"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := Import(strings.NewReader(tc.input), tc.f)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestParseFormat pins the CLI vocabulary.
func TestParseFormat(t *testing.T) {
	for _, s := range Formats {
		f, err := ParseFormat(s)
		if err != nil || f.String() != s {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, f, err)
		}
	}
	if _, err := ParseFormat("csv"); err == nil {
		t.Fatal("ParseFormat accepted an unknown format")
	}
}
