// Package dataset imports public real-world dataset formats as set-cover
// instances, opening the empirical setting of Indyk–Mahabadi–Vakilian
// (arXiv:1509.00118) — streaming set cover evaluated on web graphs and
// document corpora — to every solver in this repository.
//
// Three formats are supported, each mapped onto set cover by a standard
// reduction:
//
//   - SNAP edge lists (snap.stanford.edu): whitespace-separated "u v"
//     pairs, '#' comments. Each edge becomes a universe element and each
//     node the set of its incident edges, so a set cover is a vertex
//     cover (the node ids are remapped to 0..m-1 in sorted order, edges
//     numbered in file order).
//   - FIMI transaction itemsets (fimi.uantwerpen.be): one transaction of
//     whitespace-separated item ids per line. Transactions are the sets
//     (in file order), items the universe (remapped to 0..n-1 in sorted
//     id order) — cover all items with the fewest transactions.
//   - DIMACS graph files: "p edge <nodes> <edges>" then 1-based "e u v"
//     lines. The same vertex-cover reduction as SNAP, with the declared
//     node count fixing m (isolated nodes become empty sets).
//
// Import returns a normalized, validated Instance plus a Meta describing
// both the produced instance and the source shape. Every importer is
// deterministic: the same input bytes always yield the same instance (and
// therefore the same content hash in coverd's registry).
package dataset

import (
	"bufio"
	"fmt"
	"io"

	"streamcover/internal/setsystem"
)

// Format identifies a supported source format.
type Format int

const (
	// SNAP is a whitespace-separated edge list with '#' comments.
	SNAP Format = iota
	// FIMI is one transaction of whitespace-separated item ids per line.
	FIMI
	// DIMACS is the DIMACS graph format ("p edge" header, "e u v" lines).
	DIMACS
)

// Formats lists the accepted ParseFormat spellings, for CLI usage lines.
var Formats = []string{"snap", "fimi", "dimacs"}

func (f Format) String() string {
	switch f {
	case SNAP:
		return "snap"
	case FIMI:
		return "fimi"
	case DIMACS:
		return "dimacs"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat parses a format name as spelled in Formats.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "snap":
		return SNAP, nil
	case "fimi":
		return FIMI, nil
	case "dimacs":
		return DIMACS, nil
	default:
		return 0, fmt.Errorf("dataset: unknown format %q (valid: snap, fimi, dimacs)", s)
	}
}

// Meta describes an imported instance: the produced shape plus the source
// counts in the source's own vocabulary (nodes/edges for the graph
// formats, transactions/items for FIMI).
type Meta struct {
	Format Format
	// N, M and TotalElems are the produced instance's universe size,
	// set count and Σ|S_i|.
	N, M, TotalElems int
	// Nodes and Edges are set for SNAP and DIMACS.
	Nodes, Edges int
	// Transactions and Items are set for FIMI.
	Transactions, Items int
}

// Summary is a one-line human description, used by coverimport.
func (m Meta) Summary() string {
	switch m.Format {
	case FIMI:
		return fmt.Sprintf("fimi: %d transactions over %d items -> instance n=%d m=%d total=%d",
			m.Transactions, m.Items, m.N, m.M, m.TotalElems)
	default:
		return fmt.Sprintf("%s: %d nodes, %d edges -> instance n=%d m=%d total=%d",
			m.Format, m.Nodes, m.Edges, m.N, m.M, m.TotalElems)
	}
}

// Import reads a dataset in the given format and returns it as a
// normalized set-cover instance.
func Import(r io.Reader, f Format) (*setsystem.Instance, Meta, error) {
	var (
		in   *setsystem.Instance
		meta Meta
		err  error
	)
	switch f {
	case SNAP:
		in, meta, err = importSNAP(r)
	case FIMI:
		in, meta, err = importFIMI(r)
	case DIMACS:
		in, meta, err = importDIMACS(r)
	default:
		return nil, Meta{}, fmt.Errorf("dataset: unknown format %v", f)
	}
	if err != nil {
		return nil, Meta{}, err
	}
	in.SortSets()
	if verr := in.Validate(); verr != nil {
		return nil, Meta{}, fmt.Errorf("dataset: importer produced an invalid instance: %w", verr)
	}
	meta.Format = f
	meta.N, meta.M, meta.TotalElems = in.N, in.M(), in.TotalElems()
	return in, meta, nil
}

// newLineScanner returns a scanner sized for dataset lines (FIMI
// transactions and SNAP adjacency dumps can run long).
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	return sc
}

// incidenceInstance builds the vertex-cover-as-set-cover instance shared
// by the graph importers: universe = the edges (numbered in input order),
// set i = the edges incident to node i. Each endpoint pair indexes nodes
// in [0, nodes); self-loops contribute their element once. Because edge
// ids increase in input order, every incident list comes out sorted and
// duplicate-free by construction.
func incidenceInstance(nodes int, edges [][2]int) *setsystem.Instance {
	deg := make([]int, nodes)
	for _, e := range edges {
		deg[e[0]]++
		if e[1] != e[0] {
			deg[e[1]]++
		}
	}
	offs := make([]int, nodes+1)
	for i, d := range deg {
		offs[i+1] = offs[i] + d
	}
	elems := make([]int32, offs[nodes])
	cur := make([]int, nodes)
	copy(cur, offs[:nodes])
	for id, e := range edges {
		elems[cur[e[0]]] = int32(id)
		cur[e[0]]++
		if e[1] != e[0] {
			elems[cur[e[1]]] = int32(id)
			cur[e[1]]++
		}
	}
	b := setsystem.NewBuilder(len(edges))
	b.Grow(nodes, len(elems))
	for i := 0; i < nodes; i++ {
		b.AddSet32(elems[offs[i]:offs[i+1]])
	}
	return b.Build()
}
