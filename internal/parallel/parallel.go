// Package parallel is the multi-core scheduling layer of streamcover.
//
// The paper's õpt-guessing wrapper runs a (1+ε)-geometric grid of Algorithm 1
// instances "in parallel" over the same stream passes; the guesses are
// logically independent, so nothing forces them onto one core. Run drives a
// slice of stream.PassAlgorithm children over a stream concurrently: the
// stream is still read exactly once per pass (by the producer goroutine) and
// its items are fanned out read-only, in chunks, to a pool of workers, each
// of which owns a static partition of the children. The producer also
// attaches each item's word-mask run list (bitset.Run, built once per item
// per pass into a chunk-owned arena) so every guess on every worker probes
// the same read-only runs instead of rebuilding them, and copies unstable
// items' elements into a chunk-owned arena rather than allocating per item.
// Per-guess offline sub-solves (Algorithm 1 step 3(c)) happen inside EndPass
// and therefore run concurrently across guesses too.
//
// # Determinism contract
//
// For a fixed root seed the outcome is bit-identical at every worker count:
//
//   - every child observes the full pass in stream arrival order, because
//     items are broadcast (not sharded) and each child is driven by exactly
//     one worker;
//   - children never share mutable state — in particular each child owns an
//     RNG split deterministically from the root seed at construction time;
//   - accounting is pass-synchronized (below), so Accounting is a pure
//     function of the children and the stream, not of Config.Workers.
//
// # Accounting parity
//
// Run reproduces the accounting of the sequential driver (stream.Run over a
// stream.Parallel composition): Items counts every item read per pass, Passes
// counts passes until all children finish, and PeakSpace is the peak of the
// summed child footprints sampled after BeginPass, after the last observed
// item, and after EndPass of each pass. This equals the sequential driver's
// per-item peak whenever each child's Space() is non-decreasing within a
// pass's Observe phase — true of every algorithm in this repository (space
// only grows as projections/solutions are stored; it shrinks only across
// EndPass boundaries). For a non-monotone child the reported peak is still
// deterministic, but is a lower bound on the sequential per-item sample.
package parallel

import (
	"context"
	"runtime"
	"sync"

	"streamcover/internal/bitset"
	"streamcover/internal/stream"
)

// Config parameterizes Run.
type Config struct {
	// Workers is the number of worker goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0). The effective count never exceeds the number
	// of still-active children.
	Workers int
	// MaxPasses bounds the run; Run returns stream.ErrPassLimit when the
	// children do not all finish within it.
	MaxPasses int
	// ChunkSize is the number of items buffered per broadcast chunk
	// (0 means DefaultChunkSize). Larger chunks amortize channel traffic;
	// smaller chunks reduce producer/worker skew.
	ChunkSize int
	// Context, when non-nil, cancels the run cooperatively: the producer
	// polls it before every pass and every broadcast chunk, and Run aborts
	// with ctx.Err() using the same shape as a mid-pass stream failure
	// (partial pass accounted, EndPass skipped). nil means no cancellation.
	Context context.Context
}

// DefaultChunkSize is the item fan-out granularity used when
// Config.ChunkSize is zero.
const DefaultChunkSize = 64

// Workers resolves a requested parallelism level: p if positive, else
// runtime.GOMAXPROCS(0).
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Stable is implemented by streams whose returned Item.Elems remain valid
// (and immutable) until the next Reset. Run broadcasts such items without
// copying; items from other streams are copied into chunk-owned storage
// before they cross goroutines.
type Stable interface {
	StableItems() bool
}

func stableItems(s stream.Stream) bool {
	st, ok := s.(Stable)
	return ok && st.StableItems()
}

// Run drives the children over s concurrently until every child reports
// done, mirroring stream.Run(s, stream.NewParallel(children...), maxPasses)
// in results and accounting (see the package comment for the exact parity
// statement).
func Run(s stream.Stream, children []stream.PassAlgorithm, cfg Config) (stream.Accounting, error) {
	if len(children) == 0 {
		// Preserve the sequential driver's convention: an empty composition
		// is done after one (counted) pass.
		return stream.Run(s, stream.NewParallel(), cfg.MaxPasses)
	}
	nc := len(children)
	var (
		acc      stream.Accounting
		done     = make([]bool, nc)
		retained = make([]int, nc) // final footprint of finished children
		sBegin   = make([]int, nc) // footprint after BeginPass
		sLast    = make([]int, nc) // footprint after the last observed item
		sEnd     = make([]int, nc) // footprint after EndPass
		passDone = make([]bool, nc)
		active   = make([]int, 0, nc)
	)
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	stable := stableItems(s)
	var cancel <-chan struct{}
	if cfg.Context != nil {
		cancel = cfg.Context.Done()
	}
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		if cancel != nil {
			select {
			case <-cancel:
				return acc, cfg.Context.Err()
			default:
			}
		}
		active = active[:0]
		base := 0 // finished children keep paying for retained state
		for i := range children {
			if done[i] {
				base += retained[i]
			} else {
				active = append(active, i)
			}
		}
		s.Reset()
		items, serr := runPass(s, children, active, pass, Workers(cfg.Workers), chunkSize, stable,
			cfg.Context, sBegin, sLast, sEnd, passDone)
		if serr != nil {
			// Mid-pass stream failure: mirror the sequential driver — account
			// the partial pass, skip EndPass, surface the error.
			sumBegin, sumLast := base, base
			for _, ci := range active {
				sumBegin += sBegin[ci]
				sumLast += sLast[ci]
			}
			acc.PeakSpace = max(acc.PeakSpace, sumBegin, sumLast)
			acc.Items += items
			acc.Passes = pass + 1
			return acc, serr
		}
		sumBegin, sumLast, sumEnd := base, base, base
		for _, ci := range active {
			sumBegin += sBegin[ci]
			sumLast += sLast[ci]
			sumEnd += sEnd[ci]
		}
		acc.PeakSpace = max(acc.PeakSpace, sumBegin, sumLast, sumEnd)
		acc.Items += items
		acc.Passes = pass + 1
		allDone := true
		for _, ci := range active {
			if passDone[ci] {
				done[ci] = true
				retained[ci] = sEnd[ci]
			} else {
				allDone = false
			}
		}
		if allDone {
			return acc, nil
		}
	}
	return acc, stream.ErrPassLimit{Limit: cfg.MaxPasses}
}

// runPass fans one pass of s out to the active children: a worker pool owns
// a strided partition of the children while the calling goroutine reads the
// stream once and broadcasts read-only item chunks. Returns the number of
// items read and the stream's mid-pass error, if any; on error the workers
// skip EndPass (matching the sequential driver, which aborts before it).
// A cancelled ctx (polled once per chunk) surfaces the same way, as a
// mid-pass failure with ctx.Err().
func runPass(s stream.Stream, children []stream.PassAlgorithm, active []int,
	pass, workers, chunkSize int, stable bool, ctx context.Context,
	sBegin, sLast, sEnd []int, passDone []bool) (int, error) {
	w := min(workers, len(active))
	if w < 1 {
		w = 1
	}
	chans := make([]chan []stream.Item, w)
	for i := range chans {
		chans[i] = make(chan []stream.Item, 4)
	}
	// failed is written by the producer before the channels close and read
	// by workers only after their channel is drained, so the close is the
	// happens-before edge.
	failed := false
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for j := wi; j < len(active); j += w {
				ci := active[j]
				children[ci].BeginPass(pass)
				sBegin[ci] = children[ci].Space()
				sLast[ci] = sBegin[ci]
			}
			for batch := range chans[wi] {
				for j := wi; j < len(active); j += w {
					ci := active[j]
					c := children[ci]
					for _, item := range batch {
						c.Observe(item)
					}
					sLast[ci] = c.Space()
				}
			}
			if failed {
				return
			}
			for j := wi; j < len(active); j += w {
				ci := active[j]
				passDone[ci] = children[ci].EndPass()
				sEnd[ci] = children[ci].Space()
			}
		}(wi)
	}
	items := 0
	batch := make([]stream.Item, 0, chunkSize)
	// Chunk-owned arenas: unstable items are copied into elemArena (one
	// amortized allocation per chunk instead of one per item) and every
	// item's word-mask run list is built once here, into runArena, so all
	// guesses on all workers share one read-only run list per item. Both
	// arenas are handed off with the batch and replaced after each flush;
	// views stay valid even if a later append within the chunk reallocates,
	// because the copied-out prefix keeps its old backing array. Building a
	// run list costs about one scalar probe loop and pays from the second
	// consumer onward, so with a single active child (late passes after the
	// other guesses finished) the consumer's scalar fallback is cheaper and
	// the build is skipped.
	buildRuns := len(active) > 1
	var (
		elemArena []int32
		runArena  []bitset.Run
	)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		for _, ch := range chans {
			ch <- batch
		}
		batch = make([]stream.Item, 0, chunkSize)
		elemArena = make([]int32, 0, len(elemArena))
		runArena = make([]bitset.Run, 0, len(runArena))
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	var cancelErr error
	for cancelErr == nil {
		item, ok := s.Next()
		if !ok {
			break
		}
		if !stable {
			start := len(elemArena)
			elemArena = append(elemArena, item.Elems...)
			item.Elems = elemArena[start:len(elemArena):len(elemArena)]
		}
		if buildRuns {
			start := len(runArena)
			runArena = bitset.AppendRuns(runArena, item.Elems)
			item.Runs = runArena[start:len(runArena):len(runArena)]
		}
		items++
		batch = append(batch, item)
		if len(batch) == chunkSize {
			flush()
			if cancel != nil {
				select {
				case <-cancel:
					cancelErr = ctx.Err()
				default:
				}
			}
		}
	}
	flush()
	serr := stream.PassErr(s)
	if serr == nil {
		serr = cancelErr
	}
	failed = serr != nil
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	return items, serr
}

// minInline is the candidate count below which ArgMax runs inline
// regardless of the worker count: goroutine startup dwarfs the work.
const minInline = 32

// ArgMax returns the index in [0, n) maximizing score, and the maximum
// itself, evaluating candidates across w workers (w <= 1 runs inline). Ties
// break toward the lowest index — exactly the outcome of a sequential
// first-strictly-greater scan — so the result is independent of w. score
// must be safe to call concurrently for distinct i. Returns (-1, 0) when
// n <= 0.
func ArgMax(w, n int, score func(i int) int) (best, bestScore int) {
	if n <= 0 {
		return -1, 0
	}
	if w > n {
		w = n
	}
	if w <= 1 || n < minInline {
		return argMaxRange(0, n, score)
	}
	idxs := make([]int, w)
	scores := make([]int, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		lo, hi := wi*n/w, (wi+1)*n/w
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			idxs[wi], scores[wi] = argMaxRange(lo, hi, score)
		}(wi, lo, hi)
	}
	wg.Wait()
	// Workers own ascending contiguous ranges, so combining in worker order
	// with a strict > keeps the lowest index among maximal scores.
	best, bestScore = idxs[0], scores[0]
	for wi := 1; wi < w; wi++ {
		if scores[wi] > bestScore {
			best, bestScore = idxs[wi], scores[wi]
		}
	}
	return best, bestScore
}

func argMaxRange(lo, hi int, score func(i int) int) (best, bestScore int) {
	best, bestScore = lo, score(lo)
	for i := lo + 1; i < hi; i++ {
		if s := score(i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best, bestScore
}
