// Package parallel is the multi-core scheduling layer of streamcover.
//
// The paper's õpt-guessing wrapper runs a (1+ε)-geometric grid of Algorithm 1
// instances "in parallel" over the same stream passes; the guesses are
// logically independent, so nothing forces them onto one core. Run drives a
// slice of stream.PassAlgorithm children over a stream concurrently: the
// stream is still read exactly once per pass (by the producer goroutine) and
// its items are fanned out read-only, in chunks, to a pool of workers, each
// of which owns a static partition of the children. The producer also
// attaches each item's word-mask run list (bitset.Run, built once per item
// per pass into a chunk-owned arena) so every guess on every worker probes
// the same read-only runs instead of rebuilding them, and copies unstable
// items' elements into a chunk-owned arena rather than allocating per item.
// Per-guess offline sub-solves (Algorithm 1 step 3(c)) happen inside EndPass
// and therefore run concurrently across guesses too.
//
// # Determinism contract
//
// For a fixed root seed the outcome is bit-identical at every worker count:
//
//   - every child observes the full pass in stream arrival order, because
//     items are broadcast (not sharded) and each child is driven by exactly
//     one worker;
//   - children never share mutable state — in particular each child owns an
//     RNG split deterministically from the root seed at construction time;
//   - accounting is pass-synchronized (below), so Accounting is a pure
//     function of the children and the stream, not of Config.Workers.
//
// # Accounting parity
//
// Run reproduces the accounting of the sequential driver (stream.Run over a
// stream.Parallel composition): Items counts every item read per pass, Passes
// counts passes until all children finish, and PeakSpace is the peak of the
// summed child footprints sampled after BeginPass, after the last observed
// item, and after EndPass of each pass. This equals the sequential driver's
// per-item peak whenever each child's Space() is non-decreasing within a
// pass's Observe phase — true of every algorithm in this repository (space
// only grows as projections/solutions are stored; it shrinks only across
// EndPass boundaries). For a non-monotone child the reported peak is still
// deterministic, but is a lower bound on the sequential per-item sample.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamcover/internal/bitset"
	"streamcover/internal/stream"
)

// Config parameterizes Run.
type Config struct {
	// Workers is the number of worker goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0). The effective count never exceeds the number
	// of still-active children.
	Workers int
	// MaxPasses bounds the run; Run returns stream.ErrPassLimit when the
	// children do not all finish within it.
	MaxPasses int
	// ChunkSize is the number of items buffered per broadcast chunk
	// (0 means DefaultChunkSize). Larger chunks amortize channel traffic;
	// smaller chunks reduce producer/worker skew.
	ChunkSize int
	// Context, when non-nil, cancels the run cooperatively: the producer
	// polls it before every pass and every broadcast chunk, and Run aborts
	// with ctx.Err() using the same shape as a mid-pass stream failure
	// (partial pass accounted, EndPass skipped). nil means no cancellation.
	Context context.Context
	// Trace, when non-nil, receives one stream.PassSample per completed
	// pass, assembled after the pass barrier (done.Wait) so every read of
	// child state is race-free. nil disables all trace work, including the
	// wall-clock reads.
	Trace stream.TraceSink
}

// DefaultChunkSize is the item fan-out granularity used when
// Config.ChunkSize is zero.
const DefaultChunkSize = 64

// Workers resolves a requested parallelism level: p if positive, else
// runtime.GOMAXPROCS(0).
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Stable is implemented by streams whose returned Item.Elems remain valid
// (and immutable) until the next Reset. Run broadcasts such items without
// copying; items from other streams are copied into chunk-owned storage
// before they cross goroutines.
type Stable interface {
	StableItems() bool
}

func stableItems(s stream.Stream) bool {
	st, ok := s.(Stable)
	return ok && st.StableItems()
}

// liveLanes sums the live lane counts over children exposing
// stream.LaneCounter, or returns -1 when none do — the same convention as
// the sequential driver's stream.Parallel composition.
func liveLanes(children []stream.PassAlgorithm) int {
	sum, known := 0, false
	for _, c := range children {
		if lc, ok := c.(stream.LaneCounter); ok {
			sum += lc.LiveLanes()
			known = true
		}
	}
	if !known {
		return -1
	}
	return sum
}

func replayedPass(s stream.Stream) bool {
	pr, ok := s.(stream.PassReplayer)
	return ok && pr.ReplayedPass()
}

// Run drives the children over s concurrently until every child reports
// done, mirroring stream.Run(s, stream.NewParallel(children...), maxPasses)
// in results and accounting (see the package comment for the exact parity
// statement).
func Run(s stream.Stream, children []stream.PassAlgorithm, cfg Config) (stream.Accounting, error) {
	if len(children) == 0 {
		// Preserve the sequential driver's convention: an empty composition
		// is done after one (counted) pass.
		return stream.Run(s, stream.NewParallel(), cfg.MaxPasses)
	}
	nc := len(children)
	var (
		acc      stream.Accounting
		done     = make([]bool, nc)
		retained = make([]int, nc) // final footprint of finished children
		sBegin   = make([]int, nc) // footprint after BeginPass
		sLast    = make([]int, nc) // footprint after the last observed item
		sEnd     = make([]int, nc) // footprint after EndPass
		passDone = make([]bool, nc)
		active   = make([]int, 0, nc)
	)
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var cancel <-chan struct{}
	if cfg.Context != nil {
		cancel = cfg.Context.Done()
	}
	p := newPool(min(Workers(cfg.Workers), nc), children, sBegin, sLast, sEnd, passDone)
	defer p.close()
	var passStart time.Time
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		if cancel != nil {
			select {
			case <-cancel:
				return acc, cfg.Context.Err()
			default:
			}
		}
		active = active[:0]
		base := 0 // finished children keep paying for retained state
		for i := range children {
			if done[i] {
				base += retained[i]
			} else {
				active = append(active, i)
			}
		}
		replayed := false
		if cfg.Trace != nil {
			passStart = time.Now()
		}
		s.Reset()
		if cfg.Trace != nil {
			replayed = replayedPass(s)
		}
		// Stability is queried per pass, after Reset: a stream can become
		// stable between passes (stream.PlanCache finishes recording at the
		// end of its first pass and serves immutable plan views thereafter).
		items, serr := p.runPass(s, active, pass, chunkSize, stableItems(s), cfg.Context)
		if serr != nil {
			// Mid-pass stream failure: mirror the sequential driver — account
			// the partial pass, skip EndPass, surface the error.
			sumBegin, sumLast := base, base
			for _, ci := range active {
				sumBegin += sBegin[ci]
				sumLast += sLast[ci]
			}
			acc.PeakSpace = max(acc.PeakSpace, sumBegin, sumLast)
			acc.Items += items
			acc.Passes = pass + 1
			return acc, serr
		}
		sumBegin, sumLast, sumEnd := base, base, base
		for _, ci := range active {
			sumBegin += sBegin[ci]
			sumLast += sLast[ci]
			sumEnd += sEnd[ci]
		}
		acc.PeakSpace = max(acc.PeakSpace, sumBegin, sumLast, sumEnd)
		acc.Items += items
		acc.Passes = pass + 1
		if cfg.Trace != nil {
			// runPass's done.Wait barrier already happened: child state reads
			// here are race-free.
			cfg.Trace.TracePass(stream.PassSample{
				Pass:       pass,
				Duration:   time.Since(passStart),
				Items:      items,
				SpaceWords: sumEnd,
				PeakSpace:  acc.PeakSpace,
				Live:       liveLanes(children),
				Replayed:   replayed,
			})
		}
		allDone := true
		for _, ci := range active {
			if passDone[ci] {
				done[ci] = true
				retained[ci] = sEnd[ci]
			} else {
				allDone = false
			}
		}
		if allDone {
			return acc, nil
		}
	}
	return acc, stream.ErrPassLimit{Limit: cfg.MaxPasses}
}

// chunk is one broadcast unit: a batch of items plus the chunk-owned
// arenas their views point into. Chunks are refcounted across the workers
// they were broadcast to and recycled through the pool's free list once
// every worker has consumed them, so steady-state passes allocate nothing —
// algorithms must not retain item views past Observe (the documented Item
// contract), which is exactly what makes the recycle safe.
type chunk struct {
	items     []stream.Item
	elemArena []int32
	runArena  []bitset.Run
	refs      atomic.Int32
}

// pool is a persistent worker pool spanning all passes of one Run: w
// goroutines, each owning a static strided partition of the active
// children, fed per-pass through begin tokens and per-chunk broadcast
// channels. Keeping the goroutines and chunk storage alive across passes is
// what turns the per-pass cost from "spawn w goroutines + allocate every
// arena" into zero steady-state allocation.
type pool struct {
	w        int
	children []stream.PassAlgorithm
	chans    []chan *chunk // per-worker broadcast; nil chunk = end of pass
	free     chan *chunk   // recycle channel: consumed chunks come back here
	begin    []chan struct{}
	wg       sync.WaitGroup // worker goroutine lifetimes
	done     sync.WaitGroup // per-pass completion barrier

	// Per-pass coordination state, written by the producer before the begin
	// tokens are sent (the happens-before edge) and read back only after
	// done.Wait().
	active   []int
	pass     int
	failed   bool
	sBegin   []int
	sLast    []int
	sEnd     []int
	passDone []bool
}

func newPool(w int, children []stream.PassAlgorithm,
	sBegin, sLast, sEnd []int, passDone []bool) *pool {
	if w < 1 {
		w = 1
	}
	p := &pool{
		w: w, children: children,
		chans:  make([]chan *chunk, w),
		free:   make(chan *chunk, 4*w+4),
		begin:  make([]chan struct{}, w),
		sBegin: sBegin, sLast: sLast, sEnd: sEnd, passDone: passDone,
	}
	for i := range p.chans {
		p.chans[i] = make(chan *chunk, 4)
		p.begin[i] = make(chan struct{}, 1)
	}
	p.wg.Add(w)
	for wi := 0; wi < w; wi++ {
		go p.worker(wi)
	}
	return p
}

// close shuts the worker goroutines down; it must only be called between
// passes (after runPass returned).
func (p *pool) close() {
	for _, ch := range p.begin {
		close(ch)
	}
	p.wg.Wait()
}

func (p *pool) worker(wi int) {
	defer p.wg.Done()
	for range p.begin[wi] {
		active, pass := p.active, p.pass
		for j := wi; j < len(active); j += p.w {
			ci := active[j]
			p.children[ci].BeginPass(pass)
			p.sBegin[ci] = p.children[ci].Space()
			p.sLast[ci] = p.sBegin[ci]
		}
		for {
			ck := <-p.chans[wi]
			if ck == nil {
				break
			}
			for j := wi; j < len(active); j += p.w {
				ci := active[j]
				c := p.children[ci]
				for _, item := range ck.items {
					c.Observe(item)
				}
				p.sLast[ci] = c.Space()
			}
			p.release(ck)
		}
		// failed was written by the producer before the nil sentinel was
		// sent, so the receive above is the happens-before edge.
		if !p.failed {
			for j := wi; j < len(active); j += p.w {
				ci := active[j]
				p.passDone[ci] = p.children[ci].EndPass()
				p.sEnd[ci] = p.children[ci].Space()
			}
		}
		p.done.Done()
	}
}

// release returns a fully consumed chunk to the free list; when the list is
// full the chunk is simply dropped for the GC.
func (p *pool) release(ck *chunk) {
	if ck.refs.Add(-1) == 0 {
		select {
		case p.free <- ck:
		default:
		}
	}
}

// get recycles a chunk from the free list, or allocates a fresh one (cold
// start, or the free list momentarily drained). Recycled arenas keep their
// capacity: a warmed pool serves every later pass allocation-free.
func (p *pool) get(chunkSize int) *chunk {
	select {
	case ck := <-p.free:
		ck.items = ck.items[:0]
		ck.elemArena = ck.elemArena[:0]
		ck.runArena = ck.runArena[:0]
		return ck
	default:
		return &chunk{items: make([]stream.Item, 0, chunkSize)}
	}
}

// send broadcasts a chunk to every worker, transferring w references.
func (p *pool) send(ck *chunk) {
	ck.refs.Store(int32(p.w))
	for _, ch := range p.chans {
		ch <- ck
	}
}

// runPass fans one pass of s out to the active children: the pool's workers
// own a strided partition of the children while the calling goroutine reads
// the stream once and broadcasts read-only item chunks. Returns the number
// of items read and the stream's mid-pass error, if any; on error the
// workers skip EndPass (matching the sequential driver, which aborts before
// it). A cancelled ctx (polled once per chunk) surfaces the same way, as a
// mid-pass failure with ctx.Err().
//
// Chunk-owned arenas: unstable items are copied into elemArena (one
// amortized copy per chunk instead of an allocation per item) and each
// item's word-mask run list is built once here, into runArena, so all
// guesses on all workers share one read-only run list per item. Views stay
// valid even if a later append within the chunk reallocates, because the
// copied-out prefix keeps its old backing array. Building a run list costs
// about one scalar probe loop and pays from the second consumer onward, so
// with a single active child the consumer's scalar fallback is cheaper and
// the build is skipped; items that arrive with Runs already attached (a
// replayed plan) are broadcast as-is.
func (p *pool) runPass(s stream.Stream, active []int, pass, chunkSize int,
	stable bool, ctx context.Context) (int, error) {
	p.active, p.pass, p.failed = active, pass, false
	p.done.Add(p.w)
	for _, ch := range p.begin {
		ch <- struct{}{}
	}
	buildRuns := len(active) > 1
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	var cancelErr error
	items := 0
	ck := p.get(chunkSize)
	for cancelErr == nil {
		item, ok := s.Next()
		if !ok {
			break
		}
		if !stable {
			start := len(ck.elemArena)
			ck.elemArena = append(ck.elemArena, item.Elems...)
			item.Elems = ck.elemArena[start:len(ck.elemArena):len(ck.elemArena)]
		}
		if buildRuns && item.Runs == nil {
			start := len(ck.runArena)
			ck.runArena = bitset.AppendRuns(ck.runArena, item.Elems)
			item.Runs = ck.runArena[start:len(ck.runArena):len(ck.runArena)]
		}
		items++
		ck.items = append(ck.items, item)
		if len(ck.items) == chunkSize {
			p.send(ck)
			ck = p.get(chunkSize)
			if cancel != nil {
				select {
				case <-cancel:
					cancelErr = ctx.Err()
				default:
				}
			}
		}
	}
	if len(ck.items) > 0 {
		p.send(ck)
	} else {
		select {
		case p.free <- ck:
		default:
		}
	}
	serr := stream.PassErr(s)
	if serr == nil {
		serr = cancelErr
	}
	p.failed = serr != nil
	for _, ch := range p.chans {
		ch <- nil
	}
	p.done.Wait()
	return items, serr
}

// minInline is the candidate count below which ArgMax runs inline
// regardless of the worker count: goroutine startup dwarfs the work.
const minInline = 32

// maxArgMaxWorkers caps the fan-out so the scratch's per-worker result
// arrays can live inline in the pooled struct instead of per-call slices.
const maxArgMaxWorkers = 64

// argmaxScratch is the reusable per-call state of a parallel ArgMax:
// fixed-size result arrays replace the two per-call slice allocations, and
// the struct (including its WaitGroup) is recycled through a sync.Pool.
// The remaining per-call cost is one small closure allocation per spawned
// goroutine — unavoidable with per-call goroutines — bounded by the
// AllocsPerRun guard in the tests.
type argmaxScratch struct {
	wg     sync.WaitGroup
	w, n   int
	score  func(i int) int
	idxs   [maxArgMaxWorkers]int
	scores [maxArgMaxWorkers]int
}

var argmaxPool = sync.Pool{New: func() any { return new(argmaxScratch) }}

func (sc *argmaxScratch) run(wi int) {
	lo, hi := wi*sc.n/sc.w, (wi+1)*sc.n/sc.w
	sc.idxs[wi], sc.scores[wi] = argMaxRange(lo, hi, sc.score)
	sc.wg.Done()
}

// ArgMax returns the index in [0, n) maximizing score, and the maximum
// itself, evaluating candidates across w workers (w <= 1 runs inline). Ties
// break toward the lowest index — exactly the outcome of a sequential
// first-strictly-greater scan — so the result is independent of w. score
// must be safe to call concurrently for distinct i. Returns (-1, 0) when
// n <= 0.
func ArgMax(w, n int, score func(i int) int) (best, bestScore int) {
	if n <= 0 {
		return -1, 0
	}
	if w > n {
		w = n
	}
	if w > maxArgMaxWorkers {
		w = maxArgMaxWorkers
	}
	if w <= 1 || n < minInline {
		return argMaxRange(0, n, score)
	}
	sc := argmaxPool.Get().(*argmaxScratch)
	sc.w, sc.n, sc.score = w, n, score
	sc.wg.Add(w - 1)
	for wi := 1; wi < w; wi++ {
		go sc.run(wi)
	}
	// The caller's goroutine scans worker 0's range itself instead of
	// idling in Wait.
	best, bestScore = argMaxRange(0, n/w, score)
	sc.wg.Wait()
	// Workers own ascending contiguous ranges, so combining in worker order
	// with a strict > keeps the lowest index among maximal scores.
	for wi := 1; wi < w; wi++ {
		if sc.scores[wi] > bestScore {
			best, bestScore = sc.idxs[wi], sc.scores[wi]
		}
	}
	sc.score = nil
	argmaxPool.Put(sc)
	return best, bestScore
}

func argMaxRange(lo, hi int, score func(i int) int) (best, bestScore int) {
	best, bestScore = lo, score(lo)
	for i := lo + 1; i < hi; i++ {
		if s := score(i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best, bestScore
}
