package parallel

import (
	"context"
	"errors"
	"testing"

	"streamcover/internal/stream"
)

// TestRunPreCanceledContext: a canceled Config.Context aborts before any
// pass begins.
func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs, algs := makeRecorders([]int{2, 2, 2})
	acc, err := Run(newSliceStream(16, 32), algs, Config{Workers: 2, MaxPasses: 8, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acc.Passes != 0 || acc.Items != 0 {
		t.Fatalf("pre-canceled run accounted work: %+v", acc)
	}
	for i, r := range recs {
		if len(r.seen) != 0 {
			t.Fatalf("child %d observed %d items after pre-cancel", i, len(r.seen))
		}
	}
}

// TestRunCancelMidPass: cancellation during a pass aborts with the
// mid-pass-failure shape — the partial pass is accounted and EndPass is
// skipped (children's pass counters stay put).
func TestRunCancelMidPass(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first chunk is broadcast: a 1-item chunk size
	// makes the producer poll ctx after every item.
	s := &cancelingStream{sliceStream: *newSliceStream(16, 512), cancel: cancel, after: 100}
	_, algs := makeRecorders([]int{4, 4})
	acc, err := Run(s, algs, Config{Workers: 2, MaxPasses: 8, ChunkSize: 1, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acc.Passes != 1 {
		t.Fatalf("acc.Passes = %d, want 1 (canceled during the first pass)", acc.Passes)
	}
	if acc.Items >= 512 {
		t.Fatalf("acc.Items = %d, want a partial pass", acc.Items)
	}
}

// TestRunNilContextUnchanged: without a Context the driver behaves exactly
// as before (the zero Config remains valid).
func TestRunNilContextUnchanged(t *testing.T) {
	recs, algs := makeRecorders([]int{2, 3})
	acc, err := Run(newSliceStream(16, 32), algs, Config{Workers: 2, MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 {
		t.Fatalf("acc.Passes = %d, want 3", acc.Passes)
	}
	for i, r := range recs {
		if len(r.seen) == 0 {
			t.Fatalf("child %d observed nothing", i)
		}
	}
}

// cancelingStream cancels the context after serving `after` items.
type cancelingStream struct {
	sliceStream
	cancel context.CancelFunc
	after  int
	served int
}

func (s *cancelingStream) Next() (stream.Item, bool) {
	if s.served == s.after {
		s.cancel()
	}
	s.served++
	return s.sliceStream.Next()
}
