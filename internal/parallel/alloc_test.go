package parallel

import (
	"testing"
)

// Allocation-regression guards for ArgMax, which Solve calls once per
// store-pass chunk: the scratch (partial results, WaitGroup) is pooled, so
// the inline path must be allocation-free and the parallel path may spend
// at most the w-1 goroutine spawns it cannot avoid.

func TestArgMaxInlineAllocFree(t *testing.T) {
	vals := make([]int, minInline-1) // below the threshold: stays inline
	for i := range vals {
		vals[i] = (i * 31) % 997
	}
	score := func(i int) int { return vals[i] }
	allocs := testing.AllocsPerRun(200, func() { ArgMax(4, len(vals), score) })
	if allocs > 0 {
		t.Fatalf("inline ArgMax allocates %.2f objects/call", allocs)
	}
}

func TestArgMaxParallelAllocBound(t *testing.T) {
	const w = 4
	vals := make([]int, 4096)
	for i := range vals {
		vals[i] = (i * 2654435761) % 100003
	}
	score := func(i int) int { return vals[i] }
	allocs := testing.AllocsPerRun(200, func() { ArgMax(w, len(vals), score) })
	if allocs > w-1 {
		t.Fatalf("parallel ArgMax allocates %.2f objects/call, budget %d (goroutine spawns only)", allocs, w-1)
	}
}
