package parallel

import (
	"errors"
	"reflect"
	"testing"

	"streamcover/internal/stream"
)

// sliceStream streams a fixed item slice; Elems are reused across passes but
// not across items, and it does not declare StableItems, so Run must copy.
type sliceStream struct {
	items []stream.Item
	pos   int
}

func newSliceStream(n, m int) *sliceStream {
	s := &sliceStream{pos: m}
	for id := 0; id < m; id++ {
		elems := []int32{int32(id % n), int32((id * 7) % n), int32((id*13 + 5) % n)}
		s.items = append(s.items, stream.Item{ID: id, Elems: elems})
	}
	return s
}

func (s *sliceStream) Universe() int { return 64 }
func (s *sliceStream) Len() int      { return len(s.items) }
func (s *sliceStream) Reset()        { s.pos = 0 }
func (s *sliceStream) Next() (stream.Item, bool) {
	if s.pos >= len(s.items) {
		return stream.Item{}, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// stableSliceStream additionally promises item stability (the no-copy path).
type stableSliceStream struct{ sliceStream }

func (s *stableSliceStream) StableItems() bool { return true }

// recorder is a PassAlgorithm that records every observation in order, has
// monotone non-decreasing space within a pass, and finishes after `need`
// passes — the shape for which Run promises exact parity with stream.Run.
type recorder struct {
	need int
	pass int
	seen []int // item IDs in observation order, tagged by pass
}

func (r *recorder) BeginPass(pass int) { r.pass = pass }
func (r *recorder) Observe(it stream.Item) {
	r.seen = append(r.seen, r.pass*1_000_000+it.ID*10+len(it.Elems)%10)
}
func (r *recorder) EndPass() bool { return r.pass+1 >= r.need }
func (r *recorder) Space() int    { return len(r.seen) + r.need }

func makeRecorders(needs []int) ([]*recorder, []stream.PassAlgorithm) {
	recs := make([]*recorder, len(needs))
	algs := make([]stream.PassAlgorithm, len(needs))
	for i, n := range needs {
		recs[i] = &recorder{need: n}
		algs[i] = recs[i]
	}
	return recs, algs
}

// TestRunMatchesSequentialDriver checks the parity contract: for children
// with monotone per-pass space, Run reproduces stream.Run's accounting and
// every child observes the identical item sequence, at every worker count
// and chunk size, on both the copying and the stable-stream paths.
func TestRunMatchesSequentialDriver(t *testing.T) {
	needs := []int{1, 3, 2, 5, 4, 2, 1, 3, 3, 5} // staggered finishes
	const maxPasses = 6

	seqRecs, seqAlgs := makeRecorders(needs)
	wantAcc, err := stream.Run(newSliceStream(64, 40), stream.NewParallel(seqAlgs...), maxPasses)
	if err != nil {
		t.Fatalf("sequential driver: %v", err)
	}

	for _, workers := range []int{1, 2, 3, 8, 32} {
		for _, chunk := range []int{1, 3, DefaultChunkSize} {
			for _, stable := range []bool{false, true} {
				recs, algs := makeRecorders(needs)
				var s stream.Stream = newSliceStream(64, 40)
				if stable {
					s = &stableSliceStream{*newSliceStream(64, 40)}
				}
				acc, err := Run(s, algs, Config{Workers: workers, MaxPasses: maxPasses, ChunkSize: chunk})
				if err != nil {
					t.Fatalf("workers=%d chunk=%d stable=%v: %v", workers, chunk, stable, err)
				}
				if acc != wantAcc {
					t.Errorf("workers=%d chunk=%d stable=%v: accounting %+v, sequential %+v",
						workers, chunk, stable, acc, wantAcc)
				}
				for i := range recs {
					if !reflect.DeepEqual(recs[i].seen, seqRecs[i].seen) {
						t.Errorf("workers=%d chunk=%d stable=%v: child %d observation order diverged",
							workers, chunk, stable, i)
					}
				}
			}
		}
	}
}

// TestRunPassLimit checks that an unfinished run reports stream.ErrPassLimit
// with the sequential driver's accounting.
func TestRunPassLimit(t *testing.T) {
	const maxPasses = 3
	seqRecs, seqAlgs := makeRecorders([]int{10, 1})
	wantAcc, wantErr := stream.Run(newSliceStream(16, 8), stream.NewParallel(seqAlgs...), maxPasses)
	if wantErr == nil {
		t.Fatal("sequential driver unexpectedly finished")
	}
	_ = seqRecs

	recs, algs := makeRecorders([]int{10, 1})
	acc, err := Run(newSliceStream(16, 8), algs, Config{Workers: 4, MaxPasses: maxPasses})
	var pl stream.ErrPassLimit
	if !errors.As(err, &pl) || pl.Limit != maxPasses {
		t.Fatalf("err = %v, want ErrPassLimit{%d}", err, maxPasses)
	}
	if acc != wantAcc {
		t.Errorf("accounting %+v, sequential %+v", acc, wantAcc)
	}
	if len(recs[1].seen) >= len(recs[0].seen) {
		t.Errorf("finished child kept observing: %d vs %d items", len(recs[1].seen), len(recs[0].seen))
	}
}

// TestRunEmptyChildren mirrors the sequential convention: an empty
// composition completes after one counted pass.
func TestRunEmptyChildren(t *testing.T) {
	acc, err := Run(newSliceStream(16, 8), nil, Config{Workers: 4, MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.Run(newSliceStream(16, 8), stream.NewParallel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc != want {
		t.Errorf("accounting %+v, sequential %+v", acc, want)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Errorf("Workers(<=0) = %d, %d; want >= 1", Workers(0), Workers(-1))
	}
}

// TestArgMaxDeterministic checks that ArgMax equals the sequential
// first-strictly-greater scan — including lowest-index tie-breaks — at every
// worker count, above and below the inline threshold.
func TestArgMaxDeterministic(t *testing.T) {
	cases := [][]int{
		{},
		{5},
		{0, 0, 0, 0},
		{1, 3, 3, 2, 3},
		make([]int, 100),
		nil,
	}
	// A large case with many ties: score collisions every 17 indices.
	big := make([]int, 257)
	for i := range big {
		big[i] = (i * 31 % 17) * 2
	}
	cases = append(cases, big)
	for ci, scores := range cases {
		wantIdx, wantScore := -1, 0
		for i, s := range scores {
			if wantIdx < 0 || s > wantScore {
				wantIdx, wantScore = i, s
			}
		}
		for _, w := range []int{1, 2, 3, 7, 16} {
			idx, score := ArgMax(w, len(scores), func(i int) int { return scores[i] })
			if idx != wantIdx || (wantIdx >= 0 && score != wantScore) {
				t.Errorf("case %d workers %d: ArgMax = (%d, %d), want (%d, %d)",
					ci, w, idx, score, wantIdx, wantScore)
			}
		}
	}
}
