package offline

import (
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// BenchmarkExactSubsolve measures a branch-and-bound sub-solve where greedy
// overshoots (greedy finds 11 sets, the optimum is 10), so the dfs actually
// searches — the Algorithm 1 step-3(c) workload that runs once per
// iteration per guess under the parallel grid.
func BenchmarkExactSubsolve(b *testing.B) {
	inst := setsystem.Uniform(rng.New(9), 64, 48, 6, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover, ok, err := CoverAtMost(inst, 10, ExactConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !ok || len(cover) > 10 {
			b.Fatalf("expected a cover of size <= 10, got %v ok=%v", cover, ok)
		}
	}
}
