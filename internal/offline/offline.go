// Package offline provides non-streaming set cover and maximum coverage
// solvers.
//
// The streaming model does not charge for computation, and Algorithm 1 of
// the paper requires an *optimal* cover of each (small) sampled sub-instance
// (step 3(c)); this package supplies that exact solver as a depth-bounded
// branch-and-bound, alongside the classical greedy (ln n)-approximation used
// as a baseline and fallback, and greedy/exact maximum-k-coverage solvers
// used by the maximum coverage experiments.
package offline

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"streamcover/internal/bitset"
	"streamcover/internal/setsystem"
)

// ctxPollMask spaces the solvers' cancellation polls: the context is checked
// once every ctxPollMask+1 units of work (search nodes, heap pops), keeping
// the poll off the per-node hot path while bounding the latency between a
// cancel and the solver returning.
const ctxPollMask = 4096 - 1

// pollCtx reports the context's error if it is done; a nil context never
// cancels.
func pollCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// ErrInfeasible is returned when the instance admits no set cover at all.
var ErrInfeasible = errors.New("offline: universe is not coverable by the given sets")

// ErrBudget is returned when an exact search exceeds its node budget.
var ErrBudget = errors.New("offline: exact search exceeded its node budget")

// Greedy returns the classical greedy set cover: repeatedly pick the set
// covering the most uncovered elements. Ties break toward the lower index.
// It implements lazy (heap-based) evaluation, so the running time is
// O(Σ|S_i| log m) rather than O(opt·m·n).
func Greedy(in *setsystem.Instance) ([]int, error) {
	return greedyOn(nil, in, nil)
}

// GreedyContext is Greedy with cancellation: the selection loop polls ctx
// periodically and returns ctx.Err() once it is done. A nil ctx never
// cancels.
func GreedyContext(ctx context.Context, in *setsystem.Instance) ([]int, error) {
	return greedyOn(ctx, in, nil)
}

// GreedyOn runs greedy covering only the target elements (nil means the full
// universe). It returns ErrInfeasible if the target cannot be covered.
func GreedyOn(in *setsystem.Instance, target *bitset.Bitset) ([]int, error) {
	return greedyOn(nil, in, target)
}

func greedyOn(ctx context.Context, in *setsystem.Instance, target *bitset.Bitset) ([]int, error) {
	if err := pollCtx(ctx); err != nil {
		return nil, err
	}
	uncovered := bitset.New(in.N)
	if target == nil {
		uncovered.Fill()
	} else {
		uncovered.CopyFrom(target)
	}
	remaining := uncovered.Count()
	if remaining == 0 {
		return nil, nil
	}

	sets := in.Bitsets()
	h := &gainHeap{}
	for i, s := range sets {
		g := s.AndCount(uncovered)
		if g > 0 {
			heap.Push(h, gainEntry{set: i, gain: g})
		}
	}

	var cover []int
	pops := 0
	for remaining > 0 {
		if pops++; pops&ctxPollMask == 0 {
			if err := pollCtx(ctx); err != nil {
				return nil, err
			}
		}
		if h.Len() == 0 {
			return nil, ErrInfeasible
		}
		top := heap.Pop(h).(gainEntry)
		// Lazy re-evaluation: the stored gain may be stale.
		g := sets[top.set].AndCount(uncovered)
		if g == 0 {
			continue
		}
		if h.Len() > 0 && g < (*h)[0].gain {
			heap.Push(h, gainEntry{set: top.set, gain: g})
			continue
		}
		cover = append(cover, top.set)
		uncovered.AndNot(sets[top.set])
		remaining -= g
	}
	return cover, nil
}

type gainEntry struct{ set, gain int }

// gainHeap is a max-heap on gain, tie-breaking toward lower set index so
// greedy is deterministic.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ExactConfig controls the branch-and-bound search.
type ExactConfig struct {
	// MaxSize bounds the cover size searched for; 0 means "no better bound
	// than greedy's" (the solver derives one).
	MaxSize int
	// NodeBudget bounds the number of search nodes; 0 means a default of
	// 50 million, which is ample for the sampled sub-instances Algorithm 1
	// produces. The search returns ErrBudget when exceeded.
	NodeBudget int64
	// Context, when non-nil, makes the search cancellable: the solvers poll
	// it every few thousand search nodes (and the greedy front-end polls per
	// selection batch) and return its error once it is done. A nil Context
	// never cancels — the pre-cancellation behavior.
	Context context.Context
}

const defaultNodeBudget = 50_000_000

// CoverAtMost searches for a set cover of size ≤ k. It returns the cover and
// ok=true if one exists, ok=false if provably none exists within size k, and
// ErrBudget if the node budget ran out before deciding.
func CoverAtMost(in *setsystem.Instance, k int, cfg ExactConfig) (cover []int, ok bool, err error) {
	if k < 0 {
		return nil, false, nil
	}
	budget := cfg.NodeBudget
	if budget == 0 {
		budget = defaultNodeBudget
	}
	if err := pollCtx(cfg.Context); err != nil {
		return nil, false, err
	}
	// Greedy-first: any cover of size ≤ k certifies "yes" — only when greedy
	// overshoots must the exhaustive search decide. This keeps generous-k
	// queries (Algorithm 1's per-iteration sub-solves) polynomial in
	// practice while preserving completeness.
	if g, gerr := greedyOn(cfg.Context, in, nil); gerr == nil && len(g) <= k {
		return g, true, nil
	} else if gerr != nil && gerr != ErrInfeasible {
		return nil, false, gerr
	}
	s := newSearcher(in, budget)
	s.ctx = cfg.Context
	uncovered := bitset.New(in.N)
	uncovered.Fill()
	if uncovered.Empty() {
		return nil, true, nil
	}
	found, err := s.search(uncovered, k)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return nil, false, nil
	}
	out := append([]int(nil), s.best...)
	return out, true, nil
}

// Exact computes an optimal set cover by iterative deepening over the cover
// size, starting from a lower bound and capped by greedy's solution. The
// instance is first dominance-reduced (subsumed sets cannot appear in some
// optimal cover without a superset substitute), which often shrinks the
// search substantially. It returns the optimum cover (original indices), or
// ErrInfeasible / ErrBudget.
func Exact(in *setsystem.Instance, cfg ExactConfig) ([]int, error) {
	red, kept := setsystem.ReduceDominated(in)
	cover, err := exactOn(red, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cover))
	for i, ri := range cover {
		out[i] = kept[ri]
	}
	return out, nil
}

func exactOn(in *setsystem.Instance, cfg ExactConfig) ([]int, error) {
	greedy, err := greedyOn(cfg.Context, in, nil)
	if err != nil {
		return nil, err
	}
	upper := len(greedy)
	if cfg.MaxSize > 0 && cfg.MaxSize < upper {
		upper = cfg.MaxSize
	}
	for k := lowerBound(in); k <= upper; k++ {
		cover, ok, err := CoverAtMost(in, k, cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			return cover, nil
		}
	}
	if cfg.MaxSize > 0 && cfg.MaxSize < len(greedy) {
		// Greedy beat the cap but the cap was exhausted: no ≤-cap answer
		// exists.
		return nil, fmt.Errorf("offline: no cover of size ≤ %d exists (greedy found %d)", cfg.MaxSize, len(greedy))
	}
	return greedy, nil
}

// OptAtMost decides min(opt, k+1): it returns opt if opt ≤ k, and k+1
// otherwise. This is the primitive the hard-instance experiments need
// (Lemma 3.2 checks opt > 2α without computing opt exactly).
func OptAtMost(in *setsystem.Instance, k int, cfg ExactConfig) (int, error) {
	for size := 0; size <= k; size++ {
		_, ok, err := CoverAtMost(in, size, cfg)
		if err != nil {
			return 0, err
		}
		if ok {
			return size, nil
		}
	}
	return k + 1, nil
}

// lowerBound returns a cheap lower bound on opt: ceil(n / max set size).
func lowerBound(in *setsystem.Instance) int {
	max := 0
	for i := 0; i < in.M(); i++ {
		if l := in.SetLen(i); l > max {
			max = l
		}
	}
	if max == 0 {
		return 1
	}
	lb := (in.N + max - 1) / max
	if lb < 1 {
		lb = 1
	}
	return lb
}

type searcher struct {
	in   *setsystem.Instance
	sets []*bitset.Bitset
	// Element→sets occurrence index in CSR form: the candidate sets for
	// element e are occSets[occOffs[e]:occOffs[e+1]]. Built by two counting
	// passes over the instance arena — two flat arrays instead of in.N
	// independently append-grown slices.
	occOffs []int32 // len N+1
	occSets []int32
	maxSize int // largest |S_i|
	budget  int64
	nodes   int64
	ctx     context.Context // polled every ctxPollMask+1 nodes; nil = never
	best    []int
	stack   []int
	// scratch is the per-depth uncovered-bitset pool: dfs at depth d writes
	// its child's uncovered set into scratch[d] instead of cloning one
	// bitset per node. Frame d's input (scratch[d-1]) is only rewritten by
	// its parent between sibling branches, never below it, so the borrow is
	// safe; the pool grows to the search depth once and is reused for every
	// node after that — steady-state dfs allocates nothing.
	scratch []*bitset.Bitset
}

func newSearcher(in *setsystem.Instance, budget int64) *searcher {
	s := &searcher{in: in, sets: in.Bitsets(), budget: budget}
	s.occOffs = make([]int32, in.N+1)
	for i := 0; i < in.M(); i++ {
		set := in.Set(i)
		if len(set) > s.maxSize {
			s.maxSize = len(set)
		}
		for _, e := range set {
			s.occOffs[e+1]++
		}
	}
	for e := 0; e < in.N; e++ {
		s.occOffs[e+1] += s.occOffs[e]
	}
	s.occSets = make([]int32, s.occOffs[in.N])
	cursor := make([]int32, in.N)
	copy(cursor, s.occOffs[:in.N])
	for i := 0; i < in.M(); i++ {
		for _, e := range in.Set(i) {
			s.occSets[cursor[e]] = int32(i)
			cursor[e]++
		}
	}
	return s
}

// occ returns the candidate-set list for element e (ascending set indices,
// as the fill order guarantees).
func (s *searcher) occ(e int) []int32 {
	return s.occSets[s.occOffs[e]:s.occOffs[e+1]]
}

// scratchAt returns the depth-d uncovered scratch bitset, growing the pool
// on first descent to that depth.
func (s *searcher) scratchAt(depth int) *bitset.Bitset {
	for len(s.scratch) <= depth {
		s.scratch = append(s.scratch, bitset.New(s.in.N))
	}
	return s.scratch[depth]
}

// search looks for a cover of `uncovered` using at most k sets.
func (s *searcher) search(uncovered *bitset.Bitset, k int) (bool, error) {
	return s.dfs(uncovered, uncovered.Count(), k, 0)
}

// dfs searches for a cover of `uncovered` (of size rem, tracked by
// popcount deltas rather than recounted per node) using at most k more
// sets, with depth indexing the scratch pool.
func (s *searcher) dfs(uncovered *bitset.Bitset, rem, k, depth int) (bool, error) {
	s.nodes++
	if s.nodes > s.budget {
		return false, ErrBudget
	}
	if s.nodes&ctxPollMask == 0 {
		if err := pollCtx(s.ctx); err != nil {
			return false, err
		}
	}
	if rem == 0 {
		s.best = append(s.best[:0], s.stack...)
		return true, nil
	}
	if k == 0 || s.maxSize == 0 {
		return false, nil
	}
	// Volume bound: even k maximal sets cannot cover rem elements.
	if rem > k*s.maxSize {
		return false, nil
	}
	// Branch on the uncovered element with the fewest candidate sets
	// (explicit Next loop, not Range: a closure here would allocate on
	// every node).
	pivot, minCands := -1, int(^uint(0)>>1)
	for e := uncovered.Next(0); e >= 0; e = uncovered.Next(e + 1) {
		c := int(s.occOffs[e+1] - s.occOffs[e])
		if c < minCands {
			minCands, pivot = c, e
		}
		if c <= 1 { // stop early at a forced (or impossible) element
			break
		}
	}
	if pivot < 0 || minCands == 0 {
		return false, nil // some element is in no set
	}
	next := s.scratchAt(depth)
	for _, i := range s.occ(pivot) {
		gained := s.sets[i].AndCount(uncovered)
		if gained == 0 {
			continue
		}
		next.CopyFrom(uncovered)
		next.AndNot(s.sets[i])
		s.stack = append(s.stack, int(i))
		found, err := s.dfs(next, rem-gained, k-1, depth+1)
		s.stack = s.stack[:len(s.stack)-1]
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}
