package offline

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func TestGreedySimple(t *testing.T) {
	in := setsystem.FromSets(6, [][]int{
		{0, 1, 2, 3}, // greedy picks this first
		{0, 1},
		{2, 3},
		{4, 5},
		{3, 4},
	})
	cover, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(cover) {
		t.Fatalf("greedy output %v is not a cover", cover)
	}
	if len(cover) != 2 {
		t.Fatalf("greedy size %d, want 2 (%v)", len(cover), cover)
	}
	if cover[0] != 0 || cover[1] != 3 {
		t.Fatalf("greedy picked %v, want [0 3]", cover)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	in := setsystem.FromSets(3, [][]int{{0}, {1}})
	if _, err := Greedy(in); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	in := setsystem.FromSets(0, [][]int{{}})
	cover, err := Greedy(in)
	if err != nil || len(cover) != 0 {
		t.Fatalf("cover=%v err=%v", cover, err)
	}
}

func TestGreedyOnTarget(t *testing.T) {
	in := setsystem.FromSets(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	target := bitset.FromSlice(6, []int{0, 5})
	cover, err := GreedyOn(in, target)
	if err != nil {
		t.Fatal(err)
	}
	got := bitset.New(6)
	for _, i := range cover {
		got.SetAll(in.Set(i))
	}
	if !target.SubsetOf(got) {
		t.Fatalf("target not covered by %v", cover)
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 sets", cover)
	}
}

func TestCoverAtMost(t *testing.T) {
	in := setsystem.FromSets(4, [][]int{{0, 1}, {2, 3}, {0}, {1}, {2}, {3}})
	if _, ok, err := CoverAtMost(in, 1, ExactConfig{}); err != nil || ok {
		t.Fatalf("size-1 cover reported: ok=%v err=%v", ok, err)
	}
	cover, ok, err := CoverAtMost(in, 2, ExactConfig{})
	if err != nil || !ok {
		t.Fatalf("size-2 cover missed: ok=%v err=%v", ok, err)
	}
	if !in.IsCover(cover) || len(cover) > 2 {
		t.Fatalf("bad cover %v", cover)
	}
}

func TestExactBeatsGreedyTrap(t *testing.T) {
	// Classic greedy trap: greedy picks the big set first and needs 3 sets,
	// optimum is 2.
	in := setsystem.FromSets(8, [][]int{
		{0, 1, 2, 3, 4}, // bait
		{0, 1, 2, 3},    // left half
		{4, 5, 6, 7},    // right half
	})
	greedy, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(in, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(exact) {
		t.Fatalf("exact output not a cover: %v", exact)
	}
	if len(exact) != 2 {
		t.Fatalf("exact size %d, want 2", len(exact))
	}
	if len(greedy) < len(exact) {
		t.Fatalf("greedy %d beat exact %d", len(greedy), len(exact))
	}
}

func TestOptAtMost(t *testing.T) {
	in := setsystem.FromSets(6, [][]int{{0, 1}, {2, 3}, {4, 5}, {0}, {5}})
	opt, err := OptAtMost(in, 5, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("opt = %d, want 3", opt)
	}
	// Capped below the optimum: reports k+1.
	capped, err := OptAtMost(in, 2, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if capped != 3 {
		t.Fatalf("capped opt = %d, want 3 (= k+1)", capped)
	}
}

func TestExactBudget(t *testing.T) {
	// Greedy overshoots k here (trap: bait set forces 3 greedy picks while
	// opt=2), so the exhaustive search must run and exceed the 1-node
	// budget on its first recursive call.
	in := setsystem.FromSets(8, [][]int{
		{1, 2, 3, 4, 5, 6}, // bait
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	})
	if g, err := Greedy(in); err != nil || len(g) != 3 {
		t.Fatalf("precondition: greedy = %v, %v (want 3 sets)", g, err)
	}
	_, _, err := CoverAtMost(in, 2, ExactConfig{NodeBudget: 1})
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestCoverAtMostGreedyShortCircuit(t *testing.T) {
	// With a generous k the greedy certificate avoids the search entirely:
	// even a 1-node budget succeeds.
	in := setsystem.FromSets(4, [][]int{{0, 1}, {2, 3}})
	cover, ok, err := CoverAtMost(in, 3, ExactConfig{NodeBudget: 1})
	if err != nil || !ok || len(cover) > 3 {
		t.Fatalf("cover=%v ok=%v err=%v", cover, ok, err)
	}
}

// Property: on random instances, exact ≤ greedy and both are feasible covers.
func TestQuickExactVsGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(20)
		m := 5 + r.Intn(15)
		in := setsystem.Uniform(r, n, m, 1, n/2+1)
		if !in.Coverable() {
			return true // nothing to compare
		}
		greedy, err := Greedy(in)
		if err != nil {
			return false
		}
		exact, err := Exact(in, ExactConfig{})
		if err != nil {
			return false
		}
		return in.IsCover(greedy) && in.IsCover(exact) && len(exact) <= len(greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedExactFindsPlant(t *testing.T) {
	r := rng.New(3)
	in, planted := setsystem.PlantedCover(r, 60, 20, 3, 0.5)
	exact, err := Exact(in, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) > len(planted) {
		t.Fatalf("exact %d worse than planted %d", len(exact), len(planted))
	}
}

func TestMaxCoverGreedy(t *testing.T) {
	in := setsystem.FromSets(6, [][]int{{0, 1, 2}, {2, 3}, {4, 5}, {0}})
	chosen, cov := MaxCoverGreedy(in, 2)
	if len(chosen) != 2 || cov != 5 {
		t.Fatalf("greedy k=2: chosen=%v cov=%d, want cov 5", chosen, cov)
	}
	// k larger than needed: stops once everything is covered.
	chosen, cov = MaxCoverGreedy(in, 10)
	if cov != 6 {
		t.Fatalf("cov = %d, want 6", cov)
	}
	if len(chosen) > 3 {
		t.Fatalf("greedy picked redundant sets: %v", chosen)
	}
}

func TestMaxCoverPair(t *testing.T) {
	in := setsystem.FromSets(8, [][]int{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6, 7},
		{0, 1, 2, 3}, // with set 2: covers all 8
	})
	i, j, cov := MaxCoverPair(in)
	if cov != 8 {
		t.Fatalf("pair coverage %d, want 8 (pair %d,%d)", cov, i, j)
	}
	pair := map[int]bool{i: true, j: true}
	if !pair[2] || !pair[3] {
		t.Fatalf("pair = (%d,%d), want {2,3}", i, j)
	}
}

func TestMaxCoverPairDegenerate(t *testing.T) {
	if i, j, cov := MaxCoverPair(&setsystem.Instance{N: 5}); i != -1 || j != -1 || cov != 0 {
		t.Fatalf("empty: %d %d %d", i, j, cov)
	}
	i, j, cov := MaxCoverPair(setsystem.FromSets(5, [][]int{{1, 2}}))
	if cov != 2 || i != 0 || j != 0 {
		t.Fatalf("single: %d %d %d", i, j, cov)
	}
}

func TestMaxCoverExactMatchesPairAndBeatsGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(20)
		m := 3 + r.Intn(10)
		in := setsystem.Uniform(r, n, m, 1, n/2+1)
		_, _, pairCov := MaxCoverPair(in)
		exact, exactCov, err := MaxCoverExact(in, 2, ExactConfig{})
		if err != nil {
			return false
		}
		if exactCov != pairCov {
			return false
		}
		if got := in.CoverageOf(exact); got != exactCov {
			return false
		}
		_, greedyCov := MaxCoverGreedy(in, 2)
		return greedyCov <= exactCov
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCoverExactKGEM(t *testing.T) {
	in := setsystem.FromSets(4, [][]int{{0}, {1}})
	chosen, cov, err := MaxCoverExact(in, 5, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cov != 2 || len(chosen) != 2 {
		t.Fatalf("k≥m case: chosen=%v cov=%d", chosen, cov)
	}
}

func TestSumKLargest(t *testing.T) {
	sizes := []int{3, 9, 1, 7, 5}
	cases := []struct{ k, want int }{{0, 0}, {1, 9}, {2, 16}, {3, 21}, {5, 25}, {10, 25}}
	for _, c := range cases {
		if got := sumKLargest(sizes, c.k); got != c.want {
			t.Errorf("sumKLargest(k=%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	in := setsystem.Uniform(rng.New(1), 2000, 500, 20, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Greedy(in)
	}
}

func BenchmarkExactSmall(b *testing.B) {
	in, _ := setsystem.PlantedCover(rng.New(2), 200, 40, 4, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Exact(in, ExactConfig{})
	}
}

// ctxCancelled returns an already-cancelled context.
func ctxCancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestContextCancelAtEntry(t *testing.T) {
	in := setsystem.FromSets(4, [][]int{{0, 1}, {2, 3}})
	ctx := ctxCancelled()
	if _, err := GreedyContext(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("GreedyContext err = %v, want context.Canceled", err)
	}
	if _, _, err := CoverAtMost(in, 2, ExactConfig{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CoverAtMost err = %v, want context.Canceled", err)
	}
	if _, err := Exact(in, ExactConfig{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Exact err = %v, want context.Canceled", err)
	}
	if _, _, err := MaxCoverExact(in, 1, ExactConfig{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaxCoverExact err = %v, want context.Canceled", err)
	}
}

// TestContextNilNeverCancels pins the compatibility contract: the zero
// ExactConfig (nil Context) behaves exactly as before cancellation existed.
func TestContextNilNeverCancels(t *testing.T) {
	in := setsystem.FromSets(4, [][]int{{0, 1}, {2, 3}})
	if cover, err := Exact(in, ExactConfig{}); err != nil || len(cover) != 2 {
		t.Fatalf("Exact = %v, %v", cover, err)
	}
}

// TestExactContextCancelMidSearch cancels a worst-case branch-and-bound
// from another goroutine and requires the search to return promptly with
// the context's error — the property that keeps a serving layer's
// Stop/SIGTERM from blocking on a hard exact job.
func TestExactContextCancelMidSearch(t *testing.T) {
	// Random small sets over a moderate universe: greedy overshoots and the
	// iterative-deepening search has a deep, bushy tree — far more than
	// ctxPollMask nodes, so the in-search poll (not the entry check) must
	// fire. Budget-unbounded: without cancellation this search would grind
	// for a very long time.
	r := rng.New(11)
	in := setsystem.Uniform(r, 64, 256, 3, 5)
	if _, err := Greedy(in); err != nil {
		t.Fatalf("precondition: instance not coverable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Exact(in, ExactConfig{Context: ctx})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Exact err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Exact did not return within 10s of cancellation")
	}
}
