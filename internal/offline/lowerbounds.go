package offline

import (
	"math"

	"streamcover/internal/bitset"
	"streamcover/internal/setsystem"
)

// LowerBound returns a certified lower bound on the optimal set cover size,
// the best of three cheap certificates:
//
//   - volume: ⌈n / max|S_i|⌉;
//   - LP-duality via greedy: greedy_size / H(max|S_i|), since greedy is an
//     H_k-approximation of the LP optimum, itself ≤ opt… in fact greedy ≤
//     H_k·opt directly, so opt ≥ ⌈greedy/H_k⌉;
//   - packing: a maximal set of elements no two of which share a set — each
//     chosen set covers at most one of them, so opt is at least their count.
//
// Instances that cannot be covered at all return n+1 (an unreachable
// value). The bound lets experiments certify opt > threshold on instances
// too large for the exact search (e.g. Lemma 3.2 checks at bigger n).
func LowerBound(in *setsystem.Instance) int {
	if in.N == 0 {
		return 0
	}
	if !in.Coverable() {
		return in.N + 1
	}
	best := lowerBound(in) // volume bound

	if g, err := Greedy(in); err == nil {
		maxSize := 0
		for i := 0; i < in.M(); i++ {
			if l := in.SetLen(i); l > maxSize {
				maxSize = l
			}
		}
		if maxSize > 0 {
			if lb := int(math.Ceil(float64(len(g)) / harmonic(maxSize))); lb > best {
				best = lb
			}
		}
	}

	if lb := packingBound(in); lb > best {
		best = lb
	}
	return best
}

// harmonic returns H_k = 1 + 1/2 + ... + 1/k.
func harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

// packingBound greedily builds an element set no two of which co-occur in
// any input set; its size lower-bounds opt. Elements with low frequency are
// tried first (they conflict with fewer others).
func packingBound(in *setsystem.Instance) int {
	// conflict[e] marks elements sharing a set with an already-chosen one.
	conflict := bitset.New(in.N)
	occ := make([][]int, in.N)
	freq := make([]int, in.N)
	for i := 0; i < in.M(); i++ {
		for _, e := range in.Set(i) {
			occ[e] = append(occ[e], i)
			freq[e]++
		}
	}
	order := make([]int, in.N)
	for e := range order {
		order[e] = e
	}
	// Counting sort by frequency (frequencies are ≤ m).
	maxF := 0
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	buckets := make([][]int, maxF+1)
	for e, f := range freq {
		buckets[f] = append(buckets[f], e)
	}
	order = order[:0]
	for _, b := range buckets {
		order = append(order, b...)
	}

	count := 0
	for _, e := range order {
		if freq[e] == 0 || conflict.Has(e) {
			continue
		}
		count++
		for _, si := range occ[e] {
			conflict.SetAll(in.Set(si))
		}
	}
	return count
}

// OptAbove reports whether opt > k, using the cheap lower bound first and
// falling back to the exact bounded search only when necessary. It is the
// scalable form of the Lemma 3.2 gap check.
func OptAbove(in *setsystem.Instance, k int, cfg ExactConfig) (bool, error) {
	if LowerBound(in) > k {
		return true, nil
	}
	opt, err := OptAtMost(in, k, cfg)
	if err != nil {
		return false, err
	}
	return opt > k, nil
}
