package offline

import (
	"context"

	"streamcover/internal/bitset"
	"streamcover/internal/parallel"
	"streamcover/internal/setsystem"
)

// MaxCoverGreedy returns the classical greedy (1−1/e)-approximate maximum
// k-coverage: the chosen set indices and the number of covered elements.
// Fewer than k sets are returned if the whole union is covered early.
func MaxCoverGreedy(in *setsystem.Instance, k int) ([]int, int) {
	return MaxCoverGreedyWorkers(in, k, 1)
}

// MaxCoverGreedyWorkers is MaxCoverGreedy with the per-round candidate gain
// scan fanned out across workers (<= 0 selects GOMAXPROCS, matching the
// convention of core.Config.Workers): each round evaluates every candidate's
// marginal coverage concurrently and takes the deterministic argmax (highest
// gain, lowest index on ties — the same set the sequential scan picks), so
// the chosen cover is bit-identical at every worker count.
func MaxCoverGreedyWorkers(in *setsystem.Instance, k, workers int) ([]int, int) {
	w := parallel.Workers(workers)
	covered := bitset.New(in.N)
	sets := in.Bitsets()
	var chosen []int
	total := 0
	for len(chosen) < k {
		best, gain := parallel.ArgMax(w, len(sets), func(i int) int {
			return sets[i].AndNotCount(covered)
		})
		if best < 0 || gain == 0 {
			break
		}
		chosen = append(chosen, best)
		covered.Or(sets[best])
		total += gain
	}
	return chosen, total
}

// MaxCoverPair returns the best pair of sets (k=2 maximum coverage) and its
// coverage, by exhaustive O(m²) bitset evaluation with a top-size pruning
// bound. This is the evaluator for the paper's D_MC instances, where k=2.
func MaxCoverPair(in *setsystem.Instance) (i, j, coverage int) {
	m := in.M()
	if m == 0 {
		return -1, -1, 0
	}
	if m == 1 {
		return 0, 0, in.SetLen(0)
	}
	sets := in.Bitsets()
	sizes := make([]int, m)
	for idx := range sizes {
		sizes[idx] = in.SetLen(idx)
	}
	// Order by size descending for pruning: |Si ∪ Sj| ≤ |Si| + |Sj|.
	order := make([]int, m)
	for idx := range order {
		order[idx] = idx
	}
	for a := 1; a < m; a++ { // insertion sort: m modest, keeps stdlib-only simplicity
		for b := a; b > 0 && sizes[order[b]] > sizes[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	best, bi, bj := -1, -1, -1
	for a := 0; a < m; a++ {
		ia := order[a]
		if sizes[ia]+sizes[order[minInt(a+1, m-1)]] <= best && a+1 < m {
			break // no remaining pair can beat best
		}
		for b := a + 1; b < m; b++ {
			ib := order[b]
			if sizes[ia]+sizes[ib] <= best {
				break
			}
			if c := sets[ia].OrCount(sets[ib]); c > best {
				best, bi, bj = c, ia, ib
			}
		}
	}
	return bi, bj, best
}

// MaxCoverExact returns an optimal k-coverage by branch-and-bound over set
// choices with a greedy-completion upper bound. Intended for small k; it
// returns ErrBudget if the node budget is exceeded.
func MaxCoverExact(in *setsystem.Instance, k int, cfg ExactConfig) ([]int, int, error) {
	if err := pollCtx(cfg.Context); err != nil {
		return nil, 0, err
	}
	if k <= 0 || in.M() == 0 {
		return nil, 0, nil
	}
	if k >= in.M() {
		all := make([]int, in.M())
		for i := range all {
			all[i] = i
		}
		return all, in.CoverageOf(all), nil
	}
	budget := cfg.NodeBudget
	if budget == 0 {
		budget = defaultNodeBudget
	}
	greedyChosen, greedyCov := MaxCoverGreedy(in, k)
	e := &mcSearcher{
		sets:    in.Bitsets(),
		sizes:   make([]int, in.M()),
		budget:  budget,
		ctx:     cfg.Context,
		bestCov: greedyCov,
		best:    append([]int(nil), greedyChosen...),
	}
	for i := range e.sizes {
		e.sizes[i] = in.SetLen(i)
	}
	covered := bitset.New(in.N)
	if err := e.dfs(0, k, covered, 0); err != nil {
		return nil, 0, err
	}
	return e.best, e.bestCov, nil
}

type mcSearcher struct {
	sets    []*bitset.Bitset
	sizes   []int
	budget  int64
	nodes   int64
	ctx     context.Context // polled every ctxPollMask+1 nodes; nil = never
	best    []int
	bestCov int
	stack   []int
}

// dfs tries choosing sets from index `from` with `k` picks remaining.
func (e *mcSearcher) dfs(from, k int, covered *bitset.Bitset, cov int) error {
	e.nodes++
	if e.nodes > e.budget {
		return ErrBudget
	}
	if e.nodes&ctxPollMask == 0 {
		if err := pollCtx(e.ctx); err != nil {
			return err
		}
	}
	if cov > e.bestCov {
		e.bestCov = cov
		e.best = append(e.best[:0], e.stack...)
	}
	if k == 0 || from >= len(e.sets) {
		return nil
	}
	// Upper bound: current coverage + the k largest remaining set sizes
	// (each gain is at most the set's size).
	if ub := cov + sumKLargest(e.sizes[from:], k); ub <= e.bestCov {
		return nil
	}
	for i := from; i < len(e.sets); i++ {
		gain := e.sets[i].AndNotCount(covered)
		if cov+gain+sumKLargest(e.sizes[i+1:], k-1) <= e.bestCov {
			continue
		}
		next := covered.Clone()
		next.Or(e.sets[i])
		e.stack = append(e.stack, i)
		if err := e.dfs(i+1, k-1, next, cov+gain); err != nil {
			return err
		}
		e.stack = e.stack[:len(e.stack)-1]
	}
	return nil
}

func sumKLargest(sizes []int, k int) int {
	if k <= 0 {
		return 0
	}
	if k >= len(sizes) {
		total := 0
		for _, s := range sizes {
			total += s
		}
		return total
	}
	// Small k in practice: selection by repeated max.
	top := make([]int, 0, k)
	for _, s := range sizes {
		if len(top) < k {
			top = append(top, s)
			continue
		}
		mi, mv := 0, top[0]
		for i, v := range top[1:] {
			if v < mv {
				mi, mv = i+1, v
			}
		}
		if s > mv {
			top[mi] = s
		}
	}
	total := 0
	for _, s := range top {
		total += s
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
