package offline

import (
	"math"
	"testing"
	"testing/quick"

	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func TestHarmonic(t *testing.T) {
	if h := harmonic(1); h != 1 {
		t.Fatalf("H_1 = %v", h)
	}
	if h := harmonic(4); math.Abs(h-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_4 = %v", h)
	}
}

func TestLowerBoundSimple(t *testing.T) {
	// Disjoint triples: opt = 3, packing bound finds 3.
	in := setsystem.FromSets(9, [][]int{
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
	})
	if lb := LowerBound(in); lb != 3 {
		t.Fatalf("LowerBound = %d, want 3", lb)
	}
}

func TestLowerBoundUncoverable(t *testing.T) {
	in := setsystem.FromSets(5, [][]int{{0, 1}})
	if lb := LowerBound(in); lb != 6 {
		t.Fatalf("LowerBound = %d, want n+1 = 6", lb)
	}
}

func TestLowerBoundEmptyUniverse(t *testing.T) {
	if lb := LowerBound(&setsystem.Instance{N: 0}); lb != 0 {
		t.Fatalf("LowerBound = %d, want 0", lb)
	}
}

// Property: the certified lower bound never exceeds the true optimum.
func TestQuickLowerBoundSound(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(24)
		m := 4 + r.Intn(12)
		in := setsystem.Uniform(r, n, m, 1, n/2+1)
		if !in.Coverable() {
			return LowerBound(in) == in.N+1
		}
		exact, err := Exact(in, ExactConfig{})
		if err != nil {
			return false
		}
		return LowerBound(in) <= len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOptAboveMatchesExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(16)
		m := 4 + r.Intn(10)
		in := setsystem.Uniform(r, n, m, 1, n/2+1)
		if !in.Coverable() {
			ok, err := OptAbove(in, n, ExactConfig{})
			return err == nil && ok // opt = ∞ > any k
		}
		exact, err := Exact(in, ExactConfig{})
		if err != nil {
			return false
		}
		for _, k := range []int{len(exact) - 1, len(exact), len(exact) + 1} {
			if k < 0 {
				continue
			}
			above, err := OptAbove(in, k, ExactConfig{})
			if err != nil {
				return false
			}
			if above != (len(exact) > k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOptAboveOnHardInstance(t *testing.T) {
	// The scalable gap check agrees with the exact one on D_SC.
	p := hardinst.SCParams{N: 2048, M: 8, Alpha: 2}
	r := rng.New(5)
	sc1 := hardinst.SampleSetCover(p, 1, r)
	above, err := OptAbove(sc1.Inst, 2, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if above {
		t.Fatal("θ=1 instance reported opt > 2")
	}
	sc0 := hardinst.SampleSetCover(p, 0, r)
	above, err = OptAbove(sc0.Inst, 2*p.Alpha, ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !above {
		t.Fatal("θ=0 instance not reported opt > 2α")
	}
}

func TestPackingBoundOnPartition(t *testing.T) {
	// A partition into k blocks has packing number exactly k.
	in := setsystem.FromSets(12, [][]int{
		{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11},
	})
	if pb := packingBound(in); pb != 3 {
		t.Fatalf("packingBound = %d, want 3", pb)
	}
	// Overlapping sets shrink it.
	in2 := setsystem.FromSets(4, [][]int{{0, 1, 2, 3}, {0, 1}, {2, 3}})
	if pb := packingBound(in2); pb != 1 {
		t.Fatalf("packingBound = %d, want 1", pb)
	}
}
