package offline

import (
	"testing"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// TestSearcherDFSSteadyStateAllocFree guards the exact search's allocation
// discipline: after one warm-up search has grown the per-depth scratch pool
// and the best/stack buffers, repeated searches on the same searcher must
// not allocate at all — the per-node bitset Clone of the old implementation
// is exactly the churn Algorithm 1's step-3(c) sub-solves (one per
// iteration per guess, concurrently under the parallel grid) cannot afford.
func TestSearcherDFSSteadyStateAllocFree(t *testing.T) {
	inst := setsystem.Uniform(rng.New(9), 64, 48, 6, 14)
	s := newSearcher(inst, defaultNodeBudget)
	full := bitset.New(inst.N)
	full.Fill()
	u := bitset.New(inst.N)

	run := func() {
		s.nodes = 0
		u.CopyFrom(full)
		found, err := s.search(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatal("expected a cover of size <= 10")
		}
	}
	run() // warm-up: grows the scratch pool to the search depth

	allocs := testing.AllocsPerRun(20, run)
	if allocs > 0 {
		t.Fatalf("steady-state dfs allocates %.2f objects per search", allocs)
	}
}
