// Package rng provides a deterministic, splittable random number generator
// for streamcover.
//
// Experiments and hard-instance generators must be exactly reproducible from
// a single seed, and independent components (per-set mapping extensions,
// per-trial streams, ...) must not share state. RNG is a splitmix64-seeded
// xoshiro256** generator; Split derives an independent child generator from
// a string label, so generator trees are stable under code reordering.
package rng

import (
	"hash/fnv"
	"math"
	"math/bits"
	"sort"
)

// RNG is a deterministic pseudo-random generator. It is not safe for
// concurrent use; Split children for parallel work.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new independent generator derived from r's current state
// and the given label. The parent advances one step so repeated splits with
// the same label yield distinct children.
func (r *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(r.Uint64() ^ h.Sum64())
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n items via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// KSubset returns a uniformly random k-subset of [0, n), sorted increasing.
// It panics if k < 0 or k > n.
func (r *RNG) KSubset(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: KSubset with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected time and space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Binomial returns a sample from Binomial(n, p). It uses direct simulation
// for small n·p and a BTRS-free inversion with exponential waiting times for
// sparse cases, keeping dependencies stdlib-only.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Geometric skipping: expected work O(n·p).
	count := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		// Number of failures before the next success.
		skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
		i += skip + 1
		if i > n {
			return count
		}
		count++
	}
}

// SampleEach returns the sorted subset of [0, n) where each element is
// included independently with probability p.
func (r *RNG) SampleEach(n int, p float64) []int {
	if p <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, int(float64(n)*p)+8)
	logq := math.Log1p(-p)
	i := -1
	for {
		skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
		i += skip + 1
		if i >= n {
			return out
		}
		out = append(out, i)
	}
}

// Zipf returns a sample in [1, max] from a Zipf-like distribution with
// exponent s > 1, via inverse-CDF on the continuous approximation.
func (r *RNG) Zipf(s float64, max int) int {
	if max <= 1 {
		return 1
	}
	// Inverse of P(X <= x) ∝ x^(1-s) continuous approximation.
	u := r.Float64()
	x := math.Pow(1-u*(1-math.Pow(float64(max), 1-s)), 1/(1-s))
	v := int(x)
	if v < 1 {
		v = 1
	}
	if v > max {
		v = max
	}
	return v
}
