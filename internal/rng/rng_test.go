package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split("alpha")
	c2 := r.Split("alpha") // parent advanced: distinct child
	c3 := New(7).Split("beta")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("repeated Split with same label produced identical children")
	}
	if New(7).Split("alpha").Uint64() != New(7).Split("alpha").Uint64() {
		t.Fatal("Split not deterministic")
	}
	_ = c3
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ≈%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestKSubsetProperties(t *testing.T) {
	r := New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 1)
		s := r.KSubset(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be sorted and unique
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKSubsetUniformMarginals(t *testing.T) {
	r := New(17)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, e := range r.KSubset(n, k) {
			counts[e]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for e, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d in %d subsets, want ≈%.0f", e, c, want)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(23)
	cases := []struct {
		n int
		p float64
	}{{100, 0.1}, {1000, 0.01}, {50, 0.5}, {200, 0.9}}
	for _, c := range cases {
		const trials = 20000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		wantSD := math.Sqrt(wantMean * (1 - c.p))
		if math.Abs(mean-wantMean) > 6*wantSD/math.Sqrt(trials)+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		variance := sumsq/trials - mean*mean
		if wantVar := wantMean * (1 - c.p); math.Abs(variance-wantVar) > 0.2*wantVar+0.1 {
			t.Errorf("Binomial(%d,%v) var = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(29)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Fatal("degenerate binomial not 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(10,1) != 10")
	}
}

func TestSampleEachRate(t *testing.T) {
	r := New(31)
	const n, trials = 1000, 200
	p := 0.05
	total := 0
	for i := 0; i < trials; i++ {
		s := r.SampleEach(n, p)
		for j := 1; j < len(s); j++ {
			if s[j-1] >= s[j] {
				t.Fatal("SampleEach not sorted/unique")
			}
		}
		if len(s) > 0 && (s[0] < 0 || s[len(s)-1] >= n) {
			t.Fatal("SampleEach out of range")
		}
		total += len(s)
	}
	mean := float64(total) / trials
	want := float64(n) * p
	if math.Abs(mean-want) > 6*math.Sqrt(want/trials)+2 {
		t.Fatalf("SampleEach mean size = %v, want ≈%v", mean, want)
	}
	if len(r.SampleEach(100, 0)) != 0 {
		t.Fatal("SampleEach(p=0) non-empty")
	}
	if len(r.SampleEach(100, 1)) != 100 {
		t.Fatal("SampleEach(p=1) incomplete")
	}
}

func TestZipfRange(t *testing.T) {
	r := New(37)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		v := r.Zipf(1.5, 100)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Heavy head: rank 1 should be drawn far more often than rank 50.
	if counts[1] < 10*counts[50] {
		t.Errorf("Zipf not head-heavy: counts[1]=%d counts[50]=%d", counts[1], counts[50])
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkKSubset(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.KSubset(10000, 100)
	}
}
