package stream

import (
	"sync"
	"time"
)

// PassSample is one pass of a traced run: the paper's cost model (passes ×
// space) made observable. Drivers emit one sample per completed pass —
// trace volume is O(passes), never O(items) — with timing taken only at
// pass boundaries so tracing cannot perturb the per-item hot path.
type PassSample struct {
	Pass       int           // 0-based pass index
	Duration   time.Duration // wall time of the pass (Reset through EndPass)
	Items      int           // items observed during this pass
	SpaceWords int           // algorithm footprint at end of pass, in words
	PeakSpace  int           // peak footprint of the run so far, in words
	Live       int           // live guess lanes after the pass; -1 if unknown
	Replayed   bool          // pass served from a recorded replay plan
}

// TraceSink receives pass samples from a traced driver. Implementations are
// called from the driver goroutine, once per pass, between EndPass and the
// next BeginPass; they must not retain the sample's address (it is reused).
type TraceSink interface {
	TracePass(PassSample)
}

// Trace is the basic TraceSink: it collects every sample in order. It is
// safe for concurrent use so a watcher may read Samples while a solve is
// still appending.
type Trace struct {
	mu      sync.Mutex
	samples []PassSample
}

// TracePass implements TraceSink.
func (t *Trace) TracePass(s PassSample) {
	t.mu.Lock()
	t.samples = append(t.samples, s)
	t.mu.Unlock()
}

// Samples returns a copy of the samples collected so far.
func (t *Trace) Samples() []PassSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]PassSample(nil), t.samples...)
}

// Len returns the number of samples collected so far.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Reset discards collected samples but keeps capacity, so a reused Trace
// records steady-state runs without allocating.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.samples = t.samples[:0]
	t.mu.Unlock()
}

// LaneCounter is implemented by algorithms that can report how many guess
// lanes are still live (core.GridRun; compositions sum their children).
// Traced drivers query it at pass boundaries to fill PassSample.Live.
type LaneCounter interface {
	LiveLanes() int
}

// PassReplayer is implemented by streams that can serve a pass from a
// recorded plan instead of the underlying source (the pass-replay plane).
// Traced drivers query it after Reset so the sample records whether the
// pass just begun is honest or replayed.
type PassReplayer interface {
	ReplayedPass() bool
}

// liveLanes returns the algorithm's live lane count, or -1 when it does not
// expose one.
func liveLanes(alg PassAlgorithm) int {
	if lc, ok := alg.(LaneCounter); ok {
		return lc.LiveLanes()
	}
	return -1
}

// replayedPass reports whether the stream is serving the current pass from
// a replay plan.
func replayedPass(s Stream) bool {
	if pr, ok := s.(PassReplayer); ok {
		return pr.ReplayedPass()
	}
	return false
}

// LiveLanes implements LaneCounter for the parallel composition: the sum
// over children that expose a lane count, or -1 when none do.
func (p *Parallel) LiveLanes() int {
	sum, known := 0, false
	for _, c := range p.children {
		if lc, ok := c.(LaneCounter); ok {
			sum += lc.LiveLanes()
			known = true
		}
	}
	if !known {
		return -1
	}
	return sum
}
