package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// failingStream wraps an in-memory stream and injects a read failure after
// failAfter items of pass failPass — the shape of a disk error halfway
// through a file-backed pass. It implements Failer the way the file
// streams do: Next returns ok=false and Err reports the failure.
type failingStream struct {
	*InstanceStream
	failPass  int
	failAfter int
	pass      int // current pass, counted by Reset
	served    int
	err       error
}

var errDiskGone = errors.New("simulated mid-pass read failure")

func newFailingStream(m, failPass, failAfter int) *failingStream {
	return &failingStream{
		InstanceStream: FromInstance(testInstance(m), Adversarial, nil),
		failPass:       failPass,
		failAfter:      failAfter,
		pass:           -1,
	}
}

func (f *failingStream) Reset() {
	f.InstanceStream.Reset()
	f.pass++
	f.served = 0
	f.err = nil
}

func (f *failingStream) Next() (Item, bool) {
	if f.err != nil {
		return Item{}, false
	}
	if f.pass == f.failPass && f.served == f.failAfter {
		f.err = errDiskGone
		return Item{}, false
	}
	f.served++
	return f.InstanceStream.Next()
}

func (f *failingStream) Err() error { return f.err }

// passTracker records the driver's calls so tests can assert the abort
// shape (EndPass skipped on failure).
type passTracker struct {
	begins, observes, ends int
	passesWanted           int
}

func (a *passTracker) BeginPass(int) { a.begins++ }
func (a *passTracker) Observe(Item)  { a.observes++ }
func (a *passTracker) EndPass() bool { a.ends++; return a.ends >= a.passesWanted }
func (a *passTracker) Space() int    { return 1 }

func TestPassErr(t *testing.T) {
	// A plain in-memory stream is not a Failer: PassErr is nil.
	if err := PassErr(FromInstance(testInstance(3), Adversarial, nil)); err != nil {
		t.Fatalf("PassErr on non-Failer = %v, want nil", err)
	}
	// A Failer's error passes through.
	fs := newFailingStream(4, 0, 2)
	fs.Reset()
	for {
		if _, ok := fs.Next(); !ok {
			break
		}
	}
	if err := PassErr(fs); !errors.Is(err, errDiskGone) {
		t.Fatalf("PassErr = %v, want errDiskGone", err)
	}
	// Before anything failed, PassErr is nil even for a Failer.
	fresh := newFailingStream(4, 5, 0)
	fresh.Reset()
	if err := PassErr(fresh); err != nil {
		t.Fatalf("PassErr on healthy Failer = %v, want nil", err)
	}
}

func TestRunAbortsOnMidPassFailure(t *testing.T) {
	const m = 6
	// Fail during the second pass (pass index 1) after 3 items.
	fs := newFailingStream(m, 1, 3)
	alg := &passTracker{passesWanted: 4}
	acc, err := Run(fs, alg, 10)
	if !errors.Is(err, errDiskGone) {
		t.Fatalf("Run err = %v, want errDiskGone", err)
	}
	// The failing pass is accounted (partial), the run stops there.
	if acc.Passes != 2 {
		t.Fatalf("acc.Passes = %d, want 2 (failure in the second pass)", acc.Passes)
	}
	if acc.Items != m+3 {
		t.Fatalf("acc.Items = %d, want %d (full first pass + 3)", acc.Items, m+3)
	}
	// EndPass must be skipped for the failed pass: a mid-pass failure must
	// not look like a clean short pass to the algorithm.
	if alg.begins != 2 || alg.ends != 1 {
		t.Fatalf("begins=%d ends=%d, want 2 begins / 1 end", alg.begins, alg.ends)
	}
}

func TestRunFailureOnFirstItem(t *testing.T) {
	fs := newFailingStream(5, 0, 0)
	alg := &passTracker{passesWanted: 2}
	acc, err := Run(fs, alg, 10)
	if !errors.Is(err, errDiskGone) {
		t.Fatalf("Run err = %v, want errDiskGone", err)
	}
	if acc.Passes != 1 || acc.Items != 0 || alg.ends != 0 {
		t.Fatalf("acc=%+v ends=%d, want 1 empty accounted pass and no EndPass", acc, alg.ends)
	}
}

func TestErrPassLimitFormatting(t *testing.T) {
	err := ErrPassLimit{Limit: 7}
	msg := err.Error()
	if !strings.Contains(msg, "7 passes") {
		t.Fatalf("ErrPassLimit message %q does not mention the limit", msg)
	}
	if !strings.HasPrefix(msg, "stream:") {
		t.Fatalf("ErrPassLimit message %q lacks the package prefix", msg)
	}
	// The error must keep working through wrapping, as drivers return it.
	wrapped := fmt.Errorf("solve: %w", err)
	var pl ErrPassLimit
	if !errors.As(wrapped, &pl) || pl.Limit != 7 {
		t.Fatalf("errors.As through wrapping: %v", wrapped)
	}
}

func TestRunReturnsErrPassLimit(t *testing.T) {
	s := FromInstance(testInstance(3), Adversarial, nil)
	alg := &passTracker{passesWanted: 100} // never finishes
	acc, err := Run(s, alg, 3)
	var pl ErrPassLimit
	if !errors.As(err, &pl) || pl.Limit != 3 {
		t.Fatalf("err = %v, want ErrPassLimit{3}", err)
	}
	if acc.Passes != 3 {
		t.Fatalf("acc.Passes = %d, want 3", acc.Passes)
	}
}

func TestRunContextCancellation(t *testing.T) {
	// Pre-canceled: the driver must not start a pass.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	alg := &passTracker{passesWanted: 2}
	acc, err := RunContext(ctx, FromInstance(testInstance(4), Adversarial, nil), alg, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acc.Passes != 0 || alg.begins != 0 {
		t.Fatalf("pre-canceled run did work: acc=%+v begins=%d", acc, alg.begins)
	}
	// Cancel between passes: the canceler fires during pass 0's EndPass via
	// the tracker, so pass 1 must not begin.
	ctx2, cancel2 := context.WithCancel(context.Background())
	c := &cancelOnEnd{cancel: cancel2}
	acc2, err := RunContext(ctx2, FromInstance(testInstance(4), Adversarial, nil), c, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acc2.Passes != 1 || c.begins != 1 {
		t.Fatalf("cancellation between passes not honored: acc=%+v begins=%d", acc2, c.begins)
	}
}

// cancelOnEnd cancels its context at the end of the first pass and never
// reports done.
type cancelOnEnd struct {
	cancel context.CancelFunc
	begins int
}

func (c *cancelOnEnd) BeginPass(int) { c.begins++ }
func (c *cancelOnEnd) Observe(Item)  {}
func (c *cancelOnEnd) EndPass() bool { c.cancel(); return false }
func (c *cancelOnEnd) Space() int    { return 0 }
