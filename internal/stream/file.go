package stream

import (
	"bufio"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"

	"streamcover/internal/setsystem"
)

// FileStream streams a set cover instance from a text-format file (the
// setsystem codec format) without materializing it: each pass re-reads the
// file, yielding one set at a time. This keeps the one-item-at-a-time
// access discipline honest for inputs larger than memory; cmd/covercli uses
// it for -in files.
//
// Unlike InstanceStream it supports only the adversarial (file) order.
type FileStream struct {
	path string
	n, m int

	f    *os.File
	sc   *bufio.Scanner
	seen int
	err  error
}

// OpenFile validates the header of the file and returns a stream over it.
// The caller must Close it when done.
func OpenFile(path string) (*FileStream, error) {
	fs := &FileStream{path: path}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := newInstanceScanner(f)
	n, m, err := readHeader(sc)
	if err != nil {
		return nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	fs.n, fs.m = n, m
	return fs, nil
}

func newInstanceScanner(f *os.File) *bufio.Scanner {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	return sc
}

// readHeader consumes comments/blanks and parses "setcover n m".
func readHeader(sc *bufio.Scanner) (n, m int, err error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "setcover" {
			return 0, 0, fmt.Errorf("expected 'setcover <n> <m>' header, got %q", line)
		}
		n, err1 := strconv.Atoi(fields[1])
		m, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || n < 0 || m < 0 ||
			n > setsystem.MaxElement || m > setsystem.MaxElement {
			return 0, 0, fmt.Errorf("bad header values in %q", line)
		}
		return n, m, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return 0, 0, fmt.Errorf("empty instance file")
}

// Universe implements Stream.
func (fs *FileStream) Universe() int { return fs.n }

// Len implements Stream.
func (fs *FileStream) Len() int { return fs.m }

// Reset implements Stream: reopens the file for a new pass.
func (fs *FileStream) Reset() {
	if fs.f != nil {
		fs.f.Close()
		fs.f = nil
	}
	f, err := os.Open(fs.path)
	if err != nil {
		fs.err = err
		return
	}
	fs.f = f
	fs.sc = newInstanceScanner(f)
	if _, _, err := readHeader(fs.sc); err != nil {
		fs.err = err
		return
	}
	fs.seen = 0
	fs.err = nil
}

// Next implements Stream: parses the next "id e1 e2 ..." line.
func (fs *FileStream) Next() (Item, bool) {
	if fs.err != nil || fs.sc == nil {
		return Item{}, false
	}
	for fs.sc.Scan() {
		line := strings.TrimSpace(fs.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 || id >= fs.m {
			fs.err = fmt.Errorf("stream: %s: bad set id %q", fs.path, fields[0])
			return Item{}, false
		}
		elems := make([]int32, 0, len(fields)-1)
		for _, fstr := range fields[1:] {
			e, err := strconv.Atoi(fstr)
			if err != nil || e < 0 || e >= fs.n {
				fs.err = fmt.Errorf("stream: %s: bad element %q in set %d", fs.path, fstr, id)
				return Item{}, false
			}
			elems = append(elems, int32(e))
		}
		// Normalize exactly as the in-memory reader does (ReadInstance runs
		// SortSets): the sorted/duplicate-free invariant is what every
		// consumer — scalar loops and word-mask run kernels alike — assumes,
		// so file-streamed items must match their in-memory twins.
		if !slices.IsSorted(elems) {
			slices.Sort(elems)
		}
		elems = slices.Compact(elems)
		fs.seen++
		return Item{ID: id, Elems: elems}, true
	}
	if err := fs.sc.Err(); err != nil {
		fs.err = err
	} else if fs.seen != fs.m {
		fs.err = fmt.Errorf("stream: %s: %d of %d sets present", fs.path, fs.seen, fs.m)
	}
	return Item{}, false
}

// Err returns the first error encountered while streaming (Next returning
// false may mean end-of-pass or error; check Err after the run).
func (fs *FileStream) Err() error { return fs.err }

// StableItems reports that every Item.Elems is freshly allocated per line and
// never reused: concurrent drivers may broadcast items without copying.
func (fs *FileStream) StableItems() bool { return true }

// ArrivalOrder implements Ordered: a file pass always replays file order.
func (fs *FileStream) ArrivalOrder() Order { return Adversarial }

// Close releases the underlying file.
func (fs *FileStream) Close() error {
	if fs.f != nil {
		err := fs.f.Close()
		fs.f = nil
		return err
	}
	return nil
}
