package stream

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func writeSCB2(t *testing.T, in *setsystem.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.scb2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.WriteSCB2(f, in); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedStreamMatchesInstanceStream drives two passes over the mapped
// stream and checks every item against the in-memory stream of the same
// instance.
func TestMappedStreamMatchesInstanceStream(t *testing.T) {
	inst := setsystem.Zipf(rng.New(6), 256, 48, 1.5, 64)
	ms, err := OpenMapped(writeSCB2(t, inst))
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if ms.Universe() != inst.N || ms.Len() != inst.M() {
		t.Fatalf("mapped stream metadata n=%d m=%d, want n=%d m=%d",
			ms.Universe(), ms.Len(), inst.N, inst.M())
	}
	ref := FromInstance(inst, Adversarial, nil)
	for pass := 0; pass < 2; pass++ {
		ms.Reset()
		ref.Reset()
		for {
			got, ok1 := ms.Next()
			want, ok2 := ref.Next()
			if ok1 != ok2 {
				t.Fatalf("pass %d: stream lengths diverge", pass)
			}
			if !ok1 {
				break
			}
			if got.ID != want.ID || !reflect.DeepEqual(got.Elems, want.Elems) {
				t.Fatalf("pass %d: item %d differs: %v vs %v", pass, got.ID, got.Elems, want.Elems)
			}
		}
	}
	if err := PassErr(ms); err != nil {
		t.Fatal(err)
	}
}

// TestOpenDispatch pins the three-way magic sniff: SCB1 → BinaryFileStream,
// SCB2 → MappedFileStream, text → FileStream.
func TestOpenDispatch(t *testing.T) {
	inst := setsystem.FromSets(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	dir := t.TempDir()

	write := func(name string, encode func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := encode(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	tpath := write("i.sc", func(f *os.File) error { return setsystem.Write(f, inst) })
	bpath := write("i.scb", func(f *os.File) error { return setsystem.WriteBinary(f, inst) })
	mpath := write("i.scb2", func(f *os.File) error { return setsystem.WriteSCB2(f, inst) })

	for _, tc := range []struct {
		path string
		want any
	}{
		{tpath, &FileStream{}},
		{bpath, &BinaryFileStream{}},
		{mpath, &MappedFileStream{}},
	} {
		s, err := Open(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.TypeOf(s) != reflect.TypeOf(tc.want) {
			t.Fatalf("Open(%s) = %T, want %T", tc.path, s, tc.want)
		}
		if s.Universe() != inst.N || s.Len() != inst.M() {
			t.Fatalf("Open(%s): metadata n=%d m=%d", tc.path, s.Universe(), s.Len())
		}
		s.Close()
	}
}

// TestOpenUnrecognizedShortFile pins the bugfix: empty or magic-less short
// files produce a clear "unrecognized instance file" error, not a raw EOF.
func TestOpenUnrecognizedShortFile(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.sc": "",
		"tiny.sc":  "ab",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err == nil {
			s.Close()
			t.Fatalf("Open(%s) accepted a %d-byte file", name, len(content))
		}
		if !strings.Contains(err.Error(), "unrecognized instance file") {
			t.Fatalf("Open(%s) error %q does not identify the file as unrecognized", name, err)
		}
		if strings.Contains(err.Error(), "EOF") {
			t.Fatalf("Open(%s) surfaced a raw EOF: %q", name, err)
		}
	}
}
