package stream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"streamcover/internal/setsystem"
)

// BinaryFileStream streams a set cover instance from a binary-format file
// (the setsystem binary codec) without materializing it. The header and
// per-set length table are decoded once at open; each pass seeks back to
// the payload and decodes sets into a single reusable buffer — no strconv,
// no per-item allocation in steady state. This is the data plane the
// ROADMAP's larger-than-memory workloads ride on: per pass the stream does
// one sequential read of the payload and the resident footprint is the
// length table plus one set.
//
// Items are views into the reusable buffer, so StableItems reports false:
// concurrent drivers copy them before fanning out.
type BinaryFileStream struct {
	path string
	n, m int
	lens []int32 // per-set lengths (the decoded offsets table)

	f          *os.File
	br         *bufio.Reader
	payloadOff int64 // byte offset of the first payload varint
	pos        int   // next set index of the current pass
	buf        []int32
	err        error
}

// OpenBinaryFile validates the header of the file, decodes the length
// table, and returns a multi-pass stream over the payload. The caller must
// Close it when done.
func OpenBinaryFile(path string) (*BinaryFileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cr := &countingByteReader{r: bufio.NewReaderSize(f, 1<<20)}
	n, m, lens, err := setsystem.ReadBinaryHeader(cr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	fs := &BinaryFileStream{
		path: path, n: n, m: m, lens: lens,
		f: f, br: cr.r, payloadOff: cr.count,
	}
	fs.pos = m // force Reset before use, as InstanceStream does
	return fs, nil
}

// countingByteReader counts bytes consumed through ReadByte so the header
// size (= payload offset) is known without re-parsing.
type countingByteReader struct {
	r     *bufio.Reader
	count int64
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.count++
	}
	return b, err
}

// Universe implements Stream.
func (fs *BinaryFileStream) Universe() int { return fs.n }

// Len implements Stream.
func (fs *BinaryFileStream) Len() int { return fs.m }

// Reset implements Stream: seeks back to the payload for a new pass. The
// buffered reader is reused, so Reset allocates nothing.
func (fs *BinaryFileStream) Reset() {
	if fs.f == nil {
		fs.err = fmt.Errorf("stream: %s: stream is closed", fs.path)
		return
	}
	if _, err := fs.f.Seek(fs.payloadOff, io.SeekStart); err != nil {
		fs.err = err
		return
	}
	fs.br.Reset(fs.f)
	fs.pos = 0
	fs.err = nil
}

// Next implements Stream: decodes the next set into the reusable buffer.
// The returned view is valid only until the following Next call.
func (fs *BinaryFileStream) Next() (Item, bool) {
	if fs.err != nil || fs.pos >= fs.m {
		return Item{}, false
	}
	id := fs.pos
	buf, err := setsystem.DecodeBinarySet(fs.br, fs.buf, fs.lens[id], fs.n)
	fs.buf = buf
	if err != nil {
		fs.err = fmt.Errorf("stream: %s: set %d: %w", fs.path, id, err)
		return Item{}, false
	}
	fs.pos++
	return Item{ID: id, Elems: buf}, true
}

// Err implements Failer: the first error encountered while streaming (Next
// returning false may mean end-of-pass or error; drivers check Err after
// each pass).
func (fs *BinaryFileStream) Err() error { return fs.err }

// StableItems reports that returned Item.Elems alias the stream's reusable
// decode buffer and are invalidated by the next Next call: concurrent
// drivers must copy items before broadcasting them.
func (fs *BinaryFileStream) StableItems() bool { return false }

// ArrivalOrder implements Ordered: a file pass always replays file order.
func (fs *BinaryFileStream) ArrivalOrder() Order { return Adversarial }

// Close releases the underlying file.
func (fs *BinaryFileStream) Close() error {
	if fs.f != nil {
		err := fs.f.Close()
		fs.f = nil
		return err
	}
	return nil
}

// FileBacked is the interface of the file-backed streams: a resettable
// multi-pass Stream that can fail mid-pass and must be closed.
type FileBacked interface {
	Stream
	Failer
	io.Closer
}

// Open returns a multi-pass stream over an instance file in any codec,
// sniffing the leading magic bytes: SCB1 streams through the varint
// decoder, SCB2 opens as an mmap-backed instance view, and anything else
// falls back to the text scanner. The caller must Close the stream when
// done.
//
// A file too short to hold any codec magic cannot be a valid instance in
// any format (the shortest text header, "setcover 0 0", is 12 bytes), so
// Open rejects it up front with a recognizable error instead of letting a
// decoder surface a raw EOF.
func Open(path string) (FileBacked, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(setsystem.BinaryMagic()))
	n, rerr := io.ReadFull(f, head)
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("stream: %s: unrecognized instance file (empty or too short for any codec: %d bytes)",
			path, n)
	}
	switch {
	case bytes.Equal(head, setsystem.BinaryMagic()):
		return OpenBinaryFile(path)
	case bytes.Equal(head, setsystem.SCB2Magic()):
		return OpenMapped(path)
	}
	return OpenFile(path)
}
