package stream

import (
	"sort"
	"testing"
	"testing/quick"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func testInstance(m int) *setsystem.Instance {
	sets := make([][]int, m)
	for i := range sets {
		sets[i] = []int{i % 7}
	}
	return setsystem.FromSets(7, sets)
}

// collectIDs runs one pass and returns the IDs in arrival order.
func collectIDs(s Stream) []int {
	s.Reset()
	var ids []int
	for {
		it, ok := s.Next()
		if !ok {
			return ids
		}
		ids = append(ids, it.ID)
	}
}

func TestAdversarialOrder(t *testing.T) {
	in := testInstance(10)
	s := FromInstance(in, Adversarial, nil)
	ids := collectIDs(s)
	for i, id := range ids {
		if id != i {
			t.Fatalf("adversarial order changed: %v", ids)
		}
	}
	// Same order on the next pass.
	ids2 := collectIDs(s)
	if len(ids2) != 10 {
		t.Fatalf("second pass truncated: %v", ids2)
	}
}

func TestRandomOnceIsPermutationAndStable(t *testing.T) {
	in := testInstance(50)
	s := FromInstance(in, RandomOnce, rng.New(1))
	p1 := collectIDs(s)
	p2 := collectIDs(s)
	if len(p1) != 50 {
		t.Fatalf("pass len %d", len(p1))
	}
	sorted := append([]int(nil), p1...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("not a permutation: %v", p1)
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("RandomOnce order changed between passes")
		}
	}
	// It should actually shuffle (overwhelming probability).
	identity := true
	for i, v := range p1 {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("RandomOnce produced identity permutation (suspicious)")
	}
}

func TestRandomEachPassReshuffles(t *testing.T) {
	in := testInstance(50)
	s := FromInstance(in, RandomEachPass, rng.New(2))
	p1 := collectIDs(s)
	p2 := collectIDs(s)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("RandomEachPass repeated the same order")
	}
}

func TestNextBeforeResetEmpty(t *testing.T) {
	s := FromInstance(testInstance(3), Adversarial, nil)
	if _, ok := s.Next(); ok {
		t.Fatal("Next before Reset returned an item")
	}
}

// countingAlg counts items for a fixed number of passes and reports a
// configurable space profile.
type countingAlg struct {
	passesWanted int
	pass         int
	seen         int
	spaceAt      func(seen int) int
}

func (c *countingAlg) BeginPass(pass int) { c.pass = pass }
func (c *countingAlg) Observe(Item)       { c.seen++ }
func (c *countingAlg) EndPass() bool      { return c.pass+1 >= c.passesWanted }
func (c *countingAlg) Space() int {
	if c.spaceAt == nil {
		return 0
	}
	return c.spaceAt(c.seen)
}

func TestRunAccounting(t *testing.T) {
	in := testInstance(20)
	s := FromInstance(in, Adversarial, nil)
	alg := &countingAlg{passesWanted: 3, spaceAt: func(seen int) int { return seen % 13 }}
	acc, err := Run(s, alg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 {
		t.Fatalf("Passes = %d", acc.Passes)
	}
	if acc.Items != 60 {
		t.Fatalf("Items = %d", acc.Items)
	}
	if acc.PeakSpace != 12 {
		t.Fatalf("PeakSpace = %d, want 12", acc.PeakSpace)
	}
}

func TestRunPassLimit(t *testing.T) {
	in := testInstance(5)
	s := FromInstance(in, Adversarial, nil)
	alg := &countingAlg{passesWanted: 100}
	_, err := Run(s, alg, 4)
	if _, ok := err.(ErrPassLimit); !ok {
		t.Fatalf("err = %v, want ErrPassLimit", err)
	}
}

func TestParallelComposition(t *testing.T) {
	in := testInstance(10)
	s := FromInstance(in, Adversarial, nil)
	a := &countingAlg{passesWanted: 1, spaceAt: func(int) int { return 5 }}
	b := &countingAlg{passesWanted: 3, spaceAt: func(int) int { return 7 }}
	par := NewParallel(a, b)
	acc, err := Run(s, par, 10)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 {
		t.Fatalf("Passes = %d, want max child passes 3", acc.Passes)
	}
	// a stops observing after its pass finishes.
	if a.seen != 10 {
		t.Fatalf("finished child kept observing: seen=%d", a.seen)
	}
	if b.seen != 30 {
		t.Fatalf("running child missed items: seen=%d", b.seen)
	}
	// Space is additive (5+7), even after a finished.
	if acc.PeakSpace != 12 {
		t.Fatalf("PeakSpace = %d, want 12", acc.PeakSpace)
	}
}

func TestOrderString(t *testing.T) {
	if Adversarial.String() != "adversarial" || RandomOnce.String() != "random-once" ||
		RandomEachPass.String() != "random-each-pass" {
		t.Fatal("Order.String mismatch")
	}
	if Order(99).String() == "" {
		t.Fatal("unknown order produced empty string")
	}
}

// Property: a Parallel of one child behaves exactly like the child alone.
func TestQuickParallelSingletonEquivalence(t *testing.T) {
	f := func(mRaw, passesRaw uint8) bool {
		m := int(mRaw)%20 + 1
		passes := int(passesRaw)%4 + 1
		in := testInstance(m)

		solo := &countingAlg{passesWanted: passes, spaceAt: func(seen int) int { return seen }}
		sSolo := FromInstance(in, Adversarial, nil)
		accSolo, err1 := Run(sSolo, solo, passes+1)

		child := &countingAlg{passesWanted: passes, spaceAt: func(seen int) int { return seen }}
		par := NewParallel(child)
		sPar := FromInstance(in, Adversarial, nil)
		accPar, err2 := Run(sPar, par, passes+1)

		return err1 == nil && err2 == nil &&
			accSolo.Passes == accPar.Passes &&
			accSolo.Items == accPar.Items &&
			accSolo.PeakSpace == accPar.PeakSpace &&
			solo.seen == child.seen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
