package stream

import (
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func writeTempBinaryInstance(t *testing.T, in *setsystem.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.scb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.WriteBinary(f, in); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBinaryFileStreamMatchesInstanceStream(t *testing.T) {
	in := setsystem.Uniform(rng.New(1), 100, 25, 0, 40)
	path := writeTempBinaryInstance(t, in)
	fs, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Universe() != in.N || fs.Len() != in.M() {
		t.Fatalf("header: %d/%d", fs.Universe(), fs.Len())
	}
	// Three passes: contents must match the instance exactly every time
	// (Reset seeks back to the payload).
	for pass := 0; pass < 3; pass++ {
		fs.Reset()
		count := 0
		for {
			item, ok := fs.Next()
			if !ok {
				break
			}
			want := in.Set(item.ID)
			if len(item.Elems) != len(want) {
				t.Fatalf("pass %d set %d: %v != %v", pass, item.ID, item.Elems, want)
			}
			for i := range want {
				if item.Elems[i] != want[i] {
					t.Fatalf("pass %d set %d mismatch", pass, item.ID)
				}
			}
			count++
		}
		if err := fs.Err(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if count != in.M() {
			t.Fatalf("pass %d: %d sets", pass, count)
		}
	}
}

func TestBinaryFileStreamDrivesAlgorithm(t *testing.T) {
	in := setsystem.Uniform(rng.New(2), 64, 12, 4, 30)
	path := writeTempBinaryInstance(t, in)
	fs, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	alg := &countingAlg{passesWanted: 3}
	acc, err := Run(fs, alg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 || acc.Items != 36 {
		t.Fatalf("acc = %+v", acc)
	}
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
}

func TestBinaryFileStreamTruncatedPayload(t *testing.T) {
	in := setsystem.Uniform(rng.New(3), 64, 10, 8, 30)
	path := writeTempBinaryInstance(t, in)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.scb")
	if err := os.WriteFile(trunc, raw[:len(raw)-len(raw)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenBinaryFile(trunc)
	if err != nil {
		t.Fatal(err) // header + length table survive; payload is cut
	}
	defer fs.Close()
	fs.Reset()
	for {
		if _, ok := fs.Next(); !ok {
			break
		}
	}
	if fs.Err() == nil {
		t.Fatal("truncated payload streamed without error")
	}
	// The driver must surface the failure, not treat it as end-of-pass.
	fs2, err := OpenBinaryFile(trunc)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, err := Run(fs2, &countingAlg{passesWanted: 2}, 4); err == nil {
		t.Fatal("Run swallowed a mid-pass stream error")
	}
}

func TestRunPropagatesTextFileError(t *testing.T) {
	// The historical bug: a truncated text file ended the pass cleanly and
	// the driver kept going. Run must now fail.
	path := filepath.Join(t.TempDir(), "short.sc")
	if err := os.WriteFile(path, []byte("setcover 3 2\n0 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := Run(fs, &countingAlg{passesWanted: 2}, 4); err == nil {
		t.Fatal("Run swallowed a missing-set stream error")
	}
}

func TestOpenAutoDetectsFormat(t *testing.T) {
	in := setsystem.Uniform(rng.New(4), 50, 8, 0, 20)
	tpath := writeTempInstance(t, in)
	bpath := writeTempBinaryInstance(t, in)
	for _, path := range []string{tpath, bpath} {
		s, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if s.Universe() != in.N || s.Len() != in.M() {
			t.Fatalf("%s: header %d/%d", path, s.Universe(), s.Len())
		}
		s.Reset()
		count := 0
		for {
			item, ok := s.Next()
			if !ok {
				break
			}
			want := in.Set(item.ID)
			for i := range want {
				if item.Elems[i] != want[i] {
					t.Fatalf("%s: set %d differs", path, item.ID)
				}
			}
			count++
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if count != in.M() {
			t.Fatalf("%s: %d sets", path, count)
		}
		s.Close()
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestBinaryFileStreamNextAllocFree is the allocation-regression guard for
// the binary data plane: once the decode buffer has warmed up (first pass),
// Next must not allocate.
func TestBinaryFileStreamNextAllocFree(t *testing.T) {
	in := setsystem.Uniform(rng.New(5), 256, 40, 16, 64)
	path := writeTempBinaryInstance(t, in)
	fs, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// Warm-up pass grows the reusable buffer to the largest set.
	fs.Reset()
	for {
		if _, ok := fs.Next(); !ok {
			break
		}
	}
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
	fs.Reset()
	perPass := float64(in.M())
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := fs.Next(); !ok {
			fs.Reset()
		}
	})
	if allocs > 0 {
		t.Fatalf("BinaryFileStream.Next allocates %.2f objects/op in steady state (%v sets/pass)", allocs, perPass)
	}
}
