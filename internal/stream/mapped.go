package stream

import (
	"streamcover/internal/setsystem"
)

// MappedFileStream streams a set cover instance from an SCB2 file backed
// by an mmap'd view (setsystem.Map): open cost is O(pages touched) — a
// header read plus one validation scan, no decode pass, O(1) allocations
// in the instance size — and each pass walks the mapped CSR arena exactly
// like an in-memory InstanceStream, because it is one. Items are views
// into the mapping, stable for the life of the stream, so concurrent
// drivers broadcast them without copying (StableItems is inherited from
// InstanceStream and reports true).
//
// On hosts without zero-copy mapping support setsystem.Map falls back to a
// heap decode; the stream behaves identically either way.
type MappedFileStream struct {
	*InstanceStream
	inst *setsystem.Instance
}

// OpenMapped maps an SCB2 file and returns a multi-pass stream over it.
// The caller must Close the stream when done; Close unmaps the file, which
// invalidates any outstanding item views.
func OpenMapped(path string) (*MappedFileStream, error) {
	inst, err := setsystem.Map(path)
	if err != nil {
		return nil, err
	}
	return &MappedFileStream{
		InstanceStream: FromInstance(inst, Adversarial, nil),
		inst:           inst,
	}, nil
}

// Instance exposes the backing instance (mapped, or the heap fallback);
// it is valid until Close.
func (ms *MappedFileStream) Instance() *setsystem.Instance { return ms.inst }

// Err implements Failer. A mapped pass cannot fail mid-pass: the file was
// fully validated at open and the kernel pages it in on demand.
func (ms *MappedFileStream) Err() error { return nil }

// Close releases the mapping.
func (ms *MappedFileStream) Close() error { return ms.inst.Unmap() }
