package stream

import (
	"context"
	"testing"
	"time"
)

// traceAlg is countingAlg plus a lane count: a minimal LaneCounter for
// driver trace tests, with a per-pass footprint of (pass+1)*4 words.
type traceAlg struct {
	passes int
	seen   int
	pass   int
	live   int
}

func (a *traceAlg) BeginPass(pass int) { a.pass = pass }
func (a *traceAlg) Observe(Item)       { a.seen++ }
func (a *traceAlg) EndPass() bool      { return a.pass+1 >= a.passes }
func (a *traceAlg) Space() int         { return (a.pass + 1) * 4 }
func (a *traceAlg) LiveLanes() int     { return a.live }

func TestRunTracedSamples(t *testing.T) {
	in := testInstance(12)
	s := FromInstance(in, Adversarial, nil)
	alg := &traceAlg{passes: 3, live: 5}
	var tr Trace
	acc, err := RunTraced(context.Background(), s, alg, 10, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 || acc.Items != 36 {
		t.Fatalf("accounting = %+v", acc)
	}
	samples := tr.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want one per pass", len(samples))
	}
	for i, sm := range samples {
		if sm.Pass != i {
			t.Fatalf("sample %d has pass index %d", i, sm.Pass)
		}
		if sm.Items != 12 {
			t.Fatalf("pass %d observed %d items, want 12", i, sm.Items)
		}
		if sm.Duration <= 0 {
			t.Fatalf("pass %d has non-positive duration %v", i, sm.Duration)
		}
		if sm.SpaceWords != (i+1)*4 {
			t.Fatalf("pass %d space = %d, want %d", i, sm.SpaceWords, (i+1)*4)
		}
		if sm.PeakSpace != (i+1)*4 {
			t.Fatalf("pass %d peak = %d, want %d", i, sm.PeakSpace, (i+1)*4)
		}
		if sm.Live != 5 {
			t.Fatalf("pass %d live = %d, want the algorithm's lane count", i, sm.Live)
		}
		if sm.Replayed {
			t.Fatalf("pass %d flagged replayed on an honest stream", i)
		}
	}
}

// TestRunTracedNilSinkMatchesRunContext pins that RunContext is exactly the
// nil-sink special case: same accounting, same error.
func TestRunTracedNilSinkMatchesRunContext(t *testing.T) {
	in := testInstance(9)
	a1 := &traceAlg{passes: 2}
	acc1, err1 := RunContext(context.Background(), FromInstance(in, Adversarial, nil), a1, 5)
	a2 := &traceAlg{passes: 2}
	acc2, err2 := RunTraced(context.Background(), FromInstance(in, Adversarial, nil), a2, 5, nil)
	if acc1 != acc2 || (err1 == nil) != (err2 == nil) {
		t.Fatalf("RunContext %+v/%v vs RunTraced(nil) %+v/%v", acc1, err1, acc2, err2)
	}
}

// TestRunTracedUnknownLanes pins the -1 convention for algorithms that do
// not expose a lane count.
func TestRunTracedUnknownLanes(t *testing.T) {
	type bare struct {
		PassAlgorithm
	}
	in := testInstance(4)
	alg := &traceAlg{passes: 1}
	var tr Trace
	if _, err := RunTraced(context.Background(), FromInstance(in, Adversarial, nil), bare{alg}, 2, &tr); err != nil {
		t.Fatal(err)
	}
	if s := tr.Samples(); len(s) != 1 || s[0].Live != -1 {
		t.Fatalf("samples = %+v, want one sample with Live == -1", s)
	}
}

// TestRunTracedReplayedFlags pins the replay annotation against a real
// PlanCache: the recording pass is honest, every later pass is replayed.
func TestRunTracedReplayedFlags(t *testing.T) {
	in := testInstance(8)
	pc := NewPlanCache(FromInstance(in, Adversarial, nil), 0)
	defer pc.Close()
	alg := &traceAlg{passes: 3}
	var tr Trace
	acc, err := RunTraced(context.Background(), pc, alg, 5, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 {
		t.Fatalf("accounting = %+v", acc)
	}
	samples := tr.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, sm := range samples {
		if want := i > 0; sm.Replayed != want {
			t.Fatalf("pass %d replayed = %v, want %v (pass 0 records, the rest replay)",
				i, sm.Replayed, want)
		}
		if sm.Items != 8 {
			t.Fatalf("pass %d observed %d items", i, sm.Items)
		}
	}
}

// TestTraceResetReuse pins the steady-state contract: a reused Trace keeps
// its capacity, so tracing a run into it does not allocate per pass.
func TestTraceResetReuse(t *testing.T) {
	in := testInstance(6)
	var tr Trace
	run := func() {
		tr.Reset()
		alg := &traceAlg{passes: 4}
		if _, err := RunTraced(context.Background(), FromInstance(in, Adversarial, nil), alg, 8, &tr); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 4 {
			t.Fatalf("trace len %d after run", tr.Len())
		}
	}
	run() // warm up: grow the sample slice once
	allocs := testing.AllocsPerRun(20, func() {
		tr.Reset()
		tr.TracePass(PassSample{Pass: 0, Duration: time.Microsecond})
		tr.TracePass(PassSample{Pass: 1})
		tr.TracePass(PassSample{Pass: 2})
		tr.TracePass(PassSample{Pass: 3})
	})
	if allocs != 0 {
		t.Fatalf("reused Trace allocated %.1f times per run, want 0", allocs)
	}
	run() // and the full driver still works after the churn
}

// TestParallelLiveLanes pins the composition rule: Parallel sums the lanes
// of children that report them and stays unknown when none do.
func TestParallelLiveLanes(t *testing.T) {
	p := &Parallel{children: []PassAlgorithm{
		&traceAlg{live: 3}, &traceAlg{live: 4},
	}}
	if got := p.LiveLanes(); got != 7 {
		t.Fatalf("LiveLanes = %d, want 7", got)
	}
	type bare struct{ PassAlgorithm }
	p = &Parallel{children: []PassAlgorithm{bare{&traceAlg{}}}}
	if got := p.LiveLanes(); got != -1 {
		t.Fatalf("LiveLanes with no counting children = %d, want -1", got)
	}
}
