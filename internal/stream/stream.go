// Package stream provides the multi-pass set-streaming substrate of
// streamcover.
//
// The streaming set cover model (Saha–Getoor 2009; the model of the paper)
// reveals the m input sets one at a time; an algorithm may take several
// passes over the stream but must keep its working memory sublinear in the
// input size m·n. This package defines:
//
//   - Stream: a resettable, one-at-a-time source of sets, yielding
//     zero-copy []int32 views (into the instance's CSR arena, or a file
//     stream's decode buffer);
//   - PassAlgorithm: the state-machine shape of a multi-pass algorithm;
//   - Driver: runs a PassAlgorithm over a Stream while accounting for the
//     number of passes and the peak working space in words; drivers check
//     Failer after every pass so file-backed streams fail loudly;
//   - file-backed streams for both on-disk codecs (FileStream for text,
//     BinaryFileStream for binary; Open auto-detects), re-reading the file
//     every pass so larger-than-memory instances stream honestly;
//   - arrival orders: adversarial (as given), a fixed random permutation
//     (the paper's random arrival model), or a fresh shuffle every pass.
//
// Space is measured in words: one stored set ID or element ID counts as one
// word. Algorithms report their current footprint via Space(); the Driver
// polls it after every item and records the peak. This matches the paper's
// accounting, which states bounds in (poly-log factors times) the number of
// stored IDs rather than bits.
package stream

import (
	"context"
	"fmt"
	"time"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// Item is one stream element: a set and its identifier. Elems is a
// zero-copy view into the stream's storage (the instance's CSR arena, or a
// file stream's read buffer) and must not be retained or mutated by
// algorithms; copy what you keep (the copy is what you pay space for).
type Item struct {
	ID    int
	Elems []int32
	// Runs is the word-mask run view of Elems — (word, mask) pairs covering
	// the same elements — consumed by the bitset run kernels. Drivers that
	// fan one item out to many consumers prefill it once per item per pass
	// (parallel.runPass on the producer side, Parallel.Observe in the
	// sequential driver) so every consumer shares one read-only run list;
	// nil means the consumer builds its own via RunsInto. Like Elems, Runs
	// must not be retained past Observe or mutated.
	Runs []bitset.Run
}

// RunsInto returns the item's word-mask run list. When a producer prefilled
// Runs, the shared list is returned and scratch passes through untouched;
// otherwise the runs are built into scratch[:0] and returned as both values
// (keep the returned scratch across items to stay allocation-free):
//
//	runs, a.runScratch = item.RunsInto(a.runScratch)
func (it Item) RunsInto(scratch []bitset.Run) (runs, newScratch []bitset.Run) {
	if it.Runs != nil {
		return it.Runs, scratch
	}
	scratch = bitset.AppendRuns(scratch[:0], it.Elems)
	return scratch, scratch
}

// Stream is a resettable source of set items. Universe and Len are the
// standard metadata (n and m) assumed known to streaming algorithms.
type Stream interface {
	Universe() int
	Len() int
	// Reset starts a new pass. It must be called before the first pass too.
	Reset()
	// Next returns the next item of the current pass, or ok=false at the end
	// of the pass.
	Next() (item Item, ok bool)
}

// Order selects the arrival order of the sets.
type Order int

const (
	// Adversarial streams the sets exactly in instance order.
	Adversarial Order = iota
	// RandomOnce applies one random permutation, the same for every pass.
	// This is the paper's random arrival model.
	RandomOnce
	// RandomEachPass applies a fresh random permutation on every pass.
	RandomEachPass
)

// Ordered is implemented by streams that know their arrival order. The
// pass-replay plane uses it to pick a replay mode: orders that repeat every
// pass (Adversarial, RandomOnce) can be replayed without touching the
// source again, while RandomEachPass must keep driving the source so each
// pass draws the same fresh permutation an honest re-stream would. Streams
// that do not implement it get the conservative ID-driven replay.
type Ordered interface {
	ArrivalOrder() Order
}

func (o Order) String() string {
	switch o {
	case Adversarial:
		return "adversarial"
	case RandomOnce:
		return "random-once"
	case RandomEachPass:
		return "random-each-pass"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// InstanceStream streams an in-memory instance.
type InstanceStream struct {
	inst  *setsystem.Instance
	order Order
	r     *rng.RNG
	perm  []int
	pos   int
}

// FromInstance returns a stream over inst with the given arrival order.
// The RNG is used only for the random orders and may be nil for Adversarial.
func FromInstance(inst *setsystem.Instance, order Order, r *rng.RNG) *InstanceStream {
	s := &InstanceStream{inst: inst, order: order, r: r}
	s.perm = make([]int, inst.M())
	for i := range s.perm {
		s.perm[i] = i
	}
	if order == RandomOnce {
		if r == nil {
			panic("stream: RandomOnce requires an RNG")
		}
		r.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	}
	s.pos = inst.M() // force Reset before use
	return s
}

// Universe returns the universe size n.
func (s *InstanceStream) Universe() int { return s.inst.N }

// Len returns the number of sets m.
func (s *InstanceStream) Len() int { return s.inst.M() }

// Reset starts a new pass.
func (s *InstanceStream) Reset() {
	if s.order == RandomEachPass {
		if s.r == nil {
			panic("stream: RandomEachPass requires an RNG")
		}
		s.r.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	}
	s.pos = 0
}

// Next returns the next set of the current pass as a zero-copy view into
// the instance's arena.
func (s *InstanceStream) Next() (Item, bool) {
	if s.pos >= len(s.perm) {
		return Item{}, false
	}
	id := s.perm[s.pos]
	s.pos++
	return Item{ID: id, Elems: s.inst.Set(id)}, true
}

// StableItems reports that returned Item.Elems alias the instance's set
// storage, which is never mutated: items stay valid across the whole run, so
// concurrent drivers may broadcast them without copying.
func (s *InstanceStream) StableItems() bool { return true }

// ArrivalOrder implements Ordered.
func (s *InstanceStream) ArrivalOrder() Order { return s.order }

// PassAlgorithm is the state-machine shape of a multi-pass streaming
// algorithm. The Driver calls BeginPass, then Observe for every item of the
// pass, then EndPass; it stops when EndPass reports done (or the pass limit
// is hit). Space must return the algorithm's current footprint in words.
type PassAlgorithm interface {
	BeginPass(pass int)
	Observe(item Item)
	EndPass() (done bool)
	Space() int
}

// Accounting is the driver's measurement of a run.
type Accounting struct {
	Passes    int
	PeakSpace int // peak words held at any point during the run
	Items     int // total items observed across all passes
}

// ErrPassLimit is returned by Run when the algorithm did not finish within
// the pass limit.
type ErrPassLimit struct{ Limit int }

func (e ErrPassLimit) Error() string {
	return fmt.Sprintf("stream: algorithm did not finish within %d passes", e.Limit)
}

// Failer is implemented by streams that can fail mid-pass (file-backed
// streams: truncated files, corrupt payloads). For such streams Next
// returning ok=false is ambiguous — end of pass or error — so drivers must
// consult Err after each pass and abort the run on a non-nil result.
// In-memory streams need not implement it.
type Failer interface {
	// Err returns the first error encountered while streaming, or nil.
	Err() error
}

// PassErr returns the stream's error if it is a Failer, else nil. Drivers
// (Run here, parallel.Run) call it after every pass so a mid-pass stream
// failure aborts the run instead of masquerading as a clean short pass.
func PassErr(s Stream) error {
	if f, ok := s.(Failer); ok {
		return f.Err()
	}
	return nil
}

// Run drives alg over s until it reports done, recording passes and peak
// space. maxPasses bounds the run (use a generous limit; it exists to turn
// non-terminating bugs into errors). A stream failure (Failer reporting a
// non-nil Err after a pass) aborts the run with that error.
func Run(s Stream, alg PassAlgorithm, maxPasses int) (Accounting, error) {
	return RunContext(context.Background(), s, alg, maxPasses)
}

// CancelCheckInterval is how many items a driver observes between
// cancellation polls: often enough that a cancelled solve aborts within a
// fraction of a pass, rarely enough that the poll never shows up in the
// per-item profile.
const CancelCheckInterval = 1024

// RunContext is Run with cooperative cancellation: the driver polls
// ctx.Done() before every pass and every CancelCheckInterval items within a
// pass, and aborts the run with ctx.Err() (accounting the partial pass,
// skipping EndPass — the same abort shape as a mid-pass stream failure).
// A context that can never be cancelled costs nothing: ctx.Done() == nil
// disables the per-item polls entirely.
func RunContext(ctx context.Context, s Stream, alg PassAlgorithm, maxPasses int) (Accounting, error) {
	return RunTraced(ctx, s, alg, maxPasses, nil)
}

// RunTraced is RunContext with per-pass observability: after every clean
// pass it emits one PassSample to sink. A nil sink is exactly RunContext —
// the wall-clock reads and the optional-interface queries are gated on the
// sink, so untraced runs pay nothing. Tracing never touches the per-item
// loop: samples are assembled only at pass boundaries, keeping the trace
// O(passes) and the hot path allocation-free.
func RunTraced(ctx context.Context, s Stream, alg PassAlgorithm, maxPasses int, sink TraceSink) (Accounting, error) {
	var acc Accounting
	cancel := ctx.Done()
	var passStart time.Time
	for pass := 0; pass < maxPasses; pass++ {
		if cancel != nil {
			select {
			case <-cancel:
				return acc, ctx.Err()
			default:
			}
		}
		itemsBefore := acc.Items
		replayed := false
		if sink != nil {
			passStart = time.Now()
		}
		s.Reset()
		if sink != nil {
			// Query after Reset: a replaying stream decides per pass, at Reset
			// time, whether it serves the plan or drives the source honestly.
			replayed = replayedPass(s)
		}
		alg.BeginPass(pass)
		if sp := alg.Space(); sp > acc.PeakSpace {
			acc.PeakSpace = sp
		}
		sincePoll := 0
		for {
			item, ok := s.Next()
			if !ok {
				break
			}
			alg.Observe(item)
			acc.Items++
			if sp := alg.Space(); sp > acc.PeakSpace {
				acc.PeakSpace = sp
			}
			if cancel != nil {
				if sincePoll++; sincePoll >= CancelCheckInterval {
					sincePoll = 0
					select {
					case <-cancel:
						acc.Passes = pass + 1
						return acc, ctx.Err()
					default:
					}
				}
			}
		}
		if err := PassErr(s); err != nil {
			acc.Passes = pass + 1
			return acc, err
		}
		done := alg.EndPass()
		if sp := alg.Space(); sp > acc.PeakSpace {
			acc.PeakSpace = sp
		}
		acc.Passes = pass + 1
		if sink != nil {
			sink.TracePass(PassSample{
				Pass:       pass,
				Duration:   time.Since(passStart),
				Items:      acc.Items - itemsBefore,
				SpaceWords: alg.Space(),
				PeakSpace:  acc.PeakSpace,
				Live:       liveLanes(alg),
				Replayed:   replayed,
			})
		}
		if done {
			return acc, nil
		}
	}
	return acc, ErrPassLimit{Limit: maxPasses}
}

// Parallel composes several PassAlgorithms that run over the same passes in
// lockstep, the streaming analogue of running them "in parallel" on one
// stream. It is done when every child is done; its space is the sum of the
// children's (finished children keep paying for whatever state they retain,
// e.g. their solution). Children that finish early stop receiving items.
type Parallel struct {
	children []PassAlgorithm
	done     []bool
	active   int // children still running this pass, set by BeginPass
	// runScratch backs the per-item run list built once in Observe and
	// shared by every child — the sequential driver's side of the
	// one-pass-many-consumers amortization (parallel.runPass is the
	// concurrent side). Reused across items, so steady-state Observe is
	// allocation-free.
	runScratch []bitset.Run
}

// NewParallel returns the parallel composition of the given algorithms.
func NewParallel(children ...PassAlgorithm) *Parallel {
	return &Parallel{children: children, done: make([]bool, len(children))}
}

// BeginPass implements PassAlgorithm.
func (p *Parallel) BeginPass(pass int) {
	p.active = 0
	for i, c := range p.children {
		if !p.done[i] {
			p.active++
			c.BeginPass(pass)
		}
	}
}

// Observe implements PassAlgorithm. The item's run list is built once here
// (when no upstream producer already attached one) so all children share
// it. With at most one child still running the build cannot amortize —
// building costs about one scalar probe loop — so the lone child is left
// to its scalar fallback.
func (p *Parallel) Observe(item Item) {
	if item.Runs == nil && p.active > 1 {
		p.runScratch = bitset.AppendRuns(p.runScratch[:0], item.Elems)
		item.Runs = p.runScratch
	}
	for i, c := range p.children {
		if !p.done[i] {
			c.Observe(item)
		}
	}
}

// EndPass implements PassAlgorithm.
func (p *Parallel) EndPass() bool {
	all := true
	for i, c := range p.children {
		if !p.done[i] {
			p.done[i] = c.EndPass()
		}
		all = all && p.done[i]
	}
	return all
}

// Space implements PassAlgorithm.
func (p *Parallel) Space() int {
	sum := 0
	for _, c := range p.children {
		sum += c.Space()
	}
	return sum
}

// Children returns the composed algorithms, in order.
func (p *Parallel) Children() []PassAlgorithm { return p.children }
