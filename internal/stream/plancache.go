package stream

import (
	"errors"
	"fmt"
	"io"

	"streamcover/internal/bitset"
)

// This file is the pass-replay plane: a recording of one full pass —
// per-set elements plus the prebuilt word-mask run list — that serves every
// later pass from memory. A p-pass solve reads the same m sets p times; the
// first pass pays the full decode + run-build price once and the remaining
// p-1 passes become O(1) per item with zero allocation. The recording is a
// serving optimization, not algorithm state: it is never charged to
// Accounting.PeakSpace (the paper's space accounting stays honest) and the
// experiments harness keeps it off. Budgeting is the caller's job — the
// coverd registry charges Plan.Bytes against its resident-memory budget and
// drops the plan on eviction; PlanCache enforces a byte budget directly and
// degrades to passthrough when the instance exceeds it.

// ErrPlanBudget is returned by BuildPlan when recording the stream would
// exceed the byte budget.
var ErrPlanBudget = errors.New("stream: replay plan exceeds byte budget")

// planSetOverheadBytes is the accounted fixed cost per recorded set: two
// slice headers in the per-ID tables plus the arrival-order and bookkeeping
// entries, rounded up.
const planSetOverheadBytes = 64

// Plan is an immutable recording of a stream's items, indexed by set ID:
// each set's elements (aliased into the source's stable storage when
// possible, else copied into one contiguous arena) and its bitset.Run list
// (always one contiguous arena, built once). A Plan is read-only after
// construction and safe to share across concurrent solves.
type Plan struct {
	n, m  int
	elems [][]int32
	runs  [][]bitset.Run
	bytes int64
}

// Universe returns the recorded universe size n.
func (p *Plan) Universe() int { return p.n }

// Len returns the recorded number of sets m.
func (p *Plan) Len() int { return p.m }

// Bytes returns the accounted size of the plan: copied element words,
// run-list entries, and per-set table overhead. Elements aliased into the
// source's own storage are not charged (that memory is already accounted to
// the source).
func (p *Plan) Bytes() int64 { return p.bytes }

// Item returns the recorded item for the given set ID, with the shared
// run list attached. The views are immutable and valid for the life of the
// plan.
func (p *Plan) Item(id int) Item {
	return Item{ID: id, Elems: p.elems[id], Runs: p.runs[id]}
}

// planBuilder accumulates one pass of items into the plan arenas. Offsets
// into the logical arenas are stable under append (a reallocation copies the
// prefix), so per-ID slice headers are materialized only at finalize; the
// views handed back to the recording pass's consumer alias whatever backing
// the arena had at record time and stay valid for the rest of the pass.
type planBuilder struct {
	n, m   int
	alias  bool
	budget int64 // <= 0 means unlimited

	views   [][]int32 // alias mode: per-ID views into the source's storage
	elems   []int32   // copy mode: one contiguous element arena
	elemOff []int64   // copy mode: per-ID arena offsets
	elemLen []int32
	runs    []bitset.Run
	runOff  []int64
	runLen  []int32
	seen    []bool
	count   int
}

func newPlanBuilder(n, m int, alias bool, budget int64) *planBuilder {
	b := &planBuilder{n: n, m: m, alias: alias, budget: budget}
	if alias {
		b.views = make([][]int32, m)
	} else {
		b.elemOff = make([]int64, m)
		b.elemLen = make([]int32, m)
	}
	b.runOff = make([]int64, m)
	b.runLen = make([]int32, m)
	b.seen = make([]bool, m)
	return b
}

// reset discards a partial recording (cancelled pass) keeping the arena
// capacity for the re-record.
func (b *planBuilder) reset() {
	clear(b.seen)
	b.count = 0
	b.elems = b.elems[:0]
	b.runs = b.runs[:0]
}

func (b *planBuilder) bytes() int64 {
	return int64(b.count)*planSetOverheadBytes +
		int64(len(b.elems))*4 + int64(len(b.runs))*16
}

// record stores one item and returns it with plan-backed views (and the
// freshly built run list) attached. It fails on an ID outside [0, m), a
// duplicate ID within the pass, or a blown byte budget; on failure the
// caller's original item is untouched.
func (b *planBuilder) record(it Item) (Item, error) {
	id := it.ID
	if id < 0 || id >= b.m {
		return Item{}, fmt.Errorf("stream: replay plan: set id %d out of range [0, %d)", id, b.m)
	}
	if b.seen[id] {
		return Item{}, fmt.Errorf("stream: replay plan: duplicate set id %d within a pass", id)
	}
	b.seen[id] = true
	elems := it.Elems
	if b.alias {
		b.views[id] = elems
	} else {
		start := len(b.elems)
		b.elems = append(b.elems, elems...)
		elems = b.elems[start:len(b.elems):len(b.elems)]
		b.elemOff[id], b.elemLen[id] = int64(start), int32(len(elems))
	}
	rs := len(b.runs)
	if it.Runs != nil {
		b.runs = append(b.runs, it.Runs...)
	} else {
		b.runs = bitset.AppendRuns(b.runs, elems)
	}
	runs := b.runs[rs:len(b.runs):len(b.runs)]
	b.runOff[id], b.runLen[id] = int64(rs), int32(len(runs))
	b.count++
	if b.budget > 0 && b.bytes() > b.budget {
		return Item{}, ErrPlanBudget
	}
	it.Elems, it.Runs = elems, runs
	return it, nil
}

// finalize materializes the per-ID slice headers and returns the immutable
// plan. The builder must have recorded exactly m distinct IDs.
func (b *planBuilder) finalize() *Plan {
	p := &Plan{n: b.n, m: b.m, bytes: b.bytes()}
	p.runs = make([][]bitset.Run, b.m)
	for id := 0; id < b.m; id++ {
		off, ln := b.runOff[id], int64(b.runLen[id])
		p.runs[id] = b.runs[off : off+ln : off+ln]
	}
	if b.alias {
		p.elems = b.views
		return p
	}
	p.elems = make([][]int32, b.m)
	for id := 0; id < b.m; id++ {
		off, ln := b.elemOff[id], int64(b.elemLen[id])
		p.elems[id] = b.elems[off : off+ln : off+ln]
	}
	return p
}

// sourceStable mirrors parallel.Stable without importing the package (that
// would cycle): true when the stream's items alias storage that outlives the
// pass, so the plan may alias them instead of copying.
func sourceStable(s Stream) bool {
	st, ok := s.(interface{ StableItems() bool })
	return ok && st.StableItems()
}

// BuildPlan records one full pass of s (Reset + drain) and returns the
// plan. budget <= 0 means unlimited; a blown budget returns ErrPlanBudget.
// A stream failure or short pass surfaces as an error — a plan is only ever
// a complete, validated recording.
func BuildPlan(s Stream, budget int64) (*Plan, error) {
	b := newPlanBuilder(s.Universe(), s.Len(), sourceStable(s), budget)
	s.Reset()
	for {
		it, ok := s.Next()
		if !ok {
			break
		}
		if _, err := b.record(it); err != nil {
			return nil, err
		}
	}
	if err := PassErr(s); err != nil {
		return nil, err
	}
	if b.count != b.m {
		return nil, fmt.Errorf("stream: replay plan: recorded %d of %d sets", b.count, b.m)
	}
	return b.finalize(), nil
}

// ReplayStream drives a source stream for arrival order only — each Next
// consumes the source item just for its ID and serves the recorded payload
// (elements + prebuilt runs) from the plan. This is the universally correct
// replay mode: the ID→elements mapping is fixed across passes even when the
// arrival permutation is not (RandomEachPass draws a fresh shuffle from the
// source's RNG on every Reset, exactly as an honest re-stream would).
type ReplayStream struct {
	src  Stream
	plan *Plan
}

// Replay wraps src so every item's payload is served from the plan. The
// plan must have been recorded from a stream over the same instance.
func Replay(src Stream, plan *Plan) *ReplayStream {
	return &ReplayStream{src: src, plan: plan}
}

// Universe implements Stream.
func (rs *ReplayStream) Universe() int { return rs.src.Universe() }

// Len implements Stream.
func (rs *ReplayStream) Len() int { return rs.src.Len() }

// Reset implements Stream: the source still starts its pass (advancing its
// permutation RNG when the order demands it).
func (rs *ReplayStream) Reset() { rs.src.Reset() }

// Next implements Stream.
func (rs *ReplayStream) Next() (Item, bool) {
	it, ok := rs.src.Next()
	if !ok {
		return Item{}, false
	}
	if id := it.ID; id >= 0 && id < rs.plan.m {
		return rs.plan.Item(id), true
	}
	return it, true
}

// StableItems reports that plan-backed views are immutable for the life of
// the plan, so concurrent drivers broadcast them without copying.
func (rs *ReplayStream) StableItems() bool { return true }

// Err implements Failer, forwarding the source's error.
func (rs *ReplayStream) Err() error { return PassErr(rs.src) }

// ReplayedPass implements PassReplayer: every pass of a ReplayStream serves
// its payloads from the plan.
func (rs *ReplayStream) ReplayedPass() bool { return true }

// PlanCache states.
const (
	planIdle      = iota // before the first Reset
	planRecording        // first pass: passthrough + record
	planReady            // plan complete: serve passes from memory
	planDisabled         // over budget or malformed source: passthrough forever
)

// PlanCache wraps any Stream and amortizes its per-pass cost: the first
// pass streams honestly from the source while recording every item; every
// later pass is served from the recorded plan. Two replay modes, chosen by
// the source's arrival order:
//
//   - sequence replay (orders that repeat each pass — Adversarial,
//     RandomOnce, and every file-backed stream): the source is never touched
//     again, eliminating re-decode entirely;
//   - ID replay (RandomEachPass, or sources whose order is unknown): the
//     source still drives the arrival order — drawing the same fresh
//     permutation an honest re-stream would — but each item's payload comes
//     from the plan, eliminating the per-pass run rebuild.
//
// If recording would exceed the byte budget the cache degrades to pure
// passthrough: the stream behaves exactly as if unwrapped, paying the
// honest per-pass price. A pass abandoned mid-way (cancellation) discards
// the partial recording and re-records on the next Reset.
type PlanCache struct {
	src       Stream
	budget    int64
	alias     bool // source items are stable → plan aliases them
	seq       bool // arrival order repeats each pass → sequence replay
	srcStable bool

	state int
	bld   *planBuilder
	plan  *Plan
	order []int32 // arrival order of the recorded pass (sequence replay)
	pos   int
}

// NewPlanCache wraps src in a pass-replay cache with the given byte budget
// (<= 0 means unlimited). The wrapped stream is bit-identical to src under
// every driver; Close forwards to src when it is an io.Closer.
func NewPlanCache(src Stream, budget int64) *PlanCache {
	pc := &PlanCache{src: src, budget: budget}
	pc.srcStable = sourceStable(src)
	pc.alias = pc.srcStable
	if o, ok := src.(Ordered); ok {
		pc.seq = o.ArrivalOrder() != RandomEachPass
	}
	if m := src.Len(); budget > 0 && int64(m)*planSetOverheadBytes > budget {
		// The per-set tables alone blow the budget: never record.
		pc.state = planDisabled
	}
	return pc
}

// Universe implements Stream.
func (pc *PlanCache) Universe() int { return pc.src.Universe() }

// Len implements Stream.
func (pc *PlanCache) Len() int { return pc.src.Len() }

// Reset implements Stream.
func (pc *PlanCache) Reset() {
	switch pc.state {
	case planReady:
		if pc.seq {
			pc.pos = 0
			return // the source is never touched again
		}
		pc.src.Reset()
	case planDisabled:
		pc.src.Reset()
	default:
		// Idle, or a recording abandoned mid-pass: (re-)record this pass,
		// discarding any partial arrival-order prefix.
		pc.src.Reset()
		if pc.bld == nil {
			pc.bld = newPlanBuilder(pc.src.Universe(), pc.src.Len(), pc.alias, pc.budget)
		} else {
			pc.bld.reset()
		}
		pc.order = pc.order[:0]
		pc.state = planRecording
	}
}

// Next implements Stream.
func (pc *PlanCache) Next() (Item, bool) {
	switch pc.state {
	case planReady:
		if pc.seq {
			if pc.pos >= len(pc.order) {
				return Item{}, false
			}
			id := int(pc.order[pc.pos])
			pc.pos++
			return pc.plan.Item(id), true
		}
		it, ok := pc.src.Next()
		if !ok {
			return Item{}, false
		}
		if id := it.ID; id >= 0 && id < pc.plan.m {
			return pc.plan.Item(id), true
		}
		return it, true
	case planRecording:
		it, ok := pc.src.Next()
		if !ok {
			pc.finishRecording()
			return Item{}, false
		}
		rec, err := pc.bld.record(it)
		if err != nil {
			// Over budget or malformed: hand back the honest item and stop
			// trying — passthrough from here on.
			pc.disable()
			return it, true
		}
		if pc.seq {
			pc.order = append(pc.order, int32(rec.ID))
		}
		return rec, true
	default:
		return pc.src.Next()
	}
}

// finishRecording promotes a cleanly completed recording pass to a ready
// plan. A source error or short pass discards the recording (the driver
// will surface the source's own error); the next Reset re-records.
func (pc *PlanCache) finishRecording() {
	if PassErr(pc.src) != nil || pc.bld.count != pc.bld.m {
		pc.state = planIdle
		pc.order = pc.order[:0]
		return
	}
	pc.plan = pc.bld.finalize()
	pc.bld = nil
	pc.state = planReady
}

func (pc *PlanCache) disable() {
	pc.bld = nil
	pc.order = nil
	pc.state = planDisabled
}

// StableItems reports whether items are safe to broadcast without copying:
// always true once the plan is ready (plan views are immutable), otherwise
// the source's own stability — during the recording pass consumers still
// see source-backed views, and after a budget blow-out they always will.
// Concurrent drivers query this per pass.
func (pc *PlanCache) StableItems() bool {
	if pc.state == planReady {
		return true
	}
	return pc.srcStable
}

// Err implements Failer, forwarding the source's error. In sequence-replay
// mode the source completed its last pass cleanly and is never touched
// again, so its error stays nil.
func (pc *PlanCache) Err() error { return PassErr(pc.src) }

// Close forwards to the source when it is an io.Closer, so a PlanCache
// over a file-backed stream satisfies FileBacked.
func (pc *PlanCache) Close() error {
	if c, ok := pc.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Ready reports whether a completed plan is serving passes.
func (pc *PlanCache) Ready() bool { return pc.state == planReady }

// ReplayedPass implements PassReplayer. Traced drivers query it between
// Reset and the first Next, where the state is stable: a recording pass
// only promotes to planReady at its clean end, so the recording (honest)
// pass itself correctly reports false.
func (pc *PlanCache) ReplayedPass() bool { return pc.state == planReady }

// Disabled reports whether the cache degraded to passthrough (budget
// exceeded or malformed source).
func (pc *PlanCache) Disabled() bool { return pc.state == planDisabled }

// PlanBytes returns the accounted size of the completed plan, or 0 while
// recording, disabled, or idle.
func (pc *PlanCache) PlanBytes() int64 {
	if pc.state == planReady {
		return pc.plan.Bytes()
	}
	return 0
}
