package stream

import (
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

func writeTempInstance(t *testing.T, in *setsystem.Instance) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.sc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.Write(f, in); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileStreamMatchesInstanceStream(t *testing.T) {
	in := setsystem.Uniform(rng.New(1), 100, 25, 0, 40)
	path := writeTempInstance(t, in)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Universe() != in.N || fs.Len() != in.M() {
		t.Fatalf("header: %d/%d", fs.Universe(), fs.Len())
	}
	// Two passes: contents must match the instance exactly both times.
	for pass := 0; pass < 2; pass++ {
		fs.Reset()
		count := 0
		for {
			item, ok := fs.Next()
			if !ok {
				break
			}
			want := in.Set(item.ID)
			if len(item.Elems) != len(want) {
				t.Fatalf("pass %d set %d: %v != %v", pass, item.ID, item.Elems, want)
			}
			for i := range want {
				if item.Elems[i] != want[i] {
					t.Fatalf("pass %d set %d mismatch", pass, item.ID)
				}
			}
			count++
		}
		if err := fs.Err(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if count != in.M() {
			t.Fatalf("pass %d: %d sets", pass, count)
		}
	}
}

func TestFileStreamDrivesAlgorithm(t *testing.T) {
	in := setsystem.Uniform(rng.New(2), 64, 12, 4, 30)
	path := writeTempInstance(t, in)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	alg := &countingAlg{passesWanted: 3}
	acc, err := Run(fs, alg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Passes != 3 || acc.Items != 36 {
		t.Fatalf("acc = %+v", acc)
	}
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
}

func TestFileStreamWithComments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.sc")
	content := "# generated\nsetcover 5 2\n# first\n0 0 1\n\n1 2 3 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.Reset()
	n := 0
	for {
		if _, ok := fs.Next(); !ok {
			break
		}
		n++
	}
	if fs.Err() != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, fs.Err())
	}
}

func TestFileStreamErrors(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.sc")
	os.WriteFile(bad, []byte("not a header\n"), 0o644)
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("bad header accepted")
	}
	// Out-of-range element discovered mid-stream.
	oor := filepath.Join(t.TempDir(), "oor.sc")
	os.WriteFile(oor, []byte("setcover 3 1\n0 0 7\n"), 0o644)
	fs, err := OpenFile(oor)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.Reset()
	if _, ok := fs.Next(); ok {
		t.Fatal("out-of-range element accepted")
	}
	if fs.Err() == nil {
		t.Fatal("Err() nil after bad element")
	}
	// Missing sets detected at end of pass.
	short := filepath.Join(t.TempDir(), "short.sc")
	os.WriteFile(short, []byte("setcover 3 2\n0 0 1\n"), 0o644)
	fs2, err := OpenFile(short)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	fs2.Reset()
	for {
		if _, ok := fs2.Next(); !ok {
			break
		}
	}
	if fs2.Err() == nil {
		t.Fatal("missing set not reported")
	}
}

// TestFileStreamNormalizesSets pins the sorted/duplicate-free invariant on
// the streaming path: a text line with unsorted and duplicated elements is
// legal input (the in-memory reader normalizes it via SortSets), and the
// stream must yield the same normalized set — every consumer, scalar loop
// and word-mask run kernel alike, assumes the invariant.
func TestFileStreamNormalizesSets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.sc")
	content := "setcover 8 2\n0 3 7 7 2\n1 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.Reset()
	item, ok := fs.Next()
	if !ok {
		t.Fatalf("Next failed: %v", fs.Err())
	}
	want := []int32{2, 3, 7}
	if len(item.Elems) != len(want) {
		t.Fatalf("set 0 = %v, want %v", item.Elems, want)
	}
	for i, e := range want {
		if item.Elems[i] != e {
			t.Fatalf("set 0 = %v, want %v", item.Elems, want)
		}
	}
	if _, ok := fs.Next(); !ok {
		t.Fatalf("second set missing: %v", fs.Err())
	}
	if _, ok := fs.Next(); ok || fs.Err() != nil {
		t.Fatalf("expected clean end of pass, err=%v", fs.Err())
	}
}
