package stream

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamcover/internal/bitset"
	"streamcover/internal/rng"
	"streamcover/internal/setsystem"
)

// planTestInstance builds a small instance with varied set sizes (including
// an empty set) so run lists and arenas are non-trivial.
func planTestInstance() *setsystem.Instance {
	sets := [][]int{
		{0, 1, 2, 63, 64, 65},
		{},
		{5, 70, 128, 199},
		{0, 64, 128, 192},
		{1, 3, 5, 7, 9, 11, 13},
		{199},
	}
	return setsystem.FromSets(200, sets)
}

// passItem is a deep copy of one streamed item, with the run list the
// consumer would end up using (attached, or built from the elements).
type passItem struct {
	id    int
	elems []int32
	runs  []bitset.Run
}

// drainPass resets s and collects one full pass, deep-copying every view.
func drainPass(t *testing.T, s Stream) []passItem {
	t.Helper()
	s.Reset()
	var out []passItem
	for {
		it, ok := s.Next()
		if !ok {
			break
		}
		pi := passItem{id: it.ID, elems: append([]int32(nil), it.Elems...)}
		runs, _ := it.RunsInto(nil)
		pi.runs = append([]bitset.Run(nil), runs...)
		out = append(out, pi)
	}
	if err := PassErr(s); err != nil {
		t.Fatalf("pass failed: %v", err)
	}
	return out
}

// requireSamePasses drives both streams for passes full passes and requires
// identical items (IDs, elements, and effective run lists) each pass.
func requireSamePasses(t *testing.T, got, want Stream, passes int) {
	t.Helper()
	for p := 0; p < passes; p++ {
		g, w := drainPass(t, got), drainPass(t, want)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("pass %d diverged:\ngot  %+v\nwant %+v", p, g, w)
		}
	}
}

func TestPlanCacheAdversarialMatchesHonest(t *testing.T) {
	in := planTestInstance()
	pc := NewPlanCache(FromInstance(in, Adversarial, nil), 0)
	honest := FromInstance(in, Adversarial, nil)
	requireSamePasses(t, pc, honest, 4)
	if !pc.Ready() {
		t.Fatal("plan not ready after a clean first pass")
	}
	if pc.PlanBytes() <= 0 {
		t.Fatalf("plan bytes = %d, want > 0", pc.PlanBytes())
	}
}

func TestPlanCacheRandomOnceMatchesHonest(t *testing.T) {
	in := planTestInstance()
	pc := NewPlanCache(FromInstance(in, RandomOnce, rng.New(42)), 0)
	honest := FromInstance(in, RandomOnce, rng.New(42))
	requireSamePasses(t, pc, honest, 4)
	if !pc.Ready() {
		t.Fatal("plan not ready after a clean first pass")
	}
}

func TestPlanCacheRandomEachPassMatchesHonest(t *testing.T) {
	in := planTestInstance()
	// RandomEachPass reshuffles at every Reset: the cache must keep driving
	// the source's RNG so each pass draws the permutation an honest
	// re-stream would.
	pc := NewPlanCache(FromInstance(in, RandomEachPass, rng.New(42)), 0)
	honest := FromInstance(in, RandomEachPass, rng.New(42))
	requireSamePasses(t, pc, honest, 4)
	if !pc.Ready() {
		t.Fatal("plan not ready after a clean first pass")
	}
}

// countingStream wraps an InstanceStream and counts Next calls, forwarding
// the order/stability facts the cache keys on.
type countingStream struct {
	*InstanceStream
	nexts int
}

func (c *countingStream) Next() (Item, bool) {
	c.nexts++
	return c.InstanceStream.Next()
}

func TestPlanCacheSequenceReplayNeverTouchesSource(t *testing.T) {
	in := planTestInstance()
	src := &countingStream{InstanceStream: FromInstance(in, Adversarial, nil)}
	pc := NewPlanCache(src, 0)
	drainPass(t, pc)
	after := src.nexts
	drainPass(t, pc)
	drainPass(t, pc)
	if src.nexts != after {
		t.Fatalf("sequence replay touched the source: %d Next calls after recording", src.nexts-after)
	}
}

func TestPlanCacheBudgetDegradesToPassthrough(t *testing.T) {
	in := planTestInstance()
	// A budget the per-set tables alone cannot fit: disabled from birth.
	pc := NewPlanCache(FromInstance(in, Adversarial, nil), 1)
	honest := FromInstance(in, Adversarial, nil)
	requireSamePasses(t, pc, honest, 3)
	if !pc.Disabled() {
		t.Fatal("tiny budget should disable the cache outright")
	}
	if pc.PlanBytes() != 0 {
		t.Fatalf("disabled cache reports %d plan bytes", pc.PlanBytes())
	}
	// A budget that admits the tables but not the payload: disabled mid-
	// recording, still item-for-item identical.
	pc2 := NewPlanCache(FromInstance(in, Adversarial, nil), int64(in.M())*planSetOverheadBytes+8)
	honest2 := FromInstance(in, Adversarial, nil)
	requireSamePasses(t, pc2, honest2, 3)
	if !pc2.Disabled() {
		t.Fatal("over-payload budget should disable the cache during recording")
	}
}

func TestPlanCacheAbandonedPassReRecords(t *testing.T) {
	in := planTestInstance()
	pc := NewPlanCache(FromInstance(in, Adversarial, nil), 0)
	pc.Reset()
	pc.Next() // abandon the recording pass after one item (cancelled solve)
	if pc.Ready() {
		t.Fatal("partial pass must not produce a plan")
	}
	honest := FromInstance(in, Adversarial, nil)
	requireSamePasses(t, pc, honest, 3)
	if !pc.Ready() {
		t.Fatal("re-recorded pass should have produced a plan")
	}
}

// dupStream yields the same ID twice in a pass: a malformed source the
// cache must refuse to cache (it would replay the corruption forever).
type dupStream struct{ pos int }

func (d *dupStream) Universe() int { return 8 }
func (d *dupStream) Len() int      { return 2 }
func (d *dupStream) Reset()        { d.pos = 0 }
func (d *dupStream) Next() (Item, bool) {
	if d.pos >= 2 {
		return Item{}, false
	}
	d.pos++
	return Item{ID: 0, Elems: []int32{1, 2}}, true
}

func TestPlanCacheMalformedSourceDisables(t *testing.T) {
	pc := NewPlanCache(&dupStream{}, 0)
	drainPass(t, pc)
	if !pc.Disabled() {
		t.Fatal("duplicate IDs should disable the cache")
	}
	got := drainPass(t, pc)
	if len(got) != 2 || got[0].id != 0 || got[1].id != 0 {
		t.Fatalf("passthrough after disable changed the stream: %+v", got)
	}
}

func TestPlanCacheOverBinaryFileStream(t *testing.T) {
	in := planTestInstance()
	path := filepath.Join(t.TempDir(), "inst.scb1")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.WriteBinary(f, in); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache(fs, 0)
	defer pc.Close()
	// The honest twin: a second stream over the same file.
	honest, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	requireSamePasses(t, pc, honest, 4)
	if !pc.Ready() {
		t.Fatal("plan not ready over a binary file stream")
	}
	// A ready cache over an unstable source must have copied the elements:
	// replayed views stay valid across Next calls (drainPass deep-compares,
	// so surviving requireSamePasses already proves payload correctness;
	// here we pin the stability claim the parallel driver relies on).
	if !pc.StableItems() {
		t.Fatal("ready plan cache must report stable items")
	}
	if stable := sourceStable(fs); stable {
		t.Fatal("test premise broken: BinaryFileStream should be unstable")
	}
}

func TestBuildPlanReplayAttachesRuns(t *testing.T) {
	in := planTestInstance()
	plan, err := BuildPlan(FromInstance(in, Adversarial, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bytes() <= 0 {
		t.Fatalf("plan bytes = %d, want > 0", plan.Bytes())
	}
	rs := Replay(FromInstance(in, RandomOnce, rng.New(9)), plan)
	honest := FromInstance(in, RandomOnce, rng.New(9))
	requireSamePasses(t, rs, honest, 3)
	// Every replayed item must carry a prebuilt run list matching its
	// elements (for non-empty sets — an empty set has an empty run list).
	rs.Reset()
	for {
		it, ok := rs.Next()
		if !ok {
			break
		}
		if len(it.Elems) > 0 && it.Runs == nil {
			t.Fatalf("set %d replayed without prebuilt runs", it.ID)
		}
		want := bitset.AppendRuns(nil, it.Elems)
		if len(want) != len(it.Runs) {
			t.Fatalf("set %d runs mismatch: %v vs %v", it.ID, it.Runs, want)
		}
		for i := range want {
			if want[i] != it.Runs[i] {
				t.Fatalf("set %d runs mismatch at %d", it.ID, i)
			}
		}
	}
}

func TestBuildPlanBudget(t *testing.T) {
	in := planTestInstance()
	if _, err := BuildPlan(FromInstance(in, Adversarial, nil), 1); err != ErrPlanBudget {
		t.Fatalf("err = %v, want ErrPlanBudget", err)
	}
}

func TestPlanAliasesStableSources(t *testing.T) {
	in := planTestInstance()
	plan, err := BuildPlan(FromInstance(in, Adversarial, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	// InstanceStream items alias the CSR arena; the plan must alias too,
	// not copy — same backing array means same first-element address.
	for id := 0; id < in.M(); id++ {
		want := in.Set(id)
		got := plan.Item(id).Elems
		if len(want) == 0 {
			continue
		}
		if &got[0] != &want[0] {
			t.Fatalf("set %d: plan copied elements instead of aliasing the arena", id)
		}
	}
}
