# Development targets, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly the checks CI runs.

GO ?= go

.PHONY: all fmt fmt-check vet build test bench ci

all: build

## fmt: rewrite all Go files with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (what CI runs)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## vet: static analysis
vet:
	$(GO) vet ./...

## build: compile every package and command
build:
	$(GO) build ./...

## test: full test suite under the race detector
test:
	$(GO) test -race ./...

## bench: benchmark smoke — every benchmark once, no timing rigor
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## ci: the full CI sequence, locally
ci: fmt-check vet build test bench
