# Development targets, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly the checks CI runs.

GO ?= go

# Benchmarks whose B/op and allocs/op we track across PRs: the end-to-end
# solvers, the codec/stream data plane, and the word-parallel observe-plane
# kernels (run-based Observe, sieve grid, exact sub-solve, and the
# bit-sliced grid kernel under each dispatch body).
BENCH_PATTERN ?= BenchmarkSolve|BenchmarkGreedySetCover|BenchmarkCodec|BenchmarkStream|BenchmarkObserveRuns|BenchmarkSieveGrid|BenchmarkExactSubsolve|BenchmarkGridAndCountRuns
# Packages holding tracked benchmarks (the root API plus the internal hot
# paths the observe-plane benchmarks live next to).
BENCH_PKGS ?= . ./internal/bitset ./internal/core ./internal/maxcover ./internal/offline
BENCH_JSON ?= BENCH_masks.json
# The committed baseline the bench-compare target diffs against (recorded
# by the CSR data-plane PR, before the word-parallel observe plane).
BENCH_BASELINE ?= BENCH_csr.json
# The pre-bit-slicing recording (per-guess strided probe loops), re-recorded
# on the same machine as BENCH_JSON so the grid-kernel delta artifact is a
# same-box comparison.
BENCH_GRID_BASELINE ?= BENCH_masks_scalar.json

# Dataset-plane load benchmarks: decoding SCB1 vs mmap-opening SCB2 (the
# zero-copy path must stay allocation-O(1) in instance size).
DATASET_BENCH_PATTERN ?= BenchmarkLoad
DATASET_BENCH_JSON ?= BENCH_datasets.json

# Replay-plane benchmarks: multi-pass file solves served from the plan
# cache vs honest per-pass re-decoding, plus the isolated per-pass stream
# cost. The on/off legs of BenchmarkSolveFileReplay are the tracked pair
# (the replay leg must stay well ahead; see DESIGN.md §2.8).
REPLAY_BENCH_PATTERN ?= BenchmarkSolveFileReplay|BenchmarkPassOverhead
REPLAY_BENCH_JSON ?= BENCH_replay.json
# The frozen recording from the PR that introduced the replay plane,
# the committed reference bench-compare diffs fresh recordings against
# (same convention as BENCH_masks_scalar.json for the grid kernels).
REPLAY_BENCH_BASELINE ?= BENCH_replay_base.json

# Observability-plane benchmarks: the same scheduler solve with the request
# tracing plane on and off. The on/off delta is the plane's whole cost and
# must stay negligible against the solve itself (the zero-perturbation
# rule, DESIGN.md §3.5).
OBS_BENCH_PATTERN ?= BenchmarkSolveTracing
OBS_BENCH_JSON ?= BENCH_obs.json

.PHONY: all fmt fmt-check vet build test bench bench-json bench-compare serve-smoke import-smoke ci

all: build

## fmt: rewrite all Go files with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (what CI runs)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## vet: static analysis
vet:
	$(GO) vet ./...

## build: compile every package and command
build:
	$(GO) build ./...

## test: full test suite under the race detector
test:
	$(GO) test -race ./...

## bench: benchmark smoke — every benchmark once, no timing rigor
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## bench-json: solver + data-plane benchmarks with allocation stats,
## recorded as go-test JSON event streams for cross-PR tracking (the
## dataset recording tracks instance load time: SCB1 decode vs SCB2 mmap)
bench-json:
	$(GO) test -json -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"
	$(GO) test -json -run '^$$' -bench '$(DATASET_BENCH_PATTERN)' -benchmem ./internal/setsystem > $(DATASET_BENCH_JSON)
	@echo "wrote $(DATASET_BENCH_JSON)"
	$(GO) test -json -run '^$$' -bench '$(REPLAY_BENCH_PATTERN)' -benchmem . > $(REPLAY_BENCH_JSON)
	@echo "wrote $(REPLAY_BENCH_JSON)"
	$(GO) test -json -run '^$$' -bench '$(OBS_BENCH_PATTERN)' -benchmem ./internal/service > $(OBS_BENCH_JSON)
	@echo "wrote $(OBS_BENCH_JSON)"

## bench-compare: diff the fresh recording against the committed baselines
## (informational; never fails on a regression). bench-delta.txt tracks the
## long-running CSR baseline; bench-delta-grid.txt isolates the bit-sliced
## grid kernels against the pre-bit-slicing per-guess recording;
## bench-delta-replay.txt tracks the plan-cache serving legs against the
## recording frozen when the replay plane landed.
bench-compare: bench-json
	$(GO) run ./cmd/benchcmp $(BENCH_BASELINE) $(BENCH_JSON) | tee bench-delta.txt
	$(GO) run ./cmd/benchcmp $(BENCH_GRID_BASELINE) $(BENCH_JSON) | tee bench-delta-grid.txt
	$(GO) run ./cmd/benchcmp $(REPLAY_BENCH_BASELINE) $(REPLAY_BENCH_JSON) | tee bench-delta-replay.txt

## serve-smoke: end-to-end coverd check — start the daemon on a random
## port, upload a hardgen instance, solve remotely, diff against the
## in-process SolveSetCover output, verify cache/dedup stats, check the
## /metrics exposition parses and its counters move across a solve, pin
## traceparent propagation end to end (job snapshot, access log, flight
## recorder, debug endpoints), and confirm a clean SIGTERM shutdown
serve-smoke:
	bash scripts/serve_smoke.sh

## import-smoke: end-to-end dataset-plane check — coverimport each
## checked-in fixture to SCB2, preload into coverd via -load (mmap),
## solve locally + remotely, diff against the pinned goldens, and verify
## the mapped/heap accounting split in /v1/stats
import-smoke:
	bash scripts/import_smoke.sh

## ci: the full CI sequence, locally
ci: fmt-check vet build test bench bench-json bench-compare serve-smoke import-smoke
