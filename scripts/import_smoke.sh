#!/usr/bin/env bash
# import-smoke: end-to-end check of the dataset plane (the CI target behind
# `make import-smoke`). For each checked-in real-world-format fixture it
# runs coverimport → SCB2, preloads the result into a real coverd daemon
# via -load (the registry's zero-copy mmap path), solves it three ways —
# locally file-streamed over the mmap'd SCB2, remotely through coverd, and
# against the pinned golden output — and requires all three to agree byte
# for byte. Finally it checks the daemon's /v1/stats reports the entries as
# mapped (not heap) bytes and that coverd shuts down cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

FIXTURES="snap fimi dimacs"
TESTDATA="internal/dataset/testdata"
SOLVE_FLAGS=(-algo alg1 -alpha 2 -seed 7)

WORK="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "import-smoke: building coverimport, covercli, coverd"
go build -o "$WORK/coverimport" ./cmd/coverimport
go build -o "$WORK/covercli" ./cmd/covercli
go build -o "$WORK/coverd" ./cmd/coverd

LOADS=()
for F in $FIXTURES; do
	"$WORK/coverimport" -format "$F" -in "$TESTDATA/tiny.$F" -out "$WORK/tiny.$F.scb2"
	LOADS+=(-load "$WORK/tiny.$F.scb2")
done

echo "import-smoke: starting coverd with the imported SCB2 files preloaded (mmap)"
"$WORK/coverd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" "${LOADS[@]}" > "$WORK/coverd.log" 2>&1 &
PID=$!
for _ in $(seq 100); do
	[ -s "$WORK/addr" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "import-smoke: coverd died:"; cat "$WORK/coverd.log"; exit 1; }
	sleep 0.1
done
[ -s "$WORK/addr" ] || { echo "import-smoke: coverd never bound:"; cat "$WORK/coverd.log"; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "import-smoke: coverd is on $ADDR"

for F in $FIXTURES; do
	SCB2="$WORK/tiny.$F.scb2"
	"$WORK/covercli" -in "$SCB2" "${SOLVE_FLAGS[@]}" > "$WORK/local.$F.out"
	"$WORK/covercli" -server "http://$ADDR" -in "$SCB2" "${SOLVE_FLAGS[@]}" > "$WORK/remote.$F.out"
	if ! diff -u "$WORK/local.$F.out" "$WORK/remote.$F.out"; then
		echo "import-smoke: FAIL — remote solve of the $F fixture differs from the local mmap-streamed solve"
		exit 1
	fi
	if ! diff -u "$TESTDATA/golden/tiny.$F.out" "$WORK/local.$F.out"; then
		echo "import-smoke: FAIL — $F solve output drifted from the pinned golden"
		echo "  (if the change is intentional, regenerate $TESTDATA/golden/tiny.$F.out)"
		exit 1
	fi
	echo "import-smoke: $F fixture solves identically local/remote/golden:"
	sed 's/^/  /' "$WORK/local.$F.out"
done

# The preloaded entries must be charged to the mapped ledger: three
# resident instances, zero heap bytes before any upload (the covercli
# -server runs above dedup against the preloaded hashes).
if command -v curl > /dev/null; then
	STATS="$(curl -fsS "http://$ADDR/v1/stats")"
	echo "$STATS" | grep -q '"instances":3' || {
		echo "import-smoke: FAIL — expected 3 resident instances (upload dedup against -load): $STATS"
		exit 1
	}
	echo "$STATS" | grep -q '"heap_bytes":0' || {
		echo "import-smoke: FAIL — mmap-preloaded entries burned heap bytes: $STATS"
		exit 1
	}
	echo "$STATS" | grep -Eq '"mapped_bytes":[1-9]' || {
		echo "import-smoke: FAIL — no mapped bytes accounted for -load entries: $STATS"
		exit 1
	}
	echo "import-smoke: stats OK (3 mapped instances, 0 heap bytes)"
fi

echo "import-smoke: asking coverd to shut down"
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=""
if [ "$STATUS" -ne 0 ]; then
	echo "import-smoke: FAIL — coverd exited $STATUS:"
	cat "$WORK/coverd.log"
	exit 1
fi
grep -q "bye" "$WORK/coverd.log" || {
	echo "import-smoke: FAIL — no clean-shutdown marker:"
	cat "$WORK/coverd.log"
	exit 1
}
echo "import-smoke: OK"
