#!/usr/bin/env bash
# serve-smoke: end-to-end check of the coverd service (the CI target behind
# `make serve-smoke`). It starts a real coverd daemon on a random port,
# uploads a hardgen instance through `covercli -server`, solves it remotely,
# and diffs the output byte for byte against a local in-process
# SolveSetCover run with identical flags — the determinism-over-the-wire
# contract. A tracing leg then solves under a known W3C traceparent and
# asserts the trace ID surfaces in the access log, the job snapshot and the
# debug listener's recent-trace list. Finally it checks the daemon shuts
# down cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve-smoke: building coverd, covercli, hardgen"
go build -o "$WORK/coverd" ./cmd/coverd
go build -o "$WORK/covercli" ./cmd/covercli
go build -o "$WORK/hardgen" ./cmd/hardgen

# A D_SC hard instance (theta=0 gives a non-trivial optimum) in the binary
# codec; the ground-truth annotations go to stderr.
"$WORK/hardgen" -kind sc -n 1024 -m 24 -alpha 3 -theta 0 -seed 7 -format binary \
	> "$WORK/hard.scb" 2> "$WORK/hardgen.truth"

echo "serve-smoke: starting coverd on a random port"
"$WORK/coverd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
	-log-requests -debug-addr 127.0.0.1:0 -debug-addr-file "$WORK/debug.addr" \
	> "$WORK/coverd.log" 2>&1 &
PID=$!
for _ in $(seq 100); do
	[ -s "$WORK/addr" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: coverd died:"; cat "$WORK/coverd.log"; exit 1; }
	sleep 0.1
done
[ -s "$WORK/addr" ] || { echo "serve-smoke: coverd never bound:"; cat "$WORK/coverd.log"; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "serve-smoke: coverd is on $ADDR"

# Identical flags, local vs remote, on both local code paths: the default
# adversarial order (locally file-streamed) and -order random (locally
# in-memory). covercli mirrors each path's output shape remotely, so both
# must diff clean.
for ORDER in adversarial random; do
	FLAGS=(-in "$WORK/hard.scb" -algo alg1 -alpha 3 -order "$ORDER" -seed 7)
	"$WORK/covercli" "${FLAGS[@]}" > "$WORK/local.$ORDER.out"
	"$WORK/covercli" -server "http://$ADDR" "${FLAGS[@]}" > "$WORK/remote.$ORDER.out"
	if ! diff -u "$WORK/local.$ORDER.out" "$WORK/remote.$ORDER.out"; then
		echo "serve-smoke: FAIL — remote solve differs from in-process SolveSetCover (-order $ORDER)"
		exit 1
	fi
	echo "serve-smoke: remote output == local output (-order $ORDER):"
	sed 's/^/  /' "$WORK/remote.$ORDER.out"
done

# Re-solving the same request must hit the result cache (stats come back
# as JSON; a crude grep keeps this dependency-free).
"$WORK/covercli" -server "http://$ADDR" "${FLAGS[@]}" > /dev/null
if command -v curl > /dev/null; then
	STATS="$(curl -fsS "http://$ADDR/v1/stats")"
	echo "$STATS" | grep -q '"cache_hits":1' || {
		echo "serve-smoke: FAIL — expected one cache hit in stats: $STATS"
		exit 1
	}
	echo "$STATS" | grep -q '"instances":1' || {
		echo "serve-smoke: FAIL — expected one resident instance (dedup): $STATS"
		exit 1
	}
	echo "serve-smoke: stats OK (1 cache hit, 1 resident instance after 2 uploads)"

	# Metrics smoke: the Prometheus exposition must parse line by line, and
	# the scheduler counters must move across one more (seed-changed, so
	# uncached) remote solve.
	metric() { echo "$1" | awk -v n="$2" '$1 == n { print $2 }'; }
	BEFORE="$(curl -fsS "http://$ADDR/metrics")"
	BAD="$(echo "$BEFORE" | grep -Ev '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* |[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?(Inf|[0-9][0-9eE.+-]*))$)' || true)"
	if [ -n "$BAD" ]; then
		echo "serve-smoke: FAIL — unparseable /metrics lines:"
		echo "$BAD" | sed 's/^/  /'
		exit 1
	fi
	"$WORK/covercli" -server "http://$ADDR" -in "$WORK/hard.scb" -algo alg1 -alpha 3 -seed 8 > /dev/null
	AFTER="$(curl -fsS "http://$ADDR/metrics")"
	SUB_BEFORE="$(metric "$BEFORE" coverd_jobs_submitted_total)"
	SUB_AFTER="$(metric "$AFTER" coverd_jobs_submitted_total)"
	PASSES_BEFORE="$(metric "$BEFORE" coverd_solve_passes_total)"
	PASSES_AFTER="$(metric "$AFTER" coverd_solve_passes_total)"
	if [ "${SUB_AFTER:-0}" -le "${SUB_BEFORE:-0}" ] || [ "${PASSES_AFTER:-0}" -le "${PASSES_BEFORE:-0}" ]; then
		echo "serve-smoke: FAIL — metrics did not move across a solve" \
			"(submitted $SUB_BEFORE -> $SUB_AFTER, passes $PASSES_BEFORE -> $PASSES_AFTER)"
		exit 1
	fi
	echo "$AFTER" | grep -q '^coverd_http_requests_total{route="POST /v1/solve",code="200"}' || {
		echo "serve-smoke: FAIL — no http request family in /metrics"
		exit 1
	}
	echo "$AFTER" | grep -q '^coverd_registry_resident_bytes' || {
		echo "serve-smoke: FAIL — no registry family in /metrics"
		exit 1
	}
	echo "serve-smoke: metrics OK (submitted $SUB_BEFORE -> $SUB_AFTER, passes $PASSES_BEFORE -> $PASSES_AFTER)"
	echo "$AFTER" | grep -q '^coverd_build_info{' || {
		echo "serve-smoke: FAIL — no coverd_build_info gauge in /metrics"
		exit 1
	}

	# Tracing leg: solve under a known client traceparent; the trace ID must
	# come back in the job snapshot, the access log, GET /v1/traces/{id} and
	# the debug listener's recent-trace list — one ID across every plane.
	TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
	TRACEPARENT="00-$TRACE_ID-00f067aa0ba902b7-01"
	DEBUG_ADDR="$(cat "$WORK/debug.addr")"
	HASH="$(curl -fsS --data-binary @"$WORK/hard.scb" "http://$ADDR/v1/instances" \
		| sed -n 's/.*"hash":"\([^"]*\)".*/\1/p')"
	JOB="$(curl -fsS -H "traceparent: $TRACEPARENT" -H 'Content-Type: application/json' \
		-d "{\"instance\":\"$HASH\",\"wait\":true,\"seed\":11}" "http://$ADDR/v1/solve")"
	echo "$JOB" | grep -q "\"trace_id\":\"$TRACE_ID\"" || {
		echo "serve-smoke: FAIL — job snapshot missing the propagated trace id: $JOB"
		exit 1
	}
	# The root span ends just after the response bytes leave, so the trace
	# can commit to the flight recorder a beat after curl returns.
	TRACE_JSON=""
	for _ in $(seq 50); do
		TRACE_JSON="$(curl -fsS "http://$ADDR/v1/traces/$TRACE_ID" 2>/dev/null || true)"
		[ -n "$TRACE_JSON" ] && break
		sleep 0.1
	done
	for SPAN in admission queue pin plan solve; do
		echo "$TRACE_JSON" | grep -q "\"name\":\"$SPAN\"" || {
			echo "serve-smoke: FAIL — recorded trace missing span \"$SPAN\": $TRACE_JSON"
			exit 1
		}
	done
	echo "$TRACE_JSON" | grep -q '"name":"pass"' || {
		echo "serve-smoke: FAIL — solve span has no per-pass events: $TRACE_JSON"
		exit 1
	}
	curl -fsS "http://$DEBUG_ADDR/debug/traces" | grep -q "$TRACE_ID" || {
		echo "serve-smoke: FAIL — trace id absent from /debug/traces"
		exit 1
	}
	curl -fsS "http://$DEBUG_ADDR/debug/bundle" | grep -q '"stats"' || {
		echo "serve-smoke: FAIL — /debug/bundle has no stats section"
		exit 1
	}
	grep 'msg=request' "$WORK/coverd.log" | grep -q "trace_id=$TRACE_ID" || {
		echo "serve-smoke: FAIL — access log missing trace_id=$TRACE_ID"
		exit 1
	}
	grep 'msg="job finished"' "$WORK/coverd.log" | grep -q "trace_id=$TRACE_ID" || {
		echo "serve-smoke: FAIL — job lifecycle log missing trace_id=$TRACE_ID"
		exit 1
	}
	echo "serve-smoke: tracing OK (trace $TRACE_ID in job, access log, lifecycle log, recorder, debug endpoints)"
fi

echo "serve-smoke: asking coverd to shut down"
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=""
if [ "$STATUS" -ne 0 ]; then
	echo "serve-smoke: FAIL — coverd exited $STATUS:"
	cat "$WORK/coverd.log"
	exit 1
fi
grep -q "bye" "$WORK/coverd.log" || {
	echo "serve-smoke: FAIL — no clean-shutdown marker:"
	cat "$WORK/coverd.log"
	exit 1
}
grep -q 'msg="coverd stopped"' "$WORK/coverd.log" || {
	echo "serve-smoke: FAIL — no structured shutdown log:"
	cat "$WORK/coverd.log"
	exit 1
}
echo "serve-smoke: OK"
