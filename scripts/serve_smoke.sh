#!/usr/bin/env bash
# serve-smoke: end-to-end check of the coverd service (the CI target behind
# `make serve-smoke`). It starts a real coverd daemon on a random port,
# uploads a hardgen instance through `covercli -server`, solves it remotely,
# and diffs the output byte for byte against a local in-process
# SolveSetCover run with identical flags — the determinism-over-the-wire
# contract. Finally it checks the daemon shuts down cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve-smoke: building coverd, covercli, hardgen"
go build -o "$WORK/coverd" ./cmd/coverd
go build -o "$WORK/covercli" ./cmd/covercli
go build -o "$WORK/hardgen" ./cmd/hardgen

# A D_SC hard instance (theta=0 gives a non-trivial optimum) in the binary
# codec; the ground-truth annotations go to stderr.
"$WORK/hardgen" -kind sc -n 1024 -m 24 -alpha 3 -theta 0 -seed 7 -format binary \
	> "$WORK/hard.scb" 2> "$WORK/hardgen.truth"

echo "serve-smoke: starting coverd on a random port"
"$WORK/coverd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" > "$WORK/coverd.log" 2>&1 &
PID=$!
for _ in $(seq 100); do
	[ -s "$WORK/addr" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: coverd died:"; cat "$WORK/coverd.log"; exit 1; }
	sleep 0.1
done
[ -s "$WORK/addr" ] || { echo "serve-smoke: coverd never bound:"; cat "$WORK/coverd.log"; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "serve-smoke: coverd is on $ADDR"

# Identical flags, local vs remote, on both local code paths: the default
# adversarial order (locally file-streamed) and -order random (locally
# in-memory). covercli mirrors each path's output shape remotely, so both
# must diff clean.
for ORDER in adversarial random; do
	FLAGS=(-in "$WORK/hard.scb" -algo alg1 -alpha 3 -order "$ORDER" -seed 7)
	"$WORK/covercli" "${FLAGS[@]}" > "$WORK/local.$ORDER.out"
	"$WORK/covercli" -server "http://$ADDR" "${FLAGS[@]}" > "$WORK/remote.$ORDER.out"
	if ! diff -u "$WORK/local.$ORDER.out" "$WORK/remote.$ORDER.out"; then
		echo "serve-smoke: FAIL — remote solve differs from in-process SolveSetCover (-order $ORDER)"
		exit 1
	fi
	echo "serve-smoke: remote output == local output (-order $ORDER):"
	sed 's/^/  /' "$WORK/remote.$ORDER.out"
done

# Re-solving the same request must hit the result cache (stats come back
# as JSON; a crude grep keeps this dependency-free).
"$WORK/covercli" -server "http://$ADDR" "${FLAGS[@]}" > /dev/null
if command -v curl > /dev/null; then
	STATS="$(curl -fsS "http://$ADDR/v1/stats")"
	echo "$STATS" | grep -q '"cache_hits":1' || {
		echo "serve-smoke: FAIL — expected one cache hit in stats: $STATS"
		exit 1
	}
	echo "$STATS" | grep -q '"instances":1' || {
		echo "serve-smoke: FAIL — expected one resident instance (dedup): $STATS"
		exit 1
	}
	echo "serve-smoke: stats OK (1 cache hit, 1 resident instance after 2 uploads)"

	# Metrics smoke: the Prometheus exposition must parse line by line, and
	# the scheduler counters must move across one more (seed-changed, so
	# uncached) remote solve.
	metric() { echo "$1" | awk -v n="$2" '$1 == n { print $2 }'; }
	BEFORE="$(curl -fsS "http://$ADDR/metrics")"
	BAD="$(echo "$BEFORE" | grep -Ev '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* |[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?(Inf|[0-9][0-9eE.+-]*))$)' || true)"
	if [ -n "$BAD" ]; then
		echo "serve-smoke: FAIL — unparseable /metrics lines:"
		echo "$BAD" | sed 's/^/  /'
		exit 1
	fi
	"$WORK/covercli" -server "http://$ADDR" -in "$WORK/hard.scb" -algo alg1 -alpha 3 -seed 8 > /dev/null
	AFTER="$(curl -fsS "http://$ADDR/metrics")"
	SUB_BEFORE="$(metric "$BEFORE" coverd_jobs_submitted_total)"
	SUB_AFTER="$(metric "$AFTER" coverd_jobs_submitted_total)"
	PASSES_BEFORE="$(metric "$BEFORE" coverd_solve_passes_total)"
	PASSES_AFTER="$(metric "$AFTER" coverd_solve_passes_total)"
	if [ "${SUB_AFTER:-0}" -le "${SUB_BEFORE:-0}" ] || [ "${PASSES_AFTER:-0}" -le "${PASSES_BEFORE:-0}" ]; then
		echo "serve-smoke: FAIL — metrics did not move across a solve" \
			"(submitted $SUB_BEFORE -> $SUB_AFTER, passes $PASSES_BEFORE -> $PASSES_AFTER)"
		exit 1
	fi
	echo "$AFTER" | grep -q '^coverd_http_requests_total{route="POST /v1/solve",code="200"}' || {
		echo "serve-smoke: FAIL — no http request family in /metrics"
		exit 1
	}
	echo "$AFTER" | grep -q '^coverd_registry_resident_bytes' || {
		echo "serve-smoke: FAIL — no registry family in /metrics"
		exit 1
	}
	echo "serve-smoke: metrics OK (submitted $SUB_BEFORE -> $SUB_AFTER, passes $PASSES_BEFORE -> $PASSES_AFTER)"
fi

echo "serve-smoke: asking coverd to shut down"
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=""
if [ "$STATUS" -ne 0 ]; then
	echo "serve-smoke: FAIL — coverd exited $STATUS:"
	cat "$WORK/coverd.log"
	exit 1
fi
grep -q "bye" "$WORK/coverd.log" || {
	echo "serve-smoke: FAIL — no clean-shutdown marker:"
	cat "$WORK/coverd.log"
	exit 1
}
grep -q 'msg="coverd stopped"' "$WORK/coverd.log" || {
	echo "serve-smoke: FAIL — no structured shutdown log:"
	cat "$WORK/coverd.log"
	exit 1
}
echo "serve-smoke: OK"
