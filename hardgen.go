package streamcover

import (
	"streamcover/internal/hardinst"
	"streamcover/internal/rng"
)

// HardSetCoverInfo is the ground truth accompanying a D_SC draw.
type HardSetCoverInfo struct {
	// Theta is the planted bit: 1 means a pair covering the universe exists
	// (opt ≤ 2), 0 means opt > 2α with high probability (Lemma 3.2).
	Theta int
	// IStar is the planted pair index when Theta=1, else −1; the covering
	// pair is sets IStar and M+IStar.
	IStar int
	// M is the number of pairs; the instance has 2M sets.
	M int
	// T is the block parameter t = Θ((n/ln m)^{1/α}); the paper's lower
	// bound says any α-approximation must retain Ω̃(M·T) words.
	T int
	// Alpha is the approximation parameter the instance is hard for.
	Alpha int
}

// GenerateHardSetCover draws from the paper's hard distribution D_SC
// (§3.1): 2m sets over a universe of ~n elements such that distinguishing
// opt ≤ 2 from opt > 2α requires Ω̃(m·n^{1/α}) words of memory in any
// number of passes. theta ∈ {0,1} plants the answer; use it to benchmark
// streaming set cover implementations against the information-theoretic
// limit.
func GenerateHardSetCover(seed uint64, n, m, alpha, theta int) (*Instance, HardSetCoverInfo) {
	p := hardinst.SCParams{N: n, M: m, Alpha: alpha}
	sc := hardinst.SampleSetCover(p, theta, rng.New(seed))
	return sc.Inst, HardSetCoverInfo{
		Theta: sc.Theta, IStar: sc.IStar, M: m, T: sc.T, Alpha: alpha,
	}
}

// HardMaxCoverageInfo is the ground truth accompanying a D_MC draw.
type HardMaxCoverageInfo struct {
	// Theta is the planted bit: 1 means one pair covers ≥ (1+Θ(ε))·Tau,
	// 0 means every pair covers ≤ (1−Θ(ε))·Tau w.h.p. (Lemma 4.3).
	Theta int
	// IStar is the planted pair index when Theta=1, else −1.
	IStar int
	// M is the number of pairs; the instance has 2M sets and k = 2.
	M int
	// Tau is the separation threshold.
	Tau float64
	// Eps is the approximation parameter the instance is hard for.
	Eps float64
}

// GenerateHardMaxCoverage draws from the paper's hard distribution D_MC
// (§4.2): 2m sets such that (1−ε)-approximating maximum 2-coverage requires
// Ω̃(m/ε²) words in any number of passes.
func GenerateHardMaxCoverage(seed uint64, m int, eps float64, theta int) (*Instance, HardMaxCoverageInfo) {
	p := hardinst.MCParams{Eps: eps, M: m}
	mc := hardinst.SampleMaxCover(p, theta, rng.New(seed))
	return mc.Inst, HardMaxCoverageInfo{
		Theta: mc.Theta, IStar: mc.IStar, M: m, Tau: mc.Tau, Eps: eps,
	}
}
