package streamcover

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"streamcover/internal/core"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

// TestSolveParityAcrossStreamBackends is the acceptance check of the
// data plane: for a fixed seed, Algorithm 1 run over an in-memory
// InstanceStream, a text FileStream, a binary BinaryFileStream, an
// SCB2 file decoded onto the heap, and an SCB2 file mmap'd zero-copy all
// produce the bit-identical outcome — cover, winning guess, feasibility,
// passes, items and peak space — at parallelism 1, 4 and GOMAXPROCS. The
// stream backend and the worker count change wall-clock time and nothing
// else.
func TestSolveParityAcrossStreamBackends(t *testing.T) {
	inst, _ := GeneratePlanted(21, 1024, 128, 4)
	dir := t.TempDir()

	tpath := filepath.Join(dir, "inst.sc")
	tf, err := os.Create(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstance(tf, inst); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	bpath := filepath.Join(dir, "inst.scb")
	bf, err := os.Create(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceBinary(bf, inst); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	mpath := filepath.Join(dir, "inst.scb2")
	mf, err := os.Create(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceSCB2(mf, inst); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	type outcome struct {
		res core.Result
		acc stream.Accounting
	}
	const seed = 77
	cfg := core.Config{Alpha: 2, Epsilon: 0.5, SampleC: 2}

	solve := func(t *testing.T, open func() (stream.Stream, func()), workers int) outcome {
		t.Helper()
		s, done := open()
		defer done()
		c := cfg
		c.Workers = workers
		solver := core.NewSolver(s.Universe(), s.Len(), c, rng.New(seed))
		acc, err := solver.Run(s, c.MaxPasses()+1)
		if err != nil {
			t.Fatal(err)
		}
		best, ok := solver.Best()
		if !ok {
			t.Fatal("no feasible cover")
		}
		return outcome{res: best, acc: acc}
	}

	backends := []struct {
		name string
		open func() (stream.Stream, func())
	}{
		{"instance", func() (stream.Stream, func()) {
			return stream.FromInstance(inst, stream.Adversarial, nil), func() {}
		}},
		{"text-file", func() (stream.Stream, func()) {
			fs, err := stream.OpenFile(tpath)
			if err != nil {
				t.Fatal(err)
			}
			return fs, func() { fs.Close() }
		}},
		{"binary-file", func() (stream.Stream, func()) {
			fs, err := stream.OpenBinaryFile(bpath)
			if err != nil {
				t.Fatal(err)
			}
			return fs, func() { fs.Close() }
		}},
		// SCB2 decoded onto the heap (the upload/ReadAuto path)…
		{"scb2-heap", func() (stream.Stream, func()) {
			f, err := os.Open(mpath)
			if err != nil {
				t.Fatal(err)
			}
			heap, err := ReadInstance(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			return stream.FromInstance(heap, stream.Adversarial, nil), func() {}
		}},
		// …and SCB2 mmap'd zero-copy (the stream.Open/coverd -load path).
		{"scb2-mmap", func() (stream.Stream, func()) {
			fs, err := stream.Open(mpath)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fs.(*stream.MappedFileStream); !ok {
				t.Fatalf("stream.Open(%s) = %T, want MappedFileStream", mpath, fs)
			}
			return fs, func() { fs.Close() }
		}},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	base := solve(t, backends[0].open, 1)
	if !inst.IsCover(base.res.Cover) {
		t.Fatal("baseline result is not a cover")
	}
	for _, b := range backends {
		for _, w := range workerCounts {
			got := solve(t, b.open, w)
			if !reflect.DeepEqual(got, base) {
				t.Errorf("%s workers=%d diverged:\n got %+v\nwant %+v", b.name, w, got, base)
			}
		}
	}
}

// TestReadInstanceAutoBinary checks the public decode path sniffs the
// binary magic (covercli's -in handling rides on this).
func TestReadInstanceAutoBinary(t *testing.T) {
	inst := GenerateUniform(5, 128, 30, 4, 40)
	path := filepath.Join(t.TempDir(), "inst.scb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceBinary(f, inst); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadInstance(rf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != inst.N || got.M() != inst.M() || got.TotalElems() != inst.TotalElems() {
		t.Fatalf("auto-decoded instance differs: %d/%d/%d vs %d/%d/%d",
			got.N, got.M(), got.TotalElems(), inst.N, inst.M(), inst.TotalElems())
	}
	for i := 0; i < inst.M(); i++ {
		a, b := got.Set(i), inst.Set(i)
		for j := range b {
			if a[j] != b[j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
}

// TestFileStreamSolveMatchesSolveSetCover pins the RNG discipline of the
// file-backed solve entry point (core.SolveStream + core.SolveFileRNG,
// covercli's -in path): for a fixed seed it must produce the bit-identical
// outcome — cover, guess, passes, peak space — to the public SolveSetCover
// on the decoded instance in adversarial order. This is the local half of
// coverd's determinism-over-the-wire contract (the serve-smoke target
// diffs a remote solve against exactly this file-streamed output).
func TestFileStreamSolveMatchesSolveSetCover(t *testing.T) {
	inst, _ := GeneratePlanted(23, 1024, 128, 4)
	path := filepath.Join(t.TempDir(), "inst.scb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInstanceBinary(f, inst); err != nil {
		t.Fatal(err)
	}
	f.Close()

	const seed = 31
	want, err := SolveSetCover(inst, WithAlpha(2), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}

	fs, err := stream.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	res, acc, err := core.SolveStream(fs, core.Config{Alpha: 2}, core.SolveFileRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cover, want.Cover) || res.Guess != want.Guess ||
		acc.Passes != want.Passes || acc.PeakSpace != want.SpaceWords {
		t.Fatalf("file-streamed solve (cover=%v guess=%d passes=%d space=%d) differs from SolveSetCover (%+v)",
			res.Cover, res.Guess, acc.Passes, acc.PeakSpace, want)
	}
}
