package streamcover_test

import (
	"fmt"

	"streamcover"
)

// Solve a small planted instance with Algorithm 1 and verify the cover.
func ExampleSolveSetCover() {
	inst, planted := streamcover.GeneratePlanted(42, 1024, 128, 4)
	res, err := streamcover.SolveSetCover(inst,
		streamcover.WithAlpha(2),
		streamcover.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", inst.IsCover(res.Cover))
	fmt.Println("cover size:", len(res.Cover), "optimum:", len(planted))
	fmt.Println("passes:", res.Passes, "<= bound:", res.Passes <= 5)
	// Output:
	// feasible: true
	// cover size: 4 optimum: 4
	// passes: 3 <= bound: true
}

// Pick k sets maximizing coverage in a single pass.
func ExampleSolveMaxCoverage() {
	inst := streamcover.GenerateUniform(3, 2000, 100, 100, 400)
	res, err := streamcover.SolveMaxCoverage(inst, 3, streamcover.WithSeed(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("chose:", len(res.Chosen), "sets in", res.Passes, "pass")
	fmt.Println("covered at least a third:", res.Covered > inst.N/3)
	// Output:
	// chose: 3 sets in 1 pass
	// covered at least a third: true
}

// Generate a lower-bound-hard instance with ground truth.
func ExampleGenerateHardSetCover() {
	inst, info := streamcover.GenerateHardSetCover(1, 1024, 8, 2, 1)
	pair := []int{info.IStar, info.M + info.IStar}
	fmt.Println("sets:", inst.M())
	fmt.Println("planted pair covers universe:", inst.IsCover(pair))
	// Output:
	// sets: 16
	// planted pair covers universe: true
}
