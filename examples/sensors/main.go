// Sensors: streaming maximum k-coverage. A vendor streams candidate sensor
// placements, each covering a disc of grid cells; we may install only k
// sensors and want to cover as many cells as possible — the maximum
// coverage problem the paper's Theorem 4 bounds (any (1−ε)-approximation
// needs Ω̃(m/ε²) memory).
package main

import (
	"fmt"
	"log"
	"sort"

	"streamcover"
	"streamcover/internal/rng"
)

const (
	side    = 160 // the field is side×side cells
	sensors = 600 // candidate placements streamed
	radius  = 12
	k       = 6
)

func main() {
	n := side * side
	r := rng.New(7)
	b := streamcover.NewInstanceBuilder(n)
	for i := 0; i < sensors; i++ {
		cx, cy := r.Intn(side), r.Intn(side)
		var cells []int
		for dx := -radius; dx <= radius; dx++ {
			for dy := -radius; dy <= radius; dy++ {
				x, y := cx+dx, cy+dy
				if x < 0 || y < 0 || x >= side || y >= side || dx*dx+dy*dy > radius*radius {
					continue
				}
				cells = append(cells, y*side+x)
			}
		}
		sort.Ints(cells)
		b.AddSet(cells)
	}
	inst := b.Build()

	fmt.Printf("sensors: %d candidates over a %d×%d field, budget k=%d\n",
		sensors, side, side, k)

	// Streaming: one pass, Õ(k/ε²) sampled cells per candidate retained.
	res, err := streamcover.SolveMaxCoverage(inst, k,
		streamcover.WithEpsilon(0.2),
		streamcover.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming pick: %s\n", res)
	fmt.Printf("  coverage: %.1f%% of the field\n", 100*float64(res.Covered)/float64(n))

	// Offline greedy reference ((1−1/e)-approximate, unbounded memory).
	chosen, covered := streamcover.GreedyMaxCoverage(inst, k)
	fmt.Printf("offline greedy: %d sensors cover %d cells (%.1f%%)\n",
		len(chosen), covered, 100*float64(covered)/float64(n))

	fmt.Printf("memory: streaming retained %d words vs %d to buffer all placements\n",
		res.SpaceWords, inst.TotalElems()+sensors)
}
