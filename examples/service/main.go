// Service example: run the coverd solve service in-process, upload an
// instance, solve it over the wire, and check the answer is bit-identical
// to an in-process solve — the determinism-over-the-wire contract.
//
// In production coverd runs as its own daemon (`go run ./cmd/coverd`) and
// clients connect over the network; wiring the server into an
// httptest-style listener here keeps the example self-contained.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"

	"streamcover"
	"streamcover/client"
	"streamcover/internal/registry"
	"streamcover/internal/service"
)

func main() {
	// The service: a content-addressed instance registry under a 64 MiB
	// budget, and a scheduler with two solve slots.
	reg := registry.New(registry.Config{BudgetBytes: 64 << 20})
	sched := service.NewScheduler(reg, service.Config{Slots: 2})
	defer sched.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(reg, sched, 0)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("coverd serving on", base)

	ctx := context.Background()
	c := client.New(base)

	// Upload: the registry deduplicates by content hash, so re-uploading
	// is free.
	inst, planted := streamcover.GeneratePlanted(42, 8192, 512, 6)
	up, err := c.UploadInstance(ctx, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded: n=%d m=%d hash=%s...\n", up.N, up.M, up.Hash[:12])

	// Solve over the wire (blocking), then solve the same thing in-process.
	req := client.SolveRequest{Instance: up.Hash, Alpha: 3, Seed: 7}
	job, err := c.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if job.Status != client.StatusDone {
		log.Fatalf("job %s: %s", job.Status, job.Error)
	}
	fmt.Printf("remote: cover=%d sets (guess %d), %d passes, %d words [planted opt %d]\n",
		len(job.Result.Cover), job.Result.Guess, job.Result.Passes,
		job.Result.SpaceWords, len(planted))

	local, err := streamcover.SolveSetCover(inst,
		streamcover.WithAlpha(3), streamcover.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(job.Result.Cover, local.Cover) ||
		job.Result.Passes != local.Passes || job.Result.SpaceWords != local.SpaceWords {
		log.Fatalf("wire/local mismatch: %+v vs %+v", job.Result, local)
	}
	fmt.Println("determinism over the wire: remote == local, bit for bit")

	// The same request again is a cache hit — same result, no solve.
	again, err := c.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: cache_hit=%v\n", again.CacheHit)

	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d submitted, %d cache hits, %d resident instances (%d bytes), peak space %d words\n",
		st.Scheduler.Submitted, st.Scheduler.CacheHits,
		st.Registry.Instances, st.Registry.ResidentBytes, st.Scheduler.PeakSpaceWords)
}
