// Blogwatch: the workload that motivated streaming set cover (Saha &
// Getoor, SDM 2009, cited as the problem's origin in the paper): a crawler
// streams blogs, each covering a set of topics, and we must select a small
// set of blogs that together cover every topic of interest — without
// buffering the whole crawl.
//
// Topics cluster (sports blogs cover sports topics), which the clustered
// generator models; a handful of "aggregator" blogs span many clusters.
package main

import (
	"fmt"
	"log"

	"streamcover"
)

const (
	topics   = 4_000 // universe: topic IDs
	blogs    = 800   // stream length: one set of topics per blog
	clusters = 16
)

func main() {
	// Topical blogs: each covers ~200 topics, 90% within its home cluster.
	inst := streamcover.GenerateClustered(2024, topics, blogs, clusters, 200)

	// A few aggregators guarantee coverability: one blog per cluster pair.
	aggs := make([][]int, 0, clusters)
	for c := 0; c < clusters; c++ {
		lo, hi := c*topics/clusters, (c+1)*topics/clusters
		agg := make([]int, 0, hi-lo)
		for e := lo; e < hi; e++ {
			agg = append(agg, e)
		}
		aggs = append(aggs, agg)
	}
	inst = streamcover.MergeInstances(topics, inst, streamcover.NewInstance(topics, aggs))
	streamcover.Normalize(inst)

	st := streamcover.ComputeStats(inst)
	fmt.Printf("blogwatch: %d blogs, %d topics, %d (blog,topic) pairs streamed\n",
		st.M, st.N, st.TotalSize)

	// Streaming selection: α=3 ⇒ up to 7 passes over the crawl, ~m·n^{1/3}
	// memory. We know roughly how many blogs should suffice (about one per
	// cluster), so we give the solver an optimum hint — Theorem 2's space
	// bound is stated for a known õpt; running the full guess grid instead
	// costs an extra Õ(1/ε) memory factor.
	res, err := streamcover.SolveSetCover(inst,
		streamcover.WithAlpha(3),
		streamcover.WithEpsilon(0.5),
		streamcover.WithOrder(streamcover.RandomOnce), // crawl order is arbitrary
		streamcover.WithSeed(99),
		streamcover.WithOptimumHint(clusters+4),
		streamcover.WithSampleConstant(1), // empirically safe; see experiment E10
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming pick: %d blogs cover all topics (%d passes, %d words vs %d to buffer all)\n",
		len(res.Cover), res.Passes, res.SpaceWords, st.TotalSize+st.M)

	greedy, err := streamcover.GreedySetCover(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline greedy (buffers everything): %d blogs\n", len(greedy))

	frac := float64(res.SpaceWords) / float64(st.TotalSize+st.M)
	fmt.Printf("memory: streaming used %.0f%% of the buffer-everything footprint\n", 100*frac)
}
