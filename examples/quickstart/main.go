// Quickstart: solve a streaming set cover instance with the paper's
// Algorithm 1 and compare against the offline greedy reference.
package main

import (
	"fmt"
	"log"

	"streamcover"
)

func main() {
	// A synthetic instance: 500 sets over a universe of 10,000 elements,
	// with a planted optimal cover of 5 sets hidden among decoys.
	inst, planted := streamcover.GeneratePlanted(42, 10_000, 500, 5)
	fmt.Printf("instance: n=%d, m=%d, planted optimum = %d sets\n",
		inst.N, inst.M(), len(planted))

	// α trades passes and memory for approximation: 2α+1 passes,
	// Õ(m·n^{1/α}) words, (α+ε)-approximate. The sampling constant 2 keeps
	// the rate unsaturated at this n (the paper's worst-case constant is
	// 16; experiment E10 maps the safe range).
	for _, alpha := range []int{1, 2, 3} {
		res, err := streamcover.SolveSetCover(inst,
			streamcover.WithAlpha(alpha),
			streamcover.WithSeed(7),
			streamcover.WithSampleConstant(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α=%d: %s\n", alpha, res)
		if !inst.IsCover(res.Cover) {
			log.Fatal("not a cover (bug)")
		}
	}

	// Offline greedy for reference (unbounded memory, ln(n)-approximate).
	greedy, err := streamcover.GreedySetCover(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  offline greedy: %d sets\n", len(greedy))
}
