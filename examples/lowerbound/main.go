// Lowerbound: a demonstration of the paper's main result. We draw
// instances from the hard distribution D_SC, show the planted optimum gap
// (opt ≤ 2 vs opt > 2α, Lemma 3.2), and sweep a budget-limited streaming
// strategy through the Ω̃(m·n^{1/α}) space threshold of Theorem 1 — below
// it, distinguishing the two cases degrades toward coin flipping, no matter
// the arrival order.
package main

import (
	"fmt"
	"math"

	"streamcover"
	"streamcover/internal/hardinst"
	"streamcover/internal/lowerbound"
	"streamcover/internal/rng"
	"streamcover/internal/stream"
)

func main() {
	const (
		n     = 4096
		m     = 32 // pairs; the instance has 2m sets
		alpha = 2
	)
	// One instance of each kind, with ground truth.
	inst1, info1 := streamcover.GenerateHardSetCover(1, n, m, alpha, 1)
	inst0, _ := streamcover.GenerateHardSetCover(2, n, m, alpha, 0)
	fmt.Printf("D_SC: n≈%d, %d sets, α=%d, t=%d\n", n, 2*m, alpha, info1.T)

	pair := []int{info1.IStar, info1.M + info1.IStar}
	fmt.Printf("θ=1: planted pair %v covers %d/%d elements (opt ≤ 2)\n",
		pair, inst1.CoverageOf(pair), inst1.N)
	greedy0, err := streamcover.GreedySetCover(inst0)
	if err != nil {
		fmt.Println("θ=0: universe not even coverable by all sets:", err)
	} else {
		fmt.Printf("θ=0: greedy needs %d sets (opt > 2α = %d w.h.p.)\n", len(greedy0), 2*alpha)
	}

	// Budget sweep: the distinguisher retains a per-pair sample of set
	// complements; Theorem 1 says it cannot work far below ~m·t ln m words.
	p := hardinst.SCParams{N: n, M: m, Alpha: alpha}
	ref := float64(m) * float64(p.BlockParam()) * math.Log(float64(m)) / 3
	fmt.Printf("\nbudget sweep (reference threshold ≈ %.0f words, 40 trials each):\n", ref)
	fmt.Println("budget | frac of m·t·ln(m)/3 | success")
	r := rng.New(7)
	for _, mult := range []float64{1.0 / 32, 1.0 / 8, 1.0 / 2, 1, 4} {
		budget := int(ref * mult)
		correct := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			theta := i % 2
			sc := hardinst.SampleSetCover(p, theta, r.Split(fmt.Sprintf("i%v-%d", mult, i)))
			d := lowerbound.NewSCDistinguisher(sc.N, m,
				lowerbound.SCConfig{Budget: budget, Passes: 1}, r.Split(fmt.Sprintf("a%v-%d", mult, i)))
			// Random arrival order: the bound is robust to it (Lemma 3.7).
			s := stream.FromInstance(sc.Inst, stream.RandomOnce, r.Split(fmt.Sprintf("o%v-%d", mult, i)))
			if _, err := stream.Run(s, d, 2); err != nil {
				panic(err)
			}
			if d.Decide() == theta {
				correct++
			}
		}
		fmt.Printf("%6d | %19.3f | %d/%d\n", budget, mult, correct, trials)
	}
	fmt.Println("\nbelow the threshold success decays toward 1/2 (chance), matching Ω̃(m·n^{1/α}).")
}
