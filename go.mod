module streamcover

go 1.24
