package streamcover

import (
	"reflect"
	"runtime"
	"testing"
)

// parallelismLevels are the worker counts the determinism tests compare:
// the sequential reference driver, a fixed multi-worker pool, GOMAXPROCS,
// and the GOMAXPROCS default (0).
func parallelismLevels() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0), 0}
}

// TestSolveSetCoverParallelDeterminism checks the WithParallelism contract:
// for a fixed seed the full SetCoverResult — cover, winning guess, passes,
// space accounting — is bit-identical at parallelism 1, 4, GOMAXPROCS and
// the default, across instance families and arrival orders. Run under
// -race, this also exercises the fan-out driver for data races.
func TestSolveSetCoverParallelDeterminism(t *testing.T) {
	planted, _ := GeneratePlanted(11, 2048, 256, 4)
	clustered := GenerateClustered(12, 1024, 128, 8, 200)
	cases := []struct {
		name string
		inst *Instance
		opts []Option
	}{
		{"planted/adversarial", planted, []Option{WithAlpha(2), WithSeed(7), WithSampleConstant(2)}},
		{"planted/random-once", planted, []Option{WithAlpha(2), WithSeed(7), WithSampleConstant(2), WithOrder(RandomOnce)}},
		{"planted/random-each-pass", planted, []Option{WithAlpha(3), WithSeed(9), WithSampleConstant(2), WithOrder(RandomEachPass)}},
		{"clustered/greedy-subsolver", clustered, []Option{WithAlpha(2), WithSeed(5), WithSampleConstant(2), WithGreedySubsolver()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := SolveSetCover(tc.inst, append(tc.opts, WithParallelism(1))...)
			if err != nil {
				t.Fatalf("parallelism 1: %v", err)
			}
			if !tc.inst.IsCover(base.Cover) {
				t.Fatalf("parallelism 1 returned a non-cover")
			}
			for _, p := range parallelismLevels()[1:] {
				res, err := SolveSetCover(tc.inst, append(tc.opts, WithParallelism(p))...)
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if !reflect.DeepEqual(res, base) {
					t.Errorf("parallelism %d diverged:\n got %+v\nwant %+v", p, res, base)
				}
			}
		})
	}
}

// TestSolveMaxCoverageParallelDeterminism checks the same contract for the
// streaming maximum coverage solver, whose greedy sub-solve evaluates
// candidates in parallel.
func TestSolveMaxCoverageParallelDeterminism(t *testing.T) {
	inst := GenerateUniform(13, 2048, 256, 64, 512)
	cases := []struct {
		name string
		k    int
		opts []Option
	}{
		{"greedy/k8", 8, []Option{WithSeed(3), WithGreedySubsolver()}},
		{"exact/k2", 2, []Option{WithSeed(3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := SolveMaxCoverage(inst, tc.k, append(tc.opts, WithParallelism(1))...)
			if err != nil {
				t.Fatalf("parallelism 1: %v", err)
			}
			for _, p := range parallelismLevels()[1:] {
				res, err := SolveMaxCoverage(inst, tc.k, append(tc.opts, WithParallelism(p))...)
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if !reflect.DeepEqual(res, base) {
					t.Errorf("parallelism %d diverged:\n got %+v\nwant %+v", p, res, base)
				}
			}
		})
	}
}
